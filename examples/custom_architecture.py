#!/usr/bin/env python3
"""Define a custom accelerator and explore a design sweep.

Shows the architecture-description API: a three-level hierarchy with a
per-datatype L1 and weight bypass, plus a sweep over PE-array sizes to see
how the best achievable EDP scales — the kind of design-space exploration
a scalable mapper enables.

Usage::

    python examples/custom_architecture.py
"""

from repro.arch import Architecture, MemoryLevel, words
from repro.core import schedule
from repro.energy import NocModel, dram_energy, estimate_area, sram_estimate
from repro.workloads import conv2d


def make_accelerator(pes_per_side: int) -> Architecture:
    """A custom accelerator: per-datatype L1s, weights bypass the L2."""
    word_bits = 16
    fanout = pes_per_side * pes_per_side
    l1_est = sram_estimate(2 * 1024, word_bits)
    l1 = MemoryLevel(
        name="L1",
        capacity_words={
            "ifmap": words(0.5, word_bits),
            "weight": words(1, word_bits),
            "ofmap": words(0.5, word_bits),
        },
        fanout=fanout,
        fanout_shape=(pes_per_side, pes_per_side),
        read_energy=l1_est.read_energy,
        write_energy=l1_est.write_energy,
        network_energy=NocModel((pes_per_side, pes_per_side),
                                word_bits).unicast_energy(),
        read_bandwidth=16,
        write_bandwidth=16,
    )
    l2_est = sram_estimate(1024 * 1024, word_bits)
    l2 = MemoryLevel(
        name="L2",
        capacity_words={  # weights stream from DRAM (bypass)
            "ifmap": words(512, word_bits),
            "ofmap": words(512, word_bits),
        },
        read_energy=l2_est.read_energy,
        write_energy=l2_est.write_energy,
        read_bandwidth=32,
        write_bandwidth=32,
    )
    dram = MemoryLevel(
        name="DRAM",
        capacity_words=None,
        read_energy=dram_energy(word_bits),
        write_energy=dram_energy(word_bits),
        read_bandwidth=16,
        write_bandwidth=16,
    )
    return Architecture(f"custom-{pes_per_side}x{pes_per_side}",
                        levels=(l1, l2, dram), mac_energy=2.2)


def main() -> None:
    layer = conv2d(N=1, K=128, C=128, P=28, Q=28, R=3, S=3, name="conv3_x")
    print(f"Design sweep for {layer.name} "
          f"({layer.total_operations / 1e6:.0f} M MACs)\n")
    print(f"{'PE array':>9} | {'EDP':>11} | {'energy (uJ)':>11} | "
          f"{'cycles':>9} | {'util':>5} | {'area mm2':>8} | {'search (s)':>10}")
    print("-" * 79)
    for side in (4, 8, 16, 32):
        arch = make_accelerator(side)
        result = schedule(layer, arch)
        if not result.found:
            print(f"{side:>7}^2 | no valid mapping")
            continue
        cost = result.cost
        area = estimate_area(arch).total_mm2
        print(f"{side:>7}^2 | {cost.edp:>11.3e} | "
              f"{cost.energy_pj / 1e6:>11.2f} | {cost.cycles:>9.0f} | "
              f"{cost.utilization:>4.0%} | {area:>8.2f} | "
              f"{result.stats.wall_time_s:>10.2f}")
    print("\nLarger arrays cut latency (EDP) until utilisation or "
          "bandwidth limits bite — exactly the trade-off a fast mapper "
          "lets an architect sweep.")


if __name__ == "__main__":
    main()
