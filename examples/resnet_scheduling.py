#!/usr/bin/env python3
"""Schedule all of ResNet-18 and compare mappers (the Fig. 8 scenario).

Runs Sunstone, the Timeloop-like random search and the CoSA-like one-shot
mapper over every distinct ResNet-18 convolution shape on the Simba-like
architecture, and prints a per-layer comparison table: EDP, time-to-solution
and validity.

Usage::

    python examples/resnet_scheduling.py [--batch N] [--conventional]
"""

import argparse

from repro.arch import conventional, simba_like
from repro.baselines import (
    TimeloopConfig,
    cosa_search,
    simba_constraints,
    timeloop_search,
)
from repro.core import schedule
from repro.workloads import RESNET18_LAYERS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--batch", type=int, default=16)
    parser.add_argument("--conventional", action="store_true",
                        help="use the Eyeriss-like architecture instead")
    parser.add_argument("--layers", type=int, default=None,
                        help="limit the number of layers (for a quick look)")
    args = parser.parse_args()

    arch = conventional() if args.conventional else simba_like()
    constraints = None if args.conventional else simba_constraints(arch)
    tl_config = TimeloopConfig(timeout=2000, victory_condition=100)

    layers = RESNET18_LAYERS[: args.layers]
    print(f"ResNet-18 (batch {args.batch}) on {arch.name}")
    header = (f"{'layer':<10} | {'Sunstone EDP':>13} {'t(s)':>6} | "
              f"{'TL EDP':>13} {'t(s)':>6} | {'CoSA EDP':>13} {'valid':>5}")
    print(header)
    print("-" * len(header))

    totals = {"sunstone": 0.0, "timeloop": 0.0}
    for layer in layers:
        wl = layer.inference(batch=args.batch)
        sun = schedule(wl, arch)
        tl = timeloop_search(wl, arch, tl_config, constraints=constraints)
        cosa = cosa_search(wl, arch)
        totals["sunstone"] += sun.edp
        if tl.found:
            totals["timeloop"] += tl.edp
        print(f"{layer.name:<10} | {sun.edp:>13.3e} "
              f"{sun.stats.wall_time_s:>6.1f} | "
              f"{tl.edp:>13.3e} {tl.wall_time_s:>6.1f} | "
              f"{cosa.edp:>13.3e} {'yes' if cosa.valid else 'NO':>5}")

    print("-" * len(header))
    if totals["timeloop"]:
        ratio = totals["timeloop"] / totals["sunstone"]
        print(f"network total: Timeloop-like EDP is {ratio:.2f}x Sunstone's "
              f"(paper Fig. 8: ~1.5x on ResNet-18)")


if __name__ == "__main__":
    main()
