#!/usr/bin/env python3
"""Compile a mapping to DianNao-style instructions (the Fig. 9 scenario).

Schedules a ResNet-18 layer for the DianNao-like accelerator, compiles the
resulting dataflow to the 256-bit instruction stream, simulates it, and
prints the energy breakdown versus the naive stream-from-DRAM baseline —
quantifying the overheads (instructions, data reordering) that tiling and
unrolling introduce, and the much larger savings they buy.

Usage::

    python examples/diannao_compilation.py
"""

from repro.arch import diannao_like
from repro.core import schedule
from repro.sim import Opcode, compile_mapping, compile_naive, run_program
from repro.workloads import RESNET18_LAYERS


def main() -> None:
    arch = diannao_like()
    layer = RESNET18_LAYERS[1]  # conv2_x: 3x3, 64 channels
    workload = layer.inference(batch=1)

    print(f"Scheduling {layer.name} on {arch.name}...")
    result = schedule(workload, arch)
    print(f"  mapping: {result.mapping}")

    program = compile_mapping(result.mapping)
    opcode_mix = {}
    for instr in program.instructions:
        opcode_mix[instr.opcode.name] = opcode_mix.get(instr.opcode.name, 0) + 1
    print(f"\nCompiled program: {program.num_instructions} instructions "
          f"({len(program.encode())} bytes), {program.passes} passes")
    for opcode, count in sorted(opcode_mix.items()):
        print(f"  {opcode:<8} {count}")

    optimized = run_program(program)
    naive = run_program(compile_naive(workload))

    print("\nOptimized execution energy breakdown:")
    for component, fraction in optimized.normalized_breakdown().items():
        bar = "#" * int(fraction * 40)
        print(f"  {component:<13} {fraction:>6.1%} {bar}")
    print(f"  total: {optimized.total_energy / 1e6:.2f} uJ")

    print("\nNaive (stream-from-DRAM) execution:")
    for component, fraction in naive.normalized_breakdown().items():
        if fraction:
            print(f"  {component:<13} {fraction:>6.1%}")
    print(f"  total: {naive.total_energy / 1e6:.2f} uJ")

    ratio = naive.total_energy / optimized.total_energy
    overhead = optimized.normalized_breakdown()
    print(f"\nTiling + unrolling make execution {ratio:.1f}x more energy "
          f"efficient (paper: 2.9x for full ResNet-18), at an instruction "
          f"overhead of {overhead['Instructions']:.1%} and reordering "
          f"overhead of {overhead['Reordering']:.1%}.")


if __name__ == "__main__":
    main()
