#!/usr/bin/env python3
"""Versatility beyond the paper: attention and MobileNet kernels.

Sunstone's pruning principles derive from the algebraic workload
description, so kernels the paper never evaluated — transformer attention
sub-kernels and depthwise convolutions — schedule with the same machinery.
Depthwise convolutions are a stress case: the channel dimension indexes
*every* tensor, so it carries no reuse and the trie must route around it.

Usage::

    python examples/modern_workloads.py
"""

from repro.arch import conventional
from repro.core import enumerate_orderings, schedule
from repro.workloads import (
    attention_scores,
    attention_values,
    mobilenet_depthwise,
)


def show(workload, arch) -> None:
    orderings = enumerate_orderings(workload)
    result = schedule(workload, arch)
    print(f"{workload.name:<22} orders={len(orderings):<3} "
          f"EDP={result.edp:>11.3e} util={result.cost.utilization:>4.0%} "
          f"evals={result.stats.evaluations:<6} "
          f"t={result.stats.wall_time_s:.2f}s")


def main() -> None:
    arch = conventional()
    print(f"Architecture: {arch.name}\n")

    print("Transformer attention (batch 4, 8 heads, 256 tokens, d=64):")
    show(attention_scores(B=4, H=8, L=256, D=64), arch)
    show(attention_values(B=4, H=8, L=256, D=64), arch)

    print("\nMobileNet-v1 depthwise layers (no channel reduction — the")
    print("channel dimension indexes every tensor, so no operand can be")
    print("reused across it; watch utilisation stay high regardless):")
    for workload in mobilenet_depthwise(batch=1):
        show(workload, arch)


if __name__ == "__main__":
    main()
