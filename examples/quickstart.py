#!/usr/bin/env python3
"""Quickstart: schedule one convolution layer on two accelerators.

Runs Sunstone on a ResNet-18 convolution layer, prints the discovered
mapping as a tiled loop nest, and compares the conventional (Eyeriss-like)
and modern (Simba-like) architectures of the paper's Table IV.

Usage::

    python examples/quickstart.py
"""

from repro.arch import conventional, simba_like
from repro.core import schedule
from repro.mapping import render_nest
from repro.workloads import conv2d


def main() -> None:
    # A ResNet-18 conv4_x layer at batch 1.
    layer = conv2d(N=1, K=256, C=256, P=14, Q=14, R=3, S=3,
                   name="resnet18_conv4_x")
    print(f"Workload: {layer}")
    print(f"  {layer.total_operations / 1e6:.1f} M MACs")
    print()

    for arch in (conventional(), simba_like()):
        print("=" * 70)
        print(arch.describe())
        print()
        result = schedule(layer, arch)
        if not result.found:
            print("no valid mapping found")
            continue
        print(f"Best mapping ({result.stats.evaluations} candidates "
              f"evaluated in {result.stats.wall_time_s:.2f}s):")
        print(render_nest(result.mapping))
        print()
        cost = result.cost
        print(f"  energy : {cost.energy_pj / 1e6:.2f} uJ")
        print(f"  latency: {cost.cycles / 1e3:.1f} kcycles")
        print(f"  EDP    : {cost.edp:.3e} pJ*cy")
        print(f"  PE util: {cost.utilization:.0%}")
        print()


if __name__ == "__main__":
    main()
