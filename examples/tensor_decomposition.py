#!/usr/bin/env python3
"""Versatility demo: schedule tensor-decomposition kernels (Fig. 6 scenario).

Sunstone infers reuse from the algebraic workload description, so the same
scheduler handles MTTKRP (CP decomposition), TTMc (Tucker decomposition) and
SDDMM (alternating least squares) without any convolution-specific logic.
This example prints the inferred reuse table (the paper's Table III) for
each kernel and then schedules it on the conventional accelerator.

Usage::

    python examples/tensor_decomposition.py
"""

from repro.arch import conventional
from repro.core import enumerate_orderings, schedule
from repro.workloads import mttkrp, sddmm, ttmc


def show_reuse_table(workload) -> None:
    print(f"  inferred reuse (Table III) for {workload.name}:")
    for name, info in workload.reuse_table().items():
        print(f"    {name:<8} indexed by {sorted(info.indexed_by)}, "
              f"reused by {sorted(info.reused_by)}"
              + (f", partially by {sorted(info.partially_reused_by)}"
                 if info.partially_reused_by else ""))


def main() -> None:
    arch = conventional()
    kernels = [
        # FROSTT-scale mode sizes are huge; these are the per-pass extents
        # a host would hand the dense scheduler.
        mttkrp(I=1024, K=1024, L=1024, J=32, name="mttkrp_rank32"),
        ttmc(I=512, J=512, K=512, L=8, M=8, name="ttmc_rank8"),
        sddmm(I=1024, J=1024, K=512, name="sddmm_rank512"),
    ]

    for workload in kernels:
        print("=" * 70)
        print(f"{workload.name}: {workload.total_operations / 1e9:.2f} G ops")
        show_reuse_table(workload)

        orderings = enumerate_orderings(workload)
        print(f"  pruned loop-order candidates: {len(orderings)} "
              f"(out of {_factorial(len(workload.dim_names))} permutations)")

        result = schedule(workload, arch)
        print(f"  best mapping: {result.mapping}")
        print(f"  {result.cost.summary()}")
        print(f"  candidates evaluated: {result.stats.evaluations} "
              f"in {result.stats.wall_time_s:.2f}s")
        print()


def _factorial(n: int) -> int:
    result = 1
    for i in range(2, n + 1):
        result *= i
    return result


if __name__ == "__main__":
    main()
