#!/usr/bin/env python3
"""Schedule a whole network, dedupe shapes, and persist the mappings.

Demonstrates the production-facing surfaces of the library:

* :func:`repro.core.schedule_network` — per-network scheduling with
  identical-shape deduplication and aggregated energy/latency totals;
* :mod:`repro.mapping.serialize` — saving every discovered mapping as a
  self-contained JSON document and reloading it for re-evaluation.

Usage::

    python examples/network_scheduling_io.py [output_dir]
"""

import sys
import tempfile
from pathlib import Path

from repro.arch import conventional
from repro.core import schedule_network
from repro.mapping import load_mapping, save_mapping
from repro.model import evaluate
from repro.workloads import RESNET18_LAYERS


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else \
        Path(tempfile.mkdtemp(prefix="sunstone_mappings_"))
    out_dir.mkdir(parents=True, exist_ok=True)

    arch = conventional()
    # Include a couple of repeated shapes to show deduplication at work.
    layers = [layer.inference(batch=1) for layer in RESNET18_LAYERS]
    layers.insert(2, RESNET18_LAYERS[1].inference(batch=1))

    print(f"Scheduling {len(layers)} layers on {arch.name}...\n")
    network = schedule_network(layers, arch)
    print(network.summary())

    print(f"\nSaving mapping documents to {out_dir}")
    for index, entry in enumerate(network.layers):
        if not entry.result.found or entry.shared_with:
            continue
        path = out_dir / f"{index:02d}_{entry.workload.name}.json"
        save_mapping(entry.result.mapping, str(path))

    saved = sorted(out_dir.glob("*.json"))
    print(f"saved {len(saved)} unique mappings; re-evaluating the first:")
    mapping = load_mapping(str(saved[0]))
    print(f"  {mapping}")
    print(f"  {evaluate(mapping).summary()}")


if __name__ == "__main__":
    main()
