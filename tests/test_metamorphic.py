"""Metamorphic properties of the cost model and scheduler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import UNIFIED, Architecture, MemoryLevel, tiny
from repro.core import SchedulerOptions, schedule
from repro.mapping import build_mapping
from repro.model import evaluate
from repro.workloads import conv1d

_SIZES = st.sampled_from([2, 3, 4, 6])


class TestCostMetamorphic:
    @given(K=_SIZES, C=_SIZES, P=_SIZES,
           R=st.sampled_from([1, 2, 3]), scale=st.sampled_from([2, 3]))
    @settings(max_examples=30, deadline=None)
    def test_scaling_a_dim_scales_compute(self, K, C, P, R, scale):
        arch = tiny(l1_words=10**9, l2_words=10**9, pes=4)
        small = conv1d(K=K, C=C, P=P, R=R)
        big = conv1d(K=K * scale, C=C, P=P, R=R)
        m_small = build_mapping(small, arch, temporal=[dict(small.dims), {}, {}])
        m_big = build_mapping(big, arch, temporal=[dict(big.dims), {}, {}])
        r_small, r_big = evaluate(m_small), evaluate(m_big)
        assert r_big.compute_energy == pytest.approx(
            r_small.compute_energy * scale)
        assert r_big.energy_pj > r_small.energy_pj

    @given(K=_SIZES, C=_SIZES, P=_SIZES)
    @settings(max_examples=20, deadline=None)
    def test_cheaper_memory_never_raises_energy(self, K, C, P):
        wl = conv1d(K=K, C=C, P=P, R=2)
        expensive = tiny(l1_words=64, l2_words=4096, pes=4)
        cheap = expensive.with_level("DRAM", read_energy=1.0,
                                     write_energy=1.0)
        m1 = build_mapping(wl, expensive, temporal=[{"P": 1}, {}, {}])
        m2 = build_mapping(wl, cheap, temporal=[{"P": 1}, {}, {}])
        assert evaluate(m2).energy_pj <= evaluate(m1).energy_pj


class TestSchedulerMetamorphic:
    def test_more_capacity_never_hurts(self):
        wl = conv1d(K=8, C=8, P=16, R=3)
        small = tiny(l1_words=32, l2_words=1024, pes=4)
        big = tiny(l1_words=256, l2_words=8192, pes=4)
        opts = SchedulerOptions(polish=False)
        edp_small = schedule(wl, small, opts).edp
        edp_big = schedule(wl, big, opts).edp
        assert edp_big <= edp_small * 1.0001

    def test_more_parallelism_never_hurts_edp(self):
        wl = conv1d(K=16, C=16, P=16, R=3)
        few = tiny(l1_words=128, l2_words=8192, pes=4)
        many = tiny(l1_words=128, l2_words=8192, pes=16)
        edp_few = schedule(wl, few).edp
        edp_many = schedule(wl, many).edp
        assert edp_many <= edp_few * 1.0001

    def test_batch_scales_monotonically(self):
        from repro.workloads import conv2d
        from repro.arch import conventional
        arch = conventional()
        small = schedule(conv2d(N=1, K=32, C=32, P=14, Q=14, R=3, S=3),
                         arch)
        big = schedule(conv2d(N=4, K=32, C=32, P=14, Q=14, R=3, S=3), arch)
        assert big.cost.energy_pj > small.cost.energy_pj
        assert big.cost.cycles >= small.cost.cycles
