"""Tests for the scheduler's automatic cap escalation."""

import pytest

from repro.arch import UNIFIED, Architecture, MemoryLevel, tiny
from repro.core import SchedulerOptions, schedule
from repro.workloads import conv1d, conv2d


class TestAutoEscalation:
    def test_full_utilization_skips_escalation(self):
        # A layer that saturates the array on the first pass: the second
        # (wide) pass must not run, so evaluations stay small.
        wl = conv1d(K=8, C=8, P=16, R=3)
        arch = tiny(l1_words=128, l2_words=4096, pes=8)
        with_esc = schedule(wl, arch, SchedulerOptions(auto_escalate=True))
        without = schedule(wl, arch, SchedulerOptions(auto_escalate=False))
        assert with_esc.cost.utilization == 1.0
        assert with_esc.stats.evaluations == without.stats.evaluations

    def test_escalation_never_hurts(self):
        # An awkward fanout (PEs don't divide any dimension cleanly) leaves
        # lanes idle and triggers the wide retry.
        wl = conv1d(K=7, C=5, P=11, R=3)
        arch = tiny(l1_words=64, l2_words=4096, pes=8)
        escalated = schedule(wl, arch, SchedulerOptions(auto_escalate=True))
        plain = schedule(wl, arch, SchedulerOptions(auto_escalate=False))
        assert escalated.found
        assert escalated.edp <= plain.edp * 1.0001
        # The retry's evaluations are accounted for.
        assert escalated.stats.evaluations >= plain.stats.evaluations

    def test_escalation_disabled_with_unbounded_beam(self):
        wl = conv1d(K=7, C=5, P=11, R=3)
        arch = tiny(l1_words=64, l2_words=4096, pes=8)
        result = schedule(wl, arch,
                          SchedulerOptions(beam_width=None,
                                           auto_escalate=True))
        assert result.found  # no retry path, still works

    def test_result_options_reflect_request(self):
        wl = conv1d(K=4, C=4, P=14, R=3)
        arch = tiny(l1_words=64, l2_words=512, pes=4)
        result = schedule(wl, arch, SchedulerOptions(auto_escalate=True))
        assert result.found
