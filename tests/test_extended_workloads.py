"""Tests for the extended workload constructors."""

import pytest

from repro.arch import conventional, tiny
from repro.core import enumerate_orderings, schedule
from repro.workloads import (
    attention_scores,
    attention_values,
    batched_matmul,
    depthwise_conv2d,
    grouped_conv2d,
    mobilenet_depthwise,
)


class TestDepthwiseConv:
    def test_no_channel_reduction(self):
        wl = depthwise_conv2d(N=1, C=8, P=6, Q=6, R=3, S=3)
        # C indexes every tensor: it can never be a reuse dimension.
        for tensor in wl.tensors:
            assert "C" in tensor.indexing_dims

    def test_ops_count(self):
        wl = depthwise_conv2d(N=2, C=8, P=6, Q=6, R=3, S=3)
        assert wl.total_operations == 2 * 8 * 6 * 6 * 3 * 3

    def test_schedulable(self):
        wl = depthwise_conv2d(N=1, C=32, P=28, Q=28, R=3, S=3)
        result = schedule(wl, conventional())
        assert result.found and result.cost.valid

    def test_weight_reused_across_spatial(self):
        wl = depthwise_conv2d(N=1, C=8, P=6, Q=6, R=3, S=3)
        info = wl.reuse_info("weight")
        assert {"N", "P", "Q"} <= info.reused_by


class TestGroupedConv:
    def test_group_dim_indexes_everything(self):
        wl = grouped_conv2d(N=1, G=4, K=4, C=4, P=6, Q=6, R=3, S=3)
        for tensor in wl.tensors:
            assert "G" in tensor.indexing_dims

    def test_trie_never_reuses_across_groups(self):
        wl = grouped_conv2d(N=1, G=4, K=4, C=4, P=6, Q=6, R=3, S=3)
        for cand in enumerate_orderings(wl):
            for _, dims in cand.outcome.full:
                assert "G" not in dims

    def test_schedulable(self):
        wl = grouped_conv2d(N=1, G=2, K=8, C=8, P=14, Q=14, R=3, S=3)
        result = schedule(wl, conventional())
        assert result.found and result.cost.valid


class TestAttention:
    def test_scores_shape(self):
        wl = attention_scores(B=2, H=4, L=64, D=32)
        assert wl.total_operations == 2 * 4 * 64 * 64 * 32
        assert wl.tensor("scores").is_output

    def test_values_shape(self):
        wl = attention_values(B=2, H=4, L=64, D=32)
        assert wl.reuse_info("out").reused_by == {"J"}

    def test_bmm(self):
        wl = batched_matmul(B=4, M=16, N=16, K=16)
        # Batch indexes all tensors: no cross-batch reuse.
        for tensor in wl.tensors:
            assert "B" in tensor.indexing_dims

    def test_attention_schedulable(self):
        wl = attention_scores(B=1, H=8, L=128, D=64)
        result = schedule(wl, conventional())
        assert result.found and result.cost.valid
        assert result.cost.utilization >= 0.5


class TestMobilenetSuite:
    def test_layer_count_and_batch(self):
        layers = mobilenet_depthwise(batch=2)
        assert len(layers) == 5
        assert all(wl.dims["N"] == 2 for wl in layers)

    def test_strided_blocks_present(self):
        layers = mobilenet_depthwise()
        strides = set()
        for wl in layers:
            for expr in wl.tensor("ifmap").indices:
                if expr.is_window:
                    strides.add(expr.stride)
        assert strides == {1, 2}
