"""Tests for the area model."""

import pytest

from repro.arch import conventional, diannao_like, simba_like, tiny
from repro.energy.area import AreaBreakdown, estimate_area, mac_area


class TestMacArea:
    def test_precision_scaling(self):
        assert mac_area(8) < mac_area(16) < mac_area(32)


class TestEstimateArea:
    def test_components_present(self):
        area = estimate_area(conventional())
        assert set(area.memories) == {"L1", "L2"}  # DRAM excluded
        assert area.compute > 0
        assert area.interconnect > 0
        assert area.total_mm2 == pytest.approx(
            sum(area.memories.values()) + area.compute + area.interconnect)

    def test_instances_multiply(self):
        # 1024 PEs: per-PE L1 area scales with the instance count.
        conv = estimate_area(conventional())
        per_pe = conv.memories["L1"] / 1024
        assert per_pe > 0
        assert conv.memories["L1"] > conv.memories["L2"] / 100

    def test_plausible_chip_sizes(self):
        # Eyeriss-class chips are a few to a few tens of mm^2 at 65-45 nm.
        for factory in (conventional, simba_like, diannao_like):
            total = estimate_area(factory()).total_mm2
            assert 0.5 < total < 200, factory.__name__

    def test_register_files_use_ff_density(self):
        simba = estimate_area(simba_like(), word_bits=8)
        # 8-entry weight regs per lane: tiny area despite 1024 instances.
        assert simba.memories["Regs"] < simba.memories["PEBuf"]

    def test_summary_renders(self):
        text = estimate_area(tiny()).summary()
        assert "total area" in text
        assert "compute" in text


class TestScalingTrends:
    def test_bigger_grid_bigger_area(self):
        small = estimate_area(tiny(pes=4)).total_mm2
        big = estimate_area(tiny(pes=64)).total_mm2
        assert big > small
