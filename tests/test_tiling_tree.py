"""Tests for the tiling search tree and the Tiling Principle (§IV-B)."""

import pytest

from repro.arch import UNIFIED, Architecture, MemoryLevel, simba_like, tiny
from repro.core import (
    TilingStats,
    divisors,
    enumerate_all_tilings,
    enumerate_tilings,
    next_divisor,
)
from repro.core.tiling_tree import placement_fits, tile_fits
from repro.workloads import conv1d, conv2d


class TestDivisors:
    def test_divisors(self):
        assert divisors(12) == (1, 2, 3, 4, 6, 12)
        assert divisors(1) == (1,)
        assert divisors(7) == (1, 7)

    def test_next_divisor(self):
        assert next_divisor(12, 1) == 2
        assert next_divisor(12, 4) == 6
        assert next_divisor(12, 12) is None

    def test_invalid(self):
        with pytest.raises(ValueError):
            divisors(0)


@pytest.fixture
def conv():
    # The paper's Fig. 5 example: K=4, P=14, C=4, R=3, unified L1.
    return conv1d(K=4, C=4, P=14, R=3)


def _arch(l1_words):
    return tiny(l1_words=l1_words, l2_words=10**9, pes=4)


class TestEnumerateTilings:
    def test_fig5_growth_dims(self, conv):
        """With xxCR ordering (ofmap reused), only P and K grow."""
        arch = _arch(64)
        tilings = enumerate_tilings(
            conv, arch, 0,
            base_sizes={d: 1 for d in conv.dims},
            remaining=dict(conv.dims),
            growth_dims=("P", "K"),
        )
        assert tilings
        for tiling in tilings:
            assert set(tiling) <= {"P", "K"}

    def test_candidates_are_maximal(self, conv):
        """No candidate can grow any growth dim and still fit (Tiling
        Principle: such a node would be dominated)."""
        arch = _arch(64)
        base = {d: 1 for d in conv.dims}
        remaining = dict(conv.dims)
        tilings = enumerate_tilings(conv, arch, 0, base, remaining,
                                    ("P", "K"))
        for tiling in tilings:
            for dim in ("P", "K"):
                bumped = next_divisor(remaining[dim], tiling.get(dim, 1))
                if bumped is None:
                    continue
                bigger = dict(tiling)
                bigger[dim] = bumped
                sizes = {d: bigger.get(d, 1) for d in conv.dims}
                assert not tile_fits(conv, arch, 0, sizes), (tiling, dim)

    def test_candidates_fit(self, conv):
        arch = _arch(64)
        tilings = enumerate_tilings(
            conv, arch, 0, {d: 1 for d in conv.dims}, dict(conv.dims),
            ("P", "K"),
        )
        for tiling in tilings:
            sizes = {d: tiling.get(d, 1) for d in conv.dims}
            assert tile_fits(conv, arch, 0, sizes)

    def test_tiny_capacity_yields_minimal_or_nothing(self, conv):
        arch = _arch(4)  # can't hold even a 1-element tile of each tensor?
        tilings = enumerate_tilings(
            conv, arch, 0, {d: 1 for d in conv.dims}, dict(conv.dims),
            ("P", "K"),
        )
        # minimal tile: ofmap 1 + weight 1 + ifmap 1 = 3 <= 4 fits, but
        # nothing can grow: the only candidate is all-ones.
        assert tilings == [{"P": 1, "K": 1}]

    def test_impossible_capacity_returns_empty(self, conv):
        arch = _arch(2)
        tilings = enumerate_tilings(
            conv, arch, 0, {d: 1 for d in conv.dims}, dict(conv.dims),
            ("P", "K"),
        )
        assert tilings == []

    def test_base_sizes_respected(self, conv):
        arch = _arch(64)
        base = {"K": 2, "C": 2, "P": 1, "R": 3}
        tilings = enumerate_tilings(conv, arch, 0, base,
                                    {"K": 2, "C": 2, "P": 14, "R": 1},
                                    ("P", "K"))
        for tiling in tilings:
            sizes = {d: base[d] * tiling.get(d, 1) for d in conv.dims}
            assert tile_fits(conv, arch, 0, sizes)

    def test_stats_accounting(self, conv):
        arch = _arch(64)
        stats = TilingStats()
        enumerate_tilings(conv, arch, 0, {d: 1 for d in conv.dims},
                          dict(conv.dims), ("P", "K"), stats=stats)
        assert stats.nodes_visited > stats.candidates
        assert stats.nodes_pruned_dominated > 0

    def test_max_candidates_cap(self, conv):
        arch = _arch(64)
        tilings = enumerate_tilings(
            conv, arch, 0, {d: 1 for d in conv.dims}, dict(conv.dims),
            ("P", "K", "C", "R"), max_candidates=1,
        )
        assert len(tilings) == 1

    def test_pruned_smaller_than_unpruned(self, conv):
        arch = _arch(64)
        pruned_stats = TilingStats()
        enumerate_tilings(conv, arch, 0, {d: 1 for d in conv.dims},
                          dict(conv.dims), ("P", "K"), stats=pruned_stats)
        full_stats = TilingStats()
        enumerate_all_tilings(conv, arch, 0, {d: 1 for d in conv.dims},
                              dict(conv.dims), stats=full_stats)
        assert pruned_stats.candidates < full_stats.candidates


class TestTileFits:
    def test_bypassed_tensor_charged_upstream(self):
        """Growing dims that only touch bypassed tensors must still be
        bounded by the upstream buffer that stores them."""
        arch = simba_like()
        wl = conv2d(N=16, K=8, C=8, P=14, Q=14, R=3, S=3)
        # Regs (level 0) store only weights; a tile spanning all of N/P/Q
        # implies an ofmap tile of 16*14*14 = 3136 > the 1024-word PEBuf.
        sizes = {"N": 16, "K": 1, "C": 1, "P": 14, "Q": 14, "R": 1, "S": 1}
        assert not tile_fits(wl, arch, 0, sizes)
        small = {"N": 1, "K": 1, "C": 1, "P": 2, "Q": 2, "R": 1, "S": 1}
        assert tile_fits(wl, arch, 0, small)

    def test_unbounded_top_always_fits(self, conv):
        arch = _arch(64)
        sizes = dict(conv.dims)
        assert tile_fits(conv, arch, 2, sizes)


class TestPlacementFits:
    def test_spatial_factors_charge_bypassed_homes(self):
        arch = simba_like()
        wl = conv2d(N=16, K=64, C=64, P=14, Q=14, R=3, S=3)
        sizes = {"N": 4, "K": 8, "C": 1, "P": 4, "Q": 4, "R": 1, "S": 1}
        # ofmap home is the PEBuf; without spatial factors the tile fits...
        assert placement_fits(wl, arch, 0, sizes, {})
        # ...but unrolling K by 8 multiplies the PEBuf ofmap tile to
        # 4*64*4*4 = 4096 > 1024 words.
        assert not placement_fits(wl, arch, 0, sizes, {"K": 8})

    def test_spatial_on_stored_tensor_dims_is_free(self, conv):
        arch = _arch(16)
        sizes = {"K": 1, "C": 1, "P": 8, "R": 1}
        # P is partitioned across PEs; each L1 instance holds only its
        # share, so the check at the storing level uses sizes as-is.
        assert placement_fits(conv, arch, 0, sizes, {"P": 2}) == \
            placement_fits(conv, arch, 0, sizes, {})
