"""Tests for the JSON model importer."""

import json

import pytest

from repro.arch import conventional
from repro.core import schedule_network
from repro.workloads.importer import (
    SUPPORTED_LAYER_TYPES,
    ModelFormatError,
    layer_from_record,
    load_model,
    model_from_dict,
)


class TestLayerFromRecord:
    def test_conv2d(self):
        wl = layer_from_record({
            "type": "conv2d", "name": "x",
            "dims": {"N": 1, "K": 8, "C": 4, "P": 6, "Q": 6, "R": 3, "S": 3},
            "stride": 2,
        })
        assert wl.name == "x"
        assert wl.dims["K"] == 8
        # Stride applied: ifmap extent is (6-1)*2 + 3 = 13 per axis.
        assert wl.tensor_size("ifmap") == 4 * 13 * 13

    def test_fc(self):
        wl = layer_from_record({"type": "fc",
                                "dims": {"N": 2, "K": 10, "C": 64}})
        assert wl.total_operations == 2 * 10 * 64

    def test_unknown_type(self):
        with pytest.raises(ModelFormatError, match="unknown layer type"):
            layer_from_record({"type": "fft", "dims": {}})

    def test_missing_dims(self):
        with pytest.raises(ModelFormatError, match="missing dimensions"):
            layer_from_record({"type": "fc", "dims": {"N": 1}})

    def test_missing_type(self):
        with pytest.raises(ModelFormatError, match="missing 'type'"):
            layer_from_record({"dims": {}})

    def test_all_types_constructible(self):
        samples = {
            "conv1d": {"K": 2, "C": 2, "P": 4, "R": 2},
            "conv2d": {"N": 1, "K": 2, "C": 2, "P": 4, "Q": 4, "R": 2,
                       "S": 2},
            "dwconv2d": {"N": 1, "C": 2, "P": 4, "Q": 4, "R": 2, "S": 2},
            "gconv2d": {"N": 1, "G": 2, "K": 2, "C": 2, "P": 4, "Q": 4,
                        "R": 2, "S": 2},
            "fc": {"N": 1, "K": 2, "C": 2},
            "bmm": {"B": 2, "M": 2, "N": 2, "K": 2},
            "attn_qk": {"B": 1, "H": 2, "L": 4, "D": 2},
            "attn_av": {"B": 1, "H": 2, "L": 4, "D": 2},
            "mttkrp": {"I": 2, "K": 2, "L": 2, "J": 2},
            "sddmm": {"I": 2, "J": 2, "K": 2},
            "ttmc": {"I": 2, "J": 2, "K": 2, "L": 2, "M": 2},
            "mmc": {"I": 2, "J": 2, "K": 2, "L": 2},
            "tcl": {"I": 2, "J": 2, "K": 2, "L": 2, "M": 2, "N": 2},
        }
        assert set(samples) == set(SUPPORTED_LAYER_TYPES)
        for layer_type, dims in samples.items():
            wl = layer_from_record({"type": layer_type, "dims": dims})
            assert wl.total_operations > 0


class TestModelDocuments:
    def test_repeat_expansion(self):
        model = model_from_dict({"layers": [
            {"type": "fc", "dims": {"N": 1, "K": 4, "C": 4}, "repeat": 3},
        ]})
        assert len(model) == 3
        assert model[0] is model[1]  # same workload object: dedupe-friendly

    def test_empty_rejected(self):
        with pytest.raises(ModelFormatError, match="non-empty"):
            model_from_dict({"layers": []})

    def test_bad_repeat(self):
        with pytest.raises(ModelFormatError, match="repeat"):
            model_from_dict({"layers": [
                {"type": "fc", "dims": {"N": 1, "K": 4, "C": 4},
                 "repeat": 0},
            ]})

    def test_load_sample_resnet_config(self):
        model = load_model("configs/resnet18.json")
        # 1 + 4 + 1 + 3 + 1 + 3 + 1 + 3 + 1 = 18 layers.
        assert len(model) == 18
        assert model[0].name == "conv1"
        assert model[-1].name == "fc1000"

    def test_imported_model_schedules_with_dedup(self, tmp_path):
        doc = {"layers": [
            {"type": "fc", "name": "a", "dims": {"N": 1, "K": 8, "C": 16},
             "repeat": 2},
            {"type": "fc", "name": "b", "dims": {"N": 1, "K": 16, "C": 8}},
        ]}
        path = tmp_path / "model.json"
        path.write_text(json.dumps(doc))
        model = load_model(str(path))
        net = schedule_network(model, conventional())
        assert net.all_found
        assert net.unique_searches == 2
