"""Ground-truth validation: analytical model vs loop-nest interpreter.

For temporal-only mappings the analytical fill counts (partial_reuse=False)
must equal exactly what a brute-force interpretation of the nest observes.
Hypothesis drives random small workloads, tilings and orders.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import UNIFIED, Architecture, MemoryLevel
from repro.mapping import build_mapping
from repro.model import count_accesses, simulate_fills
from repro.workloads import conv1d, make_workload, mttkrp


def _unbounded_arch(levels: int = 3) -> Architecture:
    """All-unbounded-capacity-ish arch so any tiling is valid in tests."""
    mems = [
        MemoryLevel(f"M{i}", {UNIFIED: 10**9}, read_energy=1.0,
                    write_energy=1.0)
        for i in range(levels - 1)
    ]
    mems.append(MemoryLevel("DRAM", None, read_energy=10.0, write_energy=10.0))
    return Architecture("test", mems)


def _check_against_reference(workload, mapping):
    """The interpreter counts tile-change events per (tensor, child level).

    For inputs that equals the words written into the child (fills); for
    outputs it equals the words drained up into the parent (the child-side
    read count additionally contains compute-side RMW traffic).
    """
    reference = simulate_fills(mapping)
    counts = count_accesses(mapping, partial_reuse=False)
    arch = mapping.arch
    for (tensor_name, child), ref_words in reference.fill_words.items():
        tensor = workload.tensor(tensor_name)
        parent = arch.parent_storage(child, tensor.role)
        volume = counts.per_tensor[tensor_name].pair(child, parent)
        # The interpreter counts tile changes: drains for outputs, fills
        # for inputs (it does not model accumulation read-backs).
        model_words = volume.parent_side if tensor.is_output \
            else volume.child_side
        assert model_words == ref_words, (tensor_name, child)


class TestReferenceHandChecked:
    def test_paper_example(self):
        wl = conv1d(K=4, C=4, P=14, R=3)
        arch = _unbounded_arch()
        m = build_mapping(
            wl, arch,
            temporal=[{"P": 7, "K": 2, "C": 2, "R": 3},
                      {"P": 2, "K": 2, "C": 2}, {}],
            orders=[["P", "K", "C", "R"], ["P", "K", "C"], []],
        )
        _check_against_reference(wl, m)

    def test_mttkrp(self):
        wl = mttkrp(I=4, K=4, L=4, J=2)
        arch = _unbounded_arch()
        m = build_mapping(
            wl, arch,
            temporal=[{"I": 2, "J": 2}, {"K": 2, "L": 4}, {}],
            orders=[["I", "J"], ["L", "K"], []],
        )
        _check_against_reference(wl, m)

    def test_reference_rejects_spatial(self):
        wl = conv1d(K=2, C=2, P=4, R=1)
        arch = Architecture("s", [
            MemoryLevel("L1", {UNIFIED: 10**9}, fanout=2),
            MemoryLevel("DRAM", None),
        ])
        m = build_mapping(wl, arch, temporal=[{}, {}], spatial=[{"K": 2}, {}])
        with pytest.raises(ValueError, match="spatial"):
            simulate_fills(m)


# ---------------------------------------------------------------------------
# Property-based equivalence
# ---------------------------------------------------------------------------

_DIM_SIZES = st.sampled_from([1, 2, 3, 4, 6])


@st.composite
def _small_problem(draw):
    """A random small matmul-like or conv-like workload plus a 3-level
    temporal mapping."""
    kind = draw(st.sampled_from(["matmul", "conv", "mttkrp"]))
    if kind == "matmul":
        dims = {"I": draw(_DIM_SIZES), "J": draw(_DIM_SIZES),
                "K": draw(_DIM_SIZES)}
        wl = make_workload(
            "mm", dims,
            {"A": ["I", "K"], "B": ["K", "J"], "out": ["I", "J"]},
            outputs=["out"],
        )
    elif kind == "conv":
        dims = {"K": draw(_DIM_SIZES), "C": draw(_DIM_SIZES),
                "P": draw(_DIM_SIZES), "R": draw(st.sampled_from([1, 2, 3]))}
        wl = conv1d(**dims)
    else:
        wl = mttkrp(I=draw(_DIM_SIZES), K=draw(_DIM_SIZES),
                    L=draw(_DIM_SIZES), J=draw(_DIM_SIZES))

    # Random 2-way split of every dim between L0 and L1 (residual to DRAM).
    temporal = [{}, {}, {}]
    for dim, size in wl.dims.items():
        divs = [d for d in range(1, size + 1) if size % d == 0]
        lo = draw(st.sampled_from(divs))
        temporal[0][dim] = lo
        rem = size // lo
        divs2 = [d for d in range(1, rem + 1) if rem % d == 0]
        temporal[1][dim] = draw(st.sampled_from(divs2))

    orders = []
    for _ in range(3):
        order = list(wl.dim_names)
        order = draw(st.permutations(order))
        orders.append(list(order))
    return wl, temporal, orders


@given(_small_problem())
@settings(max_examples=60, deadline=None)
def test_model_matches_interpreter(problem):
    wl, temporal, orders = problem
    arch = _unbounded_arch()
    mapping = build_mapping(wl, arch, temporal=temporal, orders=orders)
    _check_against_reference(wl, mapping)


@given(_small_problem())
@settings(max_examples=30, deadline=None)
def test_partial_reuse_is_a_refinement(problem):
    """Partial (window) reuse can only reduce traffic, never add it."""
    wl, temporal, orders = problem
    arch = _unbounded_arch()
    mapping = build_mapping(wl, arch, temporal=temporal, orders=orders)
    naive = count_accesses(mapping, partial_reuse=False)
    partial = count_accesses(mapping, partial_reuse=True)
    for i in range(arch.num_levels):
        assert partial.levels[i].total <= naive.levels[i].total + 1e-9


@given(_small_problem())
@settings(max_examples=30, deadline=None)
def test_fills_bounded_by_distinct_tiles_and_total(problem):
    """Sanity bounds: every tensor is read at least its size and at most
    once per operation from the innermost level."""
    wl, temporal, orders = problem
    arch = _unbounded_arch()
    mapping = build_mapping(wl, arch, temporal=temporal, orders=orders)
    counts = count_accesses(mapping, partial_reuse=False)
    for tensor in wl.tensors:
        inner = counts.per_tensor[tensor.name].at(0)
        assert inner.reads >= 0
        top = counts.per_tensor[tensor.name].at(2)
        if tensor.is_output:
            assert top.writes >= wl.tensor_size(tensor.name)
        else:
            assert top.reads >= wl.tensor_size(tensor.name)
