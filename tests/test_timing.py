"""Tests for the double-buffered pipeline latency model."""

import pytest

from repro.arch import conventional, tiny
from repro.core import schedule
from repro.mapping import build_mapping
from repro.model import analyze_timing, evaluate
from repro.workloads import conv1d, conv2d


@pytest.fixture
def mapping():
    wl = conv1d(K=4, C=4, P=14, R=3)
    arch = tiny(l1_words=64, l2_words=2048, pes=4).with_level(
        "DRAM", read_bandwidth=4, write_bandwidth=4,
    ).with_level(
        "L2", read_bandwidth=16, write_bandwidth=16,
    ).with_level(
        "L1", read_bandwidth=8, write_bandwidth=8,
    )
    return build_mapping(
        wl, arch,
        temporal=[{"P": 7, "K": 2, "C": 2, "R": 3}, {"P": 2, "K": 2, "C": 2}, {}],
        orders=[["P", "K", "C", "R"], ["P", "K", "C"], []],
    )


class TestBrackets:
    def test_refined_between_steady_and_serialized(self, mapping):
        timing = analyze_timing(mapping)
        assert timing.steady_state_cycles <= timing.refined_cycles
        assert timing.refined_cycles <= timing.serialized_cycles

    def test_steady_state_matches_cost_model(self, mapping):
        timing = analyze_timing(mapping)
        cost = evaluate(mapping)
        assert timing.steady_state_cycles == pytest.approx(cost.cycles)

    def test_overlap_efficiency_bounded(self, mapping):
        timing = analyze_timing(mapping)
        assert 0.0 < timing.overlap_efficiency <= 1.0

    def test_compute_cycles_component(self, mapping):
        timing = analyze_timing(mapping)
        assert timing.compute_cycles <= timing.steady_state_cycles
        assert set(timing.per_level_transfer_cycles) == {"L1", "L2", "DRAM"}


class TestBandwidthSensitivity:
    def test_slower_dram_increases_refined_latency(self):
        wl = conv2d(N=1, K=16, C=16, P=14, Q=14, R=3, S=3)
        arch_fast = conventional()
        arch_slow = arch_fast.with_level("DRAM", read_bandwidth=0.5,
                                         write_bandwidth=0.5)
        m_fast = build_mapping(wl, arch_fast,
                               temporal=[{"K": 4, "C": 4, "R": 3, "S": 3},
                                         {"P": 14, "Q": 14}, {}])
        m_slow = build_mapping(wl, arch_slow,
                               temporal=[{"K": 4, "C": 4, "R": 3, "S": 3},
                                         {"P": 14, "Q": 14}, {}])
        assert analyze_timing(m_slow).refined_cycles > \
            analyze_timing(m_fast).refined_cycles

    def test_infinite_bandwidth_is_compute_bound(self):
        wl = conv1d(K=4, C=4, P=14, R=3)
        arch = tiny(l1_words=64, l2_words=2048, pes=4)
        m = build_mapping(wl, arch, temporal=[{"P": 7, "R": 3}, {"K": 2}, {}])
        timing = analyze_timing(m)
        assert timing.steady_state_cycles == pytest.approx(
            timing.compute_cycles)

    def test_scheduled_mapping_timing(self):
        wl = conv2d(N=1, K=32, C=32, P=14, Q=14, R=3, S=3)
        result = schedule(wl, conventional())
        timing = analyze_timing(result.mapping)
        assert timing.refined_cycles >= result.cost.cycles
        # With the paper's bandwidths the fill term is minor.
        assert timing.overlap_efficiency > 0.5
