"""Property-based round-trip tests for the serialisation layer."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import UNIFIED, Architecture, MemoryLevel
from repro.mapping import build_mapping
from repro.mapping.serialize import (
    architecture_from_dict,
    architecture_to_dict,
    mapping_from_dict,
    mapping_to_dict,
    workload_from_dict,
    workload_to_dict,
)
from repro.model import evaluate
from repro.workloads import IndexExpr, TensorRef, Workload

_SIZES = st.integers(min_value=1, max_value=8)
_NAMES = st.sampled_from(["A", "B", "C", "D"])


@st.composite
def _workloads(draw):
    n_dims = draw(st.integers(min_value=2, max_value=4))
    dim_names = ["I", "J", "K", "L"][:n_dims]
    dims = {d: draw(_SIZES) for d in dim_names}
    window = draw(st.booleans()) and n_dims >= 3
    tensors = []
    if window:
        stride = draw(st.sampled_from([1, 2]))
        tensors.append(TensorRef(
            "in0",
            (IndexExpr((dim_names[0], dim_names[1]), stride=stride),
             *(IndexExpr((d,)) for d in dim_names[2:])),
        ))
        out_dims = [dim_names[0], *dim_names[2:]]
    else:
        tensors.append(TensorRef(
            "in0", tuple(IndexExpr((d,)) for d in dim_names[:-1]),
        ))
        out_dims = dim_names[1:]
    tensors.append(TensorRef(
        "in1", tuple(IndexExpr((d,)) for d in dim_names[1:]),
    ))
    tensors.append(TensorRef(
        "out", tuple(IndexExpr((d,)) for d in out_dims), is_output=True,
    ))
    return Workload("prop", dims, tensors)


@st.composite
def _architectures(draw):
    levels = []
    n_bounded = draw(st.integers(min_value=1, max_value=3))
    for i in range(n_bounded):
        levels.append(MemoryLevel(
            name=f"M{i}",
            capacity_words={UNIFIED: draw(st.integers(8, 4096))},
            fanout=draw(st.sampled_from([1, 2, 4])) if i == 0 else 1,
            read_energy=draw(st.floats(0.1, 10.0)),
            write_energy=draw(st.floats(0.1, 10.0)),
            read_bandwidth=draw(st.sampled_from([4.0, 16.0,
                                                 float("inf")])),
        ))
    levels.append(MemoryLevel("DRAM", None, read_energy=100.0,
                              write_energy=100.0))
    return Architecture("prop-arch", levels,
                        mac_energy=draw(st.floats(0.1, 4.0)))


@given(_workloads())
@settings(max_examples=40, deadline=None)
def test_workload_roundtrip(wl):
    document = json.loads(json.dumps(workload_to_dict(wl)))
    restored = workload_from_dict(document)
    assert restored.dims == wl.dims
    assert restored.reuse_table() == wl.reuse_table()
    for a, b in zip(restored.tensors, wl.tensors):
        assert a == b


@given(_architectures())
@settings(max_examples=40, deadline=None)
def test_architecture_roundtrip(arch):
    document = json.loads(json.dumps(architecture_to_dict(arch)))
    restored = architecture_from_dict(document)
    assert restored.num_levels == arch.num_levels
    for a, b in zip(restored.levels, arch.levels):
        assert a == b
    assert restored.mac_energy == arch.mac_energy


@given(_workloads(), _architectures())
@settings(max_examples=25, deadline=None)
def test_mapping_roundtrip_preserves_cost(wl, arch):
    mapping = build_mapping(wl, arch,
                            temporal=[dict(wl.dims)]
                            + [{} for _ in range(arch.num_levels - 1)])
    document = json.loads(json.dumps(mapping_to_dict(mapping)))
    restored = mapping_from_dict(document)
    original = evaluate(mapping)
    roundtripped = evaluate(restored)
    assert roundtripped.energy_pj == original.energy_pj
    assert roundtripped.cycles == original.cycles
    assert roundtripped.valid == original.valid
