"""Behavioural guarantees of the sparse cost model.

* **Dense identity** (metamorphic): a density-1.0 spec — whatever format
  or action it declares — yields output bit-identical to the dense model,
  for every mapper and every (workers, cache) engine setting.
* **Monotonicity** (property): sparse traffic, energy and latency are
  monotonically non-decreasing in density (seeded hypothesis, in the
  style of ``tests/test_fingerprint_properties.py``).
* **Mapping shift** (acceptance): on SDDMM with a genuinely sparse
  sampling matrix, scheduling *with* the sparse model finds a mapping
  whose modelled energy beats the dense-model choice.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import tiny
from repro.baselines import (
    cosa_search,
    dmazerunner_search,
    exhaustive_search,
    interstellar_search,
    timeloop_search,
)
from repro.baselines.gamma import GammaConfig, gamma_search
from repro.baselines.random_search import TimeloopConfig
from repro.core import SchedulerOptions, schedule
from repro.model import evaluate
from repro.sparse import (
    Banded,
    SparsitySpec,
    TensorSparsity,
    Uniform,
    traffic_scale,
)
from repro.workloads import mmc, sddmm

_SETTINGS = dict(max_examples=60, deadline=None, derandomize=True)

ARCH = tiny()
WORKLOAD = mmc(I=8, J=8, K=8, L=8)

#: Degenerate density-1.0 specs: every format x action combination that a
#: user could declare without actually being sparse.
DENSE_SPECS = [
    SparsitySpec.of({
        "A": TensorSparsity(Uniform(1.0), format=fmt, action=action),
        "B": TensorSparsity(Banded(1.0, cluster=4.0), format=fmt),
    })
    for fmt in ("uncompressed", "bitmask", "rle", "coordinate")
    for action in ("none", "gating", "skipping")
]


def _cost_tuple(result):
    cost = result.cost
    return (cost.energy_pj, cost.cycles, cost.valid, str(result.mapping))


MAPPERS = {
    "sunstone": lambda spec: schedule(
        WORKLOAD, ARCH, SchedulerOptions(sparsity=spec)),
    "timeloop": lambda spec: timeloop_search(
        WORKLOAD, ARCH, TimeloopConfig(timeout=400, victory_condition=25),
        sparsity=spec),
    "dmazerunner": lambda spec: dmazerunner_search(
        WORKLOAD, ARCH, sparsity=spec),
    "interstellar": lambda spec: interstellar_search(
        WORKLOAD, ARCH, sparsity=spec),
    "cosa": lambda spec: cosa_search(WORKLOAD, ARCH, sparsity=spec),
    "gamma": lambda spec: gamma_search(
        WORKLOAD, ARCH, GammaConfig(population=16, generations=4),
        sparsity=spec),
    "exhaustive": lambda spec: exhaustive_search(
        mmc(I=2, J=2, K=2, L=2), ARCH, max_evaluations=10_000,
        orders_per_level=1, sparsity=spec),
}


class TestDenseIdentity:
    """density == 1.0 must be bit-identical to no spec at all."""

    @pytest.mark.parametrize("mapper", sorted(MAPPERS))
    def test_every_mapper_is_bit_identical(self, mapper):
        run = MAPPERS[mapper]
        baseline = _cost_tuple(run(None))
        # One representative degenerate spec per mapper keeps this fast;
        # the full format x action sweep runs through evaluate() below.
        assert _cost_tuple(run(DENSE_SPECS[-1])) == baseline, mapper

    @pytest.mark.parametrize("spec", DENSE_SPECS,
                             ids=[s.describe() for s in DENSE_SPECS])
    def test_every_degenerate_spec_is_bit_identical(self, spec):
        dense = schedule(WORKLOAD, ARCH)
        mapping = dense.mapping
        base = evaluate(mapping)
        got = evaluate(mapping, sparsity=spec)
        assert (got.energy_pj, got.cycles) == (base.energy_pj, base.cycles)
        assert got.valid == base.valid
        assert got.level_energy == base.level_energy
        assert got.noc_energy == base.noc_energy

    @pytest.mark.parametrize("workers,cache",
                             [(1, True), (1, False), (2, True), (2, False)])
    def test_identity_holds_for_every_engine_setting(self, workers, cache):
        baseline = _cost_tuple(schedule(WORKLOAD, ARCH))
        options = SchedulerOptions(workers=workers, cache=cache,
                                   sparsity=DENSE_SPECS[0])
        assert _cost_tuple(schedule(WORKLOAD, ARCH, options)) == baseline

    def test_sparsity_never_changes_validity(self):
        spec = SparsitySpec.from_densities({"A": 0.01})
        result = schedule(WORKLOAD, ARCH)
        dense_eval = evaluate(result.mapping)
        sparse_eval = evaluate(result.mapping, sparsity=spec)
        assert sparse_eval.valid == dense_eval.valid
        assert sparse_eval.violations == dense_eval.violations


# ---------------------------------------------------------------------------
# Monotonicity in density
# ---------------------------------------------------------------------------

_DENSITIES = st.floats(min_value=0.001, max_value=1.0, allow_nan=False)
_TILES = st.sampled_from([1, 2, 7, 32, 256, 4096])
_FORMATS = st.sampled_from(["uncompressed", "bitmask", "rle",
                            "coordinate", "csr"])
_ACTIONS = st.sampled_from(["none", "gating", "skipping"])
_CLUSTERS = st.sampled_from([None, 2.0, 4.0, 8.0])


def _entry(p, cluster, fmt, action):
    model = Banded(p, cluster) if cluster is not None else Uniform(p)
    return TensorSparsity(model, format=fmt, action=action)


@given(p1=_DENSITIES, p2=_DENSITIES, n=_TILES, fmt=_FORMATS,
       action=_ACTIONS, cluster=_CLUSTERS)
@settings(**_SETTINGS)
def test_traffic_scale_monotone_in_density(p1, p2, n, fmt, action, cluster):
    lo, hi = sorted((p1, p2))
    scale_lo = traffic_scale(_entry(lo, cluster, fmt, action), n)
    scale_hi = traffic_scale(_entry(hi, cluster, fmt, action), n)
    assert scale_lo <= scale_hi + 1e-12
    assert 0.0 <= scale_lo <= 1.0 and scale_hi <= 1.0


@given(p1=_DENSITIES, p2=_DENSITIES, fmt=_FORMATS, action=_ACTIONS,
       cluster=_CLUSTERS)
@settings(max_examples=25, deadline=None, derandomize=True)
def test_energy_and_latency_monotone_in_density(p1, p2, fmt, action,
                                                cluster):
    lo, hi = sorted((p1, p2))
    mapping = schedule(WORKLOAD, ARCH).mapping
    costs = [
        evaluate(mapping, sparsity=SparsitySpec.of({
            "A": _entry(p, cluster, fmt, action),
        }))
        for p in (lo, hi)
    ]
    assert costs[0].energy_pj <= costs[1].energy_pj * (1 + 1e-12)
    assert costs[0].cycles <= costs[1].cycles * (1 + 1e-12)


def test_density_one_is_the_dense_ceiling():
    mapping = schedule(WORKLOAD, ARCH).mapping
    dense = evaluate(mapping)
    spec = SparsitySpec.of({
        "A": TensorSparsity(Uniform(0.05), format="coordinate",
                            action="skipping"),
    })
    sparse = evaluate(mapping, sparsity=spec)
    assert sparse.energy_pj < dense.energy_pj
    assert sparse.cycles <= dense.cycles


# ---------------------------------------------------------------------------
# The sparse model changes which mapping wins (SDDMM acceptance)
# ---------------------------------------------------------------------------


def test_sparse_model_shifts_the_sddmm_mapping():
    """Scheduling *with* the sparse model must beat the dense-model
    choice when the modelled sparsity is real (ISSUE acceptance)."""
    workload = sddmm(I=64, J=64, K=16, name="sddmm_small")
    spec = SparsitySpec.of({
        "A": TensorSparsity(Banded(0.01, cluster=8.0), format="rle",
                            action="skipping"),
        "out": TensorSparsity(Banded(0.01, cluster=8.0), format="rle"),
    })
    dense_choice = schedule(workload, ARCH,
                            SchedulerOptions(objective="energy"))
    sparse_choice = schedule(workload, ARCH,
                             SchedulerOptions(sparsity=spec,
                                              objective="energy"))
    assert dense_choice.found and sparse_choice.found
    dense_under_sparse = evaluate(dense_choice.mapping, sparsity=spec)
    assert sparse_choice.cost.energy_pj < dense_under_sparse.energy_pj
