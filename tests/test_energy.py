"""Tests for the Accelergy/Cacti-style energy models."""

import pytest

from repro.energy import (
    EnergyTable,
    NocModel,
    dram_energy,
    mac_energy,
    regfile_energy,
    sram_estimate,
)


class TestCacti:
    def test_energy_grows_with_capacity(self):
        small = sram_estimate(512, 16)
        big = sram_estimate(512 * 1024, 16)
        assert small.read_energy < big.read_energy

    def test_energy_grows_with_width(self):
        narrow = sram_estimate(32 * 1024, 8)
        wide = sram_estimate(32 * 1024, 32)
        assert narrow.read_energy < wide.read_energy

    def test_writes_cost_more_than_reads(self):
        est = sram_estimate(32 * 1024, 16)
        assert est.write_energy > est.read_energy

    def test_banking_reduces_energy(self):
        flat = sram_estimate(1024 * 1024, 16, banks=1)
        banked = sram_estimate(1024 * 1024, 16, banks=16)
        assert banked.read_energy < flat.read_energy

    def test_published_anchor_points(self):
        # Roughly the Eyeriss-era hierarchy: spad ~0.5 pJ, GB ~10-20 pJ.
        spad = sram_estimate(512, 16).read_energy
        glb = sram_estimate(3 * 1024 * 1024, 16).read_energy
        assert 0.2 < spad < 1.5
        assert 5.0 < glb < 40.0
        assert dram_energy(16) / glb > 5  # DRAM dominates on-chip by far

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            sram_estimate(0, 16)
        with pytest.raises(ValueError):
            sram_estimate(64, 0)
        with pytest.raises(ValueError):
            sram_estimate(64, 16, banks=0)
        with pytest.raises(ValueError):
            regfile_energy(0)

    def test_regfile_cheaper_than_sram(self):
        reg_read, _ = regfile_energy(8, word_bits=8)
        assert reg_read < sram_estimate(1024, 8).read_energy


class TestMacAndDram:
    def test_mac_precision_scaling(self):
        assert mac_energy(8) < mac_energy(16) < mac_energy(32)

    def test_dram_width_scaling(self):
        assert dram_energy(8) == pytest.approx(dram_energy(16) / 2)


class TestEnergyTable:
    def test_define_and_lookup(self):
        table = EnergyTable()
        table.define("L1", "read", 1.5)
        assert table.energy("L1", "read") == 1.5

    def test_unknown_action_raises(self):
        table = EnergyTable()
        with pytest.raises(KeyError):
            table.energy("L1", "read")

    def test_negative_energy_rejected(self):
        table = EnergyTable()
        with pytest.raises(ValueError):
            table.define("L1", "read", -1.0)

    def test_cost_of_counts(self):
        table = EnergyTable()
        table.define("L1", "read", 2.0)
        table.define("L1", "write", 3.0)
        assert table.cost({"L1.read": 10, "L1.write": 1}) == 23.0

    def test_component_helpers(self):
        table = EnergyTable()
        table.define_sram("L2", 64 * 1024, 16)
        table.define_regfile("RF", 8, 8)
        table.define_dram()
        table.define_mac()
        assert table.energy("L2", "read") > table.energy("RF", "read")
        assert table.energy("DRAM", "read") > table.energy("L2", "read")
        assert table.energy("MAC", "compute") > 0


class TestNoc:
    def test_multicast_cheaper_than_repeated_unicast(self):
        noc = NocModel((8, 8), word_bits=16)
        assert noc.multicast_energy(16) < 16 * noc.unicast_energy()

    def test_multicast_monotone_in_destinations(self):
        noc = NocModel((8, 8))
        assert noc.multicast_energy(2) <= noc.multicast_energy(32)

    def test_destinations_capped_at_fanout(self):
        noc = NocModel((4, 4))
        assert noc.multicast_energy(16) == noc.multicast_energy(1000)

    def test_transfer_energy(self):
        noc = NocModel((4, 4))
        assert noc.transfer_energy(10, 4) == pytest.approx(
            10 * noc.multicast_energy(4))

    def test_invalid_inputs(self):
        noc = NocModel((4, 4))
        with pytest.raises(ValueError):
            noc.multicast_energy(0)
        with pytest.raises(ValueError):
            noc.transfer_energy(-1, 2)
