"""Tests for the Sunstone scheduler (§III-C, §V-C)."""

import pytest

from repro.arch import UNIFIED, Architecture, MemoryLevel, conventional, simba_like, tiny
from repro.baselines import exhaustive_search
from repro.core import (
    INTRA_LEVEL_ORDERS,
    SchedulerOptions,
    SunstoneScheduler,
    schedule,
)
from repro.workloads import RESNET18_LAYERS, conv1d, conv2d, mttkrp

# ``small_conv`` / ``small_arch`` fixtures come from tests/conftest.py
# (built by tests/harness.py, shared with the batch-generation suite).


class TestBasics:
    def test_finds_valid_mapping(self, small_conv, small_arch):
        result = schedule(small_conv, small_arch)
        assert result.found
        assert result.cost.valid
        assert result.mapping.is_valid

    def test_factor_products_hold(self, small_conv, small_arch):
        result = schedule(small_conv, small_arch)
        for dim, size in small_conv.dims.items():
            product = 1
            for lvl in result.mapping.levels:
                product *= lvl.temporal_factor(dim) * lvl.spatial_factor(dim)
            assert product == size

    def test_stats_recorded(self, small_conv, small_arch):
        result = schedule(small_conv, small_arch)
        assert result.stats.evaluations > 0
        assert result.stats.wall_time_s > 0
        assert result.stats.trie.candidates > 0

    def test_uses_parallelism(self, small_conv, small_arch):
        result = schedule(small_conv, small_arch)
        assert result.mapping.used_lanes() > 1

    def test_energy_objective(self, small_conv, small_arch):
        edp_result = schedule(small_conv, small_arch)
        energy_result = schedule(
            small_conv, small_arch, SchedulerOptions(objective="energy"))
        assert energy_result.energy_pj <= edp_result.energy_pj * 1.001

    def test_not_found_when_impossible(self, small_conv):
        impossible = tiny(l1_words=2, l2_words=3, pes=4)
        result = schedule(small_conv, impossible)
        assert not result.found


class TestOptionsValidation:
    def test_bad_objective(self):
        with pytest.raises(ValueError):
            SchedulerOptions(objective="speed")

    def test_bad_direction(self):
        with pytest.raises(ValueError):
            SchedulerOptions(direction="sideways")

    def test_bad_intra_order(self):
        with pytest.raises(ValueError):
            SchedulerOptions(intra_level_order="upside-down")

    def test_bad_slack(self):
        with pytest.raises(ValueError):
            SchedulerOptions(alpha_slack=0.5)


class TestVsExhaustiveOracle:
    """Sunstone's pruning must not reject all optimal mappings."""

    def test_matches_oracle_on_tiny_problem(self):
        wl = conv1d(K=2, C=2, P=4, R=2)
        arch = Architecture("oracle-arch", [
            MemoryLevel("L1", {UNIFIED: 16}, fanout=2, read_energy=1.0,
                        write_energy=1.0),
            MemoryLevel("DRAM", None, read_energy=50.0, write_energy=50.0),
        ], mac_energy=0.5)
        oracle = exhaustive_search(wl, arch, max_evaluations=2_000_000,
                                   orders_per_level=24)
        sunstone = schedule(wl, arch, SchedulerOptions(
            alpha_slack=3.0, beam_width=256))
        assert oracle.found and sunstone.found
        # Sunstone's pruned search finds a mapping of equal quality.
        assert sunstone.edp <= oracle.edp * 1.0001

    def test_matches_oracle_matmul(self):
        from repro.workloads import make_workload
        wl = make_workload(
            "mm", {"I": 4, "J": 4, "K": 4},
            {"A": ["I", "K"], "B": ["K", "J"], "out": ["I", "J"]},
            outputs=["out"],
        )
        arch = Architecture("oracle-arch", [
            MemoryLevel("L1", {UNIFIED: 12}, fanout=2, read_energy=1.0,
                        write_energy=1.0),
            MemoryLevel("DRAM", None, read_energy=50.0, write_energy=50.0),
        ], mac_energy=0.5)
        oracle = exhaustive_search(wl, arch, max_evaluations=4_000_000)
        sunstone = schedule(wl, arch, SchedulerOptions(
            alpha_slack=3.0, beam_width=256))
        assert sunstone.edp <= oracle.edp * 1.0001
        # And does so with far fewer evaluations.
        assert sunstone.stats.evaluations < oracle.evaluations / 10


class TestDirections:
    def test_top_down_finds_valid_mapping(self, small_conv, small_arch):
        result = schedule(small_conv, small_arch,
                          SchedulerOptions(direction="top-down"))
        assert result.found
        assert result.cost.valid

    def test_bottom_up_examines_fewer_candidates(self):
        """Table VI: bottom-up explores an order of magnitude less."""
        wl = conv2d(N=1, K=16, C=16, P=14, Q=14, R=3, S=3)
        arch = conventional()
        bu = schedule(wl, arch, SchedulerOptions(direction="bottom-up",
                                                 polish=False))
        td = schedule(wl, arch, SchedulerOptions(direction="top-down",
                                                 polish=False))
        assert bu.found and td.found
        assert bu.stats.evaluations < td.stats.evaluations


class TestIntraLevelOrders:
    @pytest.mark.parametrize("mode", INTRA_LEVEL_ORDERS)
    def test_all_modes_find_valid_mappings(self, small_conv, small_arch, mode):
        result = schedule(small_conv, small_arch,
                          SchedulerOptions(intra_level_order=mode))
        assert result.found
        assert result.cost.valid

    def test_modes_agree_on_quality(self, small_conv, small_arch):
        """Table VI: intra-level order doesn't significantly change EDP."""
        edps = [
            schedule(small_conv, small_arch,
                     SchedulerOptions(intra_level_order=mode)).edp
            for mode in INTRA_LEVEL_ORDERS
        ]
        assert max(edps) <= min(edps) * 1.25


class TestPruningKnobs:
    def test_alpha_beta_reduces_space(self, small_conv, small_arch):
        with_ab = schedule(small_conv, small_arch, SchedulerOptions(
            alpha_beta=True, alpha_slack=1.1, beam_width=None))
        without = schedule(small_conv, small_arch, SchedulerOptions(
            alpha_beta=False, beam_width=None))
        assert with_ab.stats.evaluations <= without.stats.evaluations
        assert with_ab.found

    def test_beam_bounds_frontier(self, small_conv, small_arch):
        narrow = schedule(small_conv, small_arch,
                          SchedulerOptions(beam_width=2))
        assert narrow.found

    def test_relaxed_utilization(self, small_conv, small_arch):
        relaxed = schedule(small_conv, small_arch, SchedulerOptions(
            utilization_threshold=0.5))
        assert relaxed.found


class TestArchitectures:
    def test_conventional_full_layer(self):
        wl = RESNET18_LAYERS[5].inference(batch=1)
        result = schedule(wl, conventional())
        assert result.found
        assert result.cost.valid
        assert result.cost.utilization > 0.5

    def test_simba_deep_hierarchy(self):
        wl = RESNET18_LAYERS[5].inference(batch=16)
        result = schedule(wl, simba_like())
        assert result.found
        assert result.cost.valid
        # The deep hierarchy must actually be used: PE buffers hold tiles.
        pebuf = result.mapping.occupancy(1)
        assert sum(pebuf.values()) > 3

    def test_weights_respect_register_capacity(self):
        wl = RESNET18_LAYERS[5].inference(batch=16)
        result = schedule(wl, simba_like())
        regs = result.mapping.occupancy(0)
        assert regs.get("weight", 0) <= 8

    def test_mttkrp_versatility(self):
        wl = mttkrp(I=64, K=64, L=64, J=32)
        result = schedule(wl, conventional())
        assert result.found
        assert result.cost.valid
