"""Fault-tolerant pool execution: deterministic injection + recovery.

Pins the crash-safety guarantee of docs/SEARCH.md: under injected worker
crashes, chunk timeouts and evaluation exceptions, every search returns
the *bit-identical* best mapping and cost of a fault-free run, and every
recovery event is counted in ``SearchStats.faults``.
"""

import pytest

from repro.arch import tiny
from repro.core import SchedulerOptions, schedule
from repro.mapping.serialize import mapping_to_dict
from repro.search import FaultPlan, InjectedFault, SearchEngine, plan_from_env
from repro.search.faults import checkpoint_kill_after, trip_chunk_fault
from repro.workloads import conv1d

WORKLOAD = conv1d(K=4, C=4, P=14, R=3)
ARCH = tiny(l1_words=64, l2_words=512, pes=4)


def _cost_tuple(result):
    return (result.cost.energy_pj, result.cost.cycles, result.cost.edp)


def _oracle():
    """Fault-free serial reference (batch off: same pipeline the pooled
    runs use, minus the pool)."""
    return schedule(WORKLOAD, ARCH, SchedulerOptions(batch=False))


def _pooled(plan, **engine_kwargs):
    """One search through a genuine 2-worker pool with ``plan`` armed.

    ``clamp_workers=False`` keeps the pool real even on 1-core CI
    runners — the recovery paths under test need actual worker
    processes to crash.
    """
    engine = SearchEngine(workers=2, batch=False, fault_plan=plan,
                          clamp_workers=False, **engine_kwargs)
    with engine:
        result = schedule(WORKLOAD, ARCH,
                          SchedulerOptions(workers=2, batch=False),
                          engine=engine)
    return result, engine.stats.faults


# ---------------------------------------------------------------------------
# FaultPlan unit behaviour
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_explicit_sites_fire_once(self):
        plan = FaultPlan(chunk_faults={2: "crash"})
        assert plan.chunk_fault(0, 0) is None
        assert plan.chunk_fault(2, 0) == "crash"
        # The retry of the same site succeeds (attempt 1 >= attempts=1).
        assert plan.chunk_fault(2, 1) is None
        assert plan.fired == [("crash", 2, 0)]

    def test_attempts_controls_repeat_failures(self):
        plan = FaultPlan(chunk_faults={0: "timeout"}, attempts=3)
        assert [plan.chunk_fault(0, a) for a in range(4)] == \
            ["timeout", "timeout", "timeout", None]

    def test_max_faults_budget(self):
        plan = FaultPlan(chunk_faults={0: "crash", 1: "crash"}, max_faults=1)
        assert plan.chunk_fault(0, 0) == "crash"
        assert plan.chunk_fault(1, 0) is None

    def test_eval_faults_raise(self):
        plan = FaultPlan(eval_faults={3})
        plan.check_eval(0, 0)  # silent
        with pytest.raises(InjectedFault):
            plan.check_eval(3, 0)
        plan.check_eval(3, 1)  # retry succeeds

    def test_seeded_rates_are_order_insensitive(self):
        decisions = {}
        for order in (range(50), reversed(range(50))):
            plan = FaultPlan(seed=7, crash_rate=0.3)
            decisions[str(order)] = [plan.chunk_fault(s, 0) for s in
                                     sorted(order)]
        first, second = decisions.values()
        assert first == second
        assert any(k == "crash" for k in first)
        assert any(k is None for k in first)

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            FaultPlan(crash_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(attempts=0)
        with pytest.raises(ValueError):
            FaultPlan(chunk_faults={0: "segfault"})

    def test_trip_exception_kind(self):
        trip_chunk_fault(None)  # no-op
        with pytest.raises(InjectedFault):
            trip_chunk_fault("exception")


class TestEnvHooks:
    def test_plan_from_env_parses_sites(self):
        plan = plan_from_env({"REPRO_FAULTS": "crash@2, timeout@5,evalexc@0"})
        assert plan.chunk_faults == {2: "crash", 5: "timeout"}
        assert plan.eval_faults == frozenset({0})

    def test_plan_from_env_unset_is_none(self):
        assert plan_from_env({}) is None
        assert plan_from_env({"REPRO_FAULTS": "  "}) is None

    def test_plan_from_env_rejects_garbage(self):
        with pytest.raises(ValueError):
            plan_from_env({"REPRO_FAULTS": "crash"})
        with pytest.raises(ValueError):
            plan_from_env({"REPRO_FAULTS": "segfault@1"})

    def test_checkpoint_kill_after(self):
        assert checkpoint_kill_after({}) is None
        assert checkpoint_kill_after(
            {"REPRO_CHECKPOINT_KILL_AFTER": "3"}) == 3
        with pytest.raises(ValueError):
            checkpoint_kill_after({"REPRO_CHECKPOINT_KILL_AFTER": "0"})


# ---------------------------------------------------------------------------
# Recovery paths: bit-identical results under injected faults
# ---------------------------------------------------------------------------


def test_worker_crash_is_recovered_bit_identically():
    oracle = _oracle()
    result, faults = _pooled(FaultPlan(chunk_faults={0: "crash"}))
    assert faults.injected == 1
    assert faults.crashes_recovered == 1
    assert faults.pool_rebuilds == 1
    assert faults.retries >= 1
    assert not faults.degraded_serial
    assert mapping_to_dict(result.mapping) == mapping_to_dict(oracle.mapping)
    assert _cost_tuple(result) == _cost_tuple(oracle)
    assert result.stats.evaluations == oracle.stats.evaluations


def test_chunk_timeout_is_recovered_bit_identically():
    oracle = _oracle()
    result, faults = _pooled(FaultPlan(chunk_faults={1: "timeout"}))
    assert faults.injected == 1
    assert faults.chunk_timeouts == 1
    assert faults.pool_rebuilds == 1
    assert mapping_to_dict(result.mapping) == mapping_to_dict(oracle.mapping)
    assert _cost_tuple(result) == _cost_tuple(oracle)


def test_worker_exception_is_recovered_bit_identically():
    oracle = _oracle()
    result, faults = _pooled(FaultPlan(chunk_faults={0: "exception"}))
    assert faults.injected == 1
    assert faults.retries >= 1
    # An exception does not break the pool: no rebuild needed.
    assert faults.pool_rebuilds == 0
    assert mapping_to_dict(result.mapping) == mapping_to_dict(oracle.mapping)
    assert _cost_tuple(result) == _cost_tuple(oracle)


def test_repeated_crashes_degrade_to_serial_bit_identically():
    """Exhausting the rebuild budget falls back to in-process evaluation
    (permanently), still converging to the fault-free answer."""
    oracle = _oracle()
    plan = FaultPlan(chunk_faults={0: "crash"}, attempts=5)
    result, faults = _pooled(plan)
    assert faults.degraded_serial
    assert faults.degraded_chunks >= 1
    assert faults.pool_rebuilds == 1  # budget is max_pool_rebuilds=1
    assert mapping_to_dict(result.mapping) == mapping_to_dict(oracle.mapping)
    assert _cost_tuple(result) == _cost_tuple(oracle)


def test_inprocess_eval_fault_is_retried():
    plan = FaultPlan(eval_faults={0})
    engine = SearchEngine(workers=1, batch=False, fault_plan=plan)
    result = schedule(WORKLOAD, ARCH, SchedulerOptions(batch=False),
                      engine=engine)
    oracle = _oracle()
    assert engine.stats.faults.injected == 1
    assert engine.stats.faults.retries == 1
    assert _cost_tuple(result) == _cost_tuple(oracle)


def test_inprocess_eval_fault_exhausts_retries():
    import random

    from repro.baselines.random_search import sample_random_mapping

    plan = FaultPlan(eval_faults={0}, attempts=99)
    engine = SearchEngine(workers=1, batch=False, cache=False,
                          fault_plan=plan)
    mapping = sample_random_mapping(WORKLOAD, ARCH, random.Random(0))
    with pytest.raises(InjectedFault):
        engine.evaluate(mapping)


def test_fault_stats_surface_in_profile_and_json():
    result, faults = _pooled(FaultPlan(chunk_faults={0: "crash"}))
    stats = result.stats.search
    doc = stats.to_dict()
    assert doc["faults"]["crashes_recovered"] == 1
    assert doc["faults"]["pool_rebuilds"] == 1
    assert "faults:" in stats.profile_summary()
    assert "crashes recovered 1" in stats.faults.summary()


def test_fault_free_run_reports_no_faults():
    result = _oracle()
    assert not result.stats.search.faults.any()
    assert "faults:" not in result.stats.search.profile_summary()


def test_cli_picks_up_fault_env(monkeypatch, tmp_path, capsys):
    """REPRO_FAULTS drives the unmodified CLI; the search still succeeds
    and the injected faults are visible in --stats-json."""
    import json

    from repro.cli import main

    monkeypatch.setenv("REPRO_FAULTS", "evalexc@0")
    stats_path = tmp_path / "stats.json"
    code = main(["schedule", "--workload", "conv1d", "--arch", "tiny",
                 "--no-batch", "--stats-json", str(stats_path),
                 "K=4", "C=4", "P=14", "R=3"])
    capsys.readouterr()
    assert code == 0
    doc = json.loads(stats_path.read_text())
    assert doc["search"]["faults"]["injected"] >= 1
    assert doc["search"]["faults"]["retries"] >= 1
