"""Property-based tests for the mesh NoC delivery model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc import MeshNoc

_SHAPES = st.sampled_from([(2, 2), (4, 4), (8, 8), (16, 4), (32, 32)])


@st.composite
def _mesh_and_destinations(draw):
    shape = draw(_SHAPES)
    x, y = shape
    count = draw(st.integers(min_value=1, max_value=min(x * y, 24)))
    destinations = draw(st.lists(
        st.tuples(st.integers(0, x - 1), st.integers(0, y - 1)),
        min_size=count, max_size=count, unique=True,
    ))
    return MeshNoc(shape), destinations


@given(_mesh_and_destinations())
@settings(max_examples=80, deadline=None)
def test_delivery_invariants(case):
    noc, destinations = case
    delivery = noc.deliver(destinations)
    assert delivery.destinations == len(set(destinations))
    assert delivery.bus_cycles == 1
    # Every destination must be tag-checked at least once, and no more
    # checks than PEs exist.
    assert delivery.tag_checks >= len(set(destinations))
    assert delivery.tag_checks <= noc.shape[0] * (1 + noc.shape[1])
    assert delivery.wire_mm > 0
    assert delivery.energy_pj(16) > delivery.energy_pj_per_bit * 16 - 1e-12


@given(_mesh_and_destinations())
@settings(max_examples=60, deadline=None)
def test_multicast_subadditive(case):
    """Delivering to a group never costs more wire than unicasting to each
    member separately (the whole point of tagged multicast)."""
    noc, destinations = case
    group = noc.deliver(destinations)
    separate = sum(noc.unicast(d).wire_mm for d in set(destinations))
    assert group.wire_mm <= separate + 1e-9


@given(_mesh_and_destinations())
@settings(max_examples=60, deadline=None)
def test_monotone_in_destinations(case):
    """Adding a destination never reduces the delivery cost."""
    noc, destinations = case
    base = noc.deliver(destinations)
    x, y = noc.shape
    extra = [(cx, cy) for cx in range(x) for cy in range(y)
             if (cx, cy) not in destinations]
    if not extra:
        return
    bigger = noc.deliver(list(destinations) + [extra[0]])
    assert bigger.wire_mm >= base.wire_mm - 1e-9
    assert bigger.tag_checks >= base.tag_checks
