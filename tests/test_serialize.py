"""Tests for JSON (de)serialisation of workloads, architectures, mappings."""

import json

import pytest

from repro.arch import conventional, simba_like, tiny
from repro.core import schedule
from repro.mapping import build_mapping
from repro.mapping.serialize import (
    architecture_from_dict,
    architecture_to_dict,
    load_mapping,
    mapping_from_dict,
    mapping_to_dict,
    save_mapping,
    workload_from_dict,
    workload_to_dict,
)
from repro.model import evaluate
from repro.workloads import conv1d, conv2d, mttkrp


class TestWorkloadRoundtrip:
    @pytest.mark.parametrize("wl", [
        conv1d(K=4, C=4, P=14, R=3),
        conv2d(N=2, K=8, C=8, P=6, Q=6, R=3, S=3, stride=2),
        mttkrp(I=8, K=8, L=8, J=4),
    ], ids=lambda w: w.name)
    def test_roundtrip(self, wl):
        restored = workload_from_dict(workload_to_dict(wl))
        assert restored.dims == wl.dims
        assert [t.name for t in restored.tensors] == \
            [t.name for t in wl.tensors]
        for a, b in zip(restored.tensors, wl.tensors):
            assert a.indices == b.indices
            assert a.role == b.role
            assert a.is_output == b.is_output

    def test_json_serialisable(self):
        doc = workload_to_dict(conv2d(N=1, K=4, C=4, P=4, Q=4, R=3, S=3))
        json.dumps(doc)  # must not raise


class TestArchitectureRoundtrip:
    @pytest.mark.parametrize("factory", [conventional, simba_like, tiny],
                             ids=lambda f: f.__name__)
    def test_roundtrip(self, factory):
        arch = factory()
        restored = architecture_from_dict(architecture_to_dict(arch))
        assert restored.name == arch.name
        assert restored.num_levels == arch.num_levels
        for a, b in zip(restored.levels, arch.levels):
            assert a.name == b.name
            assert a.capacity_words == b.capacity_words
            assert a.fanout == b.fanout
            assert a.read_energy == b.read_energy
            assert a.read_bandwidth == b.read_bandwidth

    def test_infinite_bandwidth_roundtrip(self):
        arch = tiny()
        assert arch.levels[0].read_bandwidth == float("inf")
        restored = architecture_from_dict(architecture_to_dict(arch))
        assert restored.levels[0].read_bandwidth == float("inf")


class TestMappingRoundtrip:
    def test_cost_preserved(self):
        wl = conv1d(K=4, C=4, P=14, R=3)
        arch = tiny(l1_words=64, l2_words=512, pes=4)
        mapping = build_mapping(
            wl, arch, temporal=[{"P": 7, "R": 3}, {"K": 2}, {}],
            spatial=[{"C": 2}, {}, {}],
        )
        restored = mapping_from_dict(mapping_to_dict(mapping))
        assert evaluate(restored).edp == pytest.approx(evaluate(mapping).edp)

    def test_scheduled_mapping_roundtrip(self, tmp_path):
        wl = conv1d(K=4, C=4, P=14, R=3)
        arch = tiny(l1_words=64, l2_words=512, pes=4)
        result = schedule(wl, arch)
        path = str(tmp_path / "mapping.json")
        save_mapping(result.mapping, path)
        restored = load_mapping(path)
        assert evaluate(restored).edp == pytest.approx(result.edp)

    def test_document_is_self_contained(self):
        wl = conv1d(K=2, C=2, P=4, R=1)
        arch = tiny()
        mapping = build_mapping(wl, arch, temporal=[{}, {}, {}])
        doc = mapping_to_dict(mapping)
        assert "workload" in doc and "architecture" in doc
        text = json.dumps(doc)
        restored = mapping_from_dict(json.loads(text))
        assert restored.workload.name == wl.name
