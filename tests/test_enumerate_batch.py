"""Differential suite: batch generation is bit-identical to scalar.

``Space.enumerate_batch`` / the cohort pipeline (``repro.mapspace.batch``
+ ``SearchEngine.evaluate_cohort`` + the mappers' ``batch_gen`` paths)
must reproduce the scalar pipeline *bit-for-bit*: same candidates, same
order under a fixed seed, same shard unions, same prune counters, same
best mapping / cost / evaluation counts.  Every test here runs both
paths and compares — with or without numpy (without it the batch path
degrades to chunked scalar enumeration, which must still satisfy the
same contract).
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import conventional, tiny
from repro.baselines.dmazerunner import dmazerunner_search
from repro.baselines.exhaustive import exhaustive_search
from repro.baselines.interstellar import interstellar_search
from repro.core.scheduler import SchedulerOptions, SunstoneScheduler
from repro.mapspace import (
    BypassSpace,
    ChainSpace,
    FactorLattice,
    ListSpace,
    OrderSpace,
    ProductSpace,
    PruneStats,
    divisibility,
    full_mapping_space,
    full_space_cohorts,
)
from repro.mapspace.batch import HAVE_NUMPY, NestCohort
from repro.mapspace.mapspace import assignment_slots
from repro.mapspace.tile import TileSpace
from repro.mapspace.unroll import UnrollSpace
from repro.search import SearchEngine, mapping_fingerprint
from tests import harness

SEEDS = (None, 9)
SHARDS = (None, (0, 3), (2, 3))
BATCH_SIZES = (1, 7, 1024)


def _drain(space, seed=None, shard=None, batch_size=1024):
    out = []
    for chunk in space.enumerate_batch(seed=seed, shard=shard,
                                       batch_size=batch_size):
        assert isinstance(chunk, list)
        assert len(chunk) <= batch_size
        out.extend(chunk)
    return out


def assert_batch_matches_scalar(build_space):
    """For every (seed, shard, batch_size): concatenated batches equal
    the scalar stream, and shared PruneStats counters advance alike.

    ``build_space`` is called once per enumeration so stateful pruning
    counters are compared from a clean slate each time.
    """
    for seed, shard, batch_size in itertools.product(
            SEEDS, SHARDS, BATCH_SIZES):
        scalar_space, scalar_stats = build_space()
        scalar = list(scalar_space.enumerate(seed=seed, shard=shard))
        batch_space, batch_stats = build_space()
        batch = _drain(batch_space, seed, shard, batch_size)
        assert batch == scalar, (seed, shard, batch_size)
        if scalar_stats is not None:
            assert batch_stats.to_dict() == scalar_stats.to_dict(), (
                seed, shard, batch_size)


# ---------------------------------------------------------------------------
# domain spaces
# ---------------------------------------------------------------------------

def test_factor_lattice_batch_matches_scalar():
    arch = harness.small_arch()
    workload = harness.tiny_mttkrp()
    slots = assignment_slots(arch)
    for dim in workload.dim_names:
        assert_batch_matches_scalar(
            lambda dim=dim: (
                FactorLattice(dim, workload.dims[dim], slots), None))


def test_order_space_batch_matches_scalar():
    workload = harness.small_conv()
    assert_batch_matches_scalar(lambda: (OrderSpace(workload), None))


def test_bypass_space_batch_matches_scalar():
    workload = harness.small_conv()
    arch = harness.small_arch()
    assert_batch_matches_scalar(
        lambda: (BypassSpace.from_architecture(workload, arch), None))


def test_tile_space_batch_matches_scalar():
    workload = harness.small_conv()
    arch = harness.small_arch()
    base = {d: 1 for d in workload.dims}
    remaining = dict(workload.dims)
    assert_batch_matches_scalar(
        lambda: (TileSpace(workload, arch, 0, base, remaining,
                           workload.dim_names), None))


def test_unroll_space_batch_matches_scalar():
    workload = harness.small_conv()
    arch = harness.small_arch()
    fanout = max(level.fanout for level in arch.levels)
    remaining = dict(workload.dims)
    assert_batch_matches_scalar(
        lambda: (UnrollSpace(workload, fanout, remaining), None))


# ---------------------------------------------------------------------------
# combinators
# ---------------------------------------------------------------------------

def test_list_product_batch_matches_scalar():
    assert_batch_matches_scalar(
        lambda: (ProductSpace([ListSpace([1, 2, 3]),
                               ListSpace(["a", "b"]),
                               ListSpace([10, 20, 30, 40])]), None))


def test_mapped_product_batch_matches_scalar():
    assert_batch_matches_scalar(
        lambda: (ProductSpace([ListSpace([1, 2, 3]),
                               ListSpace([4, 5])]).map(
                                   lambda pair: pair[0] * 10 + pair[1]),
                 None))


def test_filtered_batch_matches_scalar_with_prune_counters():
    def build():
        stats = PruneStats()
        space = ListSpace(list(range(100))).filter(
            lambda x: x % 3 != 0, "mod3", stats)
        return space, stats

    assert_batch_matches_scalar(build)


def test_filtered_batch_uses_bulk_predicate():
    remaining = {"I": 12, "J": 8}
    predicate = divisibility(remaining)
    items = [{"I": i, "J": j} for i in range(1, 13) for j in range(1, 9)]

    def build():
        stats = PruneStats()
        return ListSpace(items).filter(predicate, "div", stats), stats

    assert_batch_matches_scalar(build)
    # the bulk mask itself agrees with the scalar predicate
    assert list(predicate.batch(items)) == [predicate(x) for x in items]


def test_chain_batch_matches_scalar():
    assert_batch_matches_scalar(
        lambda: (ChainSpace([ListSpace([1, 2, 3]),
                             ListSpace([]),
                             ListSpace([4, 5])]), None))


def test_product_falls_back_when_axis_is_stateful():
    """A filtered axis re-records prune counters per outer step in the
    scalar recursion; the product must not materialise it."""
    def build():
        stats = PruneStats()
        filtered = ListSpace([1, 2, 3, 4]).filter(
            lambda x: x % 2 == 0, "even", stats)
        return ProductSpace([ListSpace(["x", "y"]), filtered]), stats

    space, stats = build()
    filtered_axis = space._axes[1]
    assert filtered_axis.batch_axis_items() is None
    assert_batch_matches_scalar(build)


def test_enumerate_batch_rejects_bad_batch_size():
    with pytest.raises(ValueError):
        list(ListSpace([1]).enumerate_batch(batch_size=0))


# ---------------------------------------------------------------------------
# full-space cohorts (the exhaustive producer)
# ---------------------------------------------------------------------------

def _scalar_fingerprints(workload, arch, orders_per_level, shard=None):
    space = full_mapping_space(workload, arch, orders_per_level)
    return [mapping_fingerprint(m) for m in space.enumerate(shard=shard)]


@pytest.mark.skipif(not HAVE_NUMPY, reason="needs numpy")
def test_full_space_cohorts_match_scalar_stream():
    workload = harness.tiny_mttkrp()
    arch = harness.small_arch()
    scalar = _scalar_fingerprints(workload, arch, 3)
    batch = []
    for cohort in full_space_cohorts(workload, arch, 3):
        for i in range(len(cohort)):
            batch.append(mapping_fingerprint(cohort.materialize(i)))
            assert (cohort.fingerprint_levels(i)
                    == mapping_fingerprint(cohort.materialize(i))[2])
    assert batch == scalar


@pytest.mark.skipif(not HAVE_NUMPY, reason="needs numpy")
@pytest.mark.parametrize("count", [2, 7])
def test_full_space_cohort_shards_interleave_exactly(count):
    workload = harness.tiny_mttkrp()
    arch = harness.small_arch()
    scalar = _scalar_fingerprints(workload, arch, 2)
    for index in range(count):
        part = []
        for cohort in full_space_cohorts(workload, arch, 2,
                                         shard=(index, count)):
            part.extend(mapping_fingerprint(cohort.materialize(i))
                        for i in range(len(cohort)))
        assert part == scalar[index::count]


# ---------------------------------------------------------------------------
# shard algebra (property-based): pairwise disjoint, union-complete
# ---------------------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(
    items=st.lists(st.integers(min_value=-50, max_value=50), max_size=40),
    count=st.sampled_from([1, 2, 4, 7]),
    batch_size=st.sampled_from([1, 3, 1024]),
    seed=st.sampled_from([None, 0, 13]),
)
def test_shard_algebra(items, count, batch_size, seed):
    space = ListSpace(items)
    full = list(space.enumerate(seed=seed))
    shards = [
        _drain(space, seed=seed, shard=(i, count), batch_size=batch_size)
        for i in range(count)
    ]
    # each shard is exactly the index-congruent subsequence
    for i, shard in enumerate(shards):
        assert shard == full[i::count]
    # pairwise disjoint by stream position, union-complete: reinterleave
    merged = []
    for pos in range(len(full)):
        merged.append(shards[pos % count][pos // count])
    assert merged == full
    assert sum(len(s) for s in shards) == len(full)


@settings(max_examples=20, deadline=None)
@given(
    count=st.sampled_from([1, 2, 4, 7]),
    threshold=st.integers(min_value=0, max_value=4),
)
def test_shard_algebra_filtered(count, threshold):
    """Sharding applies to the *filtered* stream: congruence classes are
    taken over surviving candidates."""
    items = list(range(37))

    def build(stats):
        return ListSpace(items).filter(
            lambda x: x % 5 >= threshold, "t", stats)

    full = list(build(PruneStats()).enumerate())
    shards = [_drain(build(PruneStats()), shard=(i, count), batch_size=4)
              for i in range(count)]
    for i, shard in enumerate(shards):
        assert shard == full[i::count]
    assert sum(len(s) for s in shards) == len(full)


# ---------------------------------------------------------------------------
# engine: evaluate_cohort vs evaluate_many
# ---------------------------------------------------------------------------

def _cost_tuple(cost):
    return (cost.valid, cost.edp, cost.energy_pj, cost.cycles,
            cost.utilization, tuple(cost.violations))


def test_evaluate_cohort_matches_evaluate_many():
    workload = harness.tiny_mttkrp()
    arch = harness.small_arch()
    cohorts = (full_space_cohorts(workload, arch, 2)
               if HAVE_NUMPY else None)
    if cohorts is None:
        pytest.skip("needs the vectorized decode (numpy)")
    cohort = next(iter(cohorts))
    mappings = [cohort.materialize(i) for i in range(len(cohort))]
    with SearchEngine(workers=1) as a, SearchEngine(workers=1) as b:
        batch_costs = a.evaluate_cohort(cohort)
        scalar_costs = b.evaluate_many(mappings)
        assert ([_cost_tuple(c) for c in batch_costs]
                == [_cost_tuple(c) for c in scalar_costs])
        assert a.stats.evaluations == b.stats.evaluations
        assert a.stats.cache_hits == b.stats.cache_hits
        assert a.stats.cache_misses == b.stats.cache_misses


def test_evaluate_cohort_scalar_fallback_matches():
    """With the engine's vector path disabled the cohort route still
    returns identical costs (exercises the per-row fallback)."""
    workload = harness.tiny_mttkrp()
    arch = harness.small_arch()
    if not HAVE_NUMPY:
        pytest.skip("needs the vectorized decode (numpy)")
    cohort = next(iter(full_space_cohorts(workload, arch, 2)))
    mappings = [cohort.materialize(i) for i in range(len(cohort))]
    with SearchEngine(workers=1, batch=False) as a, \
            SearchEngine(workers=1, batch=False) as b:
        batch_costs = a.evaluate_cohort(cohort)
        scalar_costs = b.evaluate_many(mappings)
        assert ([_cost_tuple(c) for c in batch_costs]
                == [_cost_tuple(c) for c in scalar_costs])
        assert a.stats.evaluations == b.stats.evaluations


def test_nest_cohort_materialize_roundtrip():
    """NestCohort.materialize rebuilds the exact Mapping its nests came
    from, and fingerprint_levels matches the fingerprint of that
    Mapping."""
    workload = harness.small_conv()
    arch = harness.small_arch()
    result = SunstoneScheduler(workload, arch).schedule()
    assert result.found
    mapping = result.mapping
    nests = tuple(tuple(level.temporal) for level in mapping.levels)
    spatials = tuple(tuple(level.spatial) for level in mapping.levels)
    cohort = NestCohort.from_nests(workload, arch, [(nests, spatials)])
    rebuilt = cohort.materialize(0)
    assert mapping_fingerprint(rebuilt) == mapping_fingerprint(mapping)
    assert cohort.fingerprint_levels(0) == mapping_fingerprint(mapping)[2]


# ---------------------------------------------------------------------------
# mappers: batch_gen on == batch_gen off, bit for bit
# ---------------------------------------------------------------------------

def _schedule(workload, arch, batch_gen, **overrides):
    options = SchedulerOptions(batch_gen=batch_gen, **overrides)
    return SunstoneScheduler(workload, arch, options).schedule()


@pytest.mark.parametrize("direction", ["bottom-up", "top-down"])
def test_sunstone_batch_gen_is_bit_identical(direction):
    workload = harness.medium_mttkrp()
    arch = harness.medium_arch()
    on = _schedule(workload, arch, True, direction=direction)
    off = _schedule(workload, arch, False, direction=direction)
    harness.assert_same_outcome(on, off)


def test_sunstone_batch_gen_conv_is_bit_identical(small_conv, small_arch):
    on = _schedule(small_conv, small_arch, True)
    off = _schedule(small_conv, small_arch, False)
    harness.assert_same_outcome(on, off)


def test_sunstone_batch_gen_sharded_is_bit_identical():
    workload = harness.medium_mttkrp()
    arch = harness.medium_arch()
    for index in range(2):
        on = _schedule(workload, arch, True, shard=(index, 2))
        off = _schedule(workload, arch, False, shard=(index, 2))
        harness.assert_same_outcome(on, off)


def test_exhaustive_batch_gen_is_bit_identical():
    workload = harness.tiny_mttkrp()
    arch = harness.small_arch()
    for shard in (None, (0, 3), (2, 3)):
        on = exhaustive_search(workload, arch, orders_per_level=2,
                               shard=shard, batch_gen=True)
        off = exhaustive_search(workload, arch, orders_per_level=2,
                                shard=shard, batch_gen=False)
        harness.assert_same_search_result(on, off)


def test_exhaustive_batch_gen_shards_union_to_full():
    workload = harness.tiny_mttkrp()
    arch = harness.small_arch()
    full = exhaustive_search(workload, arch, orders_per_level=2,
                             batch_gen=True)
    parts = [
        exhaustive_search(workload, arch, orders_per_level=2,
                          shard=(i, 4), batch_gen=True)
        for i in range(4)
    ]
    # Each shard runs its own branch-and-bound incumbent, so per-shard
    # evaluation counts are not additive — but evaluated + provably
    # skipped always partitions the space exactly.
    size = full_mapping_space(workload, arch, 2).size()

    def covered(result):
        stats = result.search_stats
        return result.evaluations + stats.bound_candidates_skipped

    assert covered(full) == size
    assert sum(covered(p) for p in parts) == size
    best = min(p.cost.edp for p in parts if p.mapping is not None)
    assert best == full.cost.edp


def test_interstellar_batch_gen_is_bit_identical():
    workload = harness.medium_mttkrp()
    arch = harness.medium_arch()
    on = interstellar_search(workload, arch, batch_gen=True)
    off = interstellar_search(workload, arch, batch_gen=False)
    harness.assert_same_search_result(on, off)


def test_dmazerunner_batch_gen_is_bit_identical():
    workload = harness.medium_mttkrp()
    arch = harness.medium_arch()
    on = dmazerunner_search(workload, arch, batch_gen=True)
    off = dmazerunner_search(workload, arch, batch_gen=False)
    harness.assert_same_search_result(on, off)


def test_random_driven_mappers_unaffected_by_batch_gen():
    """timeloop/gamma/cosa generate candidates from RNG state one at a
    time — there is no batch generation path to diverge, and their
    determinism per seed is what the equivalence suite already pins.
    This asserts the scalar generators still go through evaluate_many
    (no accidental coupling to batch_gen)."""
    import inspect

    from repro.baselines.cosa import cosa_search
    from repro.baselines.gamma import gamma_search
    from repro.baselines.random_search import timeloop_search

    for fn in (cosa_search, gamma_search, timeloop_search):
        assert "batch_gen" not in inspect.signature(fn).parameters
