"""Checkpoint/resume: crash-safe journals that converge bit-identically.

Pins the second crash-safety guarantee of docs/SEARCH.md: a search
killed at *any* journal append and resumed with ``--resume`` returns the
same best mapping, cost and evaluation count as an uninterrupted run —
and the journal file itself survives truncated tails, corrupt lines and
configuration mismatches.
"""

import json
import os
import subprocess
import sys
import zlib
from pathlib import Path

import pytest

from repro.arch import tiny
from repro.core import SchedulerOptions, schedule
from repro.core.network import schedule_network
from repro.mapping.serialize import mapping_to_dict
from repro.search import (
    CheckpointJournal,
    EvalCache,
    JournalError,
    atomic_write_json,
    read_journal_entries,
)
from repro.search.faults import KILL_EXIT_CODE
from repro.workloads import conv1d

REPO_ROOT = Path(__file__).resolve().parent.parent

WORKLOAD = conv1d(K=4, C=4, P=14, R=3)
ARCH = tiny(l1_words=64, l2_words=512, pes=4)
META = {"kind": "test", "workload": "conv1d-small"}


def _cost_tuple(result):
    return (result.cost.energy_pj, result.cost.cycles, result.cost.edp)


# ---------------------------------------------------------------------------
# atomic_write_json
# ---------------------------------------------------------------------------


def test_atomic_write_json_round_trip(tmp_path):
    path = tmp_path / "out.json"
    atomic_write_json(str(path), {"a": [1, 2], "b": None})
    assert json.loads(path.read_text()) == {"a": [1, 2], "b": None}
    assert not list(tmp_path.glob("*.tmp"))  # no stray temp files


def test_atomic_write_json_failure_keeps_previous_file(tmp_path):
    path = tmp_path / "out.json"
    atomic_write_json(str(path), {"v": 1})
    with pytest.raises(TypeError):
        atomic_write_json(str(path), {"v": object()})  # unserialisable
    assert json.loads(path.read_text()) == {"v": 1}
    assert not list(tmp_path.glob("*.tmp"))


# ---------------------------------------------------------------------------
# journal file format
# ---------------------------------------------------------------------------


def test_journal_append_and_read_round_trip(tmp_path):
    path = str(tmp_path / "j.jsonl")
    journal = CheckpointJournal(path, META)
    journal.append({"type": "level", "step": 0, "x": [1, 2]})
    journal.append({"type": "level", "step": 1, "x": []})
    entries = read_journal_entries(path)
    assert entries[0] == {"type": "meta", "meta": META}
    assert entries[1:] == [{"type": "level", "step": 0, "x": [1, 2]},
                           {"type": "level", "step": 1, "x": []}]


def test_journal_truncated_tail_round_trip(tmp_path):
    """Satellite: a kill mid-append leaves a partial last line; reads
    drop exactly that line and resume compacts the file."""
    path = str(tmp_path / "j.jsonl")
    journal = CheckpointJournal(path, META)
    journal.append({"type": "level", "step": 0})
    journal.append({"type": "level", "step": 1})
    whole = Path(path).read_text()
    # Chop the file mid-way through its final line.
    Path(path).write_text(whole[:-7])
    entries = read_journal_entries(path)
    assert [e.get("step") for e in entries[1:]] == [0]
    # Resume: the torn tail is compacted away and appends continue.
    resumed = CheckpointJournal(path, META, resume=True)
    assert [e.get("step") for e in resumed.entries] == [0]
    resumed.append({"type": "level", "step": 1})
    assert [e.get("step") for e in read_journal_entries(path)[1:]] == [0, 1]


def test_journal_crc_mismatch_stops_the_read(tmp_path):
    path = str(tmp_path / "j.jsonl")
    journal = CheckpointJournal(path, META)
    journal.append({"type": "level", "step": 0})
    journal.append({"type": "level", "step": 1})
    lines = Path(path).read_text().splitlines(keepends=True)
    doc = json.loads(lines[1])
    doc["entry"]["step"] = 99  # bit-rot: entry no longer matches its CRC
    lines[1] = json.dumps(doc) + "\n"
    Path(path).write_text("".join(lines))
    entries = read_journal_entries(path)
    assert len(entries) == 1  # only the meta line survives
    # Sanity: fixing the CRC makes the line valid again.
    doc["crc"] = zlib.crc32(json.dumps(
        doc["entry"], sort_keys=True, separators=(",", ":")).encode())
    lines[1] = json.dumps(doc) + "\n"
    Path(path).write_text("".join(lines))
    assert len(read_journal_entries(path)) == 3


def test_resume_rejects_mismatched_meta(tmp_path):
    path = str(tmp_path / "j.jsonl")
    CheckpointJournal(path, META)
    with pytest.raises(JournalError):
        CheckpointJournal(path, {"kind": "other"}, resume=True)


def test_resume_of_missing_journal_is_a_fresh_run(tmp_path):
    path = str(tmp_path / "missing.jsonl")
    journal = CheckpointJournal(path, META, resume=True)
    assert journal.entries == []
    assert read_journal_entries(path)[0]["type"] == "meta"


def test_fresh_journal_truncates_stale_contents(tmp_path):
    path = str(tmp_path / "j.jsonl")
    old = CheckpointJournal(path, META)
    old.append({"type": "level", "step": 0})
    fresh = CheckpointJournal(path, META)  # no resume: start over
    assert fresh.entries == []
    assert len(read_journal_entries(path)) == 1


def test_journal_last_matches_fields(tmp_path):
    journal = CheckpointJournal(str(tmp_path / "j.jsonl"), META)
    journal.append({"type": "level", "phase": "base", "step": 0})
    journal.append({"type": "level", "phase": "wide", "step": 0})
    journal.append({"type": "level", "phase": "base", "step": 1})
    assert journal.last("level", phase="base")["step"] == 1
    assert journal.last("level", phase="wide")["step"] == 0
    assert journal.last("phase_done") is None


def test_cache_snapshot_round_trip(tmp_path):
    path = str(tmp_path / "j.jsonl")
    journal = CheckpointJournal(path, META, cache_snapshots=True)
    cache = EvalCache(max_entries=10)
    cache.put(("fp", 1), "r1")
    cache.put(("fp", 2), "r2")
    journal.save_cache_snapshot(cache)
    restored = journal.load_cache_snapshot()
    assert restored is not None
    assert restored.max_entries == 10
    assert restored.get(("fp", 1)) == "r1"
    assert restored.get(("fp", 2)) == "r2"
    # Disabled snapshots are inert in both directions.
    plain = CheckpointJournal(str(tmp_path / "k.jsonl"), META)
    plain.save_cache_snapshot(cache)
    assert plain.load_cache_snapshot() is None
    # A corrupt sidecar is dropped silently (costs warm-up, not results).
    Path(journal.cache_path).write_bytes(b"\x80garbage")
    assert journal.load_cache_snapshot() is None


# ---------------------------------------------------------------------------
# scheduler kill/resume convergence
# ---------------------------------------------------------------------------


def test_scheduler_resume_converges_from_any_kill_point(tmp_path):
    """Killing at every successive journal append and resuming must
    always converge to the uninterrupted run's result."""
    base = schedule(WORKLOAD, ARCH)
    kill_after = 1
    while True:
        path = str(tmp_path / f"kill{kill_after}.jsonl")
        journal = CheckpointJournal(path, META, kill_after=kill_after,
                                    kill_mode="interrupt")
        try:
            schedule(WORKLOAD, ARCH, journal=journal)
            completed = True
        except KeyboardInterrupt:
            completed = False
        resumed = CheckpointJournal(path, META, resume=True)
        result = schedule(WORKLOAD, ARCH, journal=resumed)
        assert mapping_to_dict(result.mapping) == \
            mapping_to_dict(base.mapping), kill_after
        assert _cost_tuple(result) == _cost_tuple(base), kill_after
        assert result.stats.evaluations == base.stats.evaluations, kill_after
        if completed:
            break
        kill_after += 1
    assert kill_after >= 2  # the loop really exercised mid-run kills


def test_resume_of_complete_journal_skips_the_search(tmp_path):
    path = str(tmp_path / "done.jsonl")
    base = schedule(WORKLOAD, ARCH, journal=CheckpointJournal(path, META))
    resumed = CheckpointJournal(path, META, resume=True)
    result = schedule(WORKLOAD, ARCH, journal=resumed)
    assert mapping_to_dict(result.mapping) == mapping_to_dict(base.mapping)
    assert _cost_tuple(result) == _cost_tuple(base)
    # Restoring re-evaluates only the stored winners, not the mapspace.
    assert result.stats.search.evaluations <= 4


def test_resume_respects_sharded_and_sparse_meta(tmp_path):
    """The meta fingerprint is the guard against resuming the wrong
    search: any field difference refuses the journal."""
    path = str(tmp_path / "j.jsonl")
    CheckpointJournal(path, {"kind": "schedule", "shard": "0/2"})
    with pytest.raises(JournalError):
        CheckpointJournal(path, {"kind": "schedule", "shard": "1/2"},
                          resume=True)


# ---------------------------------------------------------------------------
# network kill/resume convergence
# ---------------------------------------------------------------------------


def test_network_resume_converges(tmp_path):
    layers = [conv1d(K=4, C=4, P=14, R=3),
              conv1d(K=4, C=4, P=14, R=3),  # dedupe shares the first's
              conv1d(K=8, C=4, P=7, R=3)]
    base = schedule_network(layers, ARCH, SchedulerOptions())
    path = str(tmp_path / "net.jsonl")
    journal = CheckpointJournal(path, META, kill_after=1,
                                kill_mode="interrupt")
    with pytest.raises(KeyboardInterrupt):
        schedule_network(layers, ARCH, SchedulerOptions(), journal=journal)
    resumed = CheckpointJournal(path, META, resume=True)
    network = schedule_network(layers, ARCH, SchedulerOptions(),
                               journal=resumed)
    assert network.all_found
    assert network.total_edp == base.total_edp
    assert network.total_energy_pj == base.total_energy_pj
    for got, want in zip(network.layers, base.layers):
        assert mapping_to_dict(got.result.mapping) == \
            mapping_to_dict(want.result.mapping)
    # Only the interrupted remainder was searched on resume.
    assert len(resumed.all("layer")) == 2


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------

_CLI_ARGS = ["--workload", "conv1d", "--arch", "tiny",
             "K=4", "C=4", "P=14", "R=3"]


def _run_cli(argv, capsys):
    from repro.cli import main
    code = main(argv)
    return code, capsys.readouterr().out


def test_cli_schedule_checkpoint_then_resume(tmp_path, capsys):
    ckpt = str(tmp_path / "cli.jsonl")
    code, fresh_out = _run_cli(["schedule", *_CLI_ARGS,
                                "--checkpoint", ckpt], capsys)
    assert code == 0
    code, resumed_out = _run_cli(["schedule", *_CLI_ARGS,
                                  "--checkpoint", ckpt, "--resume"], capsys)
    assert code == 0
    # Identical mapping, nest and cost — resume changed nothing but time.
    strip = [line for line in fresh_out.splitlines()
             if "wall" not in line and " in " not in line
             and "search engine:" not in line]
    strip_resumed = [line for line in resumed_out.splitlines()
                     if "wall" not in line and " in " not in line
                     and "search engine:" not in line]
    assert strip == strip_resumed


def test_cli_schedule_checkpoint_cache_warm_resume(tmp_path, capsys):
    ckpt = str(tmp_path / "warm.jsonl")
    code, _ = _run_cli(["schedule", *_CLI_ARGS, "--checkpoint", ckpt,
                        "--checkpoint-cache"], capsys)
    assert code == 0
    assert os.path.exists(ckpt + ".cache.pkl")
    code, _ = _run_cli(["schedule", *_CLI_ARGS, "--checkpoint", ckpt,
                        "--resume", "--checkpoint-cache"], capsys)
    assert code == 0


def test_cli_resume_requires_checkpoint(capsys):
    from repro.cli import main
    with pytest.raises(SystemExit, match="--resume requires --checkpoint"):
        main(["schedule", *_CLI_ARGS, "--resume"])


def test_cli_resume_rejects_foreign_journal(tmp_path, capsys):
    from repro.cli import main
    ckpt = str(tmp_path / "cli.jsonl")
    code, _ = _run_cli(["schedule", *_CLI_ARGS, "--checkpoint", ckpt],
                       capsys)
    assert code == 0
    with pytest.raises(SystemExit, match="different search configuration"):
        main(["schedule", "--workload", "conv1d", "--arch", "tiny",
              "K=8", "C=4", "P=14", "R=3",
              "--checkpoint", ckpt, "--resume"])


def test_cli_compare_resume_reuses_journaled_mappers(tmp_path, capsys):
    ckpt = str(tmp_path / "cmp.jsonl")
    argv = ["compare", "--workload", "conv1d", "--arch", "tiny",
            "--mappers", "timeloop", "K=4", "C=4", "P=14", "R=3",
            "--checkpoint", ckpt]
    code, fresh_out = _run_cli(argv, capsys)
    assert code == 0
    entries = read_journal_entries(ckpt)
    assert [e["name"] for e in entries if e.get("type") == "mapper"] == \
        ["sunstone", "timeloop-like"]
    code, resumed_out = _run_cli([*argv, "--resume"], capsys)
    assert code == 0
    # Every row is replayed from the journal, numbers included.
    assert fresh_out == resumed_out


def test_cli_stats_json_is_atomic_and_complete(tmp_path, capsys):
    stats = tmp_path / "stats.json"
    code, _ = _run_cli(["schedule", *_CLI_ARGS,
                        "--stats-json", str(stats)], capsys)
    assert code == 0
    doc = json.loads(stats.read_text())
    assert doc["command"] == "schedule"
    assert "faults" in doc["search"]
    assert not list(tmp_path.glob("*.tmp"))


# ---------------------------------------------------------------------------
# hard-kill smoke: a real SIGKILL-style exit mid-search, then resume
# ---------------------------------------------------------------------------


def test_subprocess_hard_kill_then_resume_is_identical(tmp_path):
    """The CI smoke in miniature: the journal hard-exits the process
    (exit code 86) after its first append; a --resume run finishes the
    search and matches a never-interrupted run exactly."""
    ckpt = str(tmp_path / "hard.jsonl")
    env = {"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"}
    argv = [sys.executable, "-m", "repro", "schedule", *_CLI_ARGS]

    killed = subprocess.run(
        [*argv, "--checkpoint", ckpt],
        capture_output=True, text=True, timeout=600,
        env={**env, "REPRO_CHECKPOINT_KILL_AFTER": "1"}, cwd=str(tmp_path))
    assert killed.returncode == KILL_EXIT_CODE, killed.stderr

    resumed = subprocess.run(
        [*argv, "--checkpoint", ckpt, "--resume"],
        capture_output=True, text=True, timeout=600,
        env=env, cwd=str(tmp_path))
    assert resumed.returncode == 0, resumed.stderr

    uninterrupted = subprocess.run(
        argv, capture_output=True, text=True, timeout=600,
        env=env, cwd=str(tmp_path))
    assert uninterrupted.returncode == 0, uninterrupted.stderr

    def essence(out):
        return [line for line in out.splitlines()
                if "wall" not in line and " in " not in line
                and "search engine:" not in line]

    assert essence(resumed.stdout) == essence(uninterrupted.stdout)


# ---------------------------------------------------------------------------
# stale *.tmp sweep: a hard kill between write and rename must not leak
# ---------------------------------------------------------------------------


def test_journal_open_sweeps_stale_temps(tmp_path):
    """Opening a journal removes leftover ``<basename>.*.tmp`` siblings
    (of the journal *and* its cache sidecar) but nothing else."""
    ckpt = tmp_path / "swept.jsonl"
    mine = [tmp_path / "swept.jsonl.abc123.tmp",
            tmp_path / "swept.jsonl.cache.pkl.xyz.tmp"]
    others = [tmp_path / "other.json.def.tmp",
              tmp_path / "swept.jsonl.notatmp"]
    for path in mine + others:
        path.write_text("stranded")

    CheckpointJournal(str(ckpt), META)
    for path in mine:
        assert not path.exists(), path
    for path in others:
        assert path.exists(), path


def test_sweep_stale_temps_ignores_missing_directory(tmp_path):
    from repro.search import sweep_stale_temps
    assert sweep_stale_temps(str(tmp_path / "no" / "dir" / "x.jsonl")) == []


def test_kill_during_atomic_write_leaves_temp_then_sweep_recovers(tmp_path):
    """The regression the sweep exists for: kill a process between the
    temp write and ``os.replace`` (patched to hard-exit), confirm the
    stranded ``*.tmp`` survives and the destination is intact, then
    confirm reopening the journal sweeps it."""
    ckpt = tmp_path / "leak.jsonl"
    CheckpointJournal(str(ckpt), META).append({"type": "step", "n": 1})
    before = ckpt.read_text()

    script = (
        "import os, sys\n"
        "sys.path.insert(0, sys.argv[1])\n"
        "from repro.search import checkpoint\n"
        "real_replace = os.replace\n"
        "def dying_replace(src, dst):\n"
        "    os._exit(9)\n"
        "checkpoint.os.replace = dying_replace\n"
        "checkpoint.atomic_write_json(sys.argv[2] + '.compact', {'x': 1})\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", script, str(REPO_ROOT / "src"), str(ckpt)],
        capture_output=True, text=True, timeout=120, cwd=str(tmp_path))
    assert proc.returncode == 9, proc.stderr

    stranded = list(tmp_path.glob("leak.jsonl.compact.*.tmp"))
    assert stranded, "the injected kill should strand one temp file"
    assert ckpt.read_text() == before  # destination untouched

    # A journal opened at the *stranded* path sweeps its own temps.
    CheckpointJournal(str(tmp_path / "leak.jsonl.compact"), META)
    assert not list(tmp_path.glob("leak.jsonl.compact.*.tmp"))
