"""Tests for the workload library (Table II kernels and layer suites)."""

import pytest

from repro.workloads import (
    FROSTT_SHAPES,
    INCEPTION_V3_LAYERS,
    RESNET18_LAYERS,
    conv2d,
    fully_connected,
    inception_v3_weight_update,
    mmc,
    mttkrp,
    mttkrp_from_frostt,
    resnet18,
    sddmm,
    sddmm_from_suitesparse,
    tcl,
    ttmc,
    ttmc_from_frostt,
)


class TestConv2d:
    def test_dims_and_ops(self):
        wl = conv2d(N=2, K=8, C=4, P=6, Q=6, R=3, S=3)
        assert wl.total_operations == 2 * 8 * 4 * 6 * 6 * 3 * 3

    def test_ifmap_halo(self):
        wl = conv2d(N=1, K=1, C=1, P=6, Q=6, R=3, S=3)
        # full ifmap is (P+R-1) x (Q+S-1)
        assert wl.tensor_size("ifmap") == 8 * 8

    def test_strided_ifmap(self):
        wl = conv2d(N=1, K=1, C=1, P=6, Q=6, R=3, S=3, stride=2)
        assert wl.tensor_size("ifmap") == 13 * 13

    def test_roles(self):
        wl = conv2d(N=1, K=2, C=2, P=2, Q=2, R=1, S=1)
        assert wl.tensor("ifmap").role == "ifmap"
        assert wl.tensor("weight").role == "weight"
        assert wl.tensor("ofmap").role == "ofmap"


class TestTensorKernels:
    def test_mttkrp_reuse(self):
        wl = mttkrp(I=8, K=8, L=8, J=4)
        # out[i,j]: reduction dims K and L reuse the output.
        info = wl.reuse_info("out")
        assert info.reused_by == {"K", "L"}
        assert wl.total_operations == 8 * 8 * 8 * 4

    def test_sddmm_shape(self):
        wl = sddmm(I=4, J=4, K=8)
        assert {t.name for t in wl.tensors} == {"A", "B", "C", "out"}
        assert wl.reuse_info("A").reused_by == {"K"}

    def test_ttmc_five_dims(self):
        wl = ttmc(I=4, J=4, K=4, L=2, M=2)
        assert len(wl.dim_names) == 5
        assert wl.reuse_info("out").reused_by == {"J", "K"}

    def test_mmc(self):
        wl = mmc(I=4, J=4, K=4, L=4)
        assert wl.reuse_info("out").reused_by == {"J", "K"}

    def test_tcl(self):
        wl = tcl(I=2, J=2, K=2, L=2, M=2, N=2)
        assert wl.reuse_info("A").reused_by == {"L", "M", "N"}

    def test_fully_connected(self):
        wl = fully_connected(N=4, K=8, C=16)
        assert wl.total_operations == 4 * 8 * 16


class TestFrosttShapes:
    def test_mttkrp_from_frostt(self):
        wl = mttkrp_from_frostt("nell2", rank=32)
        i, k, l = FROSTT_SHAPES["nell2"]
        assert wl.dims == {"I": i, "K": k, "L": l, "J": 32}

    def test_ttmc_from_frostt(self):
        wl = ttmc_from_frostt("poisson1", rank=8)
        assert wl.dims["L"] == 8
        assert wl.dims["M"] == 8

    def test_sddmm_from_suitesparse(self):
        wl = sddmm_from_suitesparse("bcsstk17", rank=512)
        assert wl.dims["K"] == 512

    def test_unknown_tensor_raises(self):
        with pytest.raises(KeyError):
            mttkrp_from_frostt("not-a-tensor")


class TestNetworkSuites:
    def test_resnet18_layer_count(self):
        layers = resnet18(batch=1)
        assert len(layers) == len(RESNET18_LAYERS)
        assert all(wl.dims["N"] == 1 for wl in layers)

    def test_resnet18_batch(self):
        layers = resnet18(batch=16)
        assert all(wl.dims["N"] == 16 for wl in layers)

    def test_inception_has_asymmetric_layers(self):
        names = {layer.name for layer in INCEPTION_V3_LAYERS}
        assert "1x7_deep" in names
        assert "3x1_deep" in names
        shapes = {layer.name: layer for layer in INCEPTION_V3_LAYERS}
        assert shapes["1x7_deep"].R != shapes["1x7_deep"].S

    def test_weight_update_output_is_weight(self):
        wu = RESNET18_LAYERS[1].weight_update(batch=16)
        outputs = [t for t in wu.tensors if t.is_output]
        assert len(outputs) == 1
        assert outputs[0].role == "weight"
        # In weight update, the batch and output spatial dims are reduction
        # dims that reuse the output.
        info = wu.reuse_info(outputs[0].name)
        assert {"N", "P", "Q"} <= info.reused_by

    def test_weight_update_suite(self):
        suite = inception_v3_weight_update(batch=16)
        assert len(suite) == len(INCEPTION_V3_LAYERS)
        assert all(wl.dims["N"] == 16 for wl in suite)

    def test_weight_update_op_count_matches_inference(self):
        layer = RESNET18_LAYERS[1]
        assert (layer.weight_update(batch=4).total_operations
                == layer.inference(batch=4).total_operations)
