"""Tests for the DianNao-like ISA, compiler and simulator (§V-D)."""

import pytest

from repro.arch import diannao_like
from repro.core import schedule
from repro.mapping import build_mapping
from repro.sim import (
    BUFFER_CAPACITY_WORDS,
    INSTRUCTION_BYTES,
    BufferId,
    Instruction,
    Opcode,
    SimulationError,
    compile_mapping,
    compile_naive,
    compute,
    diannao_energy_table,
    load,
    run_program,
    store,
    stream,
    unpack_compute_reads,
)
from repro.sim.compiler import Program
from repro.workloads import RESNET18_LAYERS, conv2d


class TestIsa:
    def test_encode_length(self):
        instr = load(BufferId.NBIN, 0x1000, 64)
        assert len(instr.encode()) == INSTRUCTION_BYTES

    def test_roundtrip(self):
        for instr in [
            load(BufferId.SB, 123, 456),
            store(BufferId.NBOUT, 789, 10),
            compute(1000, 200, 300, 50),
            stream(111, 22, 333),
            Instruction(Opcode.NOP),
        ]:
            assert Instruction.decode(instr.encode()) == instr

    def test_decode_rejects_bad_length(self):
        with pytest.raises(ValueError):
            Instruction.decode(b"\x00" * 7)

    def test_compute_read_packing(self):
        instr = compute(macs=10**6, nbin_reads=12345, sb_reads=67890,
                        nbout_accesses=42)
        assert unpack_compute_reads(instr) == (12345, 67890)

    def test_compute_field_overflow_rejected(self):
        with pytest.raises(ValueError):
            compute(1, nbin_reads=2**33, sb_reads=0, nbout_accesses=0)

    def test_unpack_requires_compute(self):
        with pytest.raises(ValueError):
            unpack_compute_reads(load(BufferId.NBIN, 0, 1))


@pytest.fixture(scope="module")
def compiled_layer():
    wl = RESNET18_LAYERS[1].inference(batch=1)  # conv2_x
    result = schedule(wl, diannao_like())
    assert result.found
    return wl, result.mapping, compile_mapping(result.mapping)


class TestCompiler:
    def test_macs_conserved(self, compiled_layer):
        wl, _, program = compiled_layer
        sim = run_program(program)
        assert sim.counts.macs == wl.total_operations

    def test_instructions_far_fewer_than_macs(self, compiled_layer):
        wl, _, program = compiled_layer
        # The SIMD/FSM nature of the ISA: instructions << operations.
        assert program.num_instructions < wl.total_operations / 1000

    def test_loads_are_reuse_aware(self, compiled_layer):
        """Resident tiles are not reloaded: total LOAD volume per input is
        far below passes x footprint."""
        _, mapping, program = compiled_layer
        loads = [i for i in program.instructions if i.opcode is Opcode.LOAD]
        load_words = sum(i.operand2 for i in loads)
        tile_words = sum(
            mapping.footprint(1, t.name)
            for t in mapping.workload.tensors
        )
        assert load_words < program.passes * tile_words

    def test_program_binary_image(self, compiled_layer):
        _, _, program = compiled_layer
        image = program.encode()
        assert len(image) == program.num_instructions * INSTRUCTION_BYTES

    def test_requires_three_level_arch(self):
        from repro.arch import conventional
        wl = conv2d(N=1, K=4, C=4, P=4, Q=4, R=1, S=1)
        # conventional() is 3 levels, simba is 4 — build a wrong mapping.
        from repro.arch import simba_like
        m = build_mapping(wl, simba_like(), temporal=[{}, {}, {}, {}])
        with pytest.raises(ValueError, match="3-level"):
            compile_mapping(m)


class TestMachine:
    def test_capacity_violation_detected(self):
        program = Program(
            instructions=[load(BufferId.NBIN,
                               0, BUFFER_CAPACITY_WORDS[BufferId.NBIN] + 1)],
            reorder_words=0, passes=0, total_macs=0,
        )
        with pytest.raises(SimulationError, match="capacity"):
            run_program(program)

    def test_event_counting(self):
        program = Program(
            instructions=[
                load(BufferId.NBIN, 0, 10),
                load(BufferId.SB, 0, 20),
                compute(100, 6, 100, 7),
                store(BufferId.NBOUT, 0, 5),
            ],
            reorder_words=3, passes=1, total_macs=100,
        )
        sim = run_program(program)
        assert sim.counts.dram_reads == 30
        assert sim.counts.dram_writes == 5
        assert sim.counts.buffer_writes[BufferId.NBIN] == 10
        assert sim.counts.buffer_reads[BufferId.SB] == 100
        assert sim.counts.buffer_reads[BufferId.NBOUT] == 7 + 5
        assert sim.counts.macs == 100
        assert sim.counts.instructions == 4
        assert sim.counts.reorder_words == 3

    def test_energy_breakdown_components(self):
        program = Program(
            instructions=[load(BufferId.NBIN, 0, 10), compute(10, 1, 10, 1)],
            reorder_words=0, passes=1, total_macs=10,
        )
        sim = run_program(program)
        assert set(sim.energy_breakdown) == {
            "DRAM", "NBin", "NBout", "SB", "MAC", "Instructions",
            "Reordering",
        }
        assert sim.total_energy > 0
        norm = sim.normalized_breakdown()
        assert sum(norm.values()) == pytest.approx(1.0)

    def test_reorder_can_be_excluded(self):
        program = Program(
            instructions=[compute(10, 1, 10, 1)],
            reorder_words=100, passes=1, total_macs=10,
        )
        with_reorder = run_program(program, include_reorder=True)
        without = run_program(program, include_reorder=False)
        assert without.energy_breakdown["Reordering"] == 0
        assert with_reorder.energy_breakdown["Reordering"] > 0

    def test_energy_table_sanity(self):
        table = diannao_energy_table()
        assert table.energy("DRAM", "read") > table.energy("SB", "read")
        assert table.energy("SB", "read") > table.energy("NBin", "read")


class TestOverheadStudy:
    def test_optimized_beats_naive(self, compiled_layer):
        wl, _, program = compiled_layer
        optimized = run_program(program)
        naive = run_program(compile_naive(wl))
        assert naive.counts.macs == wl.total_operations
        # Fig. 9a: tiled + unrolled execution is several times more
        # energy efficient despite instruction/reorder overheads.
        assert naive.total_energy > 1.5 * optimized.total_energy

    def test_naive_spends_only_on_macs_and_dram(self, compiled_layer):
        wl, _, _ = compiled_layer
        naive = run_program(compile_naive(wl))
        assert naive.energy_breakdown["NBin"] == 0
        assert naive.energy_breakdown["SB"] == 0
        assert naive.energy_breakdown["MAC"] > 0
        assert naive.energy_breakdown["DRAM"] > 0

    def test_overheads_are_small_fractions(self, compiled_layer):
        """Fig. 9a: instructions ~5%, reordering well below that."""
        _, mapping, _ = compiled_layer
        program = compile_mapping(mapping, reorder_inputs=False)
        sim = run_program(program)
        norm = sim.normalized_breakdown()
        assert norm["Instructions"] < 0.15
        assert norm["Reordering"] == 0.0
