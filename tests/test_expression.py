"""Unit tests for the tensor-workload IR."""

import pytest

from repro.workloads import (
    IndexExpr,
    TensorRef,
    Workload,
    WorkloadError,
    conv1d,
    make_workload,
)


class TestIndexExpr:
    def test_plain_index(self):
        expr = IndexExpr(("K",))
        assert not expr.is_window
        assert expr.extent({"K": 7}) == 7

    def test_window_extent_stride1(self):
        # (P, R): accessed range is P + R - 1.
        expr = IndexExpr(("P", "R"))
        assert expr.is_window
        assert expr.extent({"P": 7, "R": 3}) == 9

    def test_window_extent_strided(self):
        # Stride applies to the outer dimension: (P-1)*s + R.
        expr = IndexExpr(("P", "R"), stride=2)
        assert expr.extent({"P": 7, "R": 3}) == 15

    def test_missing_dim_defaults_to_one(self):
        expr = IndexExpr(("P", "R"))
        assert expr.extent({"P": 4}) == 4

    def test_empty_dims_rejected(self):
        with pytest.raises(WorkloadError):
            IndexExpr(())

    def test_repeated_dims_rejected(self):
        with pytest.raises(WorkloadError):
            IndexExpr(("P", "P"))

    def test_stride_on_plain_index_rejected(self):
        with pytest.raises(WorkloadError):
            IndexExpr(("P",), stride=2)

    def test_nonpositive_stride_rejected(self):
        with pytest.raises(WorkloadError):
            IndexExpr(("P", "R"), stride=0)

    def test_str(self):
        assert str(IndexExpr(("K",))) == "K"
        assert str(IndexExpr(("P", "R"))) == "(P+R)"
        assert str(IndexExpr(("P", "R"), stride=2)) == "(2*P+R)"


class TestTensorRef:
    def test_indexing_dims(self):
        t = TensorRef("ifmap", (IndexExpr(("C",)), IndexExpr(("P", "R"))))
        assert t.indexing_dims == {"C", "P", "R"}

    def test_window_dims(self):
        t = TensorRef("ifmap", (IndexExpr(("C",)), IndexExpr(("P", "R"))))
        assert t.window_dims == {"P", "R"}

    def test_footprint_with_halo(self):
        t = TensorRef("ifmap", (IndexExpr(("C",)), IndexExpr(("P", "R"))))
        assert t.footprint({"C": 4, "P": 7, "R": 3}) == 4 * 9

    def test_role_defaults_to_name(self):
        t = TensorRef("ifmap", (IndexExpr(("C",)),))
        assert t.role == "ifmap"
        t2 = TensorRef("x", (IndexExpr(("C",)),), role="weight")
        assert t2.role == "weight"


class TestWorkload:
    def test_conv1d_dimensions(self):
        wl = conv1d(K=4, C=4, P=7, R=3)
        assert wl.total_operations == 4 * 4 * 7 * 3
        assert wl.dim_names == ("K", "C", "P", "R")

    def test_tensor_sizes(self):
        wl = conv1d(K=4, C=4, P=7, R=3)
        assert wl.tensor_size("ofmap") == 28
        assert wl.tensor_size("weight") == 48
        assert wl.tensor_size("ifmap") == 4 * 9

    def test_reuse_table_matches_paper_table3(self):
        wl = conv1d(K=4, C=4, P=7, R=3)
        table = wl.reuse_table()
        assert table["ofmap"].indexed_by == {"K", "P"}
        assert table["ofmap"].reused_by == {"C", "R"}
        assert table["ifmap"].indexed_by == {"C", "P", "R"}
        assert table["ifmap"].reused_by == {"K"}
        assert table["ifmap"].partially_reused_by == {"P", "R"}
        assert table["weight"].indexed_by == {"C", "K", "R"}
        assert table["weight"].reused_by == {"P"}
        assert not table["weight"].partially_reused_by

    def test_reusers_of(self):
        wl = conv1d(K=4, C=4, P=7, R=3)
        assert wl.reusers_of("C") == {"ofmap"}
        assert wl.reusers_of("K") == {"ifmap"}
        assert wl.partial_reusers_of("R") == {"ifmap"}

    def test_outputs_and_inputs(self):
        wl = conv1d(K=4, C=4, P=7, R=3)
        assert [t.name for t in wl.outputs] == ["ofmap"]
        assert {t.name for t in wl.inputs} == {"ifmap", "weight"}

    def test_scale(self):
        wl = conv1d(K=4, C=4, P=7, R=3)
        scaled = wl.scale({"K": 2})
        assert scaled.dims["K"] == 8
        assert wl.dims["K"] == 4  # original untouched

    def test_scale_unknown_dim_rejected(self):
        with pytest.raises(WorkloadError):
            conv1d(4, 4, 7, 3).scale({"Z": 2})

    def test_unknown_tensor_raises(self):
        with pytest.raises(KeyError):
            conv1d(4, 4, 7, 3).tensor("nope")

    def test_footprints(self):
        wl = conv1d(K=4, C=4, P=7, R=3)
        fps = wl.footprints({"K": 2, "C": 2, "P": 3, "R": 3})
        assert fps["ofmap"] == 6
        assert fps["weight"] == 12
        assert fps["ifmap"] == 2 * 5


class TestWorkloadValidation:
    def test_needs_output(self):
        with pytest.raises(WorkloadError, match="output"):
            Workload("w", {"K": 2}, (TensorRef("a", (IndexExpr(("K",)),)),))

    def test_unknown_dimension(self):
        with pytest.raises(WorkloadError, match="unknown dimension"):
            Workload("w", {"K": 2}, (
                TensorRef("a", (IndexExpr(("Z",)),), is_output=True),
            ))

    def test_unused_dimension(self):
        with pytest.raises(WorkloadError, match="index no tensor"):
            Workload("w", {"K": 2, "Z": 3}, (
                TensorRef("a", (IndexExpr(("K",)),), is_output=True),
            ))

    def test_duplicate_tensor_names(self):
        t = TensorRef("a", (IndexExpr(("K",)),), is_output=True)
        with pytest.raises(WorkloadError, match="duplicate"):
            Workload("w", {"K": 2}, (t, t))

    def test_nonpositive_dim(self):
        with pytest.raises(WorkloadError, match="non-positive"):
            Workload("w", {"K": 0}, (
                TensorRef("a", (IndexExpr(("K",)),), is_output=True),
            ))

    def test_make_workload_missing_output(self):
        with pytest.raises(WorkloadError, match="not among tensors"):
            make_workload("w", {"K": 2}, {"a": ["K"]}, outputs=["b"])
