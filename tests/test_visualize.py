"""Tests for the text-mode visualisation helpers."""

import pytest

from repro.analysis.visualize import (
    energy_chart,
    mapping_report,
    occupancy_chart,
    reuse_chart,
    spatial_chart,
)
from repro.arch import conventional, simba_like, tiny
from repro.core import schedule
from repro.mapping import build_mapping
from repro.model import evaluate
from repro.workloads import conv1d, conv2d


@pytest.fixture
def mapping():
    wl = conv1d(K=4, C=4, P=14, R=3)
    arch = tiny(l1_words=64, l2_words=512, pes=4)
    return build_mapping(wl, arch, temporal=[{"P": 7, "R": 3}, {"K": 2}, {}],
                         spatial=[{"C": 2}, {}, {}])


class TestOccupancy:
    def test_lists_every_level(self, mapping):
        text = occupancy_chart(mapping)
        for name in ("L1", "L2", "DRAM"):
            assert name in text
        assert "unbounded" in text

    def test_shows_word_counts(self, mapping):
        text = occupancy_chart(mapping)
        used = sum(mapping.occupancy(0).values())
        assert f"{used}/64 words" in text

    def test_per_role_levels(self):
        wl = conv2d(N=1, K=8, C=8, P=4, Q=4, R=3, S=3)
        arch = simba_like()
        m = build_mapping(wl, arch, temporal=[{"K": 8}, {"C": 8}, {}, {}])
        text = occupancy_chart(m)
        assert "weight" in text


class TestEnergyChart:
    def test_fractions_rendered(self, mapping):
        cost = evaluate(mapping)
        text = energy_chart(cost)
        assert "%" in text
        assert "compute" in text
        assert "DRAM" in text


class TestSpatialChart:
    def test_active_lanes_marked(self, mapping):
        text = spatial_chart(mapping, 0)
        assert "Cx2" in text
        assert "50%" in text
        assert "o" in text and "." in text

    def test_no_fanout_message(self, mapping):
        assert "no fanout" in spatial_chart(mapping, 1)

    def test_large_grid_is_compacted(self):
        wl = conv2d(N=1, K=32, C=32, P=4, Q=4, R=1, S=1)
        arch = conventional()  # 32x32 grid
        m = build_mapping(wl, arch, temporal=[{}, {"P": 4, "Q": 4}, {}],
                          spatial=[{"K": 32, "C": 32}, {}, {}])
        text = spatial_chart(m, 0)
        longest = max(len(line) for line in text.splitlines()[1:])
        assert longest <= 40  # compacted to terminal width


class TestReuseChart:
    def test_table3_content(self):
        text = reuse_chart(conv1d(K=4, C=4, P=7, R=3))
        assert "ofmap" in text and "C,R" in text


class TestMappingReport:
    def test_report_composes_sections(self, mapping):
        text = mapping_report(mapping)
        assert "buffer occupancy" in text
        assert "energy breakdown" in text
        assert "fanout" in text

    def test_report_on_scheduled_mapping(self):
        wl = conv1d(K=4, C=4, P=14, R=3)
        result = schedule(wl, tiny(l1_words=64, l2_words=512, pes=4))
        text = mapping_report(result.mapping, result.cost)
        assert "valid" in text
