"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_architecture, build_workload, main


class TestBuilders:
    def test_build_workload(self):
        wl = build_workload("conv1d", ["K=4", "C=4", "P=14", "R=3"])
        assert wl.dims == {"K": 4, "C": 4, "P": 14, "R": 3}

    def test_build_workload_lowercase_dims(self):
        wl = build_workload("mttkrp", ["i=8", "k=8", "l=8", "j=4"])
        assert wl.dims["I"] == 8

    def test_missing_dims_rejected(self):
        with pytest.raises(SystemExit, match="missing"):
            build_workload("conv1d", ["K=4"])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit, match="unknown workload"):
            build_workload("fft", [])

    def test_bad_dim_syntax_rejected(self):
        with pytest.raises(SystemExit, match="DIM=SIZE"):
            build_workload("conv1d", ["K4"])

    def test_build_architecture(self):
        assert build_architecture("simba").name == "simba-like"
        with pytest.raises(SystemExit, match="unknown architecture"):
            build_architecture("tpu")

    def test_build_architecture_from_config_file(self):
        arch = build_architecture("configs/simba.json")
        assert arch.name == "simba-like"
        assert arch.num_levels == 4

    def test_missing_config_file(self):
        with pytest.raises(SystemExit, match="cannot read"):
            build_architecture("no/such/file.json")


class TestCommands:
    def test_schedule_command(self, capsys, tmp_path):
        out = str(tmp_path / "m.json")
        code = main([
            "schedule", "--workload", "conv1d", "--arch", "tiny",
            "--output", out, "K=4", "C=4", "P=14", "R=3",
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "EDP" in captured
        assert "candidates evaluated" in captured
        with open(out) as handle:
            doc = json.load(handle)
        assert doc["workload"]["name"] == "conv1d"

    def test_evaluate_command(self, capsys, tmp_path):
        out = str(tmp_path / "m.json")
        main(["schedule", "--workload", "conv1d", "--arch", "tiny",
              "--output", out, "K=4", "C=4", "P=14", "R=3"])
        capsys.readouterr()
        code = main(["evaluate", out, "--json"])
        assert code == 0
        captured = capsys.readouterr().out
        assert '"valid": true' in captured

    def test_describe_arch(self, capsys):
        assert main(["describe", "--arch", "simba"]) == 0
        assert "GlobalBuf" in capsys.readouterr().out

    def test_describe_workload(self, capsys):
        code = main(["describe", "--workload", "conv1d",
                     "K=4", "C=4", "P=14", "R=3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "reused by" in out

    def test_compare_command(self, capsys):
        code = main([
            "compare", "--workload", "conv1d", "--arch", "tiny",
            "--mappers=cosa", "K=4", "C=4", "P=14", "R=3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "sunstone" in out
        assert "cosa-like" in out


class TestSparsityFlags:
    ARGS = ["--workload", "mmc", "--arch", "tiny",
            "I=8", "J=8", "K=8", "L=8"]

    def test_schedule_with_sparsity(self, capsys):
        code = main(["schedule", *self.ARGS,
                     "--density", "A=0.05", "--format", "A=bitmask",
                     "--saf", "B=gating"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sparsity: A: d=0.05 bitmask/skipping" in out
        assert "B: d=1 coordinate/gating" in out

    def test_density_one_matches_dense_run(self, capsys):
        assert main(["schedule", *self.ARGS]) == 0
        dense = capsys.readouterr().out
        assert main(["schedule", *self.ARGS, "--density", "A=1.0",
                     "--format", "A=rle"]) == 0
        degenerate = capsys.readouterr().out
        line = next(l for l in dense.splitlines() if "energy" in l)
        assert line in degenerate

    def test_unknown_tensor_rejected(self):
        with pytest.raises(SystemExit, match="unknown tensors"):
            main(["schedule", *self.ARGS, "--density", "Z=0.1"])

    def test_bad_density_rejected(self):
        with pytest.raises(SystemExit, match="not a number"):
            main(["schedule", *self.ARGS, "--density", "A=dense"])

    def test_compare_accepts_sparsity(self, capsys):
        code = main(["compare", *self.ARGS, "--mappers=cosa",
                     "--density", "A=0.1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sunstone" in out and "cosa-like" in out


class TestStatsJson:
    def test_schedule_stats_json(self, capsys, tmp_path):
        path = tmp_path / "stats.json"
        code = main(["schedule", "--workload", "conv1d", "--arch", "tiny",
                     "--stats-json", str(path),
                     "K=4", "C=4", "P=14", "R=3"])
        assert code == 0
        assert f"stats saved to {path}" in capsys.readouterr().out
        doc = json.loads(path.read_text())
        assert doc["command"] == "schedule"
        assert doc["workload"] == "conv1d"
        assert doc["cost"]["valid"] is True
        assert doc["cost"]["energy_pj"] > 0
        assert doc["mapping"]["levels"]
        assert doc["search"]["evaluations"] > 0
        assert 0.0 <= doc["search"]["hit_rate"] <= 1.0

    def test_schedule_stats_json_records_sparsity(self, tmp_path):
        path = tmp_path / "stats.json"
        main(["schedule", "--workload", "mmc", "--arch", "tiny",
              "--stats-json", str(path), "--density", "A=0.05",
              "I=8", "J=8", "K=8", "L=8"])
        doc = json.loads(path.read_text())
        assert "A: d=0.05" in doc["sparsity"]

    def test_compare_stats_json(self, tmp_path):
        path = tmp_path / "stats.json"
        code = main(["compare", "--workload", "conv1d", "--arch", "tiny",
                     "--mappers=cosa", "--stats-json", str(path),
                     "K=4", "C=4", "P=14", "R=3"])
        assert code == 0
        doc = json.loads(path.read_text())
        assert doc["command"] == "compare"
        names = [entry["mapper"] for entry in doc["mappers"]]
        assert "sunstone" in names and "cosa-like" in names
        sunstone = next(e for e in doc["mappers"] if e["mapper"] == "sunstone")
        assert sunstone["found"] is True
        assert sunstone["cost"]["energy_pj"] > 0

    def test_network_stats_json(self, capsys, tmp_path):
        model = tmp_path / "net.json"
        model.write_text(json.dumps({"name": "toy", "layers": [
            {"type": "conv2d", "name": "c1",
             "dims": {"N": 1, "K": 4, "C": 4, "P": 7, "Q": 7,
                      "R": 3, "S": 3}},
        ]}))
        path = tmp_path / "stats.json"
        code = main(["network", str(model), "--arch", "tiny",
                     "--stats-json", str(path)])
        assert code == 0
        doc = json.loads(path.read_text())
        assert doc["command"] == "network"
        assert doc["totals"]["energy_pj"] > 0
        assert len(doc["layers"]) == 1
        assert doc["layers"][0]["cost"]["valid"] is True
