"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_architecture, build_workload, main


class TestBuilders:
    def test_build_workload(self):
        wl = build_workload("conv1d", ["K=4", "C=4", "P=14", "R=3"])
        assert wl.dims == {"K": 4, "C": 4, "P": 14, "R": 3}

    def test_build_workload_lowercase_dims(self):
        wl = build_workload("mttkrp", ["i=8", "k=8", "l=8", "j=4"])
        assert wl.dims["I"] == 8

    def test_missing_dims_rejected(self):
        with pytest.raises(SystemExit, match="missing"):
            build_workload("conv1d", ["K=4"])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit, match="unknown workload"):
            build_workload("fft", [])

    def test_bad_dim_syntax_rejected(self):
        with pytest.raises(SystemExit, match="DIM=SIZE"):
            build_workload("conv1d", ["K4"])

    def test_build_architecture(self):
        assert build_architecture("simba").name == "simba-like"
        with pytest.raises(SystemExit, match="unknown architecture"):
            build_architecture("tpu")

    def test_build_architecture_from_config_file(self):
        arch = build_architecture("configs/simba.json")
        assert arch.name == "simba-like"
        assert arch.num_levels == 4

    def test_missing_config_file(self):
        with pytest.raises(SystemExit, match="cannot read"):
            build_architecture("no/such/file.json")


class TestCommands:
    def test_schedule_command(self, capsys, tmp_path):
        out = str(tmp_path / "m.json")
        code = main([
            "schedule", "--workload", "conv1d", "--arch", "tiny",
            "--output", out, "K=4", "C=4", "P=14", "R=3",
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "EDP" in captured
        assert "candidates evaluated" in captured
        with open(out) as handle:
            doc = json.load(handle)
        assert doc["workload"]["name"] == "conv1d"

    def test_evaluate_command(self, capsys, tmp_path):
        out = str(tmp_path / "m.json")
        main(["schedule", "--workload", "conv1d", "--arch", "tiny",
              "--output", out, "K=4", "C=4", "P=14", "R=3"])
        capsys.readouterr()
        code = main(["evaluate", out, "--json"])
        assert code == 0
        captured = capsys.readouterr().out
        assert '"valid": true' in captured

    def test_describe_arch(self, capsys):
        assert main(["describe", "--arch", "simba"]) == 0
        assert "GlobalBuf" in capsys.readouterr().out

    def test_describe_workload(self, capsys):
        code = main(["describe", "--workload", "conv1d",
                     "K=4", "C=4", "P=14", "R=3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "reused by" in out

    def test_compare_command(self, capsys):
        code = main([
            "compare", "--workload", "conv1d", "--arch", "tiny",
            "--mappers=cosa", "K=4", "C=4", "P=14", "R=3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "sunstone" in out
        assert "cosa-like" in out
