"""Tests for the serve subsystem (protocol, jobs, HTTP, bit-identity).

The load-bearing guarantees pinned here:

* a daemon job's merged result is **bit-identical** to the equivalent
  cold CLI invocation — same best mapping, cost and candidate
  evaluation count — for schedule (any shard count), compare (every
  mapper row) and network jobs;
* worker deaths (injected via ``REPRO_SERVE_KILL_TASK``) and daemon
  restarts (journal + ``resume``) never change results;
* the CLI SIGTERM path drains cleanly with exit 143 (satellite 1).
"""

import asyncio
import json
import signal
import socket
import subprocess
import sys
import threading
from collections import Counter
from concurrent.futures import Future
from pathlib import Path

import pytest

from repro.cli import (
    _cost_dict,
    build_architecture,
    build_workload,
    compare_runners,
    main,
    mapper_row,
)
from repro.core import SchedulerOptions, schedule
from repro.core.network import schedule_network
from repro.mapping.serialize import mapping_to_dict, workload_to_dict
from repro.search import CheckpointJournal, read_journal_entries
from repro.serve import (
    FleetBackend,
    JobManager,
    ProtocolError,
    QueueFullError,
    ServeClient,
    ServeConfig,
    ServeDaemon,
    SharedEvalCache,
    WorkerFleet,
    decompose_job,
    job_fingerprint,
    merge_job,
    normalize_job,
)
from repro.serve.protocol import merge_stats, outcome_sort_key
from repro.serve.tasks import run_task

REPO_ROOT = Path(__file__).resolve().parent.parent

SMALL_CONV = {"kind": "conv1d", "dims": {"K": 4, "C": 4, "P": 14, "R": 3}}
SMALL_FC = {"kind": "fc", "dims": {"N": 2, "K": 8, "C": 8}}


def rt(doc):
    """JSON round-trip, matching what crosses the wire/journal."""
    return json.loads(json.dumps(doc))


def sans_timing(doc):
    """``doc`` with every wall-clock field removed, recursively — the
    only part of a merged result that legitimately varies across runs."""
    if isinstance(doc, dict):
        return {k: sans_timing(v) for k, v in doc.items()
                if "time_s" not in k}
    if isinstance(doc, list):
        return [sans_timing(v) for v in doc]
    return doc


def schedule_spec(**overrides):
    spec = {"kind": "schedule", "workload": dict(SMALL_CONV),
            "arch": "tiny"}
    spec.update(overrides)
    return spec


async def _daemon_session(config, body):
    """Run ``await body(daemon)`` against a serving daemon, then stop."""
    daemon = ServeDaemon(config)
    server = asyncio.get_running_loop().create_task(daemon.serve())
    try:
        while daemon.manager is None or daemon.port is None:
            await asyncio.sleep(0.01)
        return await body(daemon)
    finally:
        daemon.request_stop()
        await server


def with_daemon(body, **config_kwargs):
    config_kwargs.setdefault("port", 0)
    config_kwargs.setdefault("workers", 0)
    return asyncio.run(_daemon_session(ServeConfig(**config_kwargs), body))


def run_jobs(specs, **config_kwargs):
    """Submit specs sequentially to one fresh daemon; return Job records."""
    async def body(daemon):
        jobs = []
        for spec in specs:
            job = daemon.manager.submit(spec)
            await job.runner
            jobs.append(job)
        return jobs
    return with_daemon(body, **config_kwargs)


# ---------------------------------------------------------------------------
# protocol: normalisation, decomposition, merging
# ---------------------------------------------------------------------------

class TestProtocol:
    def test_rejects_bad_specs(self):
        with pytest.raises(ProtocolError, match="kind"):
            normalize_job({"kind": "frobnicate"})
        with pytest.raises(ProtocolError, match="workload"):
            normalize_job({"kind": "schedule"})
        with pytest.raises(ProtocolError, match="shards"):
            normalize_job(schedule_spec(shards=0))
        with pytest.raises(ProtocolError, match="architecture"):
            normalize_job(schedule_spec(arch="tpu"))
        with pytest.raises(ProtocolError, match="mapper"):
            normalize_job({"kind": "compare", "workload": SMALL_CONV,
                           "mappers": "alexnet"})
        with pytest.raises(ProtocolError, match="layers"):
            normalize_job({"kind": "network", "layers": []})
        with pytest.raises(ProtocolError, match="objective"):
            normalize_job(schedule_spec(objective="latency"))

    def test_tech_field_resolves_and_keys_the_fingerprint(self):
        base = normalize_job(schedule_spec())
        alt = normalize_job(schedule_spec(tech="cmos7"))
        assert alt["tech"] == "cmos7"
        assert "tech" not in base
        # The resolved arch doc embeds the pack's energies, and the job
        # fingerprint separates the two runs.
        assert alt["arch"] != base["arch"]
        assert job_fingerprint(alt) != job_fingerprint(base)
        # Explicitly requesting the default pack is also recorded.
        default = normalize_job(schedule_spec(tech="cmos45"))
        assert default["tech"] == "cmos45"
        assert default["arch"] == base["arch"]
        assert job_fingerprint(default) != job_fingerprint(base)

    def test_rejects_unknown_tech(self):
        with pytest.raises(ProtocolError, match="technology"):
            normalize_job(schedule_spec(tech="3nm-imaginary"))

    def test_normalisation_preserves_dim_order(self):
        # Dict order in the workload doc is the searchers' iteration
        # order; sorting it would change sampler trajectories vs the
        # cold CLI (the bug this pins).
        job = normalize_job(schedule_spec())
        assert list(job["workload"]["dims"]) == ["K", "C", "P", "R"]

    def test_fingerprint_is_content_keyed(self):
        a = normalize_job(schedule_spec())
        b = normalize_job(schedule_spec())
        c = normalize_job(schedule_spec(shards=2))
        assert job_fingerprint(a) == job_fingerprint(b)
        assert job_fingerprint(a) != job_fingerprint(c)

    def test_schedule_decomposes_into_shard_tasks(self):
        job = normalize_job(schedule_spec(shards=3))
        tasks = decompose_job(job)
        assert [t["shard"] for t in tasks] == [[0, 3], [1, 3], [2, 3]]
        # shards=1 must be the *unsharded* CLI run, not --shard 0/1.
        solo = decompose_job(normalize_job(schedule_spec()))
        assert solo[0]["shard"] is None

    def test_compare_decomposes_in_canonical_cli_order(self):
        job = normalize_job({"kind": "compare", "workload": SMALL_CONV,
                             "arch": "tiny", "mappers": "cosa,timeloop"})
        names = [t["name"] for t in decompose_job(job)]
        assert names == ["sunstone", "timeloop-like", "cosa-like"]

    def test_network_dedupes_repeated_shapes(self):
        layers = [SMALL_CONV, SMALL_FC, SMALL_CONV]
        job = normalize_job({"kind": "network", "arch": "tiny",
                             "layers": layers})
        tasks = decompose_job(job)
        assert len(tasks) == 2
        assert tasks[0]["covers"] == [0, 2]

    def test_merge_requires_all_parts(self):
        job = normalize_job(schedule_spec(shards=2))
        with pytest.raises(ProtocolError, match="incomplete"):
            merge_job(job, {})

    def test_merge_stats_recomputes_derived_ratios(self):
        merged = merge_stats([
            {"evaluations": 6, "cache_hits": 2, "workers": 2,
             "hit_rate": 0.25, "requests": 8,
             "faults": {"degraded_serial": False, "retries": 1}},
            {"evaluations": 2, "cache_hits": 6, "workers": 1,
             "hit_rate": 0.75, "requests": 8,
             "faults": {"degraded_serial": True, "retries": 2}},
        ])
        assert merged["evaluations"] == 8
        assert merged["cache_hits"] == 8
        assert merged["requests"] == 16
        assert merged["hit_rate"] == 0.5
        assert merged["workers"] == 2
        assert merged["faults"] == {"degraded_serial": True, "retries": 3}

    def test_outcome_sort_key_ranks_validity_then_value(self):
        lose = {"found": False, "cost": None}
        ok = {"found": True,
              "cost": {"edp": 2.0, "energy_pj": 1.0, "valid": True},
              "mapping": {"levels": []}}
        invalid = {"found": True,
                   "cost": {"edp": 1.0, "energy_pj": 1.0, "valid": False},
                   "mapping": {"levels": []}}
        ranked = sorted([lose, invalid, ok],
                        key=lambda d: outcome_sort_key(d, "edp"))
        assert ranked == [ok, invalid, lose]


# ---------------------------------------------------------------------------
# bit-identity vs the cold CLI
# ---------------------------------------------------------------------------

def cold_schedule(shard=None):
    workload = build_workload("conv1d", ["K=4", "C=4", "P=14", "R=3"])
    arch = build_architecture("tiny")
    result = schedule(workload, arch, SchedulerOptions(shard=shard))
    return rt({"found": result.found,
               "mapping": mapping_to_dict(result.mapping),
               "cost": _cost_dict(result.cost),
               "evaluations": result.stats.evaluations})


class TestBitIdentity:
    def test_one_shard_job_equals_cold_cli_run(self):
        job, = run_jobs([schedule_spec()])
        cold = cold_schedule()
        assert job.state == "done", job.error
        assert job.result["mapping"] == cold["mapping"]
        assert job.result["cost"] == cold["cost"]
        assert job.result["evaluations"] == cold["evaluations"]
        assert job.result["status"] == "ok"

    def test_sharded_job_equals_canonical_merge_of_cold_shards(self):
        n = 3
        job, = run_jobs([schedule_spec(shards=n)])
        colds = [cold_schedule(shard=(i, n)) for i in range(n)]
        best = min(colds, key=lambda d: outcome_sort_key(d, "edp"))
        assert job.state == "done", job.error
        assert job.result["mapping"] == best["mapping"]
        assert job.result["cost"] == best["cost"]
        assert job.result["evaluations"] == sum(c["evaluations"]
                                                for c in colds)
        assert [p["shard"] for p in job.result["per_shard"]] == [
            [i, n] for i in range(n)]

    def test_compare_job_rows_equal_cold_cli_rows(self):
        workload = build_workload("conv1d", ["K=4", "C=4", "P=14", "R=3"])
        arch = build_architecture("tiny")
        runners = compare_runners(workload, arch, SchedulerOptions())
        want = {name: rt(mapper_row(name, runner()))
                for name, runner in runners.items()
                if name in ("sunstone", "timeloop-like", "gamma-like")}
        job, = run_jobs([{
            "kind": "compare", "workload": SMALL_CONV, "arch": "tiny",
            "mappers": "timeloop,gamma",
        }])
        assert job.state == "done", job.error
        rows = {row["mapper"]: row for row in job.result["mappers"]}
        assert set(rows) == set(want)
        for name, cold in want.items():
            assert rows[name]["mapping"] == cold["mapping"], name
            assert rows[name]["cost"] == cold["cost"], name
            assert rows[name]["evaluations"] == cold["evaluations"], name
            assert rows[name]["status"] == cold["status"], name

    def test_network_job_equals_cold_schedule_network(self):
        model = [build_workload("conv1d", ["K=4", "C=4", "P=14", "R=3"]),
                 build_workload("fc", ["N=2", "K=8", "C=8"])]
        model.append(model[0])
        network = schedule_network(model, build_architecture("tiny"),
                                   SchedulerOptions())
        job, = run_jobs([{
            "kind": "network", "arch": "tiny",
            "layers": [workload_to_dict(w) for w in model],
        }])
        assert job.state == "done", job.error
        result = job.result
        assert result["found_all"] is network.all_found
        for got, entry in zip(result["layers"], network.layers):
            assert got["mapping"] == rt(mapping_to_dict(entry.result.mapping))
            assert got["cost"] == rt(_cost_dict(entry.result.cost))
            assert got["shared_with"] == entry.shared_with
        totals = rt({"energy_pj": network.total_energy_pj,
                     "cycles": network.total_cycles,
                     "edp": network.total_edp})
        assert result["totals"]["energy_pj"] == totals["energy_pj"]
        assert result["totals"]["cycles"] == totals["cycles"]
        assert result["totals"]["edp"] == totals["edp"]
        assert result["totals"]["unique_searches"] == 2

    def test_warm_cache_changes_accounting_but_never_results(self):
        first, second = run_jobs([schedule_spec(), schedule_spec()])
        assert first.seed_hits == 0
        assert second.seed_hits > 0
        # The shared cache is a pure accelerator: identical outcome...
        assert second.result["mapping"] == first.result["mapping"]
        assert second.result["cost"] == first.result["cost"]
        assert second.result["evaluations"] == first.result["evaluations"]
        # ...with strictly less model execution.
        assert (second.result["search"]["evaluations"]
                < first.result["search"]["evaluations"])


# ---------------------------------------------------------------------------
# fleet: worker death and recovery
# ---------------------------------------------------------------------------

class TestFleet:
    def test_killed_worker_is_retried_bit_identically(self, monkeypatch):
        job_inline, = run_jobs([schedule_spec(shards=2)])
        monkeypatch.setenv("REPRO_SERVE_KILL_TASK", "j00001:1")

        async def body(daemon):
            job = daemon.manager.submit(schedule_spec(shards=2))
            await job.runner
            return job, daemon.fleet.stats()

        job, fleet_stats = with_daemon(body, workers=1)
        assert job.state == "done", job.error
        assert fleet_stats["crashes_recovered"] >= 1
        assert fleet_stats["retries"] >= 1
        assert job.result["mapping"] == job_inline.result["mapping"]
        assert job.result["cost"] == job_inline.result["cost"]
        assert job.result["evaluations"] == job_inline.result["evaluations"]

    def test_fleet_rejects_bad_config(self):
        with pytest.raises(ValueError):
            WorkerFleet(-1)
        with pytest.raises(ValueError):
            WorkerFleet(0, max_task_attempts=0)

    def test_task_error_propagates_without_retry(self):
        # A deterministic task error (bad workload doc) must surface
        # immediately rather than burn the retry budget.
        bad = {"type": "schedule", "index": 0, "workload": {"bad": 1},
               "arch": {}, "objective": "edp", "sparsity": None,
               "shard": None, "options": {"batch": True, "batch_gen": True,
                                          "cache_size": None}}
        with pytest.raises(Exception):
            run_task({"job_id": "x", "task": bad, "seed": [], "attempt": 0})


# ---------------------------------------------------------------------------
# connection/lifecycle bugfixes (this PR's satellites)
# ---------------------------------------------------------------------------

def raw_http(port, data, timeout=20.0):
    """One raw request on a fresh socket; returns the response bytes."""
    with socket.create_connection(("127.0.0.1", port),
                                  timeout=timeout) as sock:
        if data:
            sock.sendall(data)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return b"".join(chunks)


class TestConnectionHardening:
    def test_negative_content_length_is_rejected_with_400(self):
        # int("-5") parses, and readexactly(-5) used to blow up into a
        # 500 via the blanket handler.
        async def body(daemon):
            return await asyncio.to_thread(
                raw_http, daemon.port,
                b"POST /jobs HTTP/1.1\r\nContent-Length: -5\r\n\r\n")

        response = with_daemon(body)
        assert response.startswith(b"HTTP/1.1 400 ")
        assert b"Content-Length" in response

    def test_oversized_content_length_is_rejected_with_400(self):
        async def body(daemon):
            return await asyncio.to_thread(
                raw_http, daemon.port,
                b"POST /jobs HTTP/1.1\r\n"
                b"Content-Length: 999999999999\r\n\r\n")

        response = with_daemon(body)
        assert response.startswith(b"HTTP/1.1 400 ")
        assert b"too large" in response

    def test_stalled_request_times_out_with_408(self):
        # A client that connects and never finishes its headers must
        # not pin the handler task forever.
        async def body(daemon):
            return await asyncio.to_thread(
                raw_http, daemon.port, b"POST /jobs HTTP/1.1\r\n")

        response = with_daemon(body, read_timeout_s=0.3)
        assert response.startswith(b"HTTP/1.1 408 ")


class _FailingFleet(FleetBackend):
    """Task index 1 fails fast; every other task lingers and must be
    cancelled instead of journaling parts for a dead job."""

    workers = 4

    def __init__(self):
        self.cancelled = 0

    async def run(self, payload):
        index = payload["task"]["index"]
        if index == 1:
            await asyncio.sleep(0.05)
            raise RuntimeError("deterministic task error")
        try:
            await asyncio.sleep(60)
        except asyncio.CancelledError:
            self.cancelled += 1
            raise
        return {"index": index, "doc": {}, "stats": None,
                "seed_hits": 0, "entries": [], "wall_time_s": 0.0}

    def stats(self):
        return {"backend": "fake"}

    def close(self):
        pass


class TestJobLifecycle:
    def test_first_failure_cancels_siblings_no_stray_journal_appends(
            self, tmp_path):
        journal = CheckpointJournal(str(tmp_path / "serve.jsonl"),
                                    {"kind": "serve"})
        fleet = _FailingFleet()

        async def body():
            manager = JobManager(fleet, SharedEvalCache(), journal=journal)
            job = manager.submit(schedule_spec(shards=3))
            await job.runner
            assert job.state == "failed"
            assert "deterministic task error" in job.error
            # Give any stray sibling time to (incorrectly) journal.
            await asyncio.sleep(0.2)
            return job

        job = asyncio.run(body())
        assert fleet.cancelled == 2
        assert journal.all("task") == []
        assert [e["id"] for e in journal.all("failed")] == [job.id]

    def test_gate_follows_backend_dispatch_width(self):
        async def probe():
            return JobManager(_FailingFleet(),
                              SharedEvalCache())._gate._value

        assert asyncio.run(probe()) == 4


class _CountingJournal:
    def __init__(self, inner):
        self.inner = inner
        self.all_calls = Counter()

    def all(self, kind):
        self.all_calls[kind] += 1
        return self.inner.all(kind)

    def append(self, entry):
        return self.inner.append(entry)


class TestResumeScan:
    def test_resume_scans_the_journal_once_not_once_per_job(
            self, tmp_path):
        journal_path = str(tmp_path / "serve.jsonl")
        jobs = run_jobs([schedule_spec(), schedule_spec(shards=2),
                         schedule_spec(shards=3)],
                        journal_path=journal_path)
        assert all(job.state == "done" for job in jobs)
        counting = _CountingJournal(CheckpointJournal(
            journal_path, {"kind": "serve"}, resume=True))
        manager = JobManager(WorkerFleet(0), SharedEvalCache(),
                             journal=counting)
        restarted = manager.resume()
        assert restarted == []
        assert len(manager.jobs) == 3
        assert all(job.state == "done" for job in manager.jobs.values())
        # O(1) journal passes however many jobs the journal holds
        # (used to be one full task scan per job).
        assert counting.all_calls == {"failed": 1, "task": 1, "job": 1}


class TestFleetCounters:
    def test_cancelled_run_cancels_the_pool_future(self):
        class _StubPool:
            def __init__(self):
                self.futures = []

            def submit(self, fn, payload):
                future = Future()
                self.futures.append(future)
                return future

            def shutdown(self, wait=False, cancel_futures=False):
                pass

        async def body():
            fleet = WorkerFleet(0)
            fleet.workers = 1  # force the pooled path onto the stub
            stub = fleet._pool = _StubPool()
            task = asyncio.ensure_future(fleet.run(
                {"job_id": "x", "task": {"index": 0}, "seed": [],
                 "attempt": 0}))
            while not stub.futures:
                await asyncio.sleep(0.01)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            return stub

        stub = asyncio.run(body())
        # The abandoned pool future used to keep grinding; now the
        # cancellation reaches it.
        assert stub.futures[0].cancelled()

    def test_counter_writes_share_the_stats_lock(self):
        fleet = WorkerFleet(0)
        with fleet._lock:
            thread = threading.Thread(target=fleet._count,
                                      args=("tasks_run",))
            thread.start()
            thread.join(timeout=0.2)
            assert thread.is_alive()  # blocked on the held lock
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert fleet.tasks_run == 1


class TestBackpressure:
    def test_full_queue_answers_429_with_retry_after(self):
        # A remote fleet with no workers keeps every task pending, so
        # the second submit deterministically overflows the bound.
        async def body(daemon):
            manager = daemon.manager
            manager.submit(schedule_spec(shards=2))
            with pytest.raises(QueueFullError) as err:
                manager.submit(schedule_spec())
            assert err.value.retry_after_s >= 1
            spec = json.dumps(schedule_spec()).encode()
            request = (f"POST /jobs HTTP/1.1\r\n"
                       f"Content-Length: {len(spec)}\r\n\r\n"
                       ).encode() + spec
            return await asyncio.to_thread(raw_http, daemon.port, request)

        response = with_daemon(body, fleet="remote", queue_limit=1,
                               poll_s=0.2)
        assert response.startswith(b"HTTP/1.1 429 ")
        assert b"Retry-After:" in response
        assert b"retry_after_s" in response


# ---------------------------------------------------------------------------
# durability: journal, restart, resume
# ---------------------------------------------------------------------------

class TestResume:
    def test_restart_recovers_finished_job_without_rerunning(self, tmp_path):
        journal = str(tmp_path / "serve.jsonl")
        job, = run_jobs([schedule_spec(shards=2)], journal_path=journal)
        assert job.state == "done"

        async def body(daemon):
            recovered = daemon.manager.get(job.id)
            assert recovered is not None
            if recovered.runner is not None:
                await recovered.runner
            # Replay-only recovery: the fleet never executed a task.
            return recovered, daemon.fleet.stats()

        recovered, fleet_stats = with_daemon(body, journal_path=journal,
                                             resume=True)
        assert recovered.state == "done"
        assert recovered.result == job.result
        assert fleet_stats["tasks_run"] == 0

    def test_restart_completes_partial_job_bit_identically(self, tmp_path):
        uninterrupted, = run_jobs([schedule_spec(shards=2)])
        journal = str(tmp_path / "serve.jsonl")
        job, = run_jobs([schedule_spec(shards=2)], journal_path=journal)

        # Simulate a daemon killed after one task: drop one task entry
        # (and the clean-shutdown marker) from the journal.
        from repro.search.checkpoint import _encode_line
        entries = read_journal_entries(journal)
        kept, dropped_one = [], False
        for entry in entries:
            if entry.get("type") == "shutdown":
                continue
            if entry.get("type") == "task" and not dropped_one:
                dropped_one = True
                continue
            kept.append(entry)
        assert dropped_one
        with open(journal, "w", encoding="utf-8") as handle:
            handle.writelines(_encode_line(e) for e in kept)

        async def body(daemon):
            restored = daemon.manager.get(job.id)
            assert restored is not None
            if restored.runner is not None:
                await restored.runner
            return restored

        restored = with_daemon(body, journal_path=journal, resume=True)
        assert restored.state == "done", restored.error
        assert (sans_timing(restored.result)
                == sans_timing(uninterrupted.result))

    def test_daemon_journal_survives_with_stale_temp_sweep(self, tmp_path):
        journal = tmp_path / "serve.jsonl"
        stale = tmp_path / "serve.jsonl.deadbeef.tmp"
        stale.write_text("garbage")
        run_jobs([schedule_spec()], journal_path=str(journal))
        assert not stale.exists()


# ---------------------------------------------------------------------------
# HTTP front-end + client + CLI client commands
# ---------------------------------------------------------------------------

def http_session(body):
    """Serve on an ephemeral port; run blocking client code in a thread."""
    async def outer(daemon):
        client = ServeClient("127.0.0.1", daemon.port)
        return await asyncio.to_thread(body, client)
    return with_daemon(outer)


class TestHttp:
    def test_full_client_round_trip(self):
        def drive(client):
            health = client.healthz()
            assert health["ok"] is True
            row = client.submit(schedule_spec(shards=2))
            assert row["kind"] == "schedule"
            assert row["tasks_total"] == 2
            doc = client.result(row["id"], wait=True)
            assert doc["state"] == "done"
            assert doc["result"]["status"] == "ok"
            jobs = client.jobs()
            assert [j["id"] for j in jobs] == [row["id"]]
            # /jobs rows surface the merged bound-pruning counters
            # (what ``repro jobs --json`` prints).
            assert jobs[0]["bound"]["regions_tested"] >= 0
            assert "candidates_skipped" in jobs[0]["bound"]
            stats = client.stats()
            assert row["id"] in stats["jobs"]
            assert stats["cache"]["admitted"] > 0
            assert "faults" in stats["jobs"][row["id"]]["search"]
            assert "bound" in stats["jobs"][row["id"]]["search"]
            # The winning shard's certificate survives the merge.
            assert doc["result"]["certificate"] is not None
            assert doc["result"]["certificate"]["gap_pct"] >= 0.0
            return doc

        doc = http_session(drive)
        best = min([cold_schedule(shard=(0, 2)), cold_schedule(shard=(1, 2))],
                   key=lambda d: outcome_sort_key(d, "edp"))
        # Bit-identity holds across the wire too, not just in-process.
        assert doc["result"]["mapping"] == best["mapping"]
        assert doc["result"]["cost"] == best["cost"]

    def test_error_responses(self):
        def drive(client):
            from repro.serve import ServeError
            with pytest.raises(ServeError, match="kind"):
                client.submit({"kind": "nope"})
            with pytest.raises(ServeError, match="no such job"):
                client.result("j99999")
            with pytest.raises(ServeError, match="no route"):
                client._request("GET", "/frobnicate")
            return True

        assert http_session(drive)

    def test_result_conflict_while_running_then_wait(self):
        def drive(client):
            row = client.submit(schedule_spec(shards=2))
            doc = client.result(row["id"], wait=True)
            assert doc["result"]["found"]
            return True

        assert http_session(drive)


class TestServeCli:
    @pytest.fixture()
    def daemon_proc(self, tmp_path):
        env = {"PYTHONPATH": str(REPO_ROOT / "src"),
               "PATH": "/usr/bin:/bin"}
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=env, cwd=str(tmp_path))
        ready = proc.stdout.readline()
        assert "serving on http://" in ready, proc.stderr.read()
        port = int(ready.rsplit(":", 1)[1].split()[0])
        try:
            yield port
        finally:
            if proc.poll() is None:
                proc.terminate()
            proc.wait(timeout=30)

    def test_submit_jobs_result_commands(self, daemon_proc, capsys):
        port = str(daemon_proc)
        code = main(["submit", "--port", port, "--workload", "conv1d",
                     "--arch", "tiny", "--shards", "2", "--wait",
                     "K=4", "C=4", "P=14", "R=3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "submitted j00001" in out
        assert "status ok" in out

        assert main(["jobs", "--port", port]) == 0
        out = capsys.readouterr().out
        assert "j00001" in out and "done" in out

        assert main(["result", "--port", port, "j00001"]) == 0
        out = capsys.readouterr().out
        assert "candidates evaluated" in out

    def test_client_error_against_dead_daemon(self, capsys):
        code = main(["jobs", "--port", "1"])  # nothing listens on port 1
        assert code == 1
        assert "serve error" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# satellite 1: SIGTERM drains cleanly with exit 143
# ---------------------------------------------------------------------------

_SIGTERM_ARGS = ["--workload", "conv1d", "--arch", "tiny",
                 "K=4", "C=4", "P=14", "R=3"]


class TestGracefulSigterm:
    def test_sigterm_mid_search_exits_143_and_flushes_journal(
            self, tmp_path):
        ckpt = str(tmp_path / "term.jsonl")
        env = {"PYTHONPATH": str(REPO_ROOT / "src"),
               "PATH": "/usr/bin:/bin",
               "REPRO_CHECKPOINT_KILL_AFTER": "1",
               "REPRO_CHECKPOINT_KILL_MODE": "sigterm"}
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "schedule", *_SIGTERM_ARGS,
             "--checkpoint", ckpt],
            capture_output=True, text=True, timeout=600, env=env,
            cwd=str(tmp_path))
        assert proc.returncode == 143, proc.stderr
        assert "terminated" in proc.stderr
        # The final flush appended a durable interruption marker...
        entries = read_journal_entries(ckpt)
        assert any(e.get("type") == "interrupted"
                   and e.get("note") == "sigterm" for e in entries)

        # ...and the journal still resumes to the uninterrupted result.
        env_resume = {k: v for k, v in env.items()
                      if not k.startswith("REPRO_CHECKPOINT_KILL")}
        resumed = subprocess.run(
            [sys.executable, "-m", "repro", "schedule", *_SIGTERM_ARGS,
             "--checkpoint", ckpt, "--resume"],
            capture_output=True, text=True, timeout=600, env=env_resume,
            cwd=str(tmp_path))
        assert resumed.returncode == 0, resumed.stderr
        cold = subprocess.run(
            [sys.executable, "-m", "repro", "schedule", *_SIGTERM_ARGS],
            capture_output=True, text=True, timeout=600, env=env_resume,
            cwd=str(tmp_path))

        def essence(out):
            return [line for line in out.splitlines()
                    if "wall" not in line and " in " not in line
                    and "search engine:" not in line]

        assert essence(resumed.stdout) == essence(cold.stdout)

    def test_sigterm_handler_restored_after_main(self):
        before = signal.getsignal(signal.SIGTERM)
        main(["describe", "--arch", "tiny"])
        assert signal.getsignal(signal.SIGTERM) is before

    def test_graceful_exit_is_a_keyboard_interrupt(self):
        # The whole satellite leans on this: every existing interrupt
        # path (pool drain, engine_scope) must catch SIGTERM unchanged.
        from repro.cli import GracefulExit
        assert issubclass(GracefulExit, KeyboardInterrupt)

    def test_sigterm_in_worker_thread_does_not_install_handler(self):
        # Embedders call main() off the main thread; signal.signal would
        # raise ValueError there and must be swallowed.
        codes = []
        thread = threading.Thread(
            target=lambda: codes.append(main(["describe", "--arch",
                                              "tiny"])))
        thread.start()
        thread.join()
        assert codes == [0]
