"""Tests for the invalid-mapping-rate validation harness."""

import pytest

from repro.analysis import MapperOutcome, survey_table, validity_survey
from repro.arch import conventional
from repro.workloads import conv2d


@pytest.fixture(scope="module")
def small_corpus():
    return [
        conv2d(N=1, K=16, C=16, P=14, Q=14, R=3, S=3, name="light"),
        conv2d(N=4, K=64, C=64, P=28, Q=28, R=3, S=3, name="mid"),
    ]


class TestValiditySurvey:
    def test_counts_consistent(self, small_corpus):
        outcomes = validity_survey(small_corpus, conventional(),
                                   mappers=("sunstone", "cosa-like"))
        for outcome in outcomes.values():
            assert outcome.attempted == len(small_corpus)
            assert outcome.valid <= outcome.returned <= outcome.attempted
            assert 0.0 <= outcome.invalid_rate <= 1.0

    def test_sunstone_always_valid(self, small_corpus):
        outcomes = validity_survey(small_corpus, conventional(),
                                   mappers=("sunstone",))
        assert outcomes["sunstone"].invalid_rate == 0.0

    def test_unknown_mapper_rejected(self, small_corpus):
        with pytest.raises(ValueError, match="unknown mappers"):
            validity_survey(small_corpus, conventional(),
                            mappers=("magic",))

    def test_table_rendering(self):
        outcomes = {
            "x": MapperOutcome("x", attempted=4, returned=4, valid=2,
                               best=1),
        }
        lines = survey_table(outcomes)
        assert len(lines) == 2
        assert "50%" in lines[1]
