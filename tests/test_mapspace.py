"""Property tests for the declarative mapspace IR (repro.mapspace).

The contracts under test are the ones every mapper now leans on:

* ``size()`` is analytic and always equals the enumerated stream length;
* ``enumerate()`` is deterministic — same object, same stream;
* ``enumerate(shard=(i, n))`` partitions the stream: the ``n`` shards are
  pairwise disjoint and their index-interleaved union is the full stream;
* pruning passes record per-pass drop counters without ``size()`` ever
  touching the live counters;
* ``head()`` never pulls past its quota (side-effect accounting upstream
  of a cap must match a historical early ``break``).

Hypothesis runs derandomized (seeded) so CI is reproducible.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import tiny
from repro.mapspace import (
    ChainSpace,
    DependentSpace,
    DivisorSpace,
    FactorLattice,
    ListSpace,
    PermutationSpace,
    PointSpace,
    ProductSpace,
    PruneStats,
    check_shard,
    full_mapping_space,
    ordered_factorizations,
)
from repro.workloads import mttkrp

settings.register_profile("mapspace", derandomize=True, max_examples=50)
settings.load_profile("mapspace")


# ---------------------------------------------------------------------------
# size() == len(list(enumerate()))
# ---------------------------------------------------------------------------

@given(extent=st.integers(min_value=1, max_value=360),
       slots=st.integers(min_value=1, max_value=4))
def test_factor_lattice_size_matches_stream(extent, slots):
    lattice = FactorLattice("D", extent, [("t", s) for s in range(slots)])
    items = lattice.materialize()
    assert lattice.size() == len(items)
    assert lattice.size() == ordered_factorizations(extent, slots)
    # Every split multiplies back to the extent, no duplicates.
    assert all(len(split) == slots for split in items)
    products = set()
    for split in items:
        value = 1
        for factor in split:
            value *= factor
        assert value == extent
        products.add(split)
    assert len(products) == len(items)


@given(extent=st.integers(min_value=1, max_value=240),
       bound=st.one_of(st.none(), st.integers(min_value=1, max_value=64)))
def test_divisor_space_size_matches_stream(extent, bound):
    space = DivisorSpace(extent, bound)
    items = space.materialize()
    assert space.size() == len(items)
    assert all(extent % d == 0 for d in items)
    if bound is not None:
        assert all(d <= bound for d in items)


@given(n=st.integers(min_value=0, max_value=5))
def test_permutation_space_size_matches_stream(n):
    dims = tuple(f"D{i}" for i in range(n))
    space = PermutationSpace(dims)
    assert space.size() == len(space.materialize())


@given(axes=st.lists(st.lists(st.integers(0, 5), min_size=0, max_size=4),
                     min_size=1, max_size=3))
def test_product_space_size_matches_stream(axes):
    space = ProductSpace([ListSpace(axis) for axis in axes])
    items = space.materialize()
    assert space.size() == len(items)


@given(items=st.lists(st.integers(-20, 20), max_size=30),
       threshold=st.integers(-20, 20))
def test_filtered_space_size_matches_stream(items, threshold):
    stats = PruneStats()
    space = ListSpace(items).filter(lambda x: x > threshold,
                                    "threshold", stats)
    survivors = space.materialize()
    assert survivors == [x for x in items if x > threshold]
    # A full pass recorded every consideration and drop.
    assert stats.considered.get("threshold", 0) == len(items)
    assert stats.dropped.get("threshold", 0) == len(items) - len(survivors)
    # size() re-counts without disturbing the live counters.
    assert space.size() == len(survivors)
    assert stats.considered.get("threshold", 0) == len(items)


@given(outer=st.lists(st.integers(0, 4), min_size=0, max_size=5))
def test_dependent_space_size_matches_stream(outer):
    space = DependentSpace(
        ListSpace(outer),
        lambda n: ListSpace(list(range(n))),
        combine=lambda n, i: (n, i),
    )
    items = space.materialize()
    assert space.size() == len(items)
    assert items == [(n, i) for n in outer for i in range(n)]


@given(parts=st.lists(st.lists(st.integers(0, 5), max_size=4), max_size=3))
def test_chain_space_size_matches_stream(parts):
    space = ChainSpace([ListSpace(p) for p in parts])
    items = space.materialize()
    assert space.size() == len(items)
    assert items == [x for p in parts for x in p]


# ---------------------------------------------------------------------------
# enumeration determinism
# ---------------------------------------------------------------------------

@given(items=st.lists(st.integers(), max_size=30),
       seed=st.one_of(st.none(), st.integers(0, 2**32 - 1)))
def test_enumeration_is_deterministic(items, seed):
    space = ListSpace(items)
    first = list(space.enumerate(seed=seed))
    second = list(space.enumerate(seed=seed))
    assert first == second
    assert sorted(first) == sorted(items)


@given(items=st.lists(st.integers(), min_size=5, max_size=30, unique=True),
       seed=st.integers(0, 2**16))
def test_seeded_shuffle_is_a_permutation(items, seed):
    space = ListSpace(items)
    shuffled = list(space.enumerate(seed=seed))
    assert sorted(shuffled) == sorted(items)
    assert list(space.enumerate(seed=seed)) == shuffled


# ---------------------------------------------------------------------------
# shard semantics
# ---------------------------------------------------------------------------

@given(items=st.lists(st.integers(), max_size=40),
       count=st.integers(min_value=1, max_value=6))
def test_shards_partition_the_stream(items, count):
    space = ListSpace(items)
    full = space.materialize()
    shards = [list(space.enumerate(shard=(i, count))) for i in range(count)]
    # Union (interleaved by enumeration index) recovers the full stream.
    rebuilt = [None] * len(full)
    for i, shard in enumerate(shards):
        for k, item in enumerate(shard):
            rebuilt[i + k * count] = item
    assert rebuilt == full
    # Disjoint: shard i holds exactly the indices congruent to i.
    for i, shard in enumerate(shards):
        assert shard == full[i::count]
    assert sum(len(s) for s in shards) == len(full)


def test_check_shard_rejects_bad_descriptors():
    assert check_shard(None) is None
    assert check_shard((0, 1)) == (0, 1)
    with pytest.raises(ValueError):
        check_shard((0, 0))
    with pytest.raises(ValueError):
        check_shard((2, 2))
    with pytest.raises(ValueError):
        check_shard((-1, 3))


# ---------------------------------------------------------------------------
# head() quota discipline
# ---------------------------------------------------------------------------

@given(items=st.lists(st.integers(), max_size=20),
       quota=st.integers(min_value=0, max_value=25))
def test_head_never_pulls_past_its_quota(items, quota):
    pulled = []
    space = ListSpace(items).map(lambda x: pulled.append(x) or x).head(quota)
    taken = space.materialize()
    assert taken == items[:quota]
    # The cap consumed exactly the items it yielded — never one extra, so
    # upstream side-effect accounting matches a historical early break.
    assert len(pulled) == min(quota, len(items))


def test_point_space_is_a_single_item():
    space = PointSpace("x")
    assert space.size() == 1
    assert space.materialize() == ["x"]


# ---------------------------------------------------------------------------
# the composed full mapping space (exhaustive mapper's space)
# ---------------------------------------------------------------------------

def test_full_mapping_space_size_and_shards():
    from repro.search import mapping_fingerprint

    workload = mttkrp(4, 2, 2, 4)
    arch = tiny()
    space = full_mapping_space(workload, arch, orders_per_level=2)
    full = [mapping_fingerprint(m) for m in space.enumerate()]
    assert space.size() == len(full)
    shards = [
        [mapping_fingerprint(m) for m in space.enumerate(shard=(i, 3))]
        for i in range(3)
    ]
    # Shard streams are exactly the strided slices of the canonical stream.
    for i, shard in enumerate(shards):
        assert shard == full[i::3]
    assert sum(len(s) for s in shards) == len(full)
