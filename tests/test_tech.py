"""Technology-pack registry and multi-chip hierarchy tests.

The central contract is *bit-identity under the default pack*: resolving
any preset through the ``cmos45`` pack reproduces the historical
hand-pinned energies exactly, so every golden outcome is unchanged —
with batch generation on or off, and with bound pruning on or off.  On
top of that: packs are selectable and actually change energies, pack
identity flows into eval-cache keys (two packs never share entries),
resolved SRAM energies are monotone in capacity, lookup errors carry
their pack/level context, and the two-chiplet preset exercises the
``chip2chip`` link end to end.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import (
    conventional,
    diannao_like,
    simba_like,
    tiny,
    two_chiplet,
)
from repro.core.scheduler import SchedulerOptions, SunstoneScheduler
from repro.energy import (
    CMOS7,
    CMOS45,
    CRYO,
    EnergyLookupError,
    EnergyTable,
    TechnologyError,
    TechnologyPack,
    available_packs,
    get_pack,
    resolve_architecture,
)
from repro.model import evaluate
from repro.model.batch import evaluate_batch
from repro.search import EvalCache, mapping_fingerprint
from repro.search.fingerprint import architecture_fingerprint
from repro.serve.cache import SharedEvalCache
from tests import harness

_SETTINGS = dict(max_examples=40, deadline=None, derandomize=True)


# ---------------------------------------------------------------------------
# default pack == historical constants, bit for bit
# ---------------------------------------------------------------------------

def test_default_pack_reproduces_historical_preset_energies():
    """The cmos45-resolved presets carry the exact floats the goldens pin."""
    arch = conventional()
    assert arch.tech == "cmos45"
    l1 = arch.levels[0]
    assert l1.read_energy == 0.5076467529817257
    assert l1.write_energy == 0.5584114282798983
    assert arch.levels[-1].read_energy == 200.0
    assert arch.mac_energy == 2.2


@pytest.mark.parametrize("preset", [conventional, simba_like,
                                    diannao_like, tiny, two_chiplet])
def test_default_pack_is_the_presets_default(preset):
    """Calling a preset with tech='cmos45' is the same architecture."""
    assert (architecture_fingerprint(preset())
            == architecture_fingerprint(preset(tech="cmos45")))


@pytest.mark.parametrize("options", [
    SchedulerOptions(),
    SchedulerOptions(batch_gen=False),
    SchedulerOptions(bound=False),
    SchedulerOptions(batch_gen=False, bound=False),
], ids=["default", "no-batch-gen", "no-bound", "scalar-no-bound"])
def test_default_pack_matches_goldens(options):
    """Pack resolution must not move any golden outcome, under any of the
    behaviour-preserving engine toggles."""
    golden = json.loads(
        (harness.GOLDEN_DIR / "sunstone_small_conv.json").read_text())
    result = SunstoneScheduler(
        harness.small_conv(), harness.small_arch(), options).schedule()
    assert result.found == golden["found"]
    assert repr(mapping_fingerprint(result.mapping)) == golden["fingerprint"]
    assert result.cost.edp == golden["edp"]
    assert result.cost.energy_pj == golden["energy_pj"]


def test_default_pack_golden_conventional_all_toggles():
    golden = json.loads(
        (harness.GOLDEN_DIR / "sunstone_mttkrp.json").read_text())
    for options in (SchedulerOptions(), SchedulerOptions(batch_gen=False),
                    SchedulerOptions(bound=False)):
        result = SunstoneScheduler(
            harness.medium_mttkrp(), harness.medium_arch(),
            options).schedule()
        assert repr(mapping_fingerprint(result.mapping)) == \
            golden["fingerprint"]
        assert result.cost.edp == golden["edp"]
        assert result.cost.energy_pj == golden["energy_pj"]


# ---------------------------------------------------------------------------
# pack selection
# ---------------------------------------------------------------------------

def test_at_least_three_packs_registered():
    names = available_packs()
    assert len(names) >= 3
    assert {"cmos45", "cmos7", "cryo"} <= set(names)
    assert names[0] == "cmos45"  # default first


def test_packs_change_energies_and_fingerprints():
    base = conventional()
    for name in ("cmos7", "cryo"):
        alt = conventional(tech=name)
        assert alt.tech == name
        assert alt.levels[0].read_energy < base.levels[0].read_energy
        assert alt.mac_energy < base.mac_energy
        assert (architecture_fingerprint(alt)
                != architecture_fingerprint(base))
    # The two non-default packs also differ from each other.
    assert (architecture_fingerprint(conventional(tech="cmos7"))
            != architecture_fingerprint(conventional(tech="cryo")))


def test_get_pack_accepts_names_paths_and_packs(tmp_path):
    assert get_pack("cmos7") is CMOS7
    assert get_pack(CRYO) is CRYO
    with pytest.raises(TechnologyError):
        get_pack("not-a-pack")
    doc = CMOS7.to_dict()
    doc["name"] = "cmos7-variant"
    doc["mac_energy_16b"] = 0.5
    path = tmp_path / "variant.json"
    path.write_text(json.dumps(doc))
    loaded = get_pack(str(path))
    assert loaded.name == "cmos7-variant"
    assert loaded.mac_energy_16b == 0.5


def test_pack_round_trips_through_json():
    for pack in (CMOS45, CMOS7, CRYO):
        assert TechnologyPack.from_dict(pack.to_dict()) == pack
    with pytest.raises(TechnologyError):
        TechnologyPack.from_dict({"name": "x", "bogus_field": 1.0})


def test_overrides_take_precedence():
    pack = TechnologyPack.from_dict({
        "name": "patched", "overrides": {"L1.read": 9.5, "MAC.compute": 0.1},
    })
    arch = resolve_architecture(conventional(), pack)
    assert arch.levels[0].read_energy == 9.5
    assert arch.mac_energy == 0.1
    # Non-overridden actions still come from the pack's estimators
    # (this pack keeps the default coefficients, so they match cmos45).
    assert arch.levels[0].write_energy == conventional().levels[0].write_energy


# ---------------------------------------------------------------------------
# cache-key separation
# ---------------------------------------------------------------------------

def _fp_under(tech):
    workload = harness.small_conv()
    arch = tiny(l1_words=64, l2_words=512, pes=4, tech=tech)
    result = SunstoneScheduler(workload, arch).schedule()
    return mapping_fingerprint(result.mapping), result


def test_eval_cache_never_collides_across_packs():
    """The same hierarchy under two packs yields disjoint cache keys."""
    key45, res45 = _fp_under("cmos45")
    key7, res7 = _fp_under("cmos7")
    assert key45 != key7
    cache = EvalCache()
    cache.put(key45, res45.cost)
    cache.put(key7, res7.cost)
    assert cache.get(key45) is res45.cost
    assert cache.get(key7) is res7.cost


def test_shared_eval_cache_seeds_are_pack_disjoint():
    """seed_for ships only the requesting pack's entries."""
    from repro.search.fingerprint import workload_fingerprint
    workload = harness.small_conv()
    wfp = workload_fingerprint(workload)
    afp45 = architecture_fingerprint(tiny(tech="cmos45"))
    afp7 = architecture_fingerprint(tiny(tech="cmos7"))
    assert afp45 != afp7
    shared = SharedEvalCache()
    shared.admit([((wfp, afp45, "m1"), "cost45"),
                  ((wfp, afp7, "m1"), "cost7")])
    seed45 = shared.seed_for(wfp, afp45)
    seed7 = shared.seed_for(wfp, afp7)
    assert seed45 == [((wfp, afp45, "m1"), "cost45")]
    assert seed7 == [((wfp, afp7, "m1"), "cost7")]


# ---------------------------------------------------------------------------
# physical sanity (seeded hypothesis)
# ---------------------------------------------------------------------------

@settings(**_SETTINGS)
@given(small=st.integers(min_value=6, max_value=20),
       step=st.integers(min_value=1, max_value=6),
       pack=st.sampled_from(["cmos45", "cmos7", "cryo"]))
def test_sram_energy_monotone_in_capacity(small, step, pack):
    """Bigger arrays never cost less per access, under every pack."""
    p = get_pack(pack)
    lo = p.sram_estimate(2 ** small)
    hi = p.sram_estimate(2 ** (small + step))
    assert hi.read_energy >= lo.read_energy
    assert hi.write_energy >= lo.write_energy
    assert hi.write_energy >= hi.read_energy


# ---------------------------------------------------------------------------
# lookup errors carry context (satellite bugfix)
# ---------------------------------------------------------------------------

def test_energy_lookup_error_context():
    table = EnergyTable({"L1.read": 1.0}, pack="cmos7")
    with pytest.raises(EnergyLookupError) as exc:
        table.energy("L2", "read", level="L2")
    msg = str(exc.value)
    assert "L2.read" in msg
    assert "requested by level 'L2'" in msg
    assert "technology pack 'cmos7'" in msg
    assert "L1.read" in msg  # the known actions are listed
    assert isinstance(exc.value, KeyError)  # backwards compatible


def test_energy_lookup_error_from_cost():
    table = EnergyTable({"L1.read": 1.0}, pack="cryo")
    with pytest.raises(EnergyLookupError) as exc:
        table.cost({"L1.read": 2, "DRAM.write": 1}, level="DRAM")
    assert exc.value.component == "DRAM"
    assert exc.value.action == "write"
    assert exc.value.pack == "cryo"


# ---------------------------------------------------------------------------
# two-chiplet / chip2chip
# ---------------------------------------------------------------------------

def test_two_chiplet_schedules_with_chip2chip_energy():
    arch = two_chiplet()
    assert arch.levels[1].link == "chip2chip"
    assert arch.levels[1].link_bandwidth == 8.0  # filled from the pack
    result = SunstoneScheduler(harness.small_conv(), arch).schedule()
    assert result.found
    assert result.cost.chip2chip_energy > 0
    # chip2chip is a tracked subset of the NoC total, never extra energy.
    assert result.cost.chip2chip_energy <= result.cost.noc_energy
    cert = result.stats.prune.bound
    assert cert is not None  # bound pruning ran and certified the result


def test_two_chiplet_scalar_batch_equivalence():
    """The chip2chip energy/latency terms are identical in both paths."""
    np = pytest.importorskip("numpy")  # noqa: F841 - batch path needs it
    arch = two_chiplet()
    result = SunstoneScheduler(harness.small_conv(), arch).schedule()
    scalar = evaluate(result.mapping)
    batch, = evaluate_batch([result.mapping])
    assert batch.energy_pj == scalar.energy_pj
    assert batch.cycles == scalar.cycles
    assert batch.chip2chip_energy == scalar.chip2chip_energy
    assert batch.noc_energy == scalar.noc_energy


def test_chip2chip_bandwidth_bounds_latency():
    """A finite package link throttles cycles; the default does not."""
    from dataclasses import replace
    arch = two_chiplet()
    result = SunstoneScheduler(harness.small_conv(), arch).schedule()
    slow_levels = [
        replace(lvl, link_bandwidth=1e-3) if lvl.link == "chip2chip" else lvl
        for lvl in arch.levels
    ]
    slow = arch.__class__(arch.name, slow_levels, arch.mac_energy,
                          arch.mac_width, tech=arch.tech,
                          mac_word_bits=arch.mac_word_bits)
    remapped = result.mapping.with_arch(slow) if hasattr(
        result.mapping, "with_arch") else None
    if remapped is None:
        from repro.mapping.mapping import Mapping
        remapped = Mapping(result.mapping.workload, slow,
                           result.mapping.levels)
    assert evaluate(remapped).cycles > result.cost.cycles
