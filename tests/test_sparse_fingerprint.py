"""Regression: dense and sparse evaluations must never share a cache key.

The sparsity spec embeds verbatim in the mapping fingerprint, so a dense
engine and a sparse engine can share one :class:`EvalCache` object without
exchanging results.  These tests pin that key separation end-to-end.
"""

from repro.arch import UNIFIED, Architecture, MemoryLevel
from repro.mapping import build_mapping
from repro.search import EvalCache, SearchEngine
from repro.search.fingerprint import mapping_fingerprint
from repro.sparse import SparsitySpec, TensorSparsity, Uniform
from repro.workloads import make_workload


def _arch():
    return Architecture("fp", [
        MemoryLevel("L1", {UNIFIED: 10**6}, read_energy=1.0,
                    write_energy=1.0, fanout=2, fanout_shape=(2, 1)),
        MemoryLevel("DRAM", None, read_energy=64.0, write_energy=64.0),
    ])


def _mapping():
    wl = make_workload(
        "mm", {"I": 8, "J": 8, "K": 8},
        {"A": ["I", "K"], "B": ["K", "J"], "out": ["I", "J"]},
        outputs=["out"],
    )
    return build_mapping(
        wl, _arch(),
        temporal=[{"I": 4, "K": 8}, {"J": 8}],
        spatial=[{"I": 2}, {}],
        orders=[["I", "J", "K"], ["J", "I", "K"]],
    )


SPARSE = SparsitySpec.of({
    "A": TensorSparsity(Uniform(0.05), format="coordinate",
                        action="skipping"),
})


def test_dense_and_sparse_fingerprints_differ():
    mapping = _mapping()
    assert mapping_fingerprint(mapping) != \
        mapping_fingerprint(mapping, sparsity=SPARSE)


def test_distinct_specs_get_distinct_keys():
    mapping = _mapping()
    other = SparsitySpec.of({
        "A": TensorSparsity(Uniform(0.06), format="coordinate",
                            action="skipping"),
    })
    fmt = SparsitySpec.of({
        "A": TensorSparsity(Uniform(0.05), format="bitmask",
                            action="skipping"),
    })
    keys = {
        mapping_fingerprint(mapping, sparsity=spec)
        for spec in (SPARSE, other, fmt, None)
    }
    assert len(keys) == 4


def test_equal_specs_share_a_key():
    mapping = _mapping()
    twin = SparsitySpec.of({
        "A": TensorSparsity(Uniform(0.05), format="coordinate",
                            action="skipping"),
    })
    assert mapping_fingerprint(mapping, sparsity=SPARSE) == \
        mapping_fingerprint(mapping, sparsity=twin)


def test_engine_fingerprint_includes_spec():
    mapping = _mapping()
    dense_engine = SearchEngine()
    sparse_engine = SearchEngine(sparsity=SPARSE)
    assert dense_engine.fingerprint(mapping) != \
        sparse_engine.fingerprint(mapping)
    assert sparse_engine.fingerprint(mapping) == \
        mapping_fingerprint(mapping, sparsity=SPARSE)


def test_shared_cache_never_crosses_dense_and_sparse():
    """One cache object, two engines: results must stay separated."""
    mapping = _mapping()
    cache = EvalCache()
    dense_engine = SearchEngine(cache=cache)
    sparse_engine = SearchEngine(cache=cache, sparsity=SPARSE)

    dense_cost = dense_engine.evaluate(mapping)
    sparse_cost = sparse_engine.evaluate(mapping)
    # Both were computed fresh — the sparse lookup did not hit the dense
    # entry (that would have returned the dense result).
    assert dense_engine.stats.cache_misses == 1
    assert sparse_engine.stats.cache_misses == 1
    assert sparse_engine.stats.cache_hits == 0
    assert sparse_cost.energy_pj != dense_cost.energy_pj

    # Re-evaluation hits each engine's own entry.
    assert dense_engine.evaluate(mapping).energy_pj == dense_cost.energy_pj
    assert sparse_engine.evaluate(mapping).energy_pj == sparse_cost.energy_pj
    assert dense_engine.stats.cache_hits == 1
    assert sparse_engine.stats.cache_hits == 1


def test_batch_dedup_respects_the_spec():
    mapping = _mapping()
    cache = EvalCache()
    dense_engine = SearchEngine(cache=cache)
    sparse_engine = SearchEngine(cache=cache, sparsity=SPARSE)
    dense = dense_engine.evaluate_batch([mapping, mapping])
    sparse = sparse_engine.evaluate_batch([mapping, mapping])
    assert dense[0].energy_pj == dense[1].energy_pj
    assert sparse[0].energy_pj == sparse[1].energy_pj
    assert dense[0].energy_pj != sparse[0].energy_pj
