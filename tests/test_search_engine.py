"""Oracle-backed regression harness for the evaluation engine.

Pins the engine's core guarantee: for every (workers, cache)
configuration the search returns the *same best mapping* with
*bit-identical* cost as the plain serial path, and cached results are
exactly what a fresh evaluation would produce (cross-checked against the
brute-force loop-nest interpreter on single-digit problems).
"""

import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.arch import UNIFIED, Architecture, MemoryLevel, tiny
from repro.baselines import TimeloopConfig, timeloop_search
from repro.baselines.random_search import sample_random_mapping
from repro.core import SchedulerOptions, SunstoneScheduler, schedule
from repro.core.network import schedule_network
from repro.mapping import build_mapping
from repro.mapping.serialize import mapping_to_dict
from repro.model import count_accesses, evaluate, simulate_fills
from repro.search import EvalCache, SearchEngine
from repro.workloads import conv1d, conv2d, mttkrp
from tests import harness

REPO_ROOT = Path(__file__).resolve().parent.parent


from tests.harness import small_matmul as _matmul

_EQUIVALENCE_CASES = [
    (harness.small_conv(), harness.small_arch()),
    (_matmul(8, 8, 8), tiny(l1_words=32, l2_words=256, pes=4)),
    (mttkrp(I=4, K=4, L=4, J=4), tiny(l1_words=64, l2_words=512, pes=2)),
]


def _cost_tuple(result):
    return (result.cost.energy_pj, result.cost.cycles, result.cost.edp)


# ---------------------------------------------------------------------------
# Satellite (a): serial vs cached vs parallel equivalence
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("case", range(len(_EQUIVALENCE_CASES)))
def test_scheduler_equivalence_matrix(case):
    """workers/cache settings must not change the best mapping or cost."""
    workload, arch = _EQUIVALENCE_CASES[case]
    serial = schedule(workload, arch,
                      SchedulerOptions(workers=1, cache=False))
    assert serial.found
    oracle_mapping = mapping_to_dict(serial.mapping)
    oracle_cost = _cost_tuple(serial)
    for workers, cache in [(1, True), (2, True), (2, False)]:
        result = schedule(workload, arch,
                          SchedulerOptions(workers=workers, cache=cache))
        assert result.found
        assert mapping_to_dict(result.mapping) == oracle_mapping, \
            (workers, cache)
        assert _cost_tuple(result) == oracle_cost, (workers, cache)


def test_baseline_equivalence_timeloop():
    workload, arch = _EQUIVALENCE_CASES[0]
    config = TimeloopConfig(timeout=400, victory_condition=50, seed=3)
    serial = timeloop_search(workload, arch, config, cache=False)
    for kwargs in ({"cache": True}, {"cache": True, "workers": 2}):
        other = timeloop_search(workload, arch, config, **kwargs)
        assert other.evaluations == serial.evaluations, kwargs
        assert _cost_tuple(other) == _cost_tuple(serial), kwargs
        assert mapping_to_dict(other.mapping) == \
            mapping_to_dict(serial.mapping), kwargs


def test_engine_batch_matches_individual_evaluations():
    workload, arch = _EQUIVALENCE_CASES[0]
    rng = random.Random(7)
    mappings = [sample_random_mapping(workload, arch, rng)
                for _ in range(40)]
    fresh = [evaluate(m) for m in mappings]
    with SearchEngine(workers=2, cache=True) as engine:
        batched = engine.evaluate_batch(mappings)
    assert len(batched) == len(fresh)
    for a, b in zip(batched, fresh):
        assert (a.energy_pj, a.cycles, a.valid) == \
            (b.energy_pj, b.cycles, b.valid)


# ---------------------------------------------------------------------------
# Satellite (a): cached results are oracle-exact on random mappings
# ---------------------------------------------------------------------------


def _temporal_only_arch():
    """fanout=1 everywhere so random mappings stay interpreter-friendly."""
    return Architecture("flat", [
        MemoryLevel("L1", {UNIFIED: 10**9}, read_energy=1.0,
                    write_energy=1.0),
        MemoryLevel("L2", {UNIFIED: 10**9}, read_energy=4.0,
                    write_energy=4.0),
        MemoryLevel("DRAM", None, read_energy=64.0, write_energy=64.0),
    ])


def test_cached_results_match_reference_interpreter():
    """Cache hits carry exactly the result ground truth prescribes."""
    arch = _temporal_only_arch()
    rng = random.Random(11)
    engine = SearchEngine(workers=1, cache=True, partial_reuse=False)
    for trial in range(12):
        workload = conv1d(K=rng.choice([2, 4]), C=rng.choice([2, 3]),
                          P=rng.choice([4, 6]), R=rng.choice([1, 3]))
        mapping = sample_random_mapping(workload, arch, rng)
        first = engine.evaluate(mapping)
        second = engine.evaluate(mapping)  # served from the cache
        assert (second.energy_pj, second.cycles) == \
            (first.energy_pj, first.cycles)
        oracle = evaluate(mapping, partial_reuse=False)
        assert (second.energy_pj, second.cycles, second.valid) == \
            (oracle.energy_pj, oracle.cycles, oracle.valid)
        # Tie the analytical fills the cached result was computed from to
        # the brute-force interpreter.
        reference = simulate_fills(mapping)
        counts = count_accesses(mapping, partial_reuse=False)
        for (tensor_name, child), ref_words in \
                reference.fill_words.items():
            tensor = workload.tensor(tensor_name)
            parent = arch.parent_storage(child, tensor.role)
            volume = counts.per_tensor[tensor_name].pair(child, parent)
            model_words = volume.parent_side if tensor.is_output \
                else volume.child_side
            assert model_words == ref_words, (trial, tensor_name, child)
    assert engine.stats.cache_hits == 12
    assert engine.stats.evaluations == engine.stats.cache_misses


# ---------------------------------------------------------------------------
# EvalCache unit behaviour
# ---------------------------------------------------------------------------


class TestEvalCache:
    def test_counters_and_contains(self):
        cache = EvalCache()
        assert cache.get("a") is None
        assert cache.misses == 1 and cache.hits == 0
        cache.put("a", "result-a")
        assert "a" in cache and len(cache) == 1
        assert cache.get("a") == "result-a"
        assert cache.hits == 1
        assert cache.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = EvalCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a": now "b" is oldest
        cache.put("c", 3)
        assert cache.evictions == 1
        assert "b" not in cache
        assert "a" in cache and "c" in cache

    def test_overwrite_does_not_evict(self):
        cache = EvalCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert cache.evictions == 0
        assert cache.get("a") == 10

    def test_overwrite_at_capacity_refreshes_recency(self):
        # Re-putting an existing key at capacity must neither evict nor
        # bump the eviction counter, and must refresh the key's recency.
        cache = EvalCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # "b" is now the LRU entry
        assert cache.evictions == 0 and len(cache) == 2
        cache.put("c", 3)
        assert cache.evictions == 1
        assert "b" not in cache
        assert "a" in cache and "c" in cache

    def test_clear_keeps_counters(self):
        cache = EvalCache()
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1

    def test_hit_rate_after_clear(self):
        # clear() keeps the hit/miss history, so hit_rate keeps
        # describing the whole lifetime — including post-clear misses
        # for keys the cache used to hold.
        cache = EvalCache()
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.clear()
        assert cache.get("a") is None
        assert cache.hits == 2 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_zero_means_unbounded(self):
        # 0 = unbounded, matching the CLI's --cache-size contract; only
        # negative capacities are rejected.
        cache = EvalCache(max_entries=0)
        assert cache.max_entries is None
        for i in range(1000):
            cache.put(f"k{i}", i)
        assert len(cache) == 1000 and cache.evictions == 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError, match="0 = unbounded"):
            EvalCache(max_entries=-1)
        from repro.model.terms import PartialEvalCache
        with pytest.raises(ValueError, match="0 = unbounded"):
            PartialEvalCache(max_entries=-1)
        assert PartialEvalCache(max_entries=0).max_entries is None


# ---------------------------------------------------------------------------
# Satellite (c): determinism regression
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("workers", [1, 2])
def test_search_is_reproducible_run_to_run(workers):
    """Two fresh searches of the same problem serialize identically."""
    workload, arch = _EQUIVALENCE_CASES[0]
    options = SchedulerOptions(workers=workers, cache=True)
    first = SunstoneScheduler(workload, arch, options).schedule()
    second = SunstoneScheduler(workload, arch, options).schedule()
    assert first.found and second.found
    assert mapping_to_dict(first.mapping) == mapping_to_dict(second.mapping)
    assert _cost_tuple(first) == _cost_tuple(second)
    assert first.stats.evaluations == second.stats.evaluations


def test_tie_break_is_value_then_canonical_key():
    """Ranking ties resolve by canonical state key, not arrival order."""
    from repro.core.scheduler import _state_key

    workload, arch = _EQUIVALENCE_CASES[1]
    options = SchedulerOptions(workers=1, cache=True)
    scheduler = SunstoneScheduler(workload, arch, options)
    result = scheduler.schedule()
    assert result.found
    # _state_key must be a pure function of the state's content.
    state_like = type("S", (), {
        "temporal": [{"K": 2, "C": 4}], "spatial": [{"K": 2}],
        "orders": [("K", "C")],
    })()
    permuted = type("S", (), {
        "temporal": [{"C": 4, "K": 2}], "spatial": [{"K": 2}],
        "orders": [("K", "C")],
    })()
    assert _state_key(state_like) == _state_key(permuted)


# ---------------------------------------------------------------------------
# Satellite (d): SearchStats counter exactness
# ---------------------------------------------------------------------------


def test_stats_exact_single_mapping():
    workload, arch = _EQUIVALENCE_CASES[0]
    mapping = build_mapping(
        workload, arch,
        temporal=[{"P": 7, "R": 3}, {"P": 2, "K": 2, "C": 4}, {"K": 2}],
        spatial=[{}, {"C": 1}, {}],
        orders=[["P", "R"], ["P", "K", "C"], ["K"]],
    )
    engine = SearchEngine(workers=1, cache=True)
    for _ in range(3):
        engine.evaluate(mapping)
    assert engine.stats.evaluations == 1
    assert engine.stats.cache_misses == 1
    assert engine.stats.cache_hits == 2
    assert engine.stats.requests == 3
    assert engine.stats.hit_rate == pytest.approx(2 / 3)


def test_stats_exact_batch_with_duplicates():
    workload, arch = _EQUIVALENCE_CASES[0]
    rng = random.Random(5)
    distinct = [sample_random_mapping(workload, arch, rng)
                for _ in range(4)]
    batch = distinct + distinct[:2]  # 2 in-batch duplicates
    engine = SearchEngine(workers=1, cache=True)
    engine.evaluate_batch(batch)
    assert engine.stats.batches == 1
    assert engine.stats.evaluations == 4
    assert engine.stats.cache_misses == 4
    assert engine.stats.cache_hits == 2
    engine.evaluate_batch(distinct)  # all hits now
    assert engine.stats.cache_hits == 6
    assert engine.stats.evaluations == 4


def test_stats_count_evictions():
    workload, arch = _EQUIVALENCE_CASES[0]
    rng = random.Random(9)
    engine = SearchEngine(workers=1, cache=EvalCache(max_entries=2))
    for _ in range(5):
        engine.evaluate(sample_random_mapping(workload, arch, rng))
    assert engine.stats.cache_evictions == 3
    assert len(engine.cache) == 2


def test_stats_merge_and_summary():
    from repro.search import SearchStats

    a = SearchStats(workers=1, evaluations=10, cache_hits=5, cache_misses=10)
    a.add_level_time("L1", 0.5)
    b = SearchStats(workers=2, evaluations=3, cache_hits=1, cache_misses=3,
                    prunes=7)
    b.add_level_time("L1", 0.25)
    b.add_level_time("DRAM", 1.0)
    a.merge(b)
    assert a.workers == 2
    assert a.evaluations == 13
    assert a.requests == 19
    assert a.prunes == 7
    assert a.level_wall_time_s == {"L1": 0.75, "DRAM": 1.0}
    assert "cache hits 6" in a.summary()


def test_scheduler_stats_requests_match_evaluation_count():
    """SchedulerStats.evaluations (requests) = engine executions + hits."""
    workload, arch = _EQUIVALENCE_CASES[0]
    result = schedule(workload, arch, SchedulerOptions(workers=1, cache=True))
    search = result.stats.search
    assert search.evaluations + search.cache_hits >= result.stats.evaluations
    assert search.evaluations < result.stats.evaluations  # cache did work
    assert search.cache_hits > 0


# ---------------------------------------------------------------------------
# Satellite (d): network-level cache sharing + bench entry point
# ---------------------------------------------------------------------------


def test_network_shared_cache_hits_across_layers():
    """Repeated layer shapes hit the shared cache when search sharing is
    off, and the totals report a nonzero hit rate."""
    arch = tiny(l1_words=64, l2_words=512, pes=4)
    layers = [conv1d(K=4, C=4, P=14, R=3),
              conv1d(K=4, C=4, P=14, R=3),
              conv1d(K=8, C=4, P=7, R=3)]
    network = schedule_network(layers, arch, SchedulerOptions(),
                               dedupe=False)
    assert network.all_found
    assert network.search_stats.cache_hits > 0
    assert network.search_stats.hit_rate > 0
    # The duplicate layer re-ran its search entirely against the cache, so
    # executions stay well below total requests.
    assert network.search_stats.evaluations < network.search_stats.requests
    # Equivalent outcome to the deduplicated path.
    deduped = schedule_network(layers, arch, SchedulerOptions())
    assert network.total_edp == deduped.total_edp


def test_bench_fig9_quick_entry_runs():
    """`bench_fig9_overheads.py --quick` must report without crashing."""
    proc = subprocess.run(
        [sys.executable,
         str(REPO_ROOT / "benchmarks" / "bench_fig9_overheads.py"),
         "--quick", "--no-sim"],
        capture_output=True, text=True, timeout=600,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        cwd=str(REPO_ROOT),
    )
    assert proc.returncode == 0, proc.stderr
    assert "search engine:" in proc.stdout
    assert "scheduling wall time" in proc.stdout


# ---------------------------------------------------------------------------
# Engine plumbing edge cases
# ---------------------------------------------------------------------------


def test_engine_rejects_bad_configuration():
    with pytest.raises(ValueError):
        SearchEngine(workers=0)
    with pytest.raises(ValueError):
        SearchEngine(chunk_size=0)
    with pytest.raises(ValueError):
        SchedulerOptions(workers=0)


def test_engine_without_cache_counts_only_evaluations():
    workload, arch = _EQUIVALENCE_CASES[0]
    rng = random.Random(2)
    mapping = sample_random_mapping(workload, arch, rng)
    engine = SearchEngine(workers=1, cache=False)
    engine.evaluate(mapping)
    engine.evaluate(mapping)
    assert engine.stats.evaluations == 2
    assert engine.stats.cache_hits == 0
    assert engine.cache is None


def test_empty_batch_is_fine():
    engine = SearchEngine(workers=2, cache=True)
    assert engine.evaluate_batch([]) == []
    engine.close()
