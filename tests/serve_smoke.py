"""End-to-end serve smoke for CI: kill a worker, SIGKILL the daemon,
resume, and require bit-identity with the cold CLI.

The **local** scenario (docs/SERVE_API.md, "Durability"):

1. start a journalled daemon with one pool worker and an injected
   worker kill (``REPRO_SERVE_KILL_TASK``) armed for job 1's second
   shard — the worker hard-exits mid-job and the fleet must recover;
2. submit two overlapping sharded schedule jobs;
3. once job 1 has at least one durable part, SIGKILL the whole daemon;
4. restart it with ``--resume`` and wait for both results;
5. independently run the equivalent cold CLI shard runs
   (``repro schedule --shard i/2 --stats-json``) and require the
   daemon's merged mapping/cost/evaluations to match exactly.

The **remote** scenario (docs/SERVE_API.md, "Remote worker fleets")
drives the same jobs through ``repro worker`` processes instead of the
in-daemon pool:

1. start a journalled ``--fleet remote`` daemon and one worker armed
   with ``REPRO_WORKER_KILL_LEASE`` — it hard-exits the moment it
   leases job 1's second shard, exactly like a SIGKILL mid-lease;
2. a probe registration from this script heartbeats until the dead
   worker's lease is fenced (``/stats`` shows the fence); with no live
   worker attached the fenced task stays pending;
3. SIGKILL the daemon while that work is outstanding;
4. restart with ``--resume``, attach two fresh workers — they must
   lease and finish the remaining shards (replaying the journal alone
   cannot complete the jobs) — and require both merged results to
   match the cold CLI exactly.

Run directly (CI does): ``python tests/serve_smoke.py [local|remote]``
(no argument runs both).  Exit code 0 on success; any assertion
failure is a real regression.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve import ServeClient, ServeError  # noqa: E402
from repro.serve.protocol import outcome_sort_key  # noqa: E402

ENV = {"PYTHONPATH": str(REPO_ROOT / "src"),
       "PATH": os.environ.get("PATH", "/usr/bin:/bin")}

JOBS = [
    {"kind": "schedule", "shards": 2, "arch": "tiny",
     "workload": {"kind": "conv1d",
                  "dims": {"K": 4, "C": 4, "P": 14, "R": 3}}},
    {"kind": "schedule", "shards": 2, "arch": "tiny",
     "workload": {"kind": "fc", "dims": {"N": 2, "K": 8, "C": 8}}},
]


def start_daemon(workdir, journal, *, resume=False, extra_env=None,
                 fleet="local"):
    argv = [sys.executable, "-m", "repro", "serve", "--port", "0",
            "--workers", "1", "--journal", journal]
    if fleet == "remote":
        argv += ["--fleet", "remote", "--lease-ttl", "2", "--poll", "0.5"]
    if resume:
        argv.append("--resume")
    proc = subprocess.Popen(argv, stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, text=True,
                            env={**ENV, **(extra_env or {})},
                            cwd=str(workdir))
    ready = proc.stdout.readline()
    assert "serving on http://" in ready, (ready, proc.stderr.read())
    port = int(ready.rsplit(":", 1)[1].split()[0])
    return proc, ServeClient("127.0.0.1", port)


def start_worker(workdir, port, name, *, extra_env=None):
    """One ``repro worker`` process leasing from the daemon at `port`."""
    log = open(Path(workdir) / f"worker_{name}.log", "w")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker",
         "--connect", f"127.0.0.1:{port}", "--workers", "1",
         "--name", name, "--retry", "120"],
        stdout=log, stderr=log, env={**ENV, **(extra_env or {})},
        cwd=str(workdir))
    proc._smoke_log = log  # keep the handle alive with the process
    return proc


def stop_worker(proc):
    if proc.poll() is None:
        proc.kill()
    proc.wait(timeout=60)
    proc._smoke_log.close()


def cold_shard_run(workdir, spec, shard_index):
    """One cold CLI shard run; returns its --stats-json document."""
    dims = [f"{k}={v}" for k, v in spec["workload"]["dims"].items()]
    stats = Path(workdir) / f"cold_{spec['workload']['kind']}_{shard_index}.json"
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "schedule",
         "--workload", spec["workload"]["kind"], "--arch", spec["arch"],
         "--shard", f"{shard_index}/{spec['shards']}",
         "--stats-json", str(stats), *dims],
        capture_output=True, text=True, timeout=600, env=ENV,
        cwd=str(workdir))
    assert proc.returncode == 0, proc.stderr
    return json.loads(stats.read_text())


def cold_merged(workdir, spec):
    """Canonical merge of the cold shard runs — what the daemon owes."""
    parts = [cold_shard_run(workdir, spec, i) for i in range(spec["shards"])]
    best = min(parts, key=lambda d: outcome_sort_key(
        {"found": True, "mapping": d["mapping"], "cost": d["cost"]}, "edp"))
    return {"mapping": best["mapping"], "cost": best["cost"],
            "evaluations": sum(p["evaluations"] for p in parts)}


def check_bit_identity(workdir, results):
    """Phase 3 of either scenario: daemon results vs the cold CLI."""
    for job_id, spec in zip(("j00001", "j00002"), JOBS):
        got = results[job_id]
        want = cold_merged(workdir, spec)
        name = spec["workload"]["kind"]
        assert got["status"] == "ok", got
        assert got["mapping"] == want["mapping"], \
            f"{name}: daemon mapping diverged from cold CLI"
        assert got["cost"] == want["cost"], \
            f"{name}: daemon cost diverged from cold CLI"
        assert got["evaluations"] == want["evaluations"], \
            f"{name}: daemon evaluation accounting diverged"
        print(f"{name}: bit-identical to cold CLI "
              f"(edp {got['cost']['edp']}, "
              f"{got['evaluations']} candidates)")


def run_local(workdir) -> None:
    journal = str(Path(workdir) / "serve.jsonl")

    # Phase 1: daemon with an armed worker kill for job 1, shard 2.
    proc, client = start_daemon(
        workdir, journal, extra_env={"REPRO_SERVE_KILL_TASK": "j00001:1"})
    try:
        client.wait_ready()
        ids = [client.submit(spec)["id"] for spec in JOBS]
        assert ids == ["j00001", "j00002"], ids
        print(f"submitted {ids} (worker kill armed for j00001:1)")

        # Wait until job 1 has journalled at least one part, so the
        # restart genuinely resumes mid-job rather than from zero.
        deadline = time.monotonic() + 300
        while time.monotonic() < deadline:
            if client.job("j00001")["tasks_done"] >= 1:
                break
            time.sleep(0.1)
        else:
            raise AssertionError("job 1 never finished a shard")
        print("job 1 has a durable part; SIGKILLing the daemon")
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=60)

    # Phase 2: restart and resume (no kill hook this time).
    proc, client = start_daemon(workdir, journal, resume=True)
    try:
        client.wait_ready()
        results = {}
        for job_id in ("j00001", "j00002"):
            doc = client.result(job_id, wait=True)
            assert doc["state"] == "done", doc
            results[job_id] = doc["result"]
        stats = client.stats()
        print(f"resume completed both jobs "
              f"(cache entries={stats['cache']['entries']})")
        client.shutdown()
    except BaseException:
        proc.terminate()
        raise
    finally:
        proc.wait(timeout=60)

    # Phase 3: bit-identity with the cold CLI.
    check_bit_identity(workdir, results)
    print("serve smoke (local fleet) OK")


def run_remote(workdir) -> None:
    journal = str(Path(workdir) / "serve_remote.jsonl")

    # Phase 1: remote-fleet daemon; worker A is armed to die the
    # moment it leases job 1's second shard (SIGKILL mid-lease).
    proc, client = start_daemon(workdir, journal, fleet="remote")
    workers = []
    try:
        client.wait_ready()
        workers.append(start_worker(
            workdir, client.port, "armed",
            extra_env={"REPRO_WORKER_KILL_LEASE": "j00001:1"}))
        ids = [client.submit(spec)["id"] for spec in JOBS]
        assert ids == ["j00001", "j00002"], ids
        print(f"submitted {ids} (worker kill armed for lease j00001:1)")

        # The armed worker must die holding the lease.
        workers[0].wait(timeout=300)
        print("armed worker died mid-lease")
        # Register a probe worker (this script) whose heartbeats give
        # the daemon a clock edge to reap the dead lease on; with no
        # real worker attached, the fenced task stays pending, so the
        # restart below must genuinely re-lease it — not just replay
        # the journal.
        probe = client.register_worker("probe", 1)["worker"]
        deadline = time.monotonic() + 300
        while time.monotonic() < deadline:
            client.heartbeat(probe)
            stats = client.stats()["fleet"]
            if (stats["fences"] >= 1
                    and client.job("j00001")["tasks_done"] >= 1):
                break
            time.sleep(0.2)
        else:
            raise AssertionError("lease was never fenced")
        rows = stats["per_worker"]
        assert any(row["fences"] >= 1 for row in rows.values()), rows
        assert any(row["name"] == "probe" and row["alive"]
                   for row in rows.values()), rows
        print(f"lease fenced (fences={stats['fences']}, "
              f"workers={list(rows)}); SIGKILLing the daemon")
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=60)
        for worker in workers:
            stop_worker(worker)

    # Phase 2: restart with --resume; two fresh workers re-register
    # against the new daemon (old registry died with the process).
    proc, client = start_daemon(workdir, journal, resume=True,
                                fleet="remote")
    workers = []
    try:
        client.wait_ready()
        workers = [start_worker(workdir, client.port, f"fresh{i}")
                   for i in range(2)]
        results = {}
        for job_id in ("j00001", "j00002"):
            doc = client.result(job_id, wait=True)
            assert doc["state"] == "done", doc
            results[job_id] = doc["result"]
        # Both fresh workers re-register against the new daemon (the
        # old in-memory registry died with the SIGKILLed process).
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            stats = client.stats()["fleet"]
            if len(stats["per_worker"]) == 2:
                break
            time.sleep(0.2)
        else:
            raise AssertionError(f"workers never re-registered: {stats}")
        parts = [row["parts_delivered"]
                 for row in stats["per_worker"].values()]
        # Phase 1 fenced j00001:1 with no worker left to run it, so the
        # resumed daemon must have leased real work out again — a
        # journal-replay-only resume cannot have completed the jobs.
        assert sum(parts) >= 1, stats
        print(f"resume completed both jobs on a 2-worker fleet "
              f"(parts={parts})")
        client.shutdown()
    except BaseException:
        proc.terminate()
        raise
    finally:
        proc.wait(timeout=60)
        for worker in workers:
            stop_worker(worker)

    # Phase 3: bit-identity with the cold CLI.
    check_bit_identity(workdir, results)
    print("serve smoke (remote fleet) OK")


def main() -> int:
    scenarios = sys.argv[1:] or ["local", "remote"]
    assert all(s in ("local", "remote") for s in scenarios), scenarios
    workdir = tempfile.mkdtemp(prefix="serve_smoke_")
    if "local" in scenarios:
        run_local(workdir)
    if "remote" in scenarios:
        run_remote(workdir)
    print("serve smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
