"""Property-based tests on the core invariants (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import UNIFIED, Architecture, MemoryLevel
from repro.core import (
    SchedulerOptions,
    divisors,
    enumerate_orderings,
    enumerate_tilings,
    enumerate_unrollings,
    schedule,
)
from repro.mapping import build_mapping
from repro.model import count_accesses, evaluate
from repro.workloads import conv1d, make_workload

_SIZES = st.sampled_from([1, 2, 3, 4, 6, 8])


@st.composite
def _workloads(draw):
    kind = draw(st.sampled_from(["conv", "matmul", "threeop"]))
    if kind == "conv":
        return conv1d(K=draw(_SIZES), C=draw(_SIZES), P=draw(_SIZES),
                      R=draw(st.sampled_from([1, 2, 3])))
    if kind == "matmul":
        return make_workload(
            "mm", {"I": draw(_SIZES), "J": draw(_SIZES), "K": draw(_SIZES)},
            {"A": ["I", "K"], "B": ["K", "J"], "out": ["I", "J"]},
            outputs=["out"],
        )
    return make_workload(
        "three",
        {"I": draw(_SIZES), "J": draw(_SIZES), "K": draw(_SIZES),
         "L": draw(_SIZES)},
        {"A": ["I", "J"], "B": ["J", "K"], "C": ["K", "L"],
         "out": ["I", "L"]},
        outputs=["out"],
    )


def _small_arch(l1=32, l2=4096, pes=4):
    return Architecture("prop", [
        MemoryLevel("L1", {UNIFIED: l1}, fanout=pes, read_energy=1.0,
                    write_energy=1.1, network_energy=0.1),
        MemoryLevel("L2", {UNIFIED: l2}, read_energy=8.0, write_energy=8.8),
        MemoryLevel("DRAM", None, read_energy=100.0, write_energy=100.0),
    ], mac_energy=0.5)


@given(_workloads())
@settings(max_examples=40, deadline=None)
def test_scheduler_always_returns_valid_or_nothing(wl):
    """Whatever Sunstone returns satisfies every hardware constraint."""
    result = schedule(wl, _small_arch(),
                      SchedulerOptions(beam_width=16, polish=False))
    if result.found:
        assert result.mapping.is_valid
        assert result.cost.valid
        for dim, size in wl.dims.items():
            product = 1
            for lvl in result.mapping.levels:
                product *= lvl.temporal_factor(dim) * lvl.spatial_factor(dim)
            assert product == size


@given(_workloads())
@settings(max_examples=25, deadline=None)
def test_ordering_trie_is_sound_and_small(wl):
    candidates = enumerate_orderings(wl)
    assert candidates
    n = len(wl.dim_names)
    assert len(candidates) <= math.factorial(n)
    for cand in candidates:
        assert sorted(cand.order) == sorted(wl.dim_names)
        # Every fully-reused tensor must be reusable across the claimed dims.
        for tensor, dims in cand.outcome.full:
            indexing = wl.tensor(tensor).indexing_dims
            assert not (dims & indexing)


@given(_workloads(), st.integers(min_value=4, max_value=64))
@settings(max_examples=25, deadline=None)
def test_tiling_candidates_fit_and_divide(wl, l1_words):
    arch = _small_arch(l1=l1_words)
    tilings = enumerate_tilings(
        wl, arch, 0, {d: 1 for d in wl.dims}, dict(wl.dims), wl.dim_names,
    )
    for tiling in tilings:
        for dim, factor in tiling.items():
            assert wl.dims[dim] % factor == 0
        sizes = {d: tiling.get(d, 1) for d in wl.dims}
        occupancy = sum(t.footprint(sizes) for t in wl.tensors)
        assert occupancy <= l1_words


@given(_workloads(), st.sampled_from([2, 4, 8, 16]))
@settings(max_examples=25, deadline=None)
def test_unrollings_respect_fanout(wl, fanout):
    for unroll in enumerate_unrollings(wl, fanout, dict(wl.dims)):
        assert math.prod(unroll.values() or [1]) <= fanout


@given(_workloads())
@settings(max_examples=25, deadline=None)
def test_tiling_principle_monotonicity(wl):
    """Enlarging an indexing dimension of the operand reused across tiles
    never increases that operand's upper-level access count (the Tiling
    Principle's premise, checked against the cost model)."""
    arch = _small_arch(l1=10**9, l2=10**9)
    orderings = enumerate_orderings(wl)
    for cand in orderings[:3]:
        for op_name in list(cand.reused_tensors)[:1]:
            op = wl.tensor(op_name)
            grow = [d for d in op.indexing_dims if wl.dims[d] > 1]
            if not grow:
                continue
            dim = grow[0]
            small = build_mapping(
                wl, arch, temporal=[{dim: 1}, {}, {}],
                orders=[list(cand.order), list(cand.order),
                        list(cand.order)],
            )
            grown = build_mapping(
                wl, arch, temporal=[{dim: wl.dims[dim]}, {}, {}],
                orders=[list(cand.order), list(cand.order),
                        list(cand.order)],
            )
            small_accesses = count_accesses(small, partial_reuse=False)
            grown_accesses = count_accesses(grown, partial_reuse=False)
            assert (grown_accesses.per_tensor[op_name].at(1).total
                    <= small_accesses.per_tensor[op_name].at(1).total + 1e-9)


@given(_workloads())
@settings(max_examples=20, deadline=None)
def test_energy_is_positive_and_finite(wl):
    arch = _small_arch(l1=10**9, l2=10**9)
    m = build_mapping(wl, arch, temporal=[dict(wl.dims), {}, {}])
    res = evaluate(m)
    assert res.energy_pj > 0
    assert math.isfinite(res.energy_pj)
    assert res.cycles >= 1 or wl.total_operations == 1


@given(st.integers(min_value=1, max_value=500))
@settings(max_examples=50, deadline=None)
def test_divisors_properties(n):
    divs = divisors(n)
    assert divs[0] == 1 and divs[-1] == n
    assert list(divs) == sorted(set(divs))
    for d in divs:
        assert n % d == 0
