"""Tests for the mapping representation."""

import pytest

from repro.arch import UNIFIED, tiny
from repro.mapping import (
    LevelMapping,
    Mapping,
    MappingError,
    build_mapping,
    mapping_signature,
    render_nest,
)
from repro.workloads import conv1d


@pytest.fixture
def workload():
    return conv1d(K=4, C=4, P=14, R=3)


@pytest.fixture
def arch():
    return tiny(l1_words=64, l2_words=512, pes=4)


class TestLevelMapping:
    def test_factor_dicts(self):
        lvl = LevelMapping(temporal=(("K", 2), ("P", 7)), spatial=(("C", 2),))
        assert lvl.temporal_factors == {"K": 2, "P": 7}
        assert lvl.spatial_factors == {"C": 2}
        assert lvl.spatial_size == 2

    def test_defaults(self):
        lvl = LevelMapping()
        assert lvl.spatial_size == 1
        assert lvl.temporal_factor("K") == 1

    def test_nontrivial_temporal_preserves_order(self):
        lvl = LevelMapping(temporal=(("K", 2), ("C", 1), ("P", 7)))
        assert lvl.nontrivial_temporal() == (("K", 2), ("P", 7))

    def test_duplicate_dim_rejected(self):
        with pytest.raises(MappingError):
            LevelMapping(temporal=(("K", 2), ("K", 2)))

    def test_nonpositive_factor_rejected(self):
        with pytest.raises(MappingError):
            LevelMapping(temporal=(("K", 0),))


class TestMapping:
    def test_factor_products_enforced(self, workload, arch):
        with pytest.raises(MappingError, match="multiply to"):
            Mapping(workload, arch, [
                LevelMapping(temporal=(("K", 2),)),
                LevelMapping(),
                LevelMapping(),
            ])

    def test_level_count_enforced(self, workload, arch):
        with pytest.raises(MappingError, match="levels"):
            Mapping(workload, arch, [LevelMapping()])

    def test_cumulative_sizes(self, workload, arch):
        m = build_mapping(
            workload, arch,
            temporal=[{"P": 7, "R": 3}, {"K": 2}, {}],
            spatial=[{"C": 2}, {}, {}],
        )
        assert m.cumulative_sizes(0) == {"K": 1, "C": 1, "P": 7, "R": 3}
        # Level 1 tile includes the level-0 spatial split.
        assert m.cumulative_sizes(1) == {"K": 2, "C": 2, "P": 7, "R": 3}

    def test_footprint_includes_halo(self, workload, arch):
        m = build_mapping(workload, arch, temporal=[{"P": 7, "R": 3}, {}, {}])
        # ifmap tile: C=1 x (7+3-1)
        assert m.footprint(0, "ifmap") == 9

    def test_occupancy_unified(self, workload, arch):
        m = build_mapping(workload, arch, temporal=[{"P": 7, "R": 3}, {}, {}])
        occ = m.occupancy(0)
        # All roles share the unified buffer: ofmap 7 + ifmap 9 + weight 3.
        assert sum(occ.values()) == 7 + 9 + 3

    def test_validate_capacity(self, workload, arch):
        ok = build_mapping(workload, arch, temporal=[{"P": 7, "R": 3}, {}, {}])
        assert ok.is_valid
        too_big = build_mapping(
            workload, arch, temporal=[{"P": 14, "K": 4, "C": 4, "R": 3}, {}, {}],
        )
        assert not too_big.is_valid
        assert any("capacity" in v for v in too_big.validate())

    def test_validate_fanout(self, workload, arch):
        bad = build_mapping(
            workload, arch, temporal=[{}, {}, {}],
            spatial=[{"K": 4, "C": 2}, {}, {}],  # 8 > 4 PEs
        )
        assert any("fanout" in v for v in bad.validate())

    def test_used_lanes_and_utilization(self, workload, arch):
        m = build_mapping(workload, arch, temporal=[{}, {}, {}],
                          spatial=[{"K": 4}, {}, {}])
        assert m.used_lanes() == 4
        assert m.spatial_utilization() == 1.0


class TestBuildMapping:
    def test_residual_pushed_to_top(self, workload, arch):
        m = build_mapping(workload, arch, temporal=[{"P": 7}, {}, {}])
        top = m.levels[2].temporal_factors
        assert top == {"K": 4, "C": 4, "P": 2, "R": 3}

    def test_orders_respected(self, workload, arch):
        m = build_mapping(
            workload, arch,
            temporal=[{}, {"K": 2, "C": 2}, {}],
            orders=[[], ["C", "K"], []],
        )
        nest = [d for d, _ in m.levels[1].temporal]
        assert nest[:2] == ["C", "K"]

    def test_nondivisible_factors_rejected(self, workload, arch):
        with pytest.raises(MappingError, match="divide"):
            build_mapping(workload, arch, temporal=[{"P": 5}, {}, {}])

    def test_accepts_pair_lists(self, workload, arch):
        m = build_mapping(workload, arch,
                          temporal=[[("P", 7), ("R", 3)], {}, {}])
        assert m.levels[0].temporal_factor("P") == 7


class TestRendering:
    def test_render_nest_mentions_loops(self, workload, arch):
        m = build_mapping(workload, arch, temporal=[{"P": 7, "R": 3}, {}, {}],
                          spatial=[{"C": 2}, {}, {}])
        text = render_nest(m)
        assert "parallel-for" in text
        assert "compute(" in text
        assert "p_0 in [0, 7)" in text

    def test_signature_ignores_trivial_loops(self, workload, arch):
        a = build_mapping(workload, arch, temporal=[{"P": 7, "K": 1}, {}, {}])
        b = build_mapping(workload, arch, temporal=[{"P": 7}, {}, {}])
        assert mapping_signature(a) == mapping_signature(b)

    def test_signature_distinguishes_orders(self, workload, arch):
        a = build_mapping(workload, arch, temporal=[{}, {"K": 2, "C": 2}, {}],
                          orders=[[], ["K", "C"], []])
        b = build_mapping(workload, arch, temporal=[{}, {"K": 2, "C": 2}, {}],
                          orders=[[], ["C", "K"], []])
        assert mapping_signature(a) != mapping_signature(b)

    def test_repr(self, workload, arch):
        m = build_mapping(workload, arch, temporal=[{"P": 7}, {}, {}])
        assert "conv1d" in repr(m)
