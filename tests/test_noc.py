"""Tests for the mesh NoC simulator and its agreement with the analytical
NoC energy model."""

import pytest

from repro.arch import conventional, tiny
from repro.energy import NocModel
from repro.mapping import build_mapping
from repro.noc import MeshNoc, simulate_boundary
from repro.workloads import conv1d, conv2d


class TestMeshDelivery:
    def test_unicast_origin(self):
        noc = MeshNoc((4, 4))
        d = noc.unicast((0, 0))
        assert d.destinations == 1
        # X-bus reaches column 0 (1 hop) + Y-bus depth 1.
        assert d.tag_checks == 2

    def test_unicast_far_corner_costs_more(self):
        noc = MeshNoc((4, 4))
        near = noc.unicast((0, 0))
        far = noc.unicast((3, 3))
        assert far.wire_mm > near.wire_mm
        assert far.tag_checks > near.tag_checks

    def test_broadcast_cheaper_than_unicasts(self):
        noc = MeshNoc((4, 4))
        broadcast = noc.broadcast()
        total_unicast_wire = sum(
            noc.unicast((x, y)).wire_mm for x in range(4) for y in range(4)
        )
        assert broadcast.wire_mm < total_unicast_wire
        assert broadcast.destinations == 16
        assert broadcast.bus_cycles == 1

    def test_column_multicast(self):
        noc = MeshNoc((4, 4))
        column = noc.deliver([(1, y) for y in range(4)])
        # X-bus to column 1 (2 hops) + full Y-bus (4).
        assert column.tag_checks == 6

    def test_rejects_empty_and_out_of_range(self):
        noc = MeshNoc((4, 4))
        with pytest.raises(ValueError):
            noc.deliver([])
        with pytest.raises(ValueError):
            noc.deliver([(4, 0)])

    def test_energy_includes_tags(self):
        noc = MeshNoc((8, 8), word_bits=16)
        d = noc.broadcast()
        assert d.energy_pj(16) > d.energy_pj_per_bit * 16


class TestAgainstAnalyticalModel:
    def test_unicast_energy_same_scale(self):
        """The closed-form NoC energy lands within the simulator's range."""
        for shape in ((4, 4), (8, 8), (32, 32)):
            sim = MeshNoc(shape, word_bits=16)
            analytical = NocModel(shape, word_bits=16).unicast_energy()
            cheapest = sim.unicast((0, 0)).energy_pj(16)
            costliest = sim.unicast((shape[0] - 1,
                                     shape[1] - 1)).energy_pj(16)
            assert cheapest * 0.5 <= analytical <= costliest * 1.5

    def test_multicast_scaling_direction_agrees(self):
        shape = (8, 8)
        sim = MeshNoc(shape)
        model = NocModel(shape)
        sim_ratio = (sim.broadcast().energy_pj(16)
                     / sim.unicast((7, 7)).energy_pj(16))
        model_ratio = (model.multicast_energy(64)
                       / model.multicast_energy(1))
        assert sim_ratio > 1.0 and model_ratio > 1.0


class TestSimulateBoundary:
    def _mapping(self, spatial):
        wl = conv1d(K=4, C=4, P=8, R=1)
        arch = tiny(l1_words=64, l2_words=2048, pes=4)
        return build_mapping(
            wl, arch,
            temporal=[{"P": 8, "R": 1}, {}, {}],
            spatial=[spatial, {}, {}],
        )

    def test_broadcast_tensor_single_group(self):
        m = self._mapping({"K": 4})
        sim = simulate_boundary(m, 0)
        by_name = {t.tensor: t for t in sim.per_tensor}
        # ifmap is broadcast to all 4 PEs: one group of size 4.
        assert by_name["ifmap"].group_size == 4
        assert by_name["ifmap"].groups == 1
        # weight is partitioned: 4 groups of size 1.
        assert by_name["weight"].group_size == 1
        assert by_name["weight"].groups == 4

    def test_energy_positive_and_ordered(self):
        broadcast_heavy = simulate_boundary(self._mapping({"K": 4}), 0)
        assert broadcast_heavy.total_energy_pj > 0
        assert broadcast_heavy.total_bus_cycles > 0

    def test_requires_fanout(self):
        wl = conv1d(K=2, C=2, P=4, R=1)
        arch = tiny(l1_words=64, l2_words=2048, pes=4)
        m = build_mapping(wl, arch, temporal=[{}, {}, {}])
        with pytest.raises(ValueError, match="fanout"):
            simulate_boundary(m, 1)

    def test_conv2d_on_conventional_grid(self):
        wl = conv2d(N=1, K=32, C=32, P=14, Q=14, R=3, S=3)
        arch = conventional()
        m = build_mapping(
            wl, arch,
            temporal=[{"R": 3, "S": 3}, {"P": 14, "Q": 14}, {}],
            spatial=[{"K": 32, "C": 32}, {}, {}],
        )
        sim = simulate_boundary(m, 0)
        names = {t.tensor for t in sim.per_tensor}
        assert {"ifmap", "weight", "ofmap"} <= names
        by_name = {t.tensor: t for t in sim.per_tensor}
        # ifmap: K non-indexing -> broadcast across the K axis (32 PEs).
        assert by_name["ifmap"].group_size == 32
        # weight: both unrolled dims index it -> unicast groups.
        assert by_name["weight"].group_size == 1
