"""Tests for energy/latency/EDP evaluation."""

import math

import pytest

from repro.arch import UNIFIED, Architecture, MemoryLevel, tiny
from repro.mapping import build_mapping
from repro.model import INVALID_COST, edp, evaluate, prefix_energy
from repro.workloads import conv1d


@pytest.fixture
def setup():
    wl = conv1d(K=4, C=4, P=14, R=3)
    arch = tiny(l1_words=64, l2_words=2048, pes=4)
    mapping = build_mapping(
        wl, arch,
        temporal=[{"P": 7, "K": 2, "C": 2, "R": 3}, {"P": 2, "K": 2, "C": 2}, {}],
        orders=[["P", "K", "C", "R"], ["P", "K", "C"], []],
    )
    return wl, arch, mapping


class TestEnergyComposition:
    def test_total_is_sum_of_parts(self, setup):
        _, arch, mapping = setup
        res = evaluate(mapping)
        parts = sum(res.level_energy.values()) + res.compute_energy \
            + res.noc_energy
        assert res.energy_pj == pytest.approx(parts)

    def test_compute_energy(self, setup):
        wl, arch, mapping = setup
        res = evaluate(mapping)
        assert res.compute_energy == pytest.approx(
            wl.total_operations * arch.mac_energy)

    def test_level_energy_reflects_access_counts(self, setup):
        _, arch, mapping = setup
        res = evaluate(mapping, keep_accesses=True)
        acc = res.accesses.levels[1]
        expected = (acc.reads * arch.levels[1].read_energy
                    + acc.writes * arch.levels[1].write_energy)
        assert res.level_energy["L2"] == pytest.approx(expected)

    def test_accesses_not_kept_by_default(self, setup):
        _, _, mapping = setup
        assert evaluate(mapping).accesses is None


class TestLatency:
    def test_compute_bound(self, setup):
        wl, _, mapping = setup
        res = evaluate(mapping)
        # No spatial factors: latency at least one cycle per MAC.
        assert res.cycles >= wl.total_operations

    def test_spatial_speedup(self):
        wl = conv1d(K=4, C=4, P=14, R=3)
        arch = tiny(l1_words=64, l2_words=2048, pes=4)
        serial = build_mapping(wl, arch, temporal=[{"P": 7, "R": 3}, {}, {}])
        parallel = build_mapping(
            wl, arch, temporal=[{"P": 7, "R": 3}, {}, {}],
            spatial=[{"K": 4}, {}, {}],
        )
        assert evaluate(parallel).cycles < evaluate(serial).cycles

    def test_bandwidth_bound(self):
        wl = conv1d(K=4, C=4, P=14, R=3)
        arch = tiny(l1_words=64, l2_words=2048, pes=4)
        slow_dram = arch.with_level("DRAM", read_bandwidth=0.001,
                                    write_bandwidth=0.001)
        m_fast = build_mapping(wl, arch, temporal=[{"P": 7, "R": 3}, {}, {}])
        m_slow = build_mapping(wl, slow_dram,
                               temporal=[{"P": 7, "R": 3}, {}, {}])
        assert evaluate(m_slow).cycles > evaluate(m_fast).cycles


class TestValidity:
    def test_invalid_flagged_but_costed(self):
        wl = conv1d(K=4, C=4, P=14, R=3)
        arch = tiny(l1_words=8, l2_words=2048, pes=4)
        m = build_mapping(wl, arch,
                          temporal=[{"P": 14, "K": 4, "C": 4, "R": 3}, {}, {}])
        res = evaluate(m)
        assert not res.valid
        assert res.violations
        assert math.isfinite(res.energy_pj)

    def test_edp_helper_returns_inf_for_invalid(self):
        wl = conv1d(K=4, C=4, P=14, R=3)
        arch = tiny(l1_words=8, l2_words=2048, pes=4)
        m = build_mapping(wl, arch,
                          temporal=[{"P": 14, "K": 4, "C": 4, "R": 3}, {}, {}])
        assert edp(m) == INVALID_COST

    def test_edp_matches_product(self, setup):
        _, _, mapping = setup
        res = evaluate(mapping)
        assert res.edp == pytest.approx(res.energy_pj * res.cycles)

    def test_summary_mentions_validity(self, setup):
        _, _, mapping = setup
        assert "valid" in evaluate(mapping).summary()


class TestPrefixEnergy:
    def test_prefix_monotone_in_level(self, setup):
        _, arch, mapping = setup
        res = evaluate(mapping)
        prefixes = [prefix_energy(res, arch, i) for i in range(3)]
        assert prefixes[0] <= prefixes[1] <= prefixes[2]
        assert prefixes[2] <= res.energy_pj
