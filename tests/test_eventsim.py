"""Tests for the discrete-event execution simulator."""

import pytest

from repro.arch import conventional, tiny
from repro.core import schedule
from repro.mapping import build_mapping
from repro.model import analyze_timing
from repro.sim.eventsim import simulate_execution
from repro.workloads import RESNET18_LAYERS, conv1d, conv2d


def _slow_dram_arch():
    return tiny(l1_words=64, l2_words=2048, pes=4).with_level(
        "DRAM", read_bandwidth=2, write_bandwidth=2,
    ).with_level("L2", read_bandwidth=8, write_bandwidth=8,
                 ).with_level("L1", read_bandwidth=16, write_bandwidth=16)


@pytest.fixture
def small_mapping():
    wl = conv1d(K=4, C=4, P=14, R=3)
    return build_mapping(
        wl, _slow_dram_arch(),
        temporal=[{"P": 7, "R": 3}, {"K": 2, "C": 4}, {"P": 2, "K": 2}],
        orders=[["P", "R"], ["K", "C"], ["P", "K"]],
    )


class TestBracket:
    def test_simulated_within_analytical_bracket(self, small_mapping):
        sim = simulate_execution(small_mapping)
        timing = analyze_timing(small_mapping)
        assert sim.cycles >= timing.steady_state_cycles * 0.999
        assert sim.cycles <= timing.serialized_cycles * 1.001

    def test_scheduled_layers_within_bracket(self):
        arch = conventional()
        for layer in (RESNET18_LAYERS[3], RESNET18_LAYERS[5]):
            wl = layer.inference(batch=1)
            result = schedule(wl, arch)
            sim = simulate_execution(result.mapping)
            timing = analyze_timing(result.mapping)
            assert sim.cycles >= timing.steady_state_cycles * 0.999
            assert sim.cycles <= timing.serialized_cycles * 1.001

    def test_compute_bound_when_bandwidth_infinite(self):
        wl = conv1d(K=4, C=4, P=14, R=3)
        arch = tiny(l1_words=64, l2_words=2048, pes=4)  # inf bandwidth
        m = build_mapping(wl, arch, temporal=[{"P": 7, "R": 3}, {"K": 2}, {}])
        sim = simulate_execution(m)
        assert sim.cycles == pytest.approx(sim.compute_cycles)
        assert sim.stalled_passes == 0


class TestPipelineBehaviour:
    def test_pass_count_matches_top_nest(self, small_mapping):
        sim = simulate_execution(small_mapping)
        assert sim.passes == 2 * 2  # DRAM nest: P=2, K=2

    def test_cold_fill_recorded(self, small_mapping):
        sim = simulate_execution(small_mapping)
        assert sim.cold_fill_cycles > 0

    def test_records_kept_on_request(self, small_mapping):
        sim = simulate_execution(small_mapping, keep_records=True)
        assert len(sim.records) == sim.passes
        # Pass starts never precede their transfers.
        for record in sim.records:
            assert record.compute_start >= record.transfer_end - 1e-9

    def test_starved_dram_stalls(self):
        wl = conv1d(K=8, C=8, P=16, R=1)
        arch = tiny(l1_words=64, l2_words=256, pes=1).with_level(
            "DRAM", read_bandwidth=0.01, write_bandwidth=0.01)
        m = build_mapping(wl, arch,
                          temporal=[{"P": 4, "R": 1}, {"C": 8}, {"K": 8, "P": 4}])
        sim = simulate_execution(m)
        assert sim.stall_fraction > 0.5
        assert sim.cycles > sim.compute_cycles * 10

    def test_reuse_aware_refills(self):
        """Passes that change only a non-indexing loop refill nothing."""
        wl = conv1d(K=4, C=1, P=4, R=1)
        arch = tiny(l1_words=64, l2_words=256, pes=1).with_level(
            "DRAM", read_bandwidth=1, write_bandwidth=1)
        # K at DRAM: ifmap (K non-indexing) stays resident across passes.
        m = build_mapping(wl, arch, temporal=[{"P": 4}, {"C": 1}, {"K": 4}],
                          orders=[["P"], ["C"], ["K"]])
        sim = simulate_execution(m, keep_records=True)
        ifmap_refills = sum(
            1 for r in sim.records[1:] if r.refill_words >= 4
        )
        # Only weights/ofmap change after the first pass (small refills).
        assert sim.records[0].refill_words > 0

    def test_budget_guard(self):
        wl = conv2d(N=1, K=64, C=64, P=56, Q=56, R=3, S=3)
        arch = conventional()
        m = build_mapping(wl, arch, temporal=[
            {}, {}, {"K": 64, "C": 64, "P": 56, "Q": 56},
        ])
        with pytest.raises(ValueError, match="budget"):
            simulate_execution(m, max_passes=1000)
