"""Golden regression pins: canonical search outcomes frozen as JSON.

The fixtures in ``tests/golden/`` record the fingerprint, cost and
evaluation count of a few canonical searches.  Any change to candidate
generation, pruning or the cost model that shifts these outcomes fails
here; after an *intentional* change, refresh with::

    pytest tests/test_golden_regression.py --update-golden
"""

from __future__ import annotations

from repro.baselines.exhaustive import exhaustive_search
from repro.core.scheduler import SchedulerOptions, SunstoneScheduler
from tests import harness


def test_golden_sunstone_small_conv(request):
    result = SunstoneScheduler(
        harness.small_conv(), harness.small_arch()).schedule()
    harness.check_golden(request, "sunstone_small_conv",
                         harness.schedule_outcome(result))


def test_golden_sunstone_mttkrp(request):
    result = SunstoneScheduler(
        harness.medium_mttkrp(), harness.medium_arch()).schedule()
    harness.check_golden(request, "sunstone_mttkrp",
                         harness.schedule_outcome(result))


def test_golden_sunstone_topdown_mttkrp(request):
    result = SunstoneScheduler(
        harness.medium_mttkrp(), harness.medium_arch(),
        SchedulerOptions(direction="top-down")).schedule()
    harness.check_golden(request, "sunstone_topdown_mttkrp",
                         harness.schedule_outcome(result))


def test_golden_sunstone_resnet_conv(request):
    result = SunstoneScheduler(
        harness.resnet_conv_layer(), harness.resnet_conv_arch()).schedule()
    harness.check_golden(request, "sunstone_resnet_conv",
                         harness.schedule_outcome(result))


def test_golden_exhaustive_tiny_mttkrp(request):
    result = exhaustive_search(harness.tiny_mttkrp(), harness.small_arch(),
                               orders_per_level=2)
    harness.check_golden(request, "exhaustive_tiny_mttkrp",
                         harness.search_outcome(result))
