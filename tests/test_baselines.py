"""Tests for the baseline mapper reimplementations (§V-B)."""

import pytest

from repro.arch import UNIFIED, Architecture, MemoryLevel, conventional, simba_like, tiny
from repro.baselines import (
    DMAZE_FAST,
    DMAZE_SLOW,
    TIMELOOP_FAST,
    CosaConfig,
    DMazeConfig,
    MappingConstraints,
    SearchBudgetExceeded,
    TimeloopConfig,
    cosa_search,
    dmazerunner_search,
    exhaustive_search,
    interstellar_search,
    prime_factors,
    sample_random_mapping,
    simba_constraints,
    timeloop_search,
)
from repro.core import schedule
from repro.workloads import INCEPTION_V3_LAYERS, conv1d, conv2d


@pytest.fixture
def small_conv():
    return conv1d(K=4, C=4, P=14, R=3)


@pytest.fixture
def small_arch():
    return tiny(l1_words=64, l2_words=512, pes=4)


class TestPrimeFactors:
    def test_basic(self):
        assert prime_factors(12) == [2, 2, 3]
        assert prime_factors(1) == []
        assert prime_factors(97) == [97]


class TestTimeloopLike:
    def test_finds_valid_mapping(self, small_conv, small_arch):
        result = timeloop_search(
            small_conv, small_arch,
            TimeloopConfig(timeout=500, victory_condition=50),
        )
        assert result.found
        assert result.valid

    def test_deterministic_with_seed(self, small_conv, small_arch):
        config = TimeloopConfig(timeout=300, victory_condition=50, seed=7)
        a = timeloop_search(small_conv, small_arch, config)
        b = timeloop_search(small_conv, small_arch, config)
        assert a.edp == b.edp

    def test_victory_condition_terminates_early(self, small_conv, small_arch):
        eager = timeloop_search(
            small_conv, small_arch,
            TimeloopConfig(timeout=100000, victory_condition=5),
        )
        assert eager.evaluations < 100000

    def test_more_search_never_hurts(self, small_conv, small_arch):
        fast = timeloop_search(small_conv, small_arch,
                               TimeloopConfig(timeout=100,
                                              victory_condition=10, seed=3))
        slow = timeloop_search(small_conv, small_arch,
                               TimeloopConfig(timeout=5000,
                                              victory_condition=2000, seed=3))
        assert slow.edp <= fast.edp

    def test_random_mapping_has_correct_products(self, small_conv,
                                                 small_arch):
        import random
        rng = random.Random(0)
        for _ in range(20):
            mapping = sample_random_mapping(small_conv, small_arch, rng)
            for dim, size in small_conv.dims.items():
                product = 1
                for lvl in mapping.levels:
                    product *= (lvl.temporal_factor(dim)
                                * lvl.spatial_factor(dim))
                assert product == size

    def test_constraints_respected(self, small_conv, small_arch):
        import random
        constraints = MappingConstraints(
            spatial_dims={0: ("K",)},
            temporal_dims={0: ("P", "R")},
        )
        rng = random.Random(1)
        for _ in range(20):
            m = sample_random_mapping(small_conv, small_arch, rng,
                                      constraints)
            assert set(m.levels[0].spatial_factors) <= {"K"}
            nontrivial = {d for d, f in m.levels[0].temporal if f > 1}
            assert nontrivial <= {"P", "R"}

    def test_simba_constraints_helper(self):
        arch = simba_like()
        constraints = simba_constraints(arch)
        assert constraints.allows_spatial(0, "C")
        assert not constraints.allows_spatial(0, "R")

    def test_sunstone_beats_timeloop_fast(self, small_conv, small_arch):
        """Headline comparison: same or better EDP, far fewer evaluations."""
        sunstone = schedule(small_conv, small_arch)
        tl = timeloop_search(small_conv, small_arch,
                             TimeloopConfig(timeout=2000,
                                            victory_condition=25))
        assert sunstone.edp <= tl.edp * 1.0001


class TestDMazeRunner:
    def test_finds_mapping_on_heavy_conv(self):
        # The utilisation thresholds need a layer heavy enough to fill
        # half of the 3.1 MB L2 (light layers legitimately fail: Fig. 7).
        wl = conv2d(N=16, K=64, C=64, P=56, Q=56, R=3, S=3)
        result = dmazerunner_search(wl, conventional(), DMAZE_FAST)
        assert result.found
        assert result.valid

    def test_light_layer_fails_thresholds(self):
        wl = conv2d(N=1, K=16, C=16, P=14, Q=14, R=3, S=3)
        result = dmazerunner_search(wl, conventional(), DMAZE_FAST)
        assert not result.found
        assert "utilization" in result.invalid_reason

    def test_rejects_asymmetric_convolution(self):
        asym = next(l for l in INCEPTION_V3_LAYERS if l.R != l.S)
        result = dmazerunner_search(asym.inference(batch=1), conventional())
        assert not result.found
        assert "asymmetric" in result.invalid_reason

    def test_utilization_thresholds_can_fail(self, small_conv):
        # A tiny workload cannot fill 99.9% of a huge L2.
        arch = tiny(l1_words=64, l2_words=10**6, pes=4)
        config = DMazeConfig(l1_utilization=0.999, l2_utilization=0.999)
        result = dmazerunner_search(small_conv, arch, config)
        assert not result.found
        assert "utilization" in result.invalid_reason

    def test_slow_config_relaxes(self, small_conv, small_arch):
        fast = dmazerunner_search(small_conv, small_arch, DMAZE_FAST)
        slow = dmazerunner_search(small_conv, small_arch, DMAZE_SLOW)
        assert slow.found  # the conservative config generalises better
        if fast.found:
            assert fast.evaluations > 0

    def test_never_worse_than_sunstone_claim(self, small_conv, small_arch):
        """Paper Table I: Sunstone never returns worse mappings."""
        sunstone = schedule(small_conv, small_arch)
        dmaze = dmazerunner_search(small_conv, small_arch, DMAZE_SLOW)
        if dmaze.found:
            assert sunstone.edp <= dmaze.edp * 1.0001


class TestInterstellar:
    def test_finds_mapping(self):
        wl = conv2d(N=1, K=16, C=16, P=14, Q=14, R=3, S=3)
        result = interstellar_search(wl, conventional())
        assert result.found
        assert result.valid

    def test_prefers_ck_unrolling(self):
        wl = conv2d(N=1, K=64, C=64, P=14, Q=14, R=3, S=3)
        result = interstellar_search(wl, conventional())
        unrolled = set()
        for lvl in result.mapping.levels:
            unrolled |= {d for d, f in lvl.spatial if f > 1}
        assert unrolled <= {"C", "K"}

    def test_falls_back_when_ck_insufficient(self):
        # K*C = 8 < 16 PEs: must use other dims to fill the grid.
        wl = conv2d(N=1, K=4, C=2, P=16, Q=16, R=3, S=3)
        arch = tiny(l1_words=512, l2_words=65536, pes=16)
        result = interstellar_search(wl, arch)
        assert result.found
        unrolled = set()
        for lvl in result.mapping.levels:
            unrolled |= {d for d, f in lvl.spatial if f > 1}
        assert unrolled - {"C", "K"}


class TestCosa:
    def test_one_shot(self, small_conv, small_arch):
        result = cosa_search(small_conv, small_arch)
        assert result.found
        assert result.evaluations == 1

    def test_fast(self, small_conv, small_arch):
        result = cosa_search(small_conv, small_arch)
        assert result.wall_time_s < 1.0

    def test_invalid_mappings_on_simba(self):
        """The linear relaxation overflows real buffers (paper: ~60%)."""
        arch = simba_like()
        invalid = 0
        layers = [
            conv2d(N=16, K=k, C=c, P=p, Q=p, R=3, S=3)
            for k, c, p in [(64, 64, 56), (128, 128, 28), (256, 256, 14),
                            (512, 512, 7), (64, 3, 112)]
        ]
        for wl in layers:
            result = cosa_search(wl, arch)
            assert result.found  # always returns something
            if not result.valid:
                invalid += 1
                assert result.invalid_reason
        assert invalid >= 2  # a large fraction is invalid

    def test_factor_products_always_hold(self, small_conv, small_arch):
        result = cosa_search(small_conv, small_arch)
        for dim, size in small_conv.dims.items():
            product = 1
            for lvl in result.mapping.levels:
                product *= lvl.temporal_factor(dim) * lvl.spatial_factor(dim)
            assert product == size


class TestExhaustive:
    def test_budget_guard(self):
        wl = conv2d(N=4, K=16, C=16, P=14, Q=14, R=3, S=3)
        with pytest.raises(SearchBudgetExceeded):
            exhaustive_search(wl, conventional(), max_evaluations=1000)

    def test_small_problem(self):
        wl = conv1d(K=2, C=2, P=2, R=1)
        arch = Architecture("t", [
            MemoryLevel("L1", {UNIFIED: 8}, read_energy=1.0, write_energy=1.0),
            MemoryLevel("DRAM", None, read_energy=10.0, write_energy=10.0),
        ])
        result = exhaustive_search(wl, arch, max_evaluations=500_000)
        assert result.found
        assert result.valid
        assert result.evaluations > 10
