"""Oracle-backed equivalence: the mapspace refactor preserved behaviour.

``repro.mapspace._oracle`` holds verbatim copies of the inline candidate
generators every mapper used before being refactored onto the declarative
mapspace IR.  These tests prove the refactor is behaviour-preserving
bit-for-bit: same candidate streams, same best mapping (by fingerprint),
same cost, same evaluation and node accounting — for all seven mappers.
"""

from __future__ import annotations

import random

import pytest

from repro.arch import conventional, diannao_like, simba_like, tiny
from repro.baselines.cosa import cosa_search
from repro.baselines.dmazerunner import (
    DMAZE_FAST,
    DMAZE_SLOW,
    _DMazeSearch,
)
from repro.baselines.exhaustive import exhaustive_search
from repro.baselines.gamma import GammaConfig, _GammaSearch
from repro.baselines.interstellar import (
    InterstellarConfig,
    _InterstellarSearch,
)
from repro.baselines.random_search import (
    sample_random_mapping,
    simba_constraints,
)
from repro.core.scheduler import SchedulerOptions, SunstoneScheduler
from repro.mapspace import full_mapping_space, prime_factors
from repro.mapspace._oracle import (
    OracleSunstoneScheduler,
    make_oracle_dmaze,
    make_oracle_interstellar,
    oracle_full_space_stream,
    oracle_gamma_decode,
    oracle_prime_factors,
    oracle_sample_random_mapping,
    oracle_spatial_slots,
)
from repro.mapspace.mapspace import spatial_boundaries
from repro.search import SearchEngine, mapping_fingerprint
from repro.workloads import mttkrp
from repro.workloads.networks import resnet18
from tests.harness import assert_same_outcome as _assert_same_outcome


# ---------------------------------------------------------------------------
# Sunstone: every intra-level mode and both sweep directions
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("direction,intra", [
    ("bottom-up", "ordering-tiling-unrolling"),
    ("bottom-up", "tiling-unrolling-ordering"),
    ("bottom-up", "unrolling-tiling-ordering"),
    ("top-down", "ordering-tiling-unrolling"),
])
def test_sunstone_matches_oracle(direction, intra):
    workload = mttkrp(64, 32, 32, 64)
    arch = conventional()
    options = SchedulerOptions(direction=direction, intra_level_order=intra)
    live = SunstoneScheduler(workload, arch, options).schedule()
    oracle = OracleSunstoneScheduler(workload, arch, options).schedule()
    _assert_same_outcome(live, oracle)


def test_sunstone_conv_on_diannao_matches_oracle():
    layer = resnet18()[4]  # conv3 downsample
    arch = diannao_like()
    live = SunstoneScheduler(layer, arch).schedule()
    oracle = OracleSunstoneScheduler(layer, arch).schedule()
    _assert_same_outcome(live, oracle)


def test_sunstone_shards_cover_the_search():
    """A sharded search runs and stays deterministic (the shards split the
    per-step candidate streams; the trajectory may legitimately differ
    from the unsharded one)."""
    workload = mttkrp(64, 32, 32, 64)
    arch = conventional()
    full = SunstoneScheduler(workload, arch).schedule()
    for index in range(2):
        options = SchedulerOptions(shard=(index, 2))
        once = SunstoneScheduler(workload, arch, options).schedule()
        again = SunstoneScheduler(workload, arch, options).schedule()
        assert once.found
        assert (mapping_fingerprint(once.mapping)
                == mapping_fingerprint(again.mapping))
        assert once.stats.evaluations == again.stats.evaluations
        assert once.stats.evaluations < full.stats.evaluations


# ---------------------------------------------------------------------------
# Interstellar-like
# ---------------------------------------------------------------------------

def test_interstellar_matches_oracle():
    workload = mttkrp(64, 32, 32, 64)
    arch = conventional()
    config = InterstellarConfig()

    def options():
        return SchedulerOptions(
            alpha_beta=False,
            beam_width=config.beam_width,
            objective=config.objective,
        )

    live = _InterstellarSearch(workload, arch, config, options()).schedule()
    oracle_cls = make_oracle_interstellar(_InterstellarSearch)
    oracle = oracle_cls(workload, arch, config, options()).schedule()
    _assert_same_outcome(live, oracle)


# ---------------------------------------------------------------------------
# dMazeRunner-like (including the found=False threshold failure mode)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("config", [DMAZE_FAST, DMAZE_SLOW])
def test_dmazerunner_matches_oracle(config):
    workload = mttkrp(64, 32, 32, 64)
    arch = conventional()

    def options():
        return SchedulerOptions(
            alpha_beta=False,
            beam_width=config.beam_width,
            objective=config.objective,
        )

    live = _DMazeSearch(workload, arch, config, options()).schedule()
    oracle_cls = make_oracle_dmaze(_DMazeSearch)
    oracle = oracle_cls(workload, arch, config, options()).schedule()
    _assert_same_outcome(live, oracle)


def test_dmazerunner_conv_matches_oracle():
    layer = resnet18()[4]
    arch = diannao_like()
    config = DMAZE_FAST

    def options():
        return SchedulerOptions(
            alpha_beta=False,
            beam_width=config.beam_width,
            objective=config.objective,
        )

    live = _DMazeSearch(layer, arch, config, options()).schedule()
    oracle_cls = make_oracle_dmaze(_DMazeSearch)
    oracle = oracle_cls(layer, arch, config, options()).schedule()
    _assert_same_outcome(live, oracle)


# ---------------------------------------------------------------------------
# Timeloop-like random sampler: identical candidate streams per seed
# ---------------------------------------------------------------------------

def test_random_sampler_stream_matches_oracle():
    workload = mttkrp(64, 32, 32, 64)
    arch = conventional()
    live_rng, oracle_rng = random.Random(7), random.Random(7)
    for _ in range(300):
        live = sample_random_mapping(workload, arch, live_rng)
        oracle = oracle_sample_random_mapping(workload, arch, oracle_rng)
        assert mapping_fingerprint(live) == mapping_fingerprint(oracle)


def test_constrained_sampler_stream_matches_oracle():
    from repro.workloads import conv2d

    workload = conv2d(N=1, K=32, C=16, P=8, Q=8, R=3, S=3)
    arch = simba_like()
    constraints = simba_constraints(arch)
    live_rng, oracle_rng = random.Random(11), random.Random(11)
    for _ in range(200):
        live = sample_random_mapping(workload, arch, live_rng, constraints)
        oracle = oracle_sample_random_mapping(workload, arch, oracle_rng,
                                              constraints)
        assert mapping_fingerprint(live) == mapping_fingerprint(oracle)


# ---------------------------------------------------------------------------
# Exhaustive: composed full space == historical stream, and shards union
# ---------------------------------------------------------------------------

def test_full_mapping_space_matches_oracle_stream():
    workload = mttkrp(4, 4, 2, 4)
    arch = tiny()
    space = full_mapping_space(workload, arch, orders_per_level=3)
    live = [mapping_fingerprint(m) for m in space.enumerate()]
    oracle = [mapping_fingerprint(m)
              for m in oracle_full_space_stream(workload, arch, 3)]
    assert live == oracle
    assert space.size() == len(oracle)


def test_exhaustive_shards_union_recovers_the_best():
    workload = mttkrp(4, 4, 2, 4)
    arch = tiny()
    full = exhaustive_search(workload, arch, orders_per_level=2)
    shards = [
        exhaustive_search(workload, arch, orders_per_level=2,
                          shard=(i, 2))
        for i in range(2)
    ]
    assert full.found
    # Branch-and-bound incumbents differ per shard, so evaluation counts
    # are not additive; evaluated + provably-skipped partitions the
    # space exactly in every run.
    size = full_mapping_space(workload, arch, 2).size()

    def covered(result):
        return (result.evaluations
                + result.search_stats.bound_candidates_skipped)

    assert covered(full) == size
    assert sum(covered(s) for s in shards) == size
    best_edp = min(s.cost.edp for s in shards if s.found)
    assert best_edp == full.cost.edp


# ---------------------------------------------------------------------------
# GAMMA-like: genome decode through assemble_mapping
# ---------------------------------------------------------------------------

def test_gamma_decode_matches_oracle():
    workload = mttkrp(16, 8, 8, 16)
    arch = conventional()
    with SearchEngine(workers=1) as engine:
        search = _GammaSearch(workload, arch, GammaConfig(seed=3),
                              True, engine)
        for _ in range(50):
            genome = search.random_genome()
            live = search.decode(genome)
            oracle = oracle_gamma_decode(workload, arch, search.primes,
                                         genome.placements, genome.orders)
            assert mapping_fingerprint(live) == mapping_fingerprint(oracle)


# ---------------------------------------------------------------------------
# CoSA-like: deterministic one-shot emission unchanged across runs
# ---------------------------------------------------------------------------

def test_cosa_is_deterministic():
    workload = mttkrp(64, 32, 32, 64)
    arch = conventional()
    first = cosa_search(workload, arch)
    second = cosa_search(workload, arch)
    assert first.evaluations == second.evaluations == 1
    assert (mapping_fingerprint(first.mapping)
            == mapping_fingerprint(second.mapping))
    assert first.cost.edp == second.cost.edp


# ---------------------------------------------------------------------------
# shared ingredients
# ---------------------------------------------------------------------------

def test_prime_factors_matches_oracle():
    for n in range(1, 500):
        assert prime_factors(n) == oracle_prime_factors(n)


def test_spatial_boundaries_match_oracle():
    for build in (tiny, conventional, diannao_like, simba_like):
        arch = build()
        assert spatial_boundaries(arch) == oracle_spatial_slots(arch)
