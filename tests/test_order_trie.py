"""Tests for the loop-ordering trie (§IV-A, Fig. 4)."""

import itertools
import math

import pytest

from repro.core import TrieStats, enumerate_orderings
from repro.core.order_trie import ReuseOutcome, _new_reuse
from repro.workloads import conv1d, conv2d, make_workload, mttkrp, ttmc


@pytest.fixture
def conv():
    return conv1d(K=4, C=4, P=7, R=3)


class TestNewReuse:
    def test_innermost_c_reuses_ofmap(self, conv):
        full, partial = _new_reuse(conv, "C", [])
        assert full == {"ofmap"}

    def test_innermost_r_reuses_ofmap_and_partial_ifmap(self, conv):
        full, partial = _new_reuse(conv, "R", [])
        assert full == {"ofmap"}
        assert partial == {"ifmap"}

    def test_ordering_principle_2(self, conv):
        # K is non-indexing for ifmap, but C inside destroys the reuse
        # (the paper's xxCK example, Fig. 4 node 4).
        full, partial = _new_reuse(conv, "C", ["K"])
        assert full == set()

    def test_chain_of_nonindexing_preserves(self, conv):
        # C above R: both non-indexing for ofmap -> reuse preserved.
        full, _ = _new_reuse(conv, "C", ["R"])
        assert "ofmap" in full

    def test_window_partner_preserves_partial(self, conv):
        # P above R: R is a window partner of P for ifmap.
        _, partial = _new_reuse(conv, "P", ["R"])
        assert "ifmap" in partial


class TestEnumerateOrderings:
    def test_conv1d_candidate_count_is_small(self, conv):
        candidates = enumerate_orderings(conv)
        assert 1 < len(candidates) <= 8  # vs 4! = 24 unpruned

    def test_each_candidate_is_a_permutation(self, conv):
        for cand in enumerate_orderings(conv):
            assert sorted(cand.order) == sorted(conv.dim_names)

    def test_xxcr_outcome_present(self, conv):
        # The paper's Fig. 4 keeps a node reusing ofmap via both C and R.
        candidates = enumerate_orderings(conv)
        outcomes = [c.outcome.full_dict() for c in candidates]
        assert any(o.get("ofmap") == frozenset({"C", "R"}) for o in outcomes)

    def test_xxxc_dominated(self, conv):
        # A suffix reusing ofmap via C alone is dominated by {C, R}.
        candidates = enumerate_orderings(conv)
        for cand in candidates:
            assert cand.outcome.full_dict().get("ofmap") != frozenset({"C"})

    def test_every_tensor_coverable(self, conv):
        # Some candidate must reuse each tensor that has reuse potential.
        reused = set()
        for cand in enumerate_orderings(conv):
            reused |= cand.reused_tensors
        assert reused == {"ifmap", "weight", "ofmap"}

    def test_stats_populated(self, conv):
        stats = TrieStats()
        enumerate_orderings(conv, stats=stats)
        assert stats.nodes_visited > 0
        assert stats.candidates > 0
        assert stats.candidates <= stats.candidates_before_dominance

    def test_dims_subset(self, conv):
        candidates = enumerate_orderings(conv, dims=("K", "C"))
        for cand in candidates:
            assert sorted(cand.order) == ["C", "K"]

    def test_conv2d_scales(self):
        wl = conv2d(N=4, K=8, C=8, P=8, Q=8, R=3, S=3)
        candidates = enumerate_orderings(wl)
        # 7 dims: 5040 permutations; the trie keeps a few dozen at most.
        assert len(candidates) < 64

    def test_mttkrp_covers_all_operands(self):
        wl = mttkrp(I=8, K=8, L=8, J=4)
        reused = set()
        for cand in enumerate_orderings(wl):
            reused |= cand.reused_tensors
        assert {"A", "B", "C", "out"} <= reused

    def test_no_reuse_workload_falls_back(self):
        # Elementwise: every dim indexes every tensor -> no reuse anywhere.
        wl = make_workload(
            "ew", {"I": 4, "J": 4},
            {"A": ["I", "J"], "out": ["I", "J"]},
            outputs=["out"],
        )
        candidates = enumerate_orderings(wl)
        assert len(candidates) == 1
        assert candidates[0].reused_tensors == frozenset()


class TestDominance:
    def test_dominates_reflexive(self):
        outcome = ReuseOutcome.from_dicts({"a": {"X"}}, {})
        assert outcome.dominates(outcome)

    def test_superset_dominates(self):
        small = ReuseOutcome.from_dicts({"a": {"X"}}, {})
        big = ReuseOutcome.from_dicts({"a": {"X", "Y"}}, {})
        assert big.dominates(small)
        assert not small.dominates(big)

    def test_partial_covered_by_full(self):
        partial = ReuseOutcome.from_dicts({}, {"a": {"X"}})
        full = ReuseOutcome.from_dicts({"a": {"X"}}, {})
        assert full.dominates(partial)

    def test_incomparable(self):
        left = ReuseOutcome.from_dicts({"a": {"X"}}, {})
        right = ReuseOutcome.from_dicts({"b": {"Y"}}, {})
        assert not left.dominates(right)
        assert not right.dominates(left)


class TestOrderingQuality:
    def test_candidates_contain_an_access_optimal_order(self):
        """Brute-force check: for a tiny 2-level tiling, some pruned-trie
        candidate achieves the minimum total L2 access count over ALL
        permutations used as the L2 nest order."""
        from repro.arch import tiny
        from repro.mapping import build_mapping
        from repro.model import count_accesses

        wl = conv1d(K=4, C=4, P=7, R=3)
        arch = tiny(l1_words=10**9, l2_words=10**9, pes=1)
        tiling = [{"P": 7, "K": 2, "C": 2, "R": 3}, {"P": 1, "K": 2, "C": 2}, {}]

        def l2_accesses(order):
            m = build_mapping(wl, arch, temporal=[dict(t) for t in tiling],
                              orders=[list(wl.dim_names), list(order), []])
            counts = count_accesses(m, partial_reuse=False)
            return counts.level_total(1)

        best_overall = min(
            l2_accesses(p) for p in itertools.permutations(wl.dim_names)
        )
        best_candidate = min(
            l2_accesses(c.order) for c in enumerate_orderings(wl)
        )
        assert best_candidate == best_overall
