"""Bit-identity and regression harness for ``repro.model.batch``.

Pins the PR's determinism contract: the vectorised cohort evaluator and
the term-level partial cache produce results bit-identical to the plain
scalar ``evaluate()`` — every float field, the validity verdict and the
violation strings — across window/halo workloads, bypass configurations
and sparsity specs; and a level sweep with the partial cache recomputes
strictly fewer terms than a cold one.
"""

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import conventional, diannao_like, tiny
from repro.baselines.common import prime_factors
from repro.cli import main
from repro.core import SchedulerOptions, schedule
from repro.mapping import build_mapping
from repro.mapping.serialize import mapping_to_dict
from repro.model import (
    HAVE_NUMPY,
    PartialEvalCache,
    evaluate,
    evaluate_batch,
    model_info,
)
from repro.model import batch as batch_mod
from repro.search import SearchEngine
from repro.sparse import SparsitySpec
from repro.workloads import conv1d, conv2d, make_workload, mttkrp


def _matmul(i=8, j=8, k=8):
    return make_workload(
        "mm", {"I": i, "J": j, "K": k},
        {"A": ["I", "K"], "B": ["K", "J"], "out": ["I", "J"]},
        outputs=["out"],
    )


# Window/halo (conv), unified capacities (tiny/conventional), per-role
# capacities + storage bypass (diannao on non-CNN roles), plain matmul.
_CASES = [
    (conv1d(K=4, C=8, P=16, R=3), tiny()),
    (conv2d(N=1, K=8, C=8, P=6, Q=6, R=3, S=3), conventional()),
    (mttkrp(I=8, K=6, L=4, J=5), diannao_like()),
    (_matmul(8, 6, 8), tiny(l1_words=32, l2_words=256, pes=4)),
]

# Unknown tensor names are ignored per workload, so one spec serves all
# cases (conv tensors I/W/O, mttkrp A/B/C/D, matmul A/B/out).
_SPARSE = SparsitySpec.from_densities(
    {"I": 0.3, "W": 0.5, "A": 0.2, "B": 0.6})

_FIELDS = ("energy_pj", "cycles", "valid", "violations", "level_energy",
           "compute_energy", "noc_energy", "utilization")


def _random_mappings(workload, arch, rng, n):
    """Deterministic random prime-split mappings (valid and invalid)."""
    num = arch.num_levels
    out = []
    for _ in range(n):
        temporal = [dict() for _ in range(num)]
        spatial = [dict() for _ in range(num)]
        for d, size in workload.dims.items():
            for p in prime_factors(size):
                lvl = rng.randrange(num)
                if rng.random() < 0.25 and arch.levels[lvl].fanout > 1:
                    spatial[lvl][d] = spatial[lvl].get(d, 1) * p
                else:
                    temporal[lvl][d] = temporal[lvl].get(d, 1) * p
        orders = []
        for _level in range(num):
            dims = list(workload.dims)
            rng.shuffle(dims)
            orders.append(dims)
        out.append(build_mapping(workload, arch, temporal, spatial, orders))
    return out


def _assert_same(a, b, context):
    for name in _FIELDS:
        assert getattr(a, name) == getattr(b, name), (context, name)


# ---------------------------------------------------------------------------
# Satellite (c): seeded-hypothesis bit-identity property
# ---------------------------------------------------------------------------


@given(seed=st.integers(min_value=0, max_value=10**9))
@settings(max_examples=30, deadline=None, derandomize=True)
def test_batch_and_partial_cache_bitwise_identical(seed):
    """Scalar, scalar+partial-cache and vectorised paths agree exactly."""
    rng = random.Random(seed)
    workload, arch = _CASES[rng.randrange(len(_CASES))]
    sparsity = rng.choice([None, _SPARSE])
    partial_reuse = rng.random() < 0.75
    mappings = _random_mappings(workload, arch, rng, 8)

    scalar = [evaluate(m, partial_reuse=partial_reuse, sparsity=sparsity)
              for m in mappings]
    cache = PartialEvalCache(partial_reuse=partial_reuse, sparsity=sparsity)
    cached = [evaluate(m, partial_reuse=partial_reuse, sparsity=sparsity,
                       partial_cache=cache)
              for m in mappings]
    # Second pass replays every term from the cache.
    replayed = [evaluate(m, partial_reuse=partial_reuse, sparsity=sparsity,
                         partial_cache=cache)
                for m in mappings]
    batched = evaluate_batch(mappings, partial_reuse=partial_reuse,
                             sparsity=sparsity)
    fresh_cache = PartialEvalCache(partial_reuse=partial_reuse,
                                   sparsity=sparsity)
    batched_cached = evaluate_batch(mappings, partial_reuse=partial_reuse,
                                    sparsity=sparsity,
                                    partial_cache=fresh_cache)
    context = (workload.name, arch.name, sparsity is not None,
               partial_reuse)
    for i, oracle in enumerate(scalar):
        _assert_same(oracle, cached[i], context + ("partial-cache", i))
        _assert_same(oracle, replayed[i], context + ("replay", i))
        _assert_same(oracle, batched[i], context + ("batch", i))
        _assert_same(oracle, batched_cached[i],
                     context + ("batch+cache", i))
    assert cache.hits > 0  # the replay pass must actually reuse terms


def test_violation_messages_match_mapping_validate():
    """The batch path's fast validity check mirrors Mapping.validate()."""
    rng = random.Random(7)
    saw_invalid = 0
    for workload, arch in _CASES:
        for mapping in _random_mappings(workload, arch, rng, 16):
            expected = mapping.validate()
            (result,) = evaluate_batch([mapping] * 4)[:1]
            assert result.violations == expected
            saw_invalid += bool(expected)
    assert saw_invalid > 0  # the sample must exercise the invalid branch


# ---------------------------------------------------------------------------
# Satellite (c): partial-cache reuse regression
# ---------------------------------------------------------------------------


def test_level_perturbation_reuses_untouched_terms():
    """Perturbing only outer levels recomputes strictly fewer terms.

    The base mapping keeps innermost *relevant* loops (Q, S) at L2, so
    every tensor's L1-side fill suffix terminates there; moving a C
    factor between L2's outer portion and DRAM — a sweep/polish move on
    the outer levels — must replay all L1-side terms from the cache and
    recompute only the pairs the move actually touches.
    """
    workload, arch = _CASES[1]  # conv2d on conventional (L1, L2, DRAM)
    num = arch.num_levels
    orders = [list(workload.dims) for _ in range(num)]

    def mapping_with(l1_temporal):
        temporal = [dict() for _ in range(num)]
        temporal[1] = dict(l1_temporal)  # residual completes at the top
        return build_mapping(workload, arch,
                             temporal=temporal,
                             spatial=[dict() for _ in range(num)],
                             orders=orders)

    base = mapping_with({"Q": 6, "S": 3})
    perturbed = mapping_with({"Q": 6, "S": 3, "C": 2})

    cache = PartialEvalCache()
    evaluate(base, partial_cache=cache)
    cold_misses = cache.misses
    assert cache.hits == 0 and cold_misses > 0
    evaluate(perturbed, partial_cache=cache)
    delta = cache.misses - cold_misses
    assert delta < cold_misses  # strictly fewer recomputations
    assert cache.hits > 0  # untouched levels replayed verbatim


def test_partial_cache_is_config_bound():
    cache = PartialEvalCache(partial_reuse=True, sparsity=None)
    with pytest.raises(ValueError):
        cache.check_config(False, None)
    with pytest.raises(ValueError):
        cache.check_config(True, _SPARSE)
    mapping = _random_mappings(*_CASES[0], random.Random(0), 1)[0]
    with pytest.raises(ValueError):
        evaluate(mapping, partial_reuse=False, partial_cache=cache)


def test_partial_cache_lru_bound_evicts():
    cache = PartialEvalCache(max_entries=4)
    rng = random.Random(3)
    for mapping in _random_mappings(*_CASES[0], rng, 8):
        evaluate(mapping, partial_cache=cache)
    assert len(cache) <= 4
    assert cache.evictions > 0


# ---------------------------------------------------------------------------
# Tentpole: engine routing determinism (workers x cache x batch)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("sparsity", [None, _SPARSE])
def test_scheduler_equivalence_across_batch_configs(sparsity):
    workload, arch = _CASES[0]
    oracle = schedule(workload, arch,
                      SchedulerOptions(workers=1, cache=False, batch=False,
                                       sparsity=sparsity))
    assert oracle.found
    oracle_map = mapping_to_dict(oracle.mapping)
    oracle_cost = (oracle.cost.energy_pj, oracle.cost.cycles)
    configs = [
        dict(workers=1, cache=True, batch=False),
        dict(workers=1, cache=False, batch=True),
        dict(workers=1, cache=True, batch=True),
        dict(workers=2, cache=True, batch=True),
        dict(workers=1, cache=True, batch=True, cache_size=64),
    ]
    for config in configs:
        result = schedule(workload, arch,
                          SchedulerOptions(sparsity=sparsity, **config))
        assert result.found, config
        assert mapping_to_dict(result.mapping) == oracle_map, config
        assert (result.cost.energy_pj, result.cost.cycles) == oracle_cost, \
            config


def test_engine_evaluate_many_routes_through_batch():
    workload, arch = _CASES[3]
    mappings = _random_mappings(workload, arch, random.Random(5), 12)
    engine = SearchEngine(workers=1, cache=True, batch=True)
    results = engine.evaluate_many(mappings)
    oracle = [evaluate(m) for m in mappings]
    for got, want in zip(results, oracle):
        _assert_same(want, got, "engine")
    if HAVE_NUMPY:
        assert engine.stats.batched_evaluations > 0
    assert engine.stats.partial_requests > 0
    assert "model" in engine.stats.stage_time_s
    assert "cache" in engine.stats.stage_time_s
    # The established alias keeps working.
    assert engine.evaluate_batch(mappings) == results


def test_no_numpy_fallback_is_bitwise_scalar(monkeypatch):
    workload, arch = _CASES[2]
    mappings = _random_mappings(workload, arch, random.Random(11), 8)
    oracle = [evaluate(m) for m in mappings]
    monkeypatch.setattr(batch_mod, "_np", None)
    fallback = evaluate_batch(mappings)
    for got, want in zip(fallback, oracle):
        _assert_same(want, got, "no-numpy")
    engine = SearchEngine(workers=1, cache=False, batch=True)
    for got, want in zip(engine.evaluate_many(mappings), oracle):
        _assert_same(want, got, "no-numpy-engine")
    assert engine.stats.batched_evaluations in (0, len(mappings))


# ---------------------------------------------------------------------------
# Satellite (b): bounded caches via the engine's cache_size knob
# ---------------------------------------------------------------------------


def test_engine_cache_size_bounds_both_caches():
    workload, arch = _CASES[3]
    mappings = _random_mappings(workload, arch, random.Random(13), 24)
    engine = SearchEngine(workers=1, cache=True, cache_size=4)
    engine.evaluate_many(mappings)
    assert engine.cache.max_entries == 4
    assert len(engine.cache) <= 4
    assert engine.stats.cache_evictions > 0
    assert engine.partial_cache.max_entries == 4
    assert engine.stats.partial_evictions > 0
    unbounded = SearchEngine(workers=1, cache=True, cache_size=0)
    assert unbounded.cache.max_entries is None
    assert unbounded.partial_cache.max_entries is None
    with pytest.raises(ValueError):
        SearchEngine(cache_size=-1)


def test_stats_profile_fields_merge_and_serialise():
    engine = SearchEngine(workers=1)
    workload, arch = _CASES[0]
    engine.evaluate_many(_random_mappings(workload, arch,
                                          random.Random(1), 6))
    snapshot = engine.stats.to_dict()
    for key in ("stage_time_s", "batched_evaluations", "partial_hits",
                "partial_misses", "partial_evictions",
                "partial_hit_rate"):
        assert key in snapshot
    text = engine.stats.profile_summary()
    assert "partial-term cache" in text and "stage time" in text
    merged = type(engine.stats)()
    merged.merge(engine.stats)
    merged.merge(engine.stats)
    assert merged.partial_hits == 2 * engine.stats.partial_hits
    assert merged.batched_evaluations == 2 * engine.stats.batched_evaluations
    for stage, seconds in engine.stats.stage_time_s.items():
        assert merged.stage_time_s[stage] == pytest.approx(2 * seconds)


# ---------------------------------------------------------------------------
# CLI: --profile / --cache-size / --no-batch
# ---------------------------------------------------------------------------

_CLI_SCHEDULE = ["schedule", "--workload", "conv1d",
                 "K=4", "C=4", "P=8", "R=3", "--arch", "tiny"]


def test_cli_profile_and_stats_json(tmp_path, capsys):
    stats_path = tmp_path / "stats.json"
    code = main(_CLI_SCHEDULE + ["--profile", "--cache-size", "1000",
                                 "--stats-json", str(stats_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "profile:" in out and "partial-term cache" in out
    document = json.loads(stats_path.read_text())
    search = document["search"]
    assert "stage_time_s" in search and "partial_hits" in search
    assert search["batched_evaluations"] >= 0


def test_cli_no_batch_is_bit_identical(tmp_path):
    default_path = tmp_path / "default.json"
    scalar_path = tmp_path / "scalar.json"
    assert main(_CLI_SCHEDULE + ["--stats-json", str(default_path)]) == 0
    assert main(_CLI_SCHEDULE + ["--no-batch",
                                 "--stats-json", str(scalar_path)]) == 0
    lhs = json.loads(default_path.read_text())
    rhs = json.loads(scalar_path.read_text())
    assert lhs["mapping"] == rhs["mapping"]
    assert lhs["cost"] == rhs["cost"]
