"""Additional tests for loop-nest rendering."""

import pytest

from repro.arch import tiny
from repro.mapping import build_mapping, render_nest
from repro.workloads import conv1d


@pytest.fixture
def mapping():
    wl = conv1d(K=4, C=4, P=14, R=3)
    arch = tiny(l1_words=64, l2_words=512, pes=4)
    return build_mapping(
        wl, arch,
        temporal=[{"P": 7, "R": 3, "K": 1}, {"K": 2}, {}],
        spatial=[{"C": 2}, {}, {}],
        orders=[["K", "P", "R"], ["K"], []],
    )


class TestRenderNest:
    def test_trivial_loops_hidden_by_default(self, mapping):
        text = render_nest(mapping)
        assert "k_0" not in text  # bound-1 loop hidden

    def test_show_trivial(self, mapping):
        text = render_nest(mapping, show_trivial=True)
        assert "k_0 in [0, 1)" in text

    def test_levels_appear_outermost_first(self, mapping):
        text = render_nest(mapping)
        assert text.index("DRAM") < text.index("L2") < text.index("L1")

    def test_indentation_nests(self, mapping):
        lines = render_nest(mapping).splitlines()
        compute = next(l for l in lines if "compute(" in l)
        deepest_for = max(
            (l for l in lines if "for " in l),
            key=lambda l: len(l) - len(l.lstrip()),
        )
        assert (len(compute) - len(compute.lstrip())
                > len(deepest_for) - len(deepest_for.lstrip()))

    def test_spatial_loop_annotated(self, mapping):
        text = render_nest(mapping)
        assert "parallel-for c_s0" in text
        assert "across L1 instances" in text
