"""Tests for spatial-unrolling candidates and the Unrolling Principle."""

import math

import pytest

from repro.core import UnrollingStats, allowed_unroll_dims, enumerate_unrollings
from repro.workloads import conv1d, mttkrp


@pytest.fixture
def conv():
    return conv1d(K=8, C=8, P=16, R=3)


class TestAllowedDims:
    def test_ofmap_reused_rejects_its_nonindexing_dims(self, conv):
        # OP = ofmap (indexed by K, P): reject C and R.
        allowed = allowed_unroll_dims(conv, ["ofmap"])
        assert set(allowed) == {"K", "P"}

    def test_ifmap_reused_rejects_k(self, conv):
        allowed = allowed_unroll_dims(conv, ["ifmap"])
        assert set(allowed) == {"C", "P", "R"}

    def test_multiple_reused_intersect(self, conv):
        allowed = allowed_unroll_dims(conv, ["ofmap", "weight"])
        assert set(allowed) == {"K"}

    def test_no_reused_allows_all(self, conv):
        assert set(allowed_unroll_dims(conv, [])) == set(conv.dim_names)


class TestEnumerateUnrollings:
    def test_fanout_one_yields_empty(self, conv):
        assert enumerate_unrollings(conv, 1, dict(conv.dims)) == [{}]

    def test_factors_bounded_by_fanout(self, conv):
        for unroll in enumerate_unrollings(conv, 16, dict(conv.dims)):
            assert math.prod(unroll.values() or [1]) <= 16

    def test_factors_divide_remaining(self, conv):
        remaining = {"K": 8, "C": 8, "P": 16, "R": 3}
        for unroll in enumerate_unrollings(conv, 16, remaining):
            for dim, factor in unroll.items():
                assert remaining[dim] % factor == 0

    def test_high_throughput_keeps_only_maximal(self, conv):
        unrolls = enumerate_unrollings(conv, 16, dict(conv.dims),
                                       utilization_threshold=1.0)
        for unroll in unrolls:
            assert math.prod(unroll.values() or [1]) == 16

    def test_relaxed_threshold_keeps_more(self, conv):
        strict = enumerate_unrollings(conv, 16, dict(conv.dims),
                                      utilization_threshold=1.0)
        relaxed = enumerate_unrollings(conv, 16, dict(conv.dims),
                                       utilization_threshold=0.5)
        assert len(relaxed) > len(strict)

    def test_allowed_dims_respected(self, conv):
        unrolls = enumerate_unrollings(conv, 16, dict(conv.dims),
                                       allowed_dims=("K", "P"))
        for unroll in unrolls:
            assert set(unroll) <= {"K", "P"}

    def test_max_unrolled_dims(self, conv):
        unrolls = enumerate_unrollings(conv, 64, dict(conv.dims),
                                       max_unrolled_dims=1,
                                       utilization_threshold=0.0)
        for unroll in unrolls:
            assert len([f for f in unroll.values() if f > 1]) <= 1

    def test_empty_when_nothing_unrollable(self):
        wl = conv1d(K=1, C=1, P=1, R=2)
        unrolls = enumerate_unrollings(wl, 16, {"K": 1, "C": 1, "P": 1, "R": 1})
        assert unrolls == [{}]

    def test_no_duplicates(self, conv):
        unrolls = enumerate_unrollings(conv, 16, dict(conv.dims),
                                       utilization_threshold=0.5)
        keys = [tuple(sorted(u.items())) for u in unrolls]
        assert len(keys) == len(set(keys))

    def test_stats(self, conv):
        stats = UnrollingStats()
        enumerate_unrollings(conv, 16, dict(conv.dims), stats=stats)
        assert stats.combinations_visited > 0
        assert stats.candidates > 0

    def test_mttkrp_unrolling(self):
        wl = mttkrp(I=16, K=16, L=16, J=8)
        allowed = allowed_unroll_dims(wl, ["out"])
        # out[i, j]: reject the reduction dims K and L.
        assert set(allowed) == {"I", "J"}
        unrolls = enumerate_unrollings(wl, 32, dict(wl.dims), allowed)
        assert all(set(u) <= {"I", "J"} for u in unrolls)
