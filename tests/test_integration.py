"""End-to-end integration tests mirroring the paper's evaluation flows."""

import pytest

from repro.arch import conventional, diannao_like, simba_like
from repro.baselines import (
    TimeloopConfig,
    cosa_search,
    dmazerunner_search,
    interstellar_search,
    timeloop_search,
)
from repro.core import SchedulerOptions, schedule
from repro.sim import compile_mapping, compile_naive, run_program
from repro.workloads import (
    INCEPTION_V3_LAYERS,
    RESNET18_LAYERS,
    mttkrp,
    sddmm,
    ttmc,
)


class TestFig6NonDnnFlow:
    """Non-DNN workloads on the conventional accelerator."""

    @pytest.mark.parametrize("wl", [
        mttkrp(I=256, K=256, L=256, J=32, name="mttkrp"),
        ttmc(I=128, J=128, K=128, L=8, M=8, name="ttmc"),
        sddmm(I=256, J=256, K=512, name="sddmm"),
    ], ids=lambda wl: wl.name)
    def test_sunstone_beats_timeloop(self, wl):
        arch = conventional()
        sun = schedule(wl, arch)
        tl = timeloop_search(wl, arch,
                             TimeloopConfig(timeout=800,
                                            victory_condition=50))
        assert sun.found and sun.cost.valid
        if tl.found:
            assert sun.edp <= tl.edp * 1.0001
        # Time-to-solution: far fewer candidate evaluations.
        assert sun.stats.evaluations < 800 * 20


class TestFig7InceptionFlow:
    """Weight update of Inception layers on the conventional accelerator."""

    def test_asymmetric_layers_schedulable_by_sunstone_only(self):
        layer = next(l for l in INCEPTION_V3_LAYERS if l.name == "1x7_deep")
        wl = layer.weight_update(batch=16)
        arch = conventional()
        sun = schedule(wl, arch)
        assert sun.found and sun.cost.valid
        dmaze = dmazerunner_search(layer.inference(batch=16), arch)
        assert not dmaze.found  # symmetric-conv assumption

    def test_weight_update_end_to_end(self):
        wl = INCEPTION_V3_LAYERS[5].weight_update(batch=16)
        sun = schedule(wl, conventional())
        assert sun.found
        assert sun.cost.utilization >= 0.5


class TestFig8SimbaFlow:
    """ResNet-18 inference on the Simba-like accelerator."""

    def test_sunstone_uses_full_hierarchy(self):
        wl = RESNET18_LAYERS[5].inference(batch=16)
        sun = schedule(wl, simba_like())
        assert sun.found
        assert sun.cost.utilization == pytest.approx(1.0)
        # Both spatial levels (vector lanes and PE grid) are used.
        assert sun.mapping.levels[0].spatial_size > 1
        assert sun.mapping.levels[1].spatial_size > 1

    def test_cosa_fast_but_often_invalid(self):
        wl = RESNET18_LAYERS[5].inference(batch=16)
        cosa = cosa_search(wl, simba_like())
        assert cosa.found
        assert cosa.wall_time_s < 1.0

    def test_sunstone_beats_constrained_timeloop(self):
        from repro.baselines import simba_constraints
        wl = RESNET18_LAYERS[5].inference(batch=16)
        arch = simba_like()
        sun = schedule(wl, arch)
        tl = timeloop_search(
            wl, arch, TimeloopConfig(timeout=1500, victory_condition=100),
            constraints=simba_constraints(arch),
        )
        if tl.found:
            assert sun.edp <= tl.edp


class TestFig9OverheadFlow:
    def test_diannao_end_to_end(self):
        wl = RESNET18_LAYERS[1].inference(batch=1)
        result = schedule(wl, diannao_like())
        program = compile_mapping(result.mapping, reorder_inputs=False)
        optimized = run_program(program)
        naive = run_program(compile_naive(wl))
        assert optimized.counts.macs == naive.counts.macs
        assert naive.total_energy / optimized.total_energy > 1.5


class TestVersatility:
    """The same scheduler handles every Table II access pattern."""

    @pytest.mark.parametrize("wl", [
        mttkrp(I=64, K=64, L=64, J=16),
        ttmc(I=32, J=32, K=32, L=8, M=8),
        sddmm(I=64, J=64, K=64),
    ], ids=lambda wl: wl.name)
    def test_kernels_schedule_cleanly(self, wl):
        result = schedule(wl, conventional())
        assert result.found
        assert result.cost.valid

    def test_baselines_and_sunstone_agree_on_model(self):
        """All mappers are judged by the same cost model: a mapping found
        by any tool evaluates identically regardless of who found it."""
        from repro.model import evaluate
        wl = RESNET18_LAYERS[9].inference(batch=1)
        arch = conventional()
        inter = interstellar_search(wl, arch)
        assert inter.found
        re_eval = evaluate(inter.mapping)
        assert re_eval.edp == pytest.approx(inter.cost.edp)
