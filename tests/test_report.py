"""Tests for the experiment-report module."""

import pytest

from repro.analysis.report import ExperimentReport, geometric_mean


class TestExperimentReport:
    def _sample(self) -> ExperimentReport:
        report = ExperimentReport("Sample")
        report.add("fig6a", "mttkrp_nell2", "sunstone", edp=1.5e15, time=0.8)
        report.add("fig6a", "mttkrp_nell2", "timeloop", edp=2.1e15, time=40.0)
        report.add("fig6b", "mttkrp_nell2", "sunstone", speedup=50.0)
        return report

    def test_experiments_listed_in_order(self):
        report = self._sample()
        assert report.experiments() == ["fig6a", "fig6b"]

    def test_markdown_contains_tables(self):
        text = self._sample().to_markdown()
        assert "## fig6a" in text
        assert "| subject | tool | edp | time |" in text
        assert "sunstone" in text and "timeloop" in text

    def test_csv_flat_format(self):
        csv_text = self._sample().to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "experiment,subject,tool,metric,value"
        assert len(lines) == 1 + 2 + 2 + 1  # header + 2 + 2 + 1 metrics

    def test_save_markdown_and_csv(self, tmp_path):
        report = self._sample()
        md = tmp_path / "out.md"
        csv_file = tmp_path / "out.csv"
        report.save(str(md))
        report.save(str(csv_file))
        assert md.read_text().startswith("# Sample")
        assert csv_file.read_text().startswith("experiment,")

    def test_float_formatting(self):
        report = ExperimentReport("f")
        report.add("e", "s", "t", big=1.23e10, small=0.5, zero=0.0)
        text = report.to_markdown()
        assert "1.230e+10" in text
        assert "0.500" in text


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([5.0]) == 5.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
