"""Tests for the GAMMA-like genetic-algorithm baseline."""

import pytest

from repro.arch import conventional, tiny
from repro.baselines.gamma import GammaConfig, gamma_search
from repro.core import schedule
from repro.workloads import conv1d, conv2d


@pytest.fixture
def small_conv():
    return conv1d(K=4, C=4, P=14, R=3)


@pytest.fixture
def small_arch():
    return tiny(l1_words=64, l2_words=512, pes=4)


class TestGamma:
    def test_finds_valid_mapping(self, small_conv, small_arch):
        result = gamma_search(small_conv, small_arch,
                              GammaConfig(population=30, generations=10))
        assert result.found
        assert result.valid

    def test_deterministic_with_seed(self, small_conv, small_arch):
        config = GammaConfig(population=20, generations=6, seed=11)
        a = gamma_search(small_conv, small_arch, config)
        b = gamma_search(small_conv, small_arch, config)
        assert a.edp == b.edp

    def test_evaluation_budget(self, small_conv, small_arch):
        config = GammaConfig(population=20, generations=5)
        result = gamma_search(small_conv, small_arch, config)
        assert result.evaluations == 20 * 5

    def test_more_generations_never_hurt(self, small_conv, small_arch):
        short = gamma_search(small_conv, small_arch,
                             GammaConfig(population=20, generations=2,
                                         seed=3))
        long = gamma_search(small_conv, small_arch,
                            GammaConfig(population=20, generations=20,
                                        seed=3))
        if short.found and long.found:
            assert long.edp <= short.edp * 1.2

    def test_factor_products_hold(self, small_conv, small_arch):
        result = gamma_search(small_conv, small_arch,
                              GammaConfig(population=20, generations=5))
        assert result.found
        for dim, size in small_conv.dims.items():
            product = 1
            for lvl in result.mapping.levels:
                product *= lvl.temporal_factor(dim) * lvl.spatial_factor(dim)
            assert product == size

    def test_sunstone_matches_or_beats_gamma(self, small_conv, small_arch):
        """The black-box GA needs far more evaluations for comparable
        quality (the paper's §VI argument)."""
        sunstone = schedule(small_conv, small_arch)
        gamma = gamma_search(small_conv, small_arch,
                             GammaConfig(population=40, generations=15))
        if gamma.found:
            assert sunstone.edp <= gamma.edp * 1.05
