"""Tests for the Table I search-space size estimators."""

import math

import pytest

from repro.analysis import (
    dmazerunner_space,
    interstellar_space,
    marvel_space,
    ordered_factorizations,
    sunstone_space,
    table1,
    timeloop_space,
)
from repro.arch import conventional, tiny
from repro.workloads import INCEPTION_EXAMPLE_LAYER, conv1d


class TestOrderedFactorizations:
    def test_prime(self):
        # p over s slots: s placements.
        assert ordered_factorizations(7, 3) == 3

    def test_prime_power(self):
        # 2^2 over 2 slots: (1,4), (2,2), (4,1).
        assert ordered_factorizations(4, 2) == 3

    def test_composite(self):
        # 12 = 2^2 * 3 over 2 slots: 3 * 2 = 6.
        assert ordered_factorizations(12, 2) == 6

    def test_one_slot(self):
        assert ordered_factorizations(100, 1) == 1

    def test_brute_force_agreement(self):
        def brute(n, s):
            if s == 1:
                return 1
            return sum(brute(n // d, s - 1)
                       for d in range(1, n + 1) if n % d == 0)
        for n in (6, 8, 12, 30):
            for s in (2, 3, 4):
                assert ordered_factorizations(n, s) == brute(n, s)

    def test_invalid_slots(self):
        with pytest.raises(ValueError):
            ordered_factorizations(4, 0)


class TestTable1:
    def test_ordering_matches_paper(self):
        """Table I: TL >> Marvel ~ Interstellar >> dMaze >> Sunstone."""
        wl = INCEPTION_EXAMPLE_LAYER.inference(batch=1)
        arch = conventional()
        tl = timeloop_space(wl, arch).total
        marvel = marvel_space(wl, arch).total
        inter = interstellar_space(wl, arch).total
        dmaze = dmazerunner_space(wl, arch).total
        sunstone = sunstone_space(wl, arch).total
        assert tl > marvel > dmaze > sunstone
        assert tl > inter > sunstone
        # The headline claim: orders of magnitude smaller.
        assert tl / sunstone > 1e6

    def test_rows(self):
        wl = conv1d(K=4, C=4, P=14, R=3)
        rows = table1(wl, tiny(l1_words=64, l2_words=512, pes=4))
        assert [r.tool for r in rows] == [
            "timeloop", "marvel", "interstellar", "dmazerunner", "sunstone",
        ]
        assert all(r.total >= 1 for r in rows)

    def test_sunstone_row_is_measured(self):
        wl = conv1d(K=4, C=4, P=14, R=3)
        row = sunstone_space(wl, tiny(l1_words=64, l2_words=512, pes=4))
        assert row.notes == "measured candidate evaluations"
        assert row.total > 0
