"""Property tests for the evaluation-cache key (mapping fingerprints).

Soundness: two mappings with equal fingerprints must receive identical
cost results — the fingerprint may only abstract away details the cost
model cannot observe (unit loops, spatial listing order).  Sensitivity:
perturbing anything the model *does* observe — a tile factor, the order
of non-trivial loops, a spatial unrolling — must change the fingerprint.
Seeded (derandomized) so CI failures reproduce locally.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import UNIFIED, Architecture, MemoryLevel
from repro.mapping import build_mapping
from repro.model import evaluate
from repro.search import SearchEngine
from repro.search.fingerprint import (
    architecture_fingerprint,
    mapping_fingerprint,
    workload_fingerprint,
)
from repro.workloads import conv1d, make_workload

_SIZES = st.sampled_from([2, 4, 6, 8])
_SETTINGS = dict(max_examples=40, deadline=None, derandomize=True)


def _arch(fanout=2):
    return Architecture("fp", [
        MemoryLevel("L1", {UNIFIED: 10**9}, read_energy=1.0,
                    write_energy=1.0, fanout=fanout,
                    fanout_shape=(fanout, 1)),
        MemoryLevel("L2", {UNIFIED: 10**9}, read_energy=4.0,
                    write_energy=4.0),
        MemoryLevel("DRAM", None, read_energy=64.0, write_energy=64.0),
    ])


@st.composite
def _problems(draw):
    """A small workload plus a concrete 3-level mapping of it."""
    kind = draw(st.sampled_from(["matmul", "conv"]))
    if kind == "matmul":
        dims = {"I": draw(_SIZES), "J": draw(_SIZES), "K": draw(_SIZES)}
        wl = make_workload(
            "mm", dims,
            {"A": ["I", "K"], "B": ["K", "J"], "out": ["I", "J"]},
            outputs=["out"],
        )
    else:
        wl = conv1d(K=draw(_SIZES), C=draw(_SIZES), P=draw(_SIZES),
                    R=draw(st.sampled_from([1, 3])))

    temporal = [{}, {}, {}]
    spatial = [{}, {}, {}]
    for dim, size in wl.dims.items():
        divs = [d for d in range(1, size + 1) if size % d == 0]
        lo = draw(st.sampled_from(divs))
        temporal[0][dim] = lo
        rem = size // lo
        divs2 = [d for d in range(1, rem + 1) if rem % d == 0]
        temporal[1][dim] = draw(st.sampled_from(divs2))
    # Optionally move one dim's L1 factor to the spatial boundary.
    unrollable = [d for d in wl.dims if temporal[0][d] % 2 == 0]
    if unrollable and draw(st.booleans()):
        dim = draw(st.sampled_from(unrollable))
        temporal[0][dim] //= 2
        spatial[0][dim] = 2

    orders = [list(draw(st.permutations(list(wl.dim_names))))
              for _ in range(3)]
    return wl, temporal, spatial, orders


def _build(problem):
    wl, temporal, spatial, orders = problem
    return build_mapping(wl, _arch(), temporal=temporal, spatial=spatial,
                         orders=orders)


# ---------------------------------------------------------------------------
# Soundness: equal fingerprints => equal cost results
# ---------------------------------------------------------------------------


@given(_problems())
@settings(**_SETTINGS)
def test_equal_fingerprint_implies_equal_cost(problem):
    """Unit-loop placement varies, fingerprint and cost must not."""
    wl, temporal, spatial, orders = problem
    a = _build(problem)
    # build_mapping sends each dim's residual factor to the outermost
    # level, so read the *effective* bounds back off the built mapping.
    effective = [dict(lvl.temporal) for lvl in a.levels]
    # Same mapping with every loop order reversed: only the *relative*
    # order of non-trivial loops is observable, so restore exactly those.
    alt_orders = []
    for level, order in enumerate(orders):
        bounds = effective[level]
        nontrivial = [d for d in order if bounds.get(d, 1) > 1]
        rest = [d for d in reversed(order) if bounds.get(d, 1) <= 1]
        merged, it = [], iter(nontrivial)
        for d in order:
            merged.append(next(it) if bounds.get(d, 1) > 1
                          else rest.pop(0))
        alt_orders.append(merged)
    b = build_mapping(wl, _arch(), temporal=temporal, spatial=spatial,
                      orders=alt_orders)
    assert mapping_fingerprint(a) == mapping_fingerprint(b)
    ca, cb = evaluate(a), evaluate(b)
    assert (ca.energy_pj, ca.cycles, ca.valid) == \
        (cb.energy_pj, cb.cycles, cb.valid)


@given(_problems())
@settings(**_SETTINGS)
def test_fingerprint_is_deterministic(problem):
    a = _build(problem)
    b = _build(problem)
    assert a is not b
    assert mapping_fingerprint(a) == mapping_fingerprint(b)
    assert hash(mapping_fingerprint(a)) == hash(mapping_fingerprint(b))


@given(_problems())
@settings(**_SETTINGS)
def test_engine_fingerprint_matches_free_function(problem):
    mapping = _build(problem)
    engine = SearchEngine(workers=1, cache=True, partial_reuse=True)
    assert engine.fingerprint(mapping) == \
        mapping_fingerprint(mapping, partial_reuse=True)


# ---------------------------------------------------------------------------
# Sensitivity: any observable perturbation changes the fingerprint
# ---------------------------------------------------------------------------


@given(_problems())
@settings(**_SETTINGS)
def test_moving_a_tile_factor_changes_fingerprint(problem):
    wl, temporal, spatial, orders = problem
    movable = [d for d in wl.dims if temporal[0][d] > 1]
    if not movable:
        return  # nothing tiled at L1 in this draw
    a = _build(problem)
    for dim in movable:
        t2 = [dict(t) for t in temporal]
        low = t2[0][dim]
        factor = next(p for p in (2, 3, 5, 7) if low % p == 0)
        t2[0][dim] = low // factor
        t2[1][dim] = t2[1].get(dim, 1) * factor
        b = build_mapping(wl, _arch(), temporal=t2, spatial=spatial,
                          orders=orders)
        assert mapping_fingerprint(a) != mapping_fingerprint(b), dim


@given(_problems())
@settings(**_SETTINGS)
def test_swapping_nontrivial_loops_changes_fingerprint(problem):
    wl, temporal, spatial, orders = problem
    a = _build(problem)
    for level in range(2):
        nontrivial = [d for d in orders[level]
                      if temporal[level].get(d, 1) > 1]
        if len(nontrivial) < 2:
            continue
        swapped = list(orders[level])
        i = swapped.index(nontrivial[0])
        j = swapped.index(nontrivial[1])
        swapped[i], swapped[j] = swapped[j], swapped[i]
        alt = orders[:level] + [swapped] + orders[level + 1:]
        b = build_mapping(wl, _arch(), temporal=temporal, spatial=spatial,
                          orders=alt)
        assert mapping_fingerprint(a) != mapping_fingerprint(b), level


@given(_problems())
@settings(**_SETTINGS)
def test_changing_an_unroll_changes_fingerprint(problem):
    wl, temporal, spatial, orders = problem
    a = _build(problem)
    # Turn one L1 temporal factor of 2 into a spatial unrolling (or back).
    for dim in wl.dims:
        t2 = [dict(t) for t in temporal]
        s2 = [dict(s) for s in spatial]
        if s2[0].get(dim, 1) > 1:
            t2[0][dim] = t2[0].get(dim, 1) * s2[0][dim]
            del s2[0][dim]
        elif t2[0].get(dim, 1) % 2 == 0:
            t2[0][dim] //= 2
            s2[0][dim] = 2
        else:
            continue
        b = build_mapping(wl, _arch(), temporal=t2, spatial=s2,
                          orders=orders)
        assert mapping_fingerprint(a) != mapping_fingerprint(b), dim
        return  # one perturbation per example is enough


@given(_problems())
@settings(**_SETTINGS)
def test_partial_reuse_flag_is_part_of_the_key(problem):
    mapping = _build(problem)
    assert mapping_fingerprint(mapping, partial_reuse=True) != \
        mapping_fingerprint(mapping, partial_reuse=False)


# ---------------------------------------------------------------------------
# Workload / architecture components
# ---------------------------------------------------------------------------


def test_workload_fingerprint_separates_shapes():
    assert workload_fingerprint(conv1d(K=4, C=4, P=8, R=3)) == \
        workload_fingerprint(conv1d(K=4, C=4, P=8, R=3))
    assert workload_fingerprint(conv1d(K=4, C=4, P=8, R=3)) != \
        workload_fingerprint(conv1d(K=4, C=4, P=8, R=1))


def test_architecture_fingerprint_observes_level_parameters():
    base = _arch(fanout=2)
    assert architecture_fingerprint(base) == \
        architecture_fingerprint(_arch(fanout=2))
    assert architecture_fingerprint(base) != \
        architecture_fingerprint(_arch(fanout=4))


def test_spatial_listing_order_is_canonicalised():
    """Spatial factors are order-insensitive to the cost model."""
    wl = make_workload(
        "mm", {"I": 4, "J": 4, "K": 4},
        {"A": ["I", "K"], "B": ["K", "J"], "out": ["I", "J"]},
        outputs=["out"],
    )
    arch = _arch(fanout=4)
    a = build_mapping(wl, arch, temporal=[{"K": 4}, {"I": 2, "J": 2}, {}],
                      spatial=[{"I": 2, "J": 2}, {}, {}],
                      orders=[["K"], ["I", "J"], []])
    fp = mapping_fingerprint(a)
    levels = fp[2]
    spatial_l1 = levels[0][1]
    assert spatial_l1 == tuple(sorted(spatial_l1))
    cost = evaluate(a)
    assert cost.energy_pj > 0


def test_fingerprints_are_hashable_and_cacheable():
    mapping = _build((
        conv1d(K=4, C=2, P=4, R=1),
        [{"K": 2, "C": 2}, {"K": 2, "P": 4}, {}],
        [{}, {}, {}],
        [["K", "C", "P", "R"]] * 3,
    ))
    fp = mapping_fingerprint(mapping)
    assert fp in {fp: 1}
