"""Tests for the analytical access-counting model.

The key fixture reproduces the paper's §III-A example (Algorithm 4): a
2-level tiled 1D convolution with L2 order P2 K2 C2 and L1 tile
P=7, K=2, C=2, R=3, for which Equations 1-3 give closed-form L2 access
counts.  The model must match them exactly.
"""

import pytest

from repro.arch import UNIFIED, Architecture, MemoryLevel, simba_like, tiny
from repro.mapping import build_mapping
from repro.model import count_accesses
from repro.workloads import conv1d, conv2d, mttkrp


@pytest.fixture
def paper_example():
    """Algorithm 4: K=4, C=4, P=14, R=3; P_L2=2, K_L2=2, C_L2=2."""
    wl = conv1d(K=4, C=4, P=14, R=3)
    arch = tiny(l1_words=64, l2_words=2048, pes=4)
    mapping = build_mapping(
        wl, arch,
        temporal=[{"P": 7, "K": 2, "C": 2, "R": 3}, {"P": 2, "K": 2, "C": 2}, {}],
        orders=[["P", "K", "C", "R"], ["P", "K", "C"], []],
    )
    return wl, arch, mapping


class TestPaperEquations:
    def test_equation_3_ofmap(self, paper_example):
        _, _, mapping = paper_example
        counts = count_accesses(mapping)
        # ofmap reused across C (innermost L2 loop): accesses = P x K = 56.
        ofmap = counts.per_tensor["ofmap"]
        assert ofmap.at(1).writes == 56  # drains into L2

    def test_equation_1_ifmap(self, paper_example):
        _, _, mapping = paper_example
        counts = count_accesses(mapping)
        # K_L2 x C x P_L2 x (P_L1 + R - 1) = 2*4*2*9 = 144.
        assert counts.per_tensor["ifmap"].at(1).reads == 144

    def test_equation_2_weight(self, paper_example):
        _, _, mapping = paper_example
        counts = count_accesses(mapping)
        # C x K x R x P_L2 = 4*4*3*2 = 96.
        assert counts.per_tensor["weight"].at(1).reads == 96

    def test_dram_reads_are_cold_footprints(self, paper_example):
        wl, _, mapping = paper_example
        counts = count_accesses(mapping)
        # Nothing iterates above L2, so each input is read once from DRAM.
        assert counts.per_tensor["ifmap"].at(2).reads == wl.tensor_size("ifmap")
        assert counts.per_tensor["weight"].at(2).reads == wl.tensor_size("weight")
        assert counts.per_tensor["ofmap"].at(2).writes == wl.tensor_size("ofmap")

    def test_compute_reads_equal_macs(self, paper_example):
        wl, _, mapping = paper_example
        counts = count_accesses(mapping)
        assert counts.per_tensor["ifmap"].at(0).reads == wl.total_operations
        assert counts.per_tensor["weight"].at(0).reads == wl.total_operations


class TestLoopOrderEffects:
    def _mapping(self, order):
        wl = conv1d(K=4, C=4, P=14, R=3)
        arch = tiny(l1_words=64, l2_words=2048, pes=4)
        return wl, build_mapping(
            wl, arch,
            temporal=[{"P": 7, "K": 2, "C": 2, "R": 3},
                      {"P": 2, "K": 2, "C": 2}, {}],
            orders=[["P", "K", "C", "R"], order, []],
        )

    def test_c_innermost_reuses_ofmap(self):
        wl, m = self._mapping(["P", "K", "C"])
        counts = count_accesses(m)
        assert counts.per_tensor["ofmap"].at(1).writes == 56

    def test_k_innermost_reuses_ifmap(self):
        wl, m = self._mapping(["P", "C", "K"])
        counts = count_accesses(m)
        # ifmap reused across K: fills drop from 8 to 4 L1-tile loads.
        assert counts.per_tensor["ifmap"].at(1).reads == 4 * 9 * 2
        # but ofmap now drains on every pass: fills = 8 (plus read-backs).
        assert counts.per_tensor["ofmap"].at(1).writes == 8 * 14

    def test_ordering_principle_2(self):
        # K non-indexing for ifmap but an ifmap-indexing loop (C) inside K
        # destroys the reuse: order K outer, C inner.
        wl, inner_c = self._mapping(["P", "K", "C"])
        wl, inner_k = self._mapping(["P", "C", "K"])
        ifmap_inner_c = count_accesses(inner_c).per_tensor["ifmap"].at(1).reads
        ifmap_inner_k = count_accesses(inner_k).per_tensor["ifmap"].at(1).reads
        assert ifmap_inner_k < ifmap_inner_c


class TestAccumulationReadback:
    def test_reduction_above_storage_causes_readback(self):
        wl = conv1d(K=2, C=4, P=4, R=1)
        arch = tiny(l1_words=64, l2_words=2048, pes=4)
        # C (reduction) iterates at L2 ABOVE a K-indexed loop: every ofmap
        # tile is revisited C_L2 times.
        m = build_mapping(
            wl, arch,
            temporal=[{"P": 4, "R": 1}, {"C": 4, "K": 2}, {}],
            orders=[["P", "R"], ["C", "K"], []],
        )
        counts = count_accesses(m)
        ofmap = counts.per_tensor["ofmap"]
        # fills = C*K = 8; distinct tiles = K = 2; read-backs = 6 tiles of 4
        # words; plus the single 8-word drain from L2 up to DRAM.
        assert ofmap.at(1).writes == 8 * 4
        assert ofmap.at(1).reads == 6 * 4 + 8

    def test_no_readback_when_reduction_innermost(self):
        wl = conv1d(K=2, C=4, P=4, R=1)
        arch = tiny(l1_words=64, l2_words=2048, pes=4)
        m = build_mapping(
            wl, arch,
            temporal=[{"P": 4, "R": 1}, {"K": 2, "C": 4}, {}],
            orders=[["P", "R"], ["K", "C"], []],
        )
        ofmap = count_accesses(m).per_tensor["ofmap"]
        # No accumulation read-backs: the only L2 reads are the one 8-word
        # drain to DRAM.
        assert ofmap.at(1).reads == 8
        assert ofmap.at(1).writes == 8  # P x K


class TestSpatial:
    def _arch(self, pes=4):
        return tiny(l1_words=64, l2_words=2048, pes=pes)

    def test_broadcast_collapses_parent_reads(self):
        wl = conv1d(K=4, C=2, P=4, R=1)
        arch = self._arch()
        # Unroll K across 4 PEs: ifmap (K non-indexing) is broadcast.
        m = build_mapping(
            wl, arch,
            temporal=[{"P": 4, "C": 2, "R": 1}, {}, {}],
            spatial=[{"K": 4}, {}, {}],
        )
        counts = count_accesses(m)
        ifmap = counts.per_tensor["ifmap"]
        # One fill serves all 4 PEs: L2 reads = footprint once...
        assert ifmap.at(1).reads == wl.tensor_size("ifmap")
        # ...but each PE writes its own copy.
        assert ifmap.at(0).writes == 4 * wl.tensor_size("ifmap")

    def test_unicast_scales_parent_reads(self):
        wl = conv1d(K=4, C=2, P=4, R=1)
        arch = self._arch()
        # Unroll P across 4 PEs: weight broadcast, ifmap/ofmap partitioned.
        m = build_mapping(
            wl, arch,
            temporal=[{"K": 4, "C": 2, "R": 1}, {}, {}],
            spatial=[{"P": 4}, {}, {}],
        )
        counts = count_accesses(m)
        assert counts.per_tensor["weight"].at(1).reads == \
            wl.tensor_size("weight")
        # ofmap partitioned: each PE drains its own slice exactly once.
        assert counts.per_tensor["ofmap"].at(1).writes == \
            wl.tensor_size("ofmap")

    def test_spatial_reduction_merges_writes(self):
        wl = conv1d(K=2, C=4, P=4, R=1)
        arch = self._arch()
        # Unroll the reduction dim C: partial outputs merge on the way up.
        m = build_mapping(
            wl, arch,
            temporal=[{"K": 2, "P": 4, "R": 1}, {}, {}],
            spatial=[{"C": 4}, {}, {}],
        )
        counts = count_accesses(m)
        ofmap = counts.per_tensor["ofmap"]
        # Parent (L2) receives the reduced result once.
        assert ofmap.at(1).writes == wl.tensor_size("ofmap")
        # Each PE drains its partials.
        assert ofmap.at(0).reads >= 4 * wl.tensor_size("ofmap")

    def test_noc_words_recorded(self):
        wl = conv1d(K=4, C=2, P=4, R=1)
        m = build_mapping(
            wl, self._arch(),
            temporal=[{"P": 4, "C": 2, "R": 1}, {}, {}],
            spatial=[{"K": 4}, {}, {}],
        )
        counts = count_accesses(m)
        assert 0 in counts.noc_words
        assert counts.noc_words[0] > 0


class TestBypass:
    def test_weights_skip_global_buffer(self):
        arch = simba_like()
        wl = conv2d(N=1, K=8, C=8, P=4, Q=4, R=3, S=3)
        m = build_mapping(
            wl, arch,
            temporal=[{"K": 8}, {"C": 8, "R": 3, "S": 3}, {"P": 4, "Q": 4}, {}],
        )
        counts = count_accesses(m)
        weight = counts.per_tensor["weight"]
        glb = arch.level_index("GlobalBuf")
        # The global buffer never sees weight traffic.
        assert weight.at(glb).reads == 0
        assert weight.at(glb).writes == 0
        # DRAM feeds the PE buffers directly.
        assert weight.at(arch.level_index("DRAM")).reads > 0


class TestPartialReuse:
    def test_partial_reuse_reduces_ifmap_traffic(self):
        wl = conv1d(K=1, C=1, P=16, R=5)
        arch = tiny(l1_words=64, l2_words=4096, pes=4)
        # P iterates at L2 over L1 tiles of P=4: windows overlap by R-1.
        m = build_mapping(
            wl, arch,
            temporal=[{"P": 4, "R": 5}, {"P": 4}, {}],
            orders=[["P", "R"], ["P"], []],
        )
        naive = count_accesses(m, partial_reuse=False)
        partial = count_accesses(m, partial_reuse=True)
        assert partial.per_tensor["ifmap"].at(1).reads < \
            naive.per_tensor["ifmap"].at(1).reads
        # Exact: first tile 8 words, then 3 tiles of 4 new words each.
        assert partial.per_tensor["ifmap"].at(1).reads == 8 + 3 * 4

    def test_partial_reuse_never_increases_traffic(self):
        wl = conv2d(N=1, K=2, C=2, P=8, Q=8, R=3, S=3)
        arch = tiny(l1_words=256, l2_words=65536, pes=4)
        m = build_mapping(
            wl, arch,
            temporal=[{"P": 4, "Q": 4, "R": 3, "S": 3}, {"P": 2, "Q": 2, "C": 2, "K": 2}, {}],
        )
        naive = count_accesses(m, partial_reuse=False)
        partial = count_accesses(m, partial_reuse=True)
        for i in range(3):
            assert partial.levels[i].total <= naive.levels[i].total

    def test_outputs_unaffected_by_partial_reuse(self):
        wl = conv1d(K=2, C=2, P=8, R=3)
        arch = tiny(l1_words=64, l2_words=4096, pes=4)
        m = build_mapping(wl, arch, temporal=[{"P": 4, "R": 3}, {"P": 2}, {}])
        naive = count_accesses(m, partial_reuse=False)
        partial = count_accesses(m, partial_reuse=True)
        assert (partial.per_tensor["ofmap"].at(1).writes
                == naive.per_tensor["ofmap"].at(1).writes)
