"""Shared pytest wiring: golden-update flag and canonical fixtures."""

import pytest

from tests import harness


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/*.json from the current run instead "
             "of comparing against it",
    )


@pytest.fixture
def small_conv():
    return harness.small_conv()


@pytest.fixture
def small_arch():
    return harness.small_arch()
