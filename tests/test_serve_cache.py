"""Concurrency and accounting tests for the shared cross-request cache.

Satellite 3 of the serve PR: the :class:`SharedEvalCache` must keep
*exact* admission/duplicate/eviction accounting under concurrent
clients, and seeding a search from it must never change the best
mapping or cost — only how much work finding it costs.
"""

import json
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.cli import _cost_dict, build_architecture, build_workload
from repro.core import SchedulerOptions, schedule
from repro.mapping.serialize import mapping_to_dict
from repro.search.cache import EvalCache
from repro.serve import ServeConfig, ServeDaemon
from repro.serve.cache import SeedCache, SharedEvalCache

import asyncio


def key(i, fp="wl", arch="ar"):
    return (fp, arch, f"cand{i}")


# ---------------------------------------------------------------------------
# SeedCache: per-task hit attribution
# ---------------------------------------------------------------------------

class TestSeedCache:
    def test_seed_hits_count_only_seeded_entries(self):
        cache = SeedCache([(key(0), "a"), (key(1), "b")])
        assert cache.get(key(0)) == "a"
        assert cache.seed_hits == 1
        cache.put(key(2), "c")
        assert cache.get(key(2)) == "c"
        # Hit on a self-computed entry is a plain cache hit, not a seed
        # hit — the daemon's speedup accounting depends on the split.
        assert cache.seed_hits == 1
        assert cache.hits == 2

    def test_new_entries_excludes_the_seed(self):
        cache = SeedCache([(key(0), "a")])
        cache.put(key(1), "b")
        cache.put(key(0), "a2")  # overwrite of a seeded key stays seeded
        assert cache.new_entries() == [(key(1), "b")]

    def test_eviction_prunes_seed_bookkeeping(self):
        cache = SeedCache([(key(i), i) for i in range(4)], max_entries=4)
        cache.put(key(9), "new")  # evicts the LRU seeded entry
        assert cache.get(key(0)) is None
        assert cache.seed_hits == 0
        # The evicted key is no longer "seeded": recomputing and
        # re-inserting it must make it a *new* entry.
        cache.put(key(0), "recomputed")
        assert (key(0), "recomputed") in cache.new_entries()

    def test_plain_evalcache_contract_still_holds(self):
        cache = SeedCache([], max_entries=2)
        for i in range(3):
            cache.put(key(i), i)
        assert cache.evictions == 1
        assert isinstance(cache, EvalCache)


# ---------------------------------------------------------------------------
# SharedEvalCache: admission / eviction / seed filtering
# ---------------------------------------------------------------------------

class TestSharedEvalCache:
    def test_admission_accounting_is_exact(self):
        shared = SharedEvalCache(max_entries=0)
        first = shared.admit([(key(0), "a"), (key(1), "b")])
        assert first == {"admitted": 2, "duplicates": 0, "evictions": 0}
        second = shared.admit([(key(1), "LOSER"), (key(2), "c")])
        assert second == {"admitted": 1, "duplicates": 1, "evictions": 0}
        # First write wins: a duplicate admission never clobbers.
        assert dict(shared.seed_for("wl", "ar"))[key(1)] == "b"

    def test_eviction_is_lru_and_counted(self):
        shared = SharedEvalCache(max_entries=2)
        shared.admit([(key(0), "a"), (key(1), "b")])
        shared.seed_for("wl", "ar")  # touches both -> refreshes recency
        report = shared.admit([(key(2), "c")])
        assert report["evictions"] == 1
        assert shared.stats()["entries"] == 2
        assert shared.stats()["evictions"] == 1

    def test_seed_filtering_by_fingerprint_prefix(self):
        shared = SharedEvalCache(max_entries=0)
        shared.admit([(key(0), "a"),
                      (key(1, fp="other"), "x"),
                      (key(2, arch="other"), "y")])
        seed = shared.seed_for("wl", "ar")
        assert [k for k, _ in seed] == [key(0)]
        assert shared.stats()["seeds_served"] == 1
        assert shared.stats()["seed_entries_served"] == 1

    def test_seeds_are_disjoint_across_technology_packs(self):
        # arch fingerprints embed resolved energies and (non-default)
        # pack identity, so the same hierarchy under two packs can never
        # exchange cache entries through the shared store.
        from repro.arch import tiny
        from repro.search.fingerprint import architecture_fingerprint
        afp45 = architecture_fingerprint(tiny(tech="cmos45"))
        afp7 = architecture_fingerprint(tiny(tech="cmos7"))
        assert afp45 != afp7
        shared = SharedEvalCache(max_entries=0)
        shared.admit([(("wl", afp45, "m"), "cost45"),
                      (("wl", afp7, "m"), "cost7")])
        assert shared.seed_for("wl", afp45) == [(("wl", afp45, "m"),
                                                 "cost45")]
        assert shared.seed_for("wl", afp7) == [(("wl", afp7, "m"),
                                                "cost7")]

    def test_concurrent_admissions_account_every_put_exactly_once(self):
        shared = SharedEvalCache(max_entries=0)
        clients, per_client = 8, 200
        # Every client offers the same universe of keys: across all
        # clients each key is admitted exactly once, duplicated
        # everywhere else — no lost or double-counted writes.
        batch = [(key(i), i) for i in range(per_client)]
        with ThreadPoolExecutor(max_workers=clients) as pool:
            reports = list(pool.map(lambda _: shared.admit(batch),
                                    range(clients)))
        admitted = sum(r["admitted"] for r in reports)
        duplicates = sum(r["duplicates"] for r in reports)
        assert admitted == per_client
        assert duplicates == per_client * (clients - 1)
        stats = shared.stats()
        assert stats["admitted"] == per_client
        assert stats["rejected_duplicates"] == duplicates
        assert stats["entries"] == per_client

    def test_concurrent_seed_and_admit_never_corrupt(self):
        shared = SharedEvalCache(max_entries=64)
        stop = threading.Event()
        errors = []

        def admitter(base):
            try:
                for i in range(300):
                    shared.admit([(key(base * 1000 + i), i)])
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        def seeder():
            try:
                while not stop.is_set():
                    for k, _ in shared.seed_for("wl", "ar"):
                        assert k[0] == "wl"
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=admitter, args=(b,))
                   for b in range(4)]
        reader = threading.Thread(target=seeder)
        reader.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        reader.join()
        assert not errors
        stats = shared.stats()
        assert stats["entries"] <= 64
        assert stats["admitted"] - stats["evictions"] == stats["entries"]


# ---------------------------------------------------------------------------
# end to end: a contended shared cache never changes results
# ---------------------------------------------------------------------------

class TestSharedCacheBitIdentity:
    def test_many_concurrent_clients_all_get_the_cold_result(self):
        workload = build_workload("conv1d", ["K=4", "C=4", "P=14", "R=3"])
        arch = build_architecture("tiny")
        cold = schedule(workload, arch, SchedulerOptions())
        want_mapping = json.loads(json.dumps(mapping_to_dict(cold.mapping)))
        want_cost = json.loads(json.dumps(_cost_dict(cold.cost)))

        spec = {"kind": "schedule",
                "workload": {"kind": "conv1d",
                             "dims": {"K": 4, "C": 4, "P": 14, "R": 3}},
                "arch": "tiny"}

        async def body():
            daemon = ServeDaemon(ServeConfig(port=0, workers=0))
            server = asyncio.get_running_loop().create_task(daemon.serve())
            while daemon.manager is None:
                await asyncio.sleep(0.01)
            jobs = [daemon.manager.submit(dict(spec)) for _ in range(6)]
            await asyncio.gather(*(job.runner for job in jobs))
            daemon.request_stop()
            await server
            return jobs, daemon.cache.stats()

        jobs, cache_stats = asyncio.run(body())
        for job in jobs:
            assert job.state == "done", job.error
            assert job.result["mapping"] == want_mapping
            assert job.result["cost"] == want_cost
            assert job.result["evaluations"] == cold.stats.evaluations
        # At least the later jobs ran warm, and warm != different.
        assert sum(job.seed_hits for job in jobs) > 0
        assert cache_stats["seed_hits_reported"] > 0
        assert cache_stats["rejected_duplicates"] >= 0
