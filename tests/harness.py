"""Shared test fixtures and differential/golden helpers.

Centralises the small workload/architecture pairs that
``test_scheduler.py``, ``test_search_engine.py`` and the equivalence
suites all used to build inline, the outcome-equality assertions the
oracle and batch differentials share, and the golden-fixture machinery
(``tests/golden/*.json``, refreshed with ``pytest --update-golden``).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.arch import conventional, diannao_like, tiny
from repro.search import mapping_fingerprint
from repro.workloads import conv1d, make_workload, mttkrp
from repro.workloads.networks import resnet18

GOLDEN_DIR = Path(__file__).parent / "golden"


# ---------------------------------------------------------------------------
# canonical small problems (builders; conftest.py wraps them as fixtures)
# ---------------------------------------------------------------------------

def small_conv():
    """The 1-D convolution used across the scheduler tests."""
    return conv1d(K=4, C=4, P=14, R=3)


def small_arch():
    """A two-level machine small enough for exhaustive cross-checks."""
    return tiny(l1_words=64, l2_words=512, pes=4)


def small_matmul(i=8, j=8, k=8):
    return make_workload(
        "mm", {"I": i, "J": j, "K": k},
        {"A": ["I", "K"], "B": ["K", "J"], "out": ["I", "J"]},
        outputs=["out"],
    )


def tiny_mttkrp():
    """Small enough that the full mapping space can be enumerated."""
    return mttkrp(4, 4, 2, 4)


def medium_mttkrp():
    """The paper's MTTKRP point used by the mapper differentials."""
    return mttkrp(64, 32, 32, 64)


def medium_arch():
    return conventional()


def resnet_conv_layer():
    """ResNet-18 conv3 downsample — the conv differential workload."""
    return resnet18()[4]


def resnet_conv_arch():
    return diannao_like()


# ---------------------------------------------------------------------------
# outcome equality (shared by the oracle and batch-generation suites)
# ---------------------------------------------------------------------------

def assert_same_outcome(live, oracle):
    """Same verdict, same mapping, same cost, same search effort."""
    assert live.found == oracle.found
    if live.found:
        assert (mapping_fingerprint(live.mapping)
                == mapping_fingerprint(oracle.mapping))
        assert live.cost.edp == oracle.cost.edp
        assert live.cost.energy_pj == oracle.cost.energy_pj
    assert live.stats.evaluations == oracle.stats.evaluations
    assert (live.stats.tiling.nodes_visited
            == oracle.stats.tiling.nodes_visited)
    assert (live.stats.unrolling.combinations_visited
            == oracle.stats.unrolling.combinations_visited)
    assert (live.stats.unrolling.candidates
            == oracle.stats.unrolling.candidates)


def assert_same_search_result(a, b):
    """Bit-equality for two baseline ``SearchResult`` objects."""
    assert (a.mapping is None) == (b.mapping is None)
    if a.mapping is not None:
        assert (mapping_fingerprint(a.mapping)
                == mapping_fingerprint(b.mapping))
        assert a.cost.edp == b.cost.edp
        assert a.cost.energy_pj == b.cost.energy_pj
    assert a.evaluations == b.evaluations


def schedule_outcome(result):
    """A JSON-able digest of a ScheduleResult for golden comparison."""
    return {
        "found": result.found,
        "fingerprint": (repr(mapping_fingerprint(result.mapping))
                        if result.found else None),
        "edp": result.cost.edp if result.found else None,
        "energy_pj": result.cost.energy_pj if result.found else None,
        "evaluations": result.stats.evaluations,
    }


def search_outcome(result):
    """A JSON-able digest of a baseline SearchResult."""
    found = result.mapping is not None
    return {
        "found": found,
        "fingerprint": (repr(mapping_fingerprint(result.mapping))
                        if found else None),
        "edp": result.cost.edp if found else None,
        "energy_pj": result.cost.energy_pj if found else None,
        "evaluations": result.evaluations,
    }


# ---------------------------------------------------------------------------
# golden fixtures
# ---------------------------------------------------------------------------

def check_golden(request, name: str, payload: dict) -> None:
    """Compare ``payload`` against ``tests/golden/<name>.json``.

    With ``pytest --update-golden`` the fixture file is rewritten
    instead and the test passes; without it a missing file is a failure
    that names the flag.
    """
    path = GOLDEN_DIR / f"{name}.json"
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return
    if not path.exists():
        raise AssertionError(
            f"golden fixture {path} is missing; "
            f"run pytest --update-golden to create it"
        )
    expected = json.loads(path.read_text())
    assert payload == expected, (
        f"golden mismatch for {name}: got {payload!r}, "
        f"expected {expected!r} (pytest --update-golden refreshes "
        f"fixtures after an intentional change)"
    )
