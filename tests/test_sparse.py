"""Unit tests for the repro.sparse subsystem (density / format / SAF / spec)."""

import pickle

import pytest

from repro.sparse import (
    ACTIONS,
    FORMATS,
    Banded,
    Dense,
    SparsityError,
    SparsitySpec,
    TensorSparsity,
    Uniform,
    compute_scales,
    density_model,
    get_format,
    parse_assignments,
    spec_from_cli,
    traffic_scale,
    workload_sparsity,
)
from repro.sparse.format import WORD_BITS
from repro.workloads import mmc, mttkrp_from_frostt, sddmm_from_suitesparse


class TestDensityModels:
    def test_dense_is_exactly_one(self):
        model = Dense()
        assert model.expected_density() == 1.0
        assert model.nonempty_fraction(1000) == 1.0
        assert model.expected_runs(8) == 1.0
        assert model.expected_runs(0) == 0.0

    def test_uniform_basics(self):
        model = Uniform(0.25)
        assert model.expected_density() == 0.25
        assert model.nonempty_fraction(1) == pytest.approx(0.25)
        assert model.nonempty_fraction(4) == pytest.approx(1 - 0.75 ** 4)
        assert model.nonempty_fraction(0) == 0.0
        # n*p*(1-p) + p run starts.
        assert model.expected_runs(8) == pytest.approx(8 * 0.25 * 0.75 + 0.25)

    def test_uniform_at_density_one_collapses_to_dense(self):
        model = Uniform(1.0)
        assert model.expected_density() == 1.0
        assert model.nonempty_fraction(64) == 1.0

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.5])
    def test_invalid_densities_rejected(self, bad):
        with pytest.raises(SparsityError, match="density"):
            Uniform(bad)
        with pytest.raises(SparsityError, match="density"):
            Banded(bad)

    def test_banded_clusters_empty_more_tiles(self):
        uniform = Uniform(0.01)
        banded = Banded(0.01, cluster=8.0)
        # Clustering means fewer independent draws -> more empty tiles.
        assert banded.nonempty_fraction(64) < uniform.nonempty_fraction(64)
        # ... and cluster-times fewer runs (up to the +p boundary term).
        assert banded.expected_runs(64) < uniform.expected_runs(64)

    def test_banded_cluster_floor(self):
        with pytest.raises(SparsityError, match="cluster"):
            Banded(0.1, cluster=1.0)

    def test_density_model_factory(self):
        assert isinstance(density_model(1.0), Dense)
        assert isinstance(density_model(0.3), Uniform)
        assert isinstance(density_model(0.3, cluster=4.0), Banded)
        with pytest.raises(SparsityError):
            density_model(0.0)

    def test_models_hash_and_pickle(self):
        for model in (Dense(), Uniform(0.125), Banded(0.125, 4.0)):
            assert model == pickle.loads(pickle.dumps(model))
            assert hash(model) == hash(pickle.loads(pickle.dumps(model)))


class TestFormats:
    def test_registry_and_alias(self):
        assert set(FORMATS) == {"uncompressed", "bitmask", "rle",
                                "coordinate", "csr"}
        assert get_format("csr") is get_format("coordinate")
        with pytest.raises(SparsityError, match="unknown format"):
            get_format("ellpack")

    def test_uncompressed_stores_every_word(self):
        fmt = get_format("uncompressed")
        assert fmt.tile_words(Uniform(0.01), 128) == 128.0

    def test_bitmask_words(self):
        fmt = get_format("bitmask")
        expected = 0.25 * 64 + 64 / WORD_BITS
        assert fmt.tile_words(Uniform(0.25), 64) == pytest.approx(expected)

    def test_coordinate_words(self):
        fmt = get_format("coordinate")
        # One coordinate word per nonzero plus two per-tile pointers.
        assert fmt.tile_words(Uniform(0.25), 64) == \
            pytest.approx(2 * 0.25 * 64 + 2.0)

    def test_rle_prices_runs(self):
        fmt = get_format("rle")
        model = Uniform(0.25)
        expected = 0.25 * 64 + 2.0 * model.expected_runs(64)
        assert fmt.tile_words(model, 64) == pytest.approx(expected)

    def test_empty_tile_is_free(self):
        for fmt in FORMATS.values():
            assert fmt.tile_words(Uniform(0.5), 0) == 0.0


class TestTrafficScale:
    def test_cap_at_dense(self):
        # bitmask at density 1.0 would store n + n/32 words; the offline
        # fallback caps at dense, so the scale is exactly 1.0.
        ts = TensorSparsity(Uniform(1.0), format="bitmask")
        assert traffic_scale(ts, 64) == 1.0

    def test_compressed_scale_tracks_words(self):
        ts = TensorSparsity(Uniform(0.25), format="coordinate")
        fmt = get_format("coordinate")
        expected = fmt.tile_words(Uniform(0.25), 64) / 64
        assert traffic_scale(ts, 64) == pytest.approx(expected)

    def test_uncompressed_needs_skipping_to_save(self):
        dense_words = TensorSparsity(Uniform(0.01), format="uncompressed",
                                     action="gating")
        assert traffic_scale(dense_words, 64) == 1.0
        skipped = TensorSparsity(Uniform(0.01), format="uncompressed",
                                 action="skipping")
        assert traffic_scale(skipped, 64) == \
            pytest.approx(Uniform(0.01).nonempty_fraction(64))

    def test_uncompressed_skipping_rewards_small_tiles(self):
        ts = TensorSparsity(Uniform(0.01), format="uncompressed",
                            action="skipping")
        # Smaller tiles are more likely to be entirely empty.
        assert traffic_scale(ts, 4) < traffic_scale(ts, 4096)

    def test_degenerate_tile_scale_is_one(self):
        ts = TensorSparsity(Uniform(0.5), format="coordinate")
        assert traffic_scale(ts, 0) == 1.0


class TestComputeScales:
    def test_gating_saves_energy_not_cycles(self):
        spec = SparsitySpec.of({
            "A": TensorSparsity(Uniform(0.5), action="gating"),
        })
        energy, cycles = compute_scales(spec, ["A", "B"])
        assert energy == 0.5
        assert cycles == 1.0

    def test_skipping_saves_both(self):
        spec = SparsitySpec.of({
            "A": TensorSparsity(Uniform(0.5), action="skipping"),
            "B": TensorSparsity(Uniform(0.25), action="skipping"),
        })
        energy, cycles = compute_scales(spec, ["A", "B"])
        assert energy == pytest.approx(0.125)
        assert cycles == pytest.approx(0.125)

    def test_action_none_and_absent_tensors_are_inert(self):
        spec = SparsitySpec.of({
            "A": TensorSparsity(Uniform(0.5), action="none"),
            "Z": TensorSparsity(Uniform(0.01), action="skipping"),
        })
        # Z is not among the workload's tensors; A takes no action.
        assert compute_scales(spec, ["A", "B"]) == (1.0, 1.0)


class TestSparsitySpec:
    def test_canonical_order_and_equality(self):
        a = SparsitySpec(entries=(
            ("B", TensorSparsity(Uniform(0.5))),
            ("A", TensorSparsity(Uniform(0.25))),
        ))
        b = SparsitySpec(entries=(
            ("A", TensorSparsity(Uniform(0.25))),
            ("B", TensorSparsity(Uniform(0.5))),
        ))
        assert a == b
        assert hash(a) == hash(b)
        assert a.tensor_names == ("A", "B")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SparsityError, match="duplicate"):
            SparsitySpec(entries=(
                ("A", TensorSparsity(Uniform(0.5))),
                ("A", TensorSparsity(Uniform(0.25))),
            ))

    def test_bad_format_and_action_rejected(self):
        with pytest.raises(SparsityError, match="unknown format"):
            TensorSparsity(Uniform(0.5), format="blocked")
        with pytest.raises(SparsityError, match="unknown action"):
            TensorSparsity(Uniform(0.5), action="pruning")
        assert ACTIONS == ("none", "gating", "skipping")

    def test_from_densities_defaults(self):
        spec = SparsitySpec.from_densities(
            {"A": 0.05}, formats={"B": "bitmask"}, actions={"A": "gating"})
        a = spec.get("A")
        assert isinstance(a.density, Uniform)
        assert a.format == "coordinate" and a.action == "gating"
        b = spec.get("B")
        assert isinstance(b.density, Dense)
        assert b.format == "bitmask"
        assert "A" in spec and "C" not in spec
        assert len(spec) == 2

    def test_is_dense_and_describe(self):
        dense = SparsitySpec.of({"A": TensorSparsity(Dense())})
        assert dense.is_dense
        sparse = SparsitySpec.of({
            "A": TensorSparsity(Uniform(0.05), format="bitmask",
                                action="skipping"),
        })
        assert not sparse.is_dense
        assert "A: d=0.05 bitmask/skipping" in sparse.describe()

    def test_spec_pickles(self):
        spec = SparsitySpec.from_densities({"A": 0.05, "B": 0.5})
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestPresets:
    def test_parse_assignments(self):
        assert parse_assignments(["A=0.5", "B=x"], "--density") == \
            {"A": "0.5", "B": "x"}
        with pytest.raises(SparsityError, match="TENSOR=VALUE"):
            parse_assignments(["A"], "--density")
        with pytest.raises(SparsityError, match="TENSOR=VALUE"):
            parse_assignments(["=0.5"], "--density")

    def test_spec_from_cli_empty_is_none(self):
        assert spec_from_cli([], [], []) is None

    def test_spec_from_cli_builds_and_validates(self):
        spec = spec_from_cli(["A=0.05"], ["A=bitmask"], ["A=gating"],
                             tensor_names=["A", "B"])
        ts = spec.get("A")
        assert ts.format == "bitmask" and ts.action == "gating"
        with pytest.raises(SparsityError, match="not a number"):
            spec_from_cli(["A=fast"])
        with pytest.raises(SparsityError, match="choose from"):
            spec_from_cli(["A=0.5"], ["A=blocked"])
        with pytest.raises(SparsityError, match="choose from"):
            spec_from_cli(["A=0.5"], [], ["A=zapping"])
        with pytest.raises(SparsityError, match="unknown tensors"):
            spec_from_cli(["Z=0.5"], tensor_names=["A", "B"])

    def test_workload_sparsity_resolution(self):
        assert workload_sparsity(mmc(I=4, J=4, K=4, L=4)) is None
        frostt = mttkrp_from_frostt("nell2", rank=4)
        spec = workload_sparsity(frostt)
        assert spec is not None and "A" in spec
        assert isinstance(spec.get("A").density, Uniform)
        fem = workload_sparsity(sddmm_from_suitesparse("bcsstk17", rank=8))
        assert isinstance(fem.get("A").density, Banded)
        assert "out" in fem and fem.get("out").action == "none"
