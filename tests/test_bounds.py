"""Soundness and exactness of the analytic branch-and-bound layer.

Two properties pin ``repro.mapspace.bounds``:

* **Soundness** — for every mapping ``m`` the point bound never exceeds
  the exact objective value, and for every region the region bound
  never exceeds the minimum over the region's members.  A sound bound
  combined with the strict ``bound > incumbent`` prune rule can never
  discard the true winner.
* **Exactness in use** — every bound-aware mapper returns the same best
  mapping and bit-identical cost with bounds on and off, across sweep
  directions, worker counts, shards and sparsity specs; the bound-free
  mappers (timeloop/gamma/cosa) are untouched.

Plus the user-facing surface: the per-search optimality certificate on
``repro schedule`` output and in ``--stats-json``.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.baselines.cosa import cosa_search
from repro.baselines.dmazerunner import dmazerunner_search
from repro.baselines.exhaustive import exhaustive_search
from repro.baselines.gamma import GammaConfig, gamma_search
from repro.baselines.interstellar import interstellar_search
from repro.baselines import TIMELOOP_FAST, timeloop_search
from repro.cli import main
from repro.core.scheduler import SchedulerOptions, SunstoneScheduler
from repro.mapspace import full_mapping_space
from repro.mapspace.bounds import BoundModel, Region
from repro.search import SearchEngine, mapping_fingerprint
from repro.sparse import SparsitySpec
from repro.workloads import conv1d, mttkrp
from tests import harness

SPARSE_SPECS = {
    "dense": None,
    "csr-skipping": SparsitySpec.from_densities(
        {"B": 0.3, "C": 0.6}, formats={"B": "csr"},
        actions={"B": "skipping"}),
    "gating": SparsitySpec.from_densities(
        {"A": 0.5}, formats={"A": "uncompressed"},
        actions={"A": "gating"}),
}


def _value(cost, objective):
    return cost.edp if objective == "edp" else cost.energy_pj


def _sampled_points(workload, arch, stride):
    """Every ``stride``-th mapping of the small full space."""
    space = full_mapping_space(workload, arch, orders_per_level=2)
    return [m for i, m in enumerate(space.enumerate()) if i % stride == 0]


# ---------------------------------------------------------------------------
# soundness: point and region bounds never exceed exact values
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("sparse_key", sorted(SPARSE_SPECS))
@pytest.mark.parametrize("objective", ["edp", "energy"])
def test_point_bound_never_exceeds_value(sparse_key, objective):
    workload = harness.tiny_mttkrp()
    arch = harness.small_arch()
    sparsity = SPARSE_SPECS[sparse_key]
    model = BoundModel(workload, arch, objective=objective,
                       sparsity=sparsity)
    checked = 0
    with SearchEngine(workers=1, sparsity=sparsity) as engine:
        for mapping in _sampled_points(workload, arch, stride=89):
            cost = engine.evaluate(mapping)
            if not cost.valid:
                continue
            value = _value(cost, objective)
            assert model.mapping_bound(mapping) <= value * (1 + 1e-12), (
                f"point bound exceeds exact {objective} for {mapping}")
            checked += 1
    assert checked > 50


@pytest.mark.parametrize("sparse_key", ["dense", "csr-skipping"])
def test_region_bound_never_exceeds_region_min(sparse_key):
    """Depth-1 prefix regions (one dimension fully assigned): the
    region bound is at most the minimum exact EDP over every member."""
    workload = mttkrp(2, 2, 2, 4)
    arch = harness.small_arch()
    sparsity = SPARSE_SPECS[sparse_key]
    model = BoundModel(workload, arch, objective="edp", sparsity=sparsity)
    space = full_mapping_space(workload, arch, orders_per_level=2)
    first = workload.dim_names[0]
    minima: dict[tuple, float] = {}
    with SearchEngine(workers=1, sparsity=sparsity) as engine:
        for mapping in space.enumerate():
            cost = engine.evaluate(mapping)
            if not cost.valid:
                continue
            key = tuple(
                (lvl.temporal_factors.get(first, 1),
                 lvl.spatial_factors.get(first, 1))
                for lvl in mapping.levels
            )
            value = cost.edp
            if key not in minima or value < minima[key]:
                minima[key] = value
    assert minima
    free = {d: e for d, e in workload.dims.items() if d != first}
    for key, exact_min in minima.items():
        region = Region([{first: t} for t, _ in key],
                        [{first: s} for _, s in key], dict(free), 0)
        bound = model.region_bound(region)
        assert bound <= exact_min * (1 + 1e-12), (
            f"region bound {bound} exceeds exact min {exact_min} "
            f"for {first}={key}")


def test_unassigned_region_bounds_the_whole_space():
    """``space_bound()`` (no decided dims) is a lower bound on every
    point — the quantity the certificate divides by."""
    workload = harness.tiny_mttkrp()
    arch = harness.small_arch()
    model = BoundModel(workload, arch, objective="edp")
    floor = model.space_bound()
    assert floor > 0
    result = exhaustive_search(workload, arch, orders_per_level=2)
    assert result.found
    assert floor <= result.cost.edp


# ---------------------------------------------------------------------------
# exactness: identical winners with bounds on and off
# ---------------------------------------------------------------------------

def _same_schedule(on, off):
    assert on.found == off.found
    if on.found:
        assert (mapping_fingerprint(on.mapping)
                == mapping_fingerprint(off.mapping))
        assert on.cost.edp == off.cost.edp
        assert on.cost.energy_pj == off.cost.energy_pj


def _same_winner(a, b):
    """Same verdict, mapping and cost (evaluation counts are allowed
    to differ — that is the entire point of the bounds)."""
    assert (a.mapping is None) == (b.mapping is None)
    if a.mapping is not None:
        assert (mapping_fingerprint(a.mapping)
                == mapping_fingerprint(b.mapping))
        assert a.cost.edp == b.cost.edp
        assert a.cost.energy_pj == b.cost.energy_pj


@pytest.mark.parametrize("workers", [1, 2])
@pytest.mark.parametrize("direction", ["bottom-up", "top-down"])
@pytest.mark.parametrize("sparse_key", ["dense", "csr-skipping"])
def test_sunstone_bit_identical_with_bounds(direction, sparse_key,
                                            workers):
    workload = harness.tiny_mttkrp()
    arch = harness.small_arch()
    base = SchedulerOptions(direction=direction,
                            sparsity=SPARSE_SPECS[sparse_key],
                            workers=workers)
    on = SunstoneScheduler(workload, arch,
                           replace(base, bound=True)).schedule()
    off = SunstoneScheduler(workload, arch,
                            replace(base, bound=False)).schedule()
    _same_schedule(on, off)
    assert off.stats.prune.bound.candidates_skipped == 0


def test_sunstone_bound_prunes_and_stays_identical_on_conv():
    layer = harness.resnet_conv_layer()
    arch = harness.resnet_conv_arch()
    on = SunstoneScheduler(layer, arch,
                           SchedulerOptions(bound=True)).schedule()
    off = SunstoneScheduler(layer, arch,
                            SchedulerOptions(bound=False)).schedule()
    _same_schedule(on, off)
    assert on.stats.prune.bound.candidates_skipped > 0


def test_sunstone_bound_prunes_medium_mttkrp():
    workload = harness.medium_mttkrp()
    arch = harness.medium_arch()
    on = SunstoneScheduler(workload, arch,
                           SchedulerOptions(bound=True)).schedule()
    off = SunstoneScheduler(workload, arch,
                            SchedulerOptions(bound=False)).schedule()
    _same_schedule(on, off)
    bnd = on.stats.prune.bound
    assert bnd.candidates_skipped > 0
    assert on.stats.evaluations < off.stats.evaluations
    # The certificate brackets the winner from below.
    assert bnd.lower_bound is not None
    assert bnd.lower_bound <= bnd.best_value == on.cost.edp
    assert bnd.gap_pct() is not None and bnd.gap_pct() >= 0.0


@pytest.mark.parametrize("shard", [None, (0, 2), (1, 2)])
def test_exhaustive_bit_identical_with_bounds(shard):
    workload = harness.tiny_mttkrp()
    arch = harness.small_arch()
    on = exhaustive_search(workload, arch, orders_per_level=2,
                           shard=shard, bound=True)
    off = exhaustive_search(workload, arch, orders_per_level=2,
                            shard=shard, bound=False)
    assert on.found and off.found
    assert (mapping_fingerprint(on.mapping)
            == mapping_fingerprint(off.mapping))
    assert on.cost.edp == off.cost.edp
    assert on.cost.energy_pj == off.cost.energy_pj
    # The prune is real, and evaluated + provably-skipped candidates
    # partition this shard's share of the space exactly.
    stats = on.search_stats
    assert stats.bound_candidates_skipped > 0
    assert (on.evaluations + stats.bound_candidates_skipped
            == off.evaluations)


def test_exhaustive_bit_identical_with_bounds_sparse():
    workload = harness.tiny_mttkrp()
    arch = harness.small_arch()
    spec = SPARSE_SPECS["csr-skipping"]
    on = exhaustive_search(workload, arch, orders_per_level=2,
                           sparsity=spec, bound=True)
    off = exhaustive_search(workload, arch, orders_per_level=2,
                            sparsity=spec, bound=False)
    assert on.found and off.found
    assert (mapping_fingerprint(on.mapping)
            == mapping_fingerprint(off.mapping))
    assert on.cost.edp == off.cost.edp


def test_exhaustive_scalar_path_matches_vector_path_under_bounds():
    """The numpy-free fallback walks the identical incumbent/prune
    trajectory: same winner *and* same evaluation count."""
    workload = harness.tiny_mttkrp()
    arch = harness.small_arch()
    vector = exhaustive_search(workload, arch, orders_per_level=2,
                               batch_gen=True)
    scalar = exhaustive_search(workload, arch, orders_per_level=2,
                               batch_gen=False)
    from tests.harness import assert_same_search_result
    assert_same_search_result(vector, scalar)
    assert (vector.search_stats.bound_candidates_skipped
            == scalar.search_stats.bound_candidates_skipped)


@pytest.mark.parametrize("workers", [1, 2])
def test_dmazerunner_bit_identical_with_bounds(workers):
    workload = harness.medium_mttkrp()
    arch = harness.medium_arch()
    on = dmazerunner_search(workload, arch, workers=workers, bound=True)
    off = dmazerunner_search(workload, arch, workers=workers, bound=False)
    _same_winner(on, off)
    assert on.certificate is not None and "gap_pct" in on.certificate
    assert off.certificate is None


@pytest.mark.parametrize("workers", [1, 2])
def test_interstellar_bit_identical_with_bounds(workers):
    workload = harness.medium_mttkrp()
    arch = harness.medium_arch()
    on = interstellar_search(workload, arch, workers=workers, bound=True)
    off = interstellar_search(workload, arch, workers=workers, bound=False)
    _same_winner(on, off)
    assert on.certificate is not None


def test_bound_free_mappers_have_no_certificate():
    """timeloop/gamma/cosa never consult the bounds layer: no knob, no
    certificate, results untouched by this feature."""
    workload = harness.tiny_mttkrp()
    arch = harness.small_arch()
    tl = timeloop_search(workload, arch, TIMELOOP_FAST)
    ga = gamma_search(workload, arch, GammaConfig(generations=2, seed=1))
    co = cosa_search(workload, arch)
    for result in (tl, ga, co):
        assert result.certificate is None


# ---------------------------------------------------------------------------
# user-facing certificate (CLI)
# ---------------------------------------------------------------------------

def test_schedule_cli_prints_certificate(capsys, tmp_path):
    stats = str(tmp_path / "stats.json")
    code = main([
        "schedule", "--workload", "mttkrp", "--arch", "tiny",
        "--stats-json", stats, "I=8", "K=8", "L=4", "J=8",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "certificate: best found is within" in out
    assert "analytic lower bound" in out
    with open(stats) as handle:
        doc = json.load(handle)
    assert doc["certificate"] is not None
    assert doc["certificate"]["gap_pct"] >= 0.0
    assert doc["certificate"]["lower_bound"] <= doc["certificate"][
        "best_value"]
    assert doc["search"]["bound"]["candidates_skipped"] >= 0


def test_schedule_cli_no_bound_flag(capsys):
    code = main([
        "schedule", "--workload", "mttkrp", "--arch", "tiny",
        "--no-bound", "I=8", "K=8", "L=4", "J=8",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "certificate:" not in out


def test_schedule_cli_no_bound_same_mapping(capsys, tmp_path):
    """The escape hatch changes evaluation counts, never the answer."""
    docs = []
    for flags in ([], ["--no-bound"]):
        stats = str(tmp_path / f"s{len(docs)}.json")
        code = main(["schedule", "--workload", "mttkrp", "--arch", "tiny",
                     "--stats-json", stats, "I=8", "K=8", "L=4", "J=8"]
                    + flags)
        assert code == 0
        capsys.readouterr()
        with open(stats) as handle:
            docs.append(json.load(handle))
    assert docs[0]["mapping"] == docs[1]["mapping"]
    assert docs[0]["cost"] == docs[1]["cost"]
