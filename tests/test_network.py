"""Tests for network-level scheduling."""

import pytest

from repro.arch import conventional, tiny
from repro.core import SchedulerOptions
from repro.core.network import NetworkSchedule, schedule_network
from repro.workloads import RESNET18_LAYERS, conv1d, conv2d


class TestScheduleNetwork:
    def test_all_layers_scheduled(self):
        layers = [
            conv2d(N=1, K=16, C=16, P=14, Q=14, R=3, S=3, name="a"),
            conv2d(N=1, K=32, C=16, P=7, Q=7, R=3, S=3, name="b"),
        ]
        net = schedule_network(layers, conventional())
        assert net.all_found
        assert len(net.layers) == 2
        assert net.total_energy_pj > 0
        assert net.total_cycles > 0

    def test_shape_deduplication(self):
        base = conv2d(N=1, K=16, C=16, P=14, Q=14, R=3, S=3, name="x")
        twin = conv2d(N=1, K=16, C=16, P=14, Q=14, R=3, S=3, name="y")
        other = conv2d(N=1, K=32, C=16, P=14, Q=14, R=3, S=3, name="z")
        net = schedule_network([base, twin, other], conventional())
        assert net.unique_searches == 2
        assert net.layers[1].shared_with == "x"
        assert net.layers[2].shared_with is None
        # Shared layers reuse the exact same result object.
        assert net.layers[1].result is net.layers[0].result

    def test_totals_are_sums(self):
        layers = [conv1d(K=4, C=4, P=14, R=3),
                  conv1d(K=8, C=4, P=14, R=3, )]
        layers[1] = conv1d(K=8, C=4, P=14, R=3)
        arch = tiny(l1_words=64, l2_words=512, pes=4)
        net = schedule_network(layers, arch)
        assert net.total_energy_pj == pytest.approx(
            sum(e.result.cost.energy_pj for e in net.layers))
        assert net.total_edp == pytest.approx(
            net.total_energy_pj * net.total_cycles)

    def test_summary_mentions_sharing(self):
        base = conv2d(N=1, K=16, C=16, P=7, Q=7, R=3, S=3, name="first")
        twin = conv2d(N=1, K=16, C=16, P=7, Q=7, R=3, S=3, name="second")
        net = schedule_network([base, twin], conventional())
        text = net.summary()
        assert "shared with first" in text
        assert "total:" in text

    def test_custom_mapper(self):
        calls = []

        def fake_mapper(workload, arch):
            from repro.core import schedule
            calls.append(workload.name)
            return schedule(workload, arch)

        layers = [conv1d(K=4, C=4, P=14, R=3)]
        arch = tiny(l1_words=64, l2_words=512, pes=4)
        net = schedule_network(layers, arch, mapper=fake_mapper)
        assert calls == ["conv1d"]
        assert net.all_found

    def test_options_forwarded(self):
        layers = [conv1d(K=4, C=4, P=14, R=3)]
        arch = tiny(l1_words=64, l2_words=512, pes=4)
        net = schedule_network(layers, arch,
                               options=SchedulerOptions(objective="energy"))
        assert net.all_found

    def test_parallel_processes_match_serial(self):
        layers = [
            conv2d(N=1, K=16, C=16, P=14, Q=14, R=3, S=3, name="a"),
            conv2d(N=1, K=32, C=16, P=7, Q=7, R=3, S=3, name="b"),
            conv2d(N=1, K=16, C=16, P=14, Q=14, R=3, S=3, name="a2"),
        ]
        arch = conventional()
        serial = schedule_network(layers, arch)
        parallel = schedule_network(layers, arch, processes=2)
        assert parallel.all_found
        assert parallel.unique_searches == serial.unique_searches == 2
        assert parallel.total_energy_pj == pytest.approx(
            serial.total_energy_pj)
        assert parallel.layers[2].shared_with == "a"

    def test_resnet18_has_shared_shapes(self):
        # The full ResNet-18 layer list (with repeats) would dedupe; the
        # distinct-shape list should not.
        layers = [l.inference(batch=1) for l in RESNET18_LAYERS[:4]]
        layers.append(RESNET18_LAYERS[1].inference(batch=1))  # repeat
        net = schedule_network(layers, conventional())
        assert net.unique_searches == 4
