"""Tests for the remote worker fleet (wire codec, leases, fencing).

The load-bearing guarantees pinned here:

* the wire codec round-trips cache fingerprints (tuples, sparsity
  specs) and ``CostResult``\\ s exactly — hashable keys, equal values;
* a lease that stops heartbeating is fenced: the task is re-leased
  (with ``attempt`` bumped so first-attempt kill hooks fire once) and
  the dead worker's late part is discarded — exactly-once admission;
* a daemon with remote workers produces the same merged result —
  mapping, cost, candidate accounting — as the local fleet and the
  cold CLI, including when a worker dies mid-lease;
* ``/stats`` reports per-worker health rows and fence counts.
"""

import asyncio
import json
import time

import pytest

from repro.cli import main
from repro.model.cost import AccessCounts, CostResult
from repro.serve import (
    RemoteFleet,
    ServeClient,
    ServeConfig,
    ServeDaemon,
    ServeError,
)
from repro.serve.remote import UnknownWorkerError, WorkerAgent
from repro.serve.wire import (
    WireError,
    decode_entries,
    decode_value,
    encode_entries,
    encode_value,
)
from repro.sparse.density import Banded, Dense, Uniform
from repro.sparse.spec import SparsitySpec, TensorSparsity

SMALL_CONV = {"kind": "conv1d", "dims": {"K": 4, "C": 4, "P": 14, "R": 3}}


def schedule_spec(**overrides):
    spec = {"kind": "schedule", "workload": dict(SMALL_CONV),
            "arch": "tiny"}
    spec.update(overrides)
    return spec


# ---------------------------------------------------------------------------
# wire codec
# ---------------------------------------------------------------------------

class TestWire:
    def test_fingerprint_round_trip_is_exact_and_hashable(self):
        sparsity = SparsitySpec(entries=(
            ("W", TensorSparsity(density=Uniform(density=0.25),
                                 format="bitmask", action="gating")),
            ("I", TensorSparsity(density=Banded(density=0.3, cluster=4),
                                 format="csr", action="skipping")),
            ("O", TensorSparsity(density=Dense(), format="uncompressed",
                                 action="none")),
        ))
        key = (("conv1d", (("K", 4), ("C", 4))), ("tiny", 256),
               ((("L1", ("K", 2)), ("L2", ("C", 2))),), False, sparsity)
        decoded = decode_value(encode_value(key))
        assert decoded == key
        assert hash(decoded) == hash(key)  # fingerprints are dict keys
        # The whole trip must survive real JSON serialisation.
        rewired = decode_value(json.loads(json.dumps(encode_value(key))))
        assert rewired == key

    def test_cost_result_round_trip_is_bit_exact(self):
        cost = CostResult(energy_pj=1.2345678901234567e8,
                          cycles=98765.0, valid=True,
                          violations=["cap L1"],
                          level_energy={"L1": 0.1, "L2": 2.0 / 3.0},
                          compute_energy=17.25, noc_energy=3.5,
                          chip2chip_energy=0.75, utilization=0.8125)
        decoded = decode_value(json.loads(json.dumps(encode_value(cost))))
        assert decoded == cost
        assert decoded.edp == cost.edp

    def test_entries_with_accesses_are_dropped_not_shipped(self):
        plain = CostResult(energy_pj=1.0, cycles=2.0, valid=True)
        heavy = CostResult(energy_pj=1.0, cycles=2.0, valid=True,
                           accesses=AccessCounts(levels={}, per_tensor={},
                                                 noc_words=0.0,
                                                 total_ops=0))
        encoded = encode_entries([(("a",), plain), (("b",), heavy)])
        assert decode_entries(encoded) == [(("a",), plain)]
        with pytest.raises(WireError, match="accesses"):
            encode_value(heavy)

    def test_malformed_documents_are_rejected(self):
        with pytest.raises(WireError, match="untagged"):
            decode_value([1, 2, 3])
        with pytest.raises(WireError, match="unknown wire tag"):
            decode_value({"__nope__": 1})
        with pytest.raises(WireError, match="cannot encode"):
            encode_value(object())


# ---------------------------------------------------------------------------
# lease protocol (RemoteFleet unit level, fake clock)
# ---------------------------------------------------------------------------

def _payload(index, attempt=0):
    return {"job_id": "j00001", "task": {"index": index}, "seed": [],
            "attempt": attempt}


def _part(index):
    return {"index": index, "doc": {"v": index}, "stats": None,
            "seed_hits": 0, "entries": [], "wall_time_s": 0.0}


class TestLeaseProtocol:
    def run(self, body):
        clock = [0.0]

        async def outer():
            fleet = RemoteFleet(lease_ttl_s=10.0, poll_s=5.0, window=4,
                                clock=lambda: clock[0])
            try:
                return await body(fleet, clock)
            finally:
                fleet.close()

        return asyncio.run(outer())

    def test_expired_lease_is_fenced_and_releases_with_attempt_bump(
            self):
        async def body(fleet, clock):
            alpha = fleet.register("alpha", 1)["worker"]
            beta = fleet.register("beta", 1)["worker"]
            run = asyncio.ensure_future(fleet.run(_payload(0)))
            await asyncio.sleep(0)
            stale = await fleet.lease(alpha)
            assert stale["lease"] and stale["payload"]["attempt"] == 0
            clock[0] += 11.0  # alpha never heartbeats: past the TTL
            fresh = await fleet.lease(beta)
            assert fresh["lease"] != stale["lease"]
            # First-attempt kill hooks must not re-fire on the re-lease.
            assert fresh["payload"]["attempt"] == 1
            # The fenced worker's late part is discarded...
            late = fleet.deliver(alpha, stale["lease"], part=_part(0))
            assert late == {"accepted": False,
                            "reason": "unknown or fenced lease"}
            assert not run.done()
            # ...and only the re-leased run resolves the task.
            assert fleet.deliver(beta, fresh["lease"],
                                 part=_part(0))["accepted"]
            part = await run
            assert part["index"] == 0
            stats = fleet.stats()
            assert stats["fences"] == 1
            assert stats["late_parts_discarded"] == 1
            assert stats["per_worker"][alpha]["fences"] == 1
            assert stats["per_worker"][alpha]["late_parts"] == 1
            assert stats["per_worker"][beta]["parts_delivered"] == 1

        self.run(body)

    def test_heartbeat_keeps_leases_alive_past_the_ttl(self):
        async def body(fleet, clock):
            worker = fleet.register("steady", 1)["worker"]
            run = asyncio.ensure_future(fleet.run(_payload(0)))
            await asyncio.sleep(0)
            lease = await fleet.lease(worker)
            for _ in range(4):
                clock[0] += 6.0  # each step < TTL, total far past it
                beat = fleet.heartbeat(worker)
                assert beat["leases"] == [lease["lease"]]
            assert fleet.deliver(worker, lease["lease"],
                                 part=_part(0))["accepted"]
            await run
            assert fleet.stats()["fences"] == 0

        self.run(body)

    def test_worker_error_fails_the_task_without_retry(self):
        async def body(fleet, clock):
            worker = fleet.register("w", 1)["worker"]
            run = asyncio.ensure_future(fleet.run(_payload(0)))
            await asyncio.sleep(0)
            lease = await fleet.lease(worker)
            assert fleet.deliver(worker, lease["lease"],
                                 error="ValueError: bad doc")["accepted"]
            with pytest.raises(Exception, match="bad doc"):
                await run
            assert fleet.stats()["tasks_failed"] == 1

        self.run(body)

    def test_cancelled_run_abandons_queue_and_lease(self):
        async def body(fleet, clock):
            worker = fleet.register("w", 1)["worker"]
            queued = asyncio.ensure_future(fleet.run(_payload(0)))
            leased = asyncio.ensure_future(fleet.run(_payload(1)))
            await asyncio.sleep(0)
            lease = await fleet.lease(worker)
            for future in (queued, leased):
                future.cancel()
            await asyncio.gather(queued, leased, return_exceptions=True)
            # The leased task's part arrives late: discarded, and the
            # queued task must not be leased to anyone.
            late = fleet.deliver(worker, lease["lease"], part=_part(1))
            assert late["accepted"] is False
            assert fleet.stats()["queued"] == 0
            assert fleet.stats()["leased"] == 0

        self.run(body)

    def test_unknown_worker_must_reregister(self):
        async def body(fleet, clock):
            with pytest.raises(UnknownWorkerError, match="register"):
                await fleet.lease("w999")
            with pytest.raises(UnknownWorkerError):
                fleet.heartbeat("w999")
            # An unknown worker's delivery is a late part, not a crash.
            assert fleet.deliver("w999", "L000001",
                                 part=_part(0))["accepted"] is False

        self.run(body)

    def test_empty_poll_window_returns_no_lease(self):
        async def outer():
            fleet = RemoteFleet(lease_ttl_s=1.0, poll_s=0.1, window=1)
            worker = fleet.register("idle", 1)["worker"]
            try:
                return await fleet.lease(worker)
            finally:
                fleet.close()

        assert asyncio.run(outer()) == {"lease": None}


# ---------------------------------------------------------------------------
# end to end over HTTP: daemon + worker agents, bit-identity
# ---------------------------------------------------------------------------

async def _daemon_session(config, body):
    daemon = ServeDaemon(config)
    server = asyncio.get_running_loop().create_task(daemon.serve())
    try:
        while daemon.manager is None or daemon.port is None:
            await asyncio.sleep(0.01)
        return await body(daemon)
    finally:
        daemon.request_stop()
        await server


def remote_daemon(body, **overrides):
    config = dict(port=0, fleet="remote", lease_ttl_s=2.0, poll_s=0.3,
                  read_timeout_s=5.0)
    config.update(overrides)
    return asyncio.run(_daemon_session(ServeConfig(**config), body))


async def _with_agent(daemon, coro, workers=0):
    agent = WorkerAgent("127.0.0.1", daemon.port, workers=workers,
                        retry_s=30.0)
    task = asyncio.create_task(agent.run())
    try:
        return await coro()
    finally:
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass


def _local_job(spec):
    async def body(daemon):
        job = daemon.manager.submit(spec)
        await job.runner
        return job

    return asyncio.run(_daemon_session(
        ServeConfig(port=0, workers=0), body))


class TestRemoteHttp:
    def test_remote_result_is_bit_identical_to_local_fleet(self):
        spec = schedule_spec(shards=3)
        local = _local_job(spec)

        def drive(client):
            row = client.submit(spec)
            doc = client.result(row["id"], wait=True)
            return doc, client.stats()

        async def body(daemon):
            client = ServeClient("127.0.0.1", daemon.port)
            return await _with_agent(
                daemon, lambda: asyncio.to_thread(drive, client))

        doc, stats = remote_daemon(body)
        assert doc["state"] == "done"
        assert doc["result"]["mapping"] == local.result["mapping"]
        assert doc["result"]["cost"] == local.result["cost"]
        assert doc["result"]["evaluations"] == local.result["evaluations"]
        fleet = stats["fleet"]
        assert fleet["backend"] == "remote"
        assert fleet["tasks_run"] == 3
        row, = fleet["per_worker"].values()
        assert row["alive"] is True
        assert row["parts_delivered"] == 3
        assert row["leases_held"] == 0
        assert row["fences"] == 0

    def test_dead_worker_is_fenced_and_job_completes_identically(self):
        spec = schedule_spec(shards=2)
        local = _local_job(spec)

        def submit(client):
            return client.submit(spec)["id"]

        def steal_lease(client):
            # A "worker" that registers, leases one task and then goes
            # silent — exactly what a SIGKILLed process looks like to
            # the daemon.
            ghost = client.register_worker("ghost", 1)["worker"]
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                lease = client.lease(ghost)
                if lease.get("lease"):
                    return ghost, lease
            raise AssertionError("ghost never got a lease")

        def finish(client, job_id):
            return client.result(job_id, wait=True), client.stats()

        async def body(daemon):
            client = ServeClient("127.0.0.1", daemon.port)
            job_id = await asyncio.to_thread(submit, client)
            ghost, lease = await asyncio.to_thread(steal_lease, client)
            # Only now does a live worker join: it must pick up both
            # the other shard and, after the TTL fences the ghost's
            # lease, the re-leased one.
            doc, stats = await _with_agent(
                daemon,
                lambda: asyncio.to_thread(finish, client, job_id))
            late = await asyncio.to_thread(
                client.deliver_part,
                {"worker": ghost, "lease": lease["lease"],
                 "part": _part(lease["payload"]["task"]["index"])})
            return doc, stats, late

        doc, stats, late = remote_daemon(body, lease_ttl_s=1.0)
        assert doc["state"] == "done"
        assert doc["result"]["mapping"] == local.result["mapping"]
        assert doc["result"]["cost"] == local.result["cost"]
        assert doc["result"]["evaluations"] == local.result["evaluations"]
        fleet = stats["fleet"]
        assert fleet["fences"] >= 1
        ghost_row = fleet["per_worker"]["w001"]
        assert ghost_row["fences"] >= 1
        # The fenced worker's part arrived after the re-leased run won:
        # discarded, never double-admitted.
        assert late["accepted"] is False

    def test_local_fleet_daemon_rejects_worker_endpoints(self):
        async def body(daemon):
            client = ServeClient("127.0.0.1", daemon.port)

            def drive():
                with pytest.raises(ServeError, match="local fleet") as err:
                    client.register_worker("w", 1)
                assert err.value.status == 409
                return True

            return await asyncio.to_thread(drive)

        assert asyncio.run(_daemon_session(
            ServeConfig(port=0, workers=0), body))

    def test_worker_reregisters_after_daemon_forgets_it(self):
        # Workers outlive daemon restarts: an unknown worker id gets a
        # 409 and the agent re-registers rather than dying.
        async def body(daemon):
            client = ServeClient("127.0.0.1", daemon.port)

            def drive():
                with pytest.raises(ServeError) as err:
                    client.lease("w777")
                assert err.value.status == 409
                assert "re" in str(err.value)
                return True

            return await asyncio.to_thread(drive)

        assert remote_daemon(body)


class TestWorkerCli:
    def test_worker_gives_up_cleanly_when_daemon_unreachable(self,
                                                             capsys):
        code = main(["worker", "--connect", "127.0.0.1:1",
                     "--retry", "0.5"])
        assert code == 1
        assert "cannot join fleet" in capsys.readouterr().err

    def test_worker_rejects_malformed_connect(self):
        with pytest.raises(SystemExit, match="HOST:PORT"):
            main(["worker", "--connect", "nonsense"])
