"""Tests for architecture descriptions and presets."""

import math

import pytest

from repro.arch import (
    UNIFIED,
    Architecture,
    ArchitectureError,
    MemoryLevel,
    conventional,
    diannao_like,
    simba_like,
    tiny,
    words,
)


def _dram(**kwargs):
    return MemoryLevel(name="DRAM", capacity_words=None, **kwargs)


class TestMemoryLevel:
    def test_unified_detection(self):
        lvl = MemoryLevel("L1", {UNIFIED: 64})
        assert lvl.is_unified
        assert lvl.stores("anything")
        assert lvl.capacity_for("anything") == 64

    def test_per_role_storage_and_bypass(self):
        lvl = MemoryLevel("L1", {"weight": 64})
        assert lvl.stores("weight")
        assert not lvl.stores("ifmap")
        assert lvl.capacity_for("ifmap") == 0

    def test_unbounded(self):
        lvl = _dram()
        assert lvl.is_unbounded
        assert lvl.stores("weight")
        assert lvl.capacity_for("weight") is None

    def test_fanout_shape_must_match(self):
        with pytest.raises(ArchitectureError):
            MemoryLevel("L1", {UNIFIED: 4}, fanout=8, fanout_shape=(2, 2))

    def test_bad_fanout(self):
        with pytest.raises(ArchitectureError):
            MemoryLevel("L1", {UNIFIED: 4}, fanout=0)

    def test_bad_capacity(self):
        with pytest.raises(ArchitectureError):
            MemoryLevel("L1", {UNIFIED: 0})


class TestArchitecture:
    def test_outermost_must_be_unbounded(self):
        with pytest.raises(ArchitectureError, match="unbounded"):
            Architecture("a", [MemoryLevel("L1", {UNIFIED: 8})])

    def test_only_outermost_unbounded(self):
        with pytest.raises(ArchitectureError):
            Architecture("a", [_dram(), _dram()])

    def test_duplicate_names(self):
        with pytest.raises(ArchitectureError, match="duplicate"):
            Architecture("a", [
                MemoryLevel("X", {UNIFIED: 8}),
                MemoryLevel("X", {UNIFIED: 8}),
                _dram(),
            ])

    def test_outermost_fanout_rejected(self):
        with pytest.raises(ArchitectureError):
            Architecture("a", [MemoryLevel("D", None, fanout=4)])

    def test_storage_levels_with_bypass(self):
        arch = simba_like()
        weight_levels = arch.storage_levels("weight")
        # Weights: registers, PE buffer, DRAM — but NOT the global buffer.
        assert weight_levels == (0, 1, 3)
        assert arch.storage_levels("ifmap") == (1, 2, 3)

    def test_parent_storage(self):
        arch = simba_like()
        assert arch.parent_storage(1, "weight") == 3  # skips GlobalBuf
        assert arch.parent_storage(1, "ifmap") == 2
        assert arch.parent_storage(3, "ifmap") is None

    def test_instances_of(self):
        arch = conventional()
        assert arch.instances_of(0) == 1024  # one L1 per PE
        assert arch.instances_of(1) == 1  # a single shared L2
        simba = simba_like()
        assert simba.instances_of(0) == 64 * 16  # regs per lane
        assert simba.instances_of(1) == 16  # PE buffers

    def test_total_fanout(self):
        assert conventional().total_fanout == 1024
        assert simba_like().total_fanout == 64 * 16

    def test_with_level(self):
        arch = tiny()
        bigger = arch.with_level("L1", capacity_words={UNIFIED: 128})
        assert bigger.levels[0].capacity_for(UNIFIED) == 128
        assert arch.levels[0].capacity_for(UNIFIED) == 8

    def test_level_index(self):
        arch = tiny()
        assert arch.level_index("L2") == 1
        with pytest.raises(KeyError):
            arch.level_index("nope")

    def test_describe_mentions_all_levels(self):
        text = simba_like().describe()
        for name in ("Regs", "PEBuf", "GlobalBuf", "DRAM"):
            assert name in text


class TestPresets:
    def test_conventional_matches_table4(self):
        arch = conventional()
        l1 = arch.levels[0]
        assert l1.fanout == 1024  # 32x32 PEs
        assert l1.capacity_for(UNIFIED) == 256  # 512 B at 16-bit words
        l2 = arch.levels[1]
        assert l2.capacity_for(UNIFIED) == words(3.1 * 1024, 16)

    def test_simba_matches_table4(self):
        arch = simba_like()
        pebuf = arch.levels[1]
        assert pebuf.capacity_for("weight") == words(32, 8)
        assert pebuf.capacity_for("ifmap") == words(8, 8)
        assert pebuf.capacity_for("ofmap") == words(3, 24)
        assert arch.levels[2].stores("ifmap")
        assert not arch.levels[2].stores("weight")

    def test_diannao_lane_level(self):
        arch = diannao_like()
        assert arch.levels[0].fanout == 256  # 16x16 multipliers

    def test_energy_hierarchy_is_monotone(self):
        # DRAM must dominate on-chip SRAM, which dominates registers.
        arch = simba_like()
        energies = [lvl.read_energy for lvl in arch.levels]
        assert energies[0] < energies[1] < energies[2] < energies[3]

    def test_words_helper(self):
        assert words(1, 16) == 512
        assert words(32, 8) == 32768
