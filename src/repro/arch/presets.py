"""The evaluated accelerator configurations (paper Table IV).

* :func:`conventional` — Eyeriss-like: a 32x32 grid of single-MAC PEs with a
  unified 512 B scratchpad each, a 3.1 MB unified global buffer, and DRAM.
* :func:`simba_like` — a modern multi-level design: per-lane weight
  registers under 8 vector MACs per PE, per-datatype PE buffers, a 512 KB
  global buffer that weights bypass, and DRAM.
* :func:`diannao_like` — the DianNao-style accelerator used by the paper's
  overhead study (Fig. 9): NBin/NBout/SB buffers feeding a 16x16 multiplier
  array.

All per-access energies come from the Accelergy-style models in
:mod:`repro.energy`.
"""

from __future__ import annotations

from ..energy.cacti import regfile_energy, sram_estimate
from ..energy.noc import NocModel
from ..energy.table import dram_energy, mac_energy
from .spec import UNIFIED, Architecture, MemoryLevel, words


def _sram_level(
    name: str,
    capacity_words: dict[str, int],
    capacity_bytes: int,
    word_bits: int,
    fanout: int = 1,
    fanout_shape: tuple[int, int] | None = None,
    read_bandwidth: float = float("inf"),
    write_bandwidth: float = float("inf"),
) -> MemoryLevel:
    est = sram_estimate(capacity_bytes, word_bits)
    noc = 0.0
    if fanout > 1:
        shape = fanout_shape or (fanout, 1)
        noc = NocModel(shape, word_bits).unicast_energy()
    return MemoryLevel(
        name=name,
        capacity_words=capacity_words,
        fanout=fanout,
        fanout_shape=fanout_shape,
        read_energy=est.read_energy,
        write_energy=est.write_energy,
        network_energy=noc,
        read_bandwidth=read_bandwidth,
        write_bandwidth=write_bandwidth,
    )


def conventional() -> Architecture:
    """Eyeriss-like conventional accelerator (Table IV, right column).

    16-bit datapath, 32x32 PEs each with a unified 512 B L1, a unified
    3.1 MB L2, and off-chip DRAM.
    """
    word_bits = 16
    l1 = _sram_level(
        "L1",
        capacity_words={UNIFIED: words(0.5, word_bits)},  # 512 B -> 256 words
        capacity_bytes=512,
        word_bits=word_bits,
        fanout=1024,
        fanout_shape=(32, 32),
        read_bandwidth=64,
        write_bandwidth=64,
    )
    l2 = _sram_level(
        "L2",
        capacity_words={UNIFIED: words(3.1 * 1024, word_bits)},
        capacity_bytes=int(3.1 * 1024 * 1024),
        word_bits=word_bits,
        read_bandwidth=32,
        write_bandwidth=32,
    )
    dram = MemoryLevel(
        name="DRAM",
        capacity_words=None,
        read_energy=dram_energy(word_bits),
        write_energy=dram_energy(word_bits),
        read_bandwidth=16,
        write_bandwidth=16,
    )
    return Architecture(
        "conventional",
        levels=(l1, l2, dram),
        mac_energy=mac_energy(word_bits),
        mac_width=1,
    )


def simba_like() -> Architecture:
    """Simba-like modern accelerator (Table IV, left column).

    Two spatial levels: 8 vector-MAC lanes (each 8 wide, with a small weight
    register file) inside each of 4x4 PEs.  Per-datatype PE buffers
    (weights 32 KB @ 8 b, ifmap 8 KB @ 8 b, ofmap 3 KB @ 24 b); the 512 KB
    global buffer holds only ifmap and ofmap — weights stream from DRAM.
    """
    reg_read, reg_write = regfile_energy(entries=8, word_bits=8)
    regs = MemoryLevel(
        name="Regs",
        capacity_words={"weight": 8},
        fanout=64,  # 8 vector MACs x 8 lanes each, modelled uniformly
        fanout_shape=(8, 8),
        read_energy=reg_read,
        write_energy=reg_write,
        network_energy=NocModel((8, 8), word_bits=8).unicast_energy(),
        read_bandwidth=64,
        write_bandwidth=8,
    )
    l1 = _sram_level(
        "PEBuf",
        capacity_words={
            "weight": words(32, 8),
            "ifmap": words(8, 8),
            "ofmap": words(3, 24),
        },
        capacity_bytes=(32 + 8 + 3) * 1024,
        word_bits=8,
        fanout=16,
        fanout_shape=(4, 4),
        read_bandwidth=64,
        write_bandwidth=8,
    )
    l2 = _sram_level(
        "GlobalBuf",
        capacity_words={
            "ifmap": words(256, 8),
            "ofmap": words(256, 24),
        },
        capacity_bytes=512 * 1024,
        word_bits=16,
        read_bandwidth=32,
        write_bandwidth=32,
    )
    dram = MemoryLevel(
        name="DRAM",
        capacity_words=None,
        read_energy=dram_energy(8),
        write_energy=dram_energy(8),
        read_bandwidth=16,
        write_bandwidth=16,
    )
    return Architecture(
        "simba-like",
        levels=(regs, l1, l2, dram),
        mac_energy=mac_energy(8),
        mac_width=1,
    )


def diannao_like() -> Architecture:
    """DianNao-like accelerator for the overhead study (Fig. 9).

    A 16x16 multiplier array (the NFU) fed by three on-chip buffers: NBin
    (ifmap), NBout (ofmap) and SB (weights).  The lanes have no local
    storage; we model them as a capacity-1 pseudo-level so that spatial
    unrolling across the array is expressible.
    """
    word_bits = 16
    lanes = MemoryLevel(
        name="Lanes",
        capacity_words={UNIFIED: 4},
        fanout=256,
        fanout_shape=(16, 16),
        read_energy=0.01,
        write_energy=0.01,
        network_energy=NocModel((16, 16), word_bits).unicast_energy(),
    )
    buffers = _sram_level(
        "Buffers",
        capacity_words={
            "ifmap": words(2, word_bits),
            "ofmap": words(2, word_bits),
            "weight": words(32, word_bits),
        },
        capacity_bytes=(2 + 2 + 32) * 1024,
        word_bits=word_bits,
        read_bandwidth=512,
        write_bandwidth=512,
    )
    dram = MemoryLevel(
        name="DRAM",
        capacity_words=None,
        read_energy=dram_energy(word_bits),
        write_energy=dram_energy(word_bits),
        read_bandwidth=16,
        write_bandwidth=16,
    )
    return Architecture(
        "diannao-like",
        levels=(lanes, buffers, dram),
        mac_energy=mac_energy(word_bits),
        mac_width=1,
    )


def tiny(l1_words: int = 8, l2_words: int = 64, pes: int = 4) -> Architecture:
    """A miniature two-memory architecture for tests and examples."""
    l1 = MemoryLevel(
        name="L1",
        capacity_words={UNIFIED: l1_words},
        fanout=pes,
        fanout_shape=(pes, 1),
        read_energy=1.0,
        write_energy=1.0,
        network_energy=0.1,
    )
    l2 = MemoryLevel(
        name="L2",
        capacity_words={UNIFIED: l2_words},
        read_energy=10.0,
        write_energy=10.0,
    )
    dram = MemoryLevel(
        name="DRAM",
        capacity_words=None,
        read_energy=100.0,
        write_energy=100.0,
    )
    return Architecture("tiny", levels=(l1, l2, dram), mac_energy=0.5)
