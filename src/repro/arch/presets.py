"""The evaluated accelerator configurations (paper Table IV).

* :func:`conventional` — Eyeriss-like: a 32x32 grid of single-MAC PEs with a
  unified 512 B scratchpad each, a 3.1 MB unified global buffer, and DRAM.
* :func:`simba_like` — a modern multi-level design: per-lane weight
  registers under 8 vector MACs per PE, per-datatype PE buffers, a 512 KB
  global buffer that weights bypass, and DRAM.
* :func:`diannao_like` — the DianNao-style accelerator used by the paper's
  overhead study (Fig. 9): NBin/NBout/SB buffers feeding a 16x16 multiplier
  array.
* :func:`two_chiplet` — a Simba-style two-chiplet package: per-PE buffers
  inside each chiplet, a per-chiplet buffer, and a ``chip2chip`` package
  link between the chiplets and the package-level DRAM interface.

Every preset describes its levels with :class:`ComponentSpec` records and
is resolved through :func:`repro.energy.tech.resolve_architecture`, so the
same topology can be retargeted to any registered technology pack via the
``tech`` argument.  The default pack (``cmos45``) reproduces the historical
hard-coded energies bit-for-bit.
"""

from __future__ import annotations

from ..energy.tech import DEFAULT_TECH, resolve_architecture
from .spec import UNIFIED, Architecture, ComponentSpec, MemoryLevel, words


def _sram_level(
    name: str,
    capacity_words: dict[str, int],
    capacity_bytes: int,
    word_bits: int,
    fanout: int = 1,
    fanout_shape: tuple[int, int] | None = None,
    read_bandwidth: float = float("inf"),
    write_bandwidth: float = float("inf"),
) -> MemoryLevel:
    return MemoryLevel(
        name=name,
        capacity_words=capacity_words,
        fanout=fanout,
        fanout_shape=fanout_shape,
        read_bandwidth=read_bandwidth,
        write_bandwidth=write_bandwidth,
        component=ComponentSpec(
            "sram", capacity_bytes=capacity_bytes, word_bits=word_bits),
    )


def conventional(tech: str = DEFAULT_TECH) -> Architecture:
    """Eyeriss-like conventional accelerator (Table IV, right column).

    16-bit datapath, 32x32 PEs each with a unified 512 B L1, a unified
    3.1 MB L2, and off-chip DRAM.
    """
    word_bits = 16
    l1 = _sram_level(
        "L1",
        capacity_words={UNIFIED: words(0.5, word_bits)},  # 512 B -> 256 words
        capacity_bytes=512,
        word_bits=word_bits,
        fanout=1024,
        fanout_shape=(32, 32),
        read_bandwidth=64,
        write_bandwidth=64,
    )
    l2 = _sram_level(
        "L2",
        capacity_words={UNIFIED: words(3.1 * 1024, word_bits)},
        capacity_bytes=int(3.1 * 1024 * 1024),
        word_bits=word_bits,
        read_bandwidth=32,
        write_bandwidth=32,
    )
    dram = MemoryLevel(
        name="DRAM",
        capacity_words=None,
        read_bandwidth=16,
        write_bandwidth=16,
        component=ComponentSpec("dram", word_bits=word_bits),
    )
    arch = Architecture(
        "conventional",
        levels=(l1, l2, dram),
        mac_width=1,
        mac_word_bits=word_bits,
    )
    return resolve_architecture(arch, tech)


def simba_like(tech: str = DEFAULT_TECH) -> Architecture:
    """Simba-like modern accelerator (Table IV, left column).

    Two spatial levels: 8 vector-MAC lanes (each 8 wide, with a small weight
    register file) inside each of 4x4 PEs.  Per-datatype PE buffers
    (weights 32 KB @ 8 b, ifmap 8 KB @ 8 b, ofmap 3 KB @ 24 b); the 512 KB
    global buffer holds only ifmap and ofmap — weights stream from DRAM.
    """
    regs = MemoryLevel(
        name="Regs",
        capacity_words={"weight": 8},
        fanout=64,  # 8 vector MACs x 8 lanes each, modelled uniformly
        fanout_shape=(8, 8),
        read_bandwidth=64,
        write_bandwidth=8,
        component=ComponentSpec("regfile", entries=8, word_bits=8),
    )
    l1 = _sram_level(
        "PEBuf",
        capacity_words={
            "weight": words(32, 8),
            "ifmap": words(8, 8),
            "ofmap": words(3, 24),
        },
        capacity_bytes=(32 + 8 + 3) * 1024,
        word_bits=8,
        fanout=16,
        fanout_shape=(4, 4),
        read_bandwidth=64,
        write_bandwidth=8,
    )
    l2 = _sram_level(
        "GlobalBuf",
        capacity_words={
            "ifmap": words(256, 8),
            "ofmap": words(256, 24),
        },
        capacity_bytes=512 * 1024,
        word_bits=16,
        read_bandwidth=32,
        write_bandwidth=32,
    )
    dram = MemoryLevel(
        name="DRAM",
        capacity_words=None,
        read_bandwidth=16,
        write_bandwidth=16,
        component=ComponentSpec("dram", word_bits=8),
    )
    arch = Architecture(
        "simba-like",
        levels=(regs, l1, l2, dram),
        mac_width=1,
        mac_word_bits=8,
    )
    return resolve_architecture(arch, tech)


def diannao_like(tech: str = DEFAULT_TECH) -> Architecture:
    """DianNao-like accelerator for the overhead study (Fig. 9).

    A 16x16 multiplier array (the NFU) fed by three on-chip buffers: NBin
    (ifmap), NBout (ofmap) and SB (weights).  The lanes have no local
    storage; we model them as a capacity-1 pseudo-level so that spatial
    unrolling across the array is expressible.
    """
    word_bits = 16
    lanes = MemoryLevel(
        name="Lanes",
        capacity_words={UNIFIED: 4},
        fanout=256,
        fanout_shape=(16, 16),
        component=ComponentSpec(
            "fixed", read_energy=0.01, write_energy=0.01,
            word_bits=word_bits),
    )
    buffers = _sram_level(
        "Buffers",
        capacity_words={
            "ifmap": words(2, word_bits),
            "ofmap": words(2, word_bits),
            "weight": words(32, word_bits),
        },
        capacity_bytes=(2 + 2 + 32) * 1024,
        word_bits=word_bits,
        read_bandwidth=512,
        write_bandwidth=512,
    )
    dram = MemoryLevel(
        name="DRAM",
        capacity_words=None,
        read_bandwidth=16,
        write_bandwidth=16,
        component=ComponentSpec("dram", word_bits=word_bits),
    )
    arch = Architecture(
        "diannao-like",
        levels=(lanes, buffers, dram),
        mac_width=1,
        mac_word_bits=word_bits,
    )
    return resolve_architecture(arch, tech)


def tiny(l1_words: int = 8, l2_words: int = 64, pes: int = 4,
         tech: str = DEFAULT_TECH) -> Architecture:
    """A miniature two-memory architecture for tests and examples.

    All energies are hand-picked round numbers (``fixed`` components with a
    ``fixed`` link), so under the default pack they are exactly the
    historical constants; other packs scale them by ``logic_scale``.
    """
    l1 = MemoryLevel(
        name="L1",
        capacity_words={UNIFIED: l1_words},
        fanout=pes,
        fanout_shape=(pes, 1),
        network_energy=0.1,
        component=ComponentSpec("fixed", read_energy=1.0, write_energy=1.0),
        link="fixed",
    )
    l2 = MemoryLevel(
        name="L2",
        capacity_words={UNIFIED: l2_words},
        component=ComponentSpec("fixed", read_energy=10.0, write_energy=10.0),
    )
    dram = MemoryLevel(
        name="DRAM",
        capacity_words=None,
        component=ComponentSpec("fixed", read_energy=100.0,
                                write_energy=100.0),
    )
    arch = Architecture("tiny", levels=(l1, l2, dram), mac_energy=0.5)
    return resolve_architecture(arch, tech)


def two_chiplet(tech: str = DEFAULT_TECH) -> Architecture:
    """Simba-style two-chiplet package (multi-chip hierarchy demo).

    Each chiplet holds a 4x4 grid of PEs (unified 1 KB L1 each) under a
    256 KB chiplet buffer; the two chiplet buffers sit behind a
    ``chip2chip`` package link whose per-word energy and bandwidth come
    from the technology pack.  DRAM is on the package substrate.
    """
    word_bits = 16
    l1 = _sram_level(
        "L1",
        capacity_words={UNIFIED: words(1.0, word_bits)},
        capacity_bytes=1024,
        word_bits=word_bits,
        fanout=16,
        fanout_shape=(4, 4),
        read_bandwidth=64,
        write_bandwidth=64,
    )
    chipbuf = MemoryLevel(
        name="ChipBuf",
        capacity_words={UNIFIED: words(256, word_bits)},
        fanout=2,
        fanout_shape=(2, 1),
        read_bandwidth=32,
        write_bandwidth=32,
        component=ComponentSpec(
            "sram", capacity_bytes=256 * 1024, word_bits=word_bits),
        link="chip2chip",
    )
    dram = MemoryLevel(
        name="DRAM",
        capacity_words=None,
        read_bandwidth=16,
        write_bandwidth=16,
        component=ComponentSpec("dram", word_bits=word_bits),
    )
    arch = Architecture(
        "two-chiplet",
        levels=(l1, chipbuf, dram),
        mac_width=1,
        mac_word_bits=word_bits,
    )
    return resolve_architecture(arch, tech)
