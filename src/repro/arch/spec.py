"""Spatial-accelerator architecture description.

An :class:`Architecture` is an ordered list of :class:`MemoryLevel` objects,
innermost first.  Each level may fan out spatially: ``fanout`` instances of
the level (and everything below it) exist per instance of the parent level.
This uniform representation covers both the paper's "conventional"
accelerator (one spatial level: a PE grid between L2 and the per-PE L1) and
"modern" Simba-like designs (a second spatial level: vector-MAC lanes with
operand registers inside each PE).

Capacities are per *instance* and per datatype role; a level that does not
list a role bypasses it (e.g. weights bypass the Simba global buffer).  The
special role ``"*"`` denotes a unified buffer shared by all datatypes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping, Sequence

UNIFIED = "*"


class ArchitectureError(ValueError):
    """Raised when an architecture description is malformed."""


LINK_KINDS = ("noc", "chip2chip", "fixed")


@dataclass(frozen=True)
class ComponentSpec:
    """What a memory level physically *is*, for technology retargeting.

    A level that carries a component spec gets its per-access energies
    re-derived by :func:`repro.energy.tech.resolve_architecture` whenever
    the architecture is resolved under a technology pack; a level without
    one keeps its hand-specified energies under every pack.

    ``kind`` selects the estimator: ``"sram"`` (Cacti-style analytic model
    over ``capacity_bytes``/``word_bits``/``banks``), ``"regfile"``
    (flip-flop array over ``entries``/``word_bits``), ``"dram"`` (off-chip
    reference energy scaled by ``word_bits``), or ``"fixed"``
    (``read_energy``/``write_energy`` given directly, scaled by the pack's
    ``logic_scale``).  ``word_bits`` doubles as the flit width of the
    level's interconnect link.
    """

    kind: str
    capacity_bytes: int = 0
    word_bits: int = 16
    banks: int = 1
    entries: int = 0
    read_energy: float = 0.0
    write_energy: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("sram", "regfile", "dram", "fixed"):
            raise ArchitectureError(
                f"unknown component kind '{self.kind}' "
                f"(expected sram, regfile, dram or fixed)")
        if self.kind == "sram" and self.capacity_bytes < 1:
            raise ArchitectureError("sram component needs capacity_bytes")
        if self.kind == "regfile" and self.entries < 1:
            raise ArchitectureError("regfile component needs entries")
        if self.word_bits < 1:
            raise ArchitectureError("component word_bits must be positive")

    def to_dict(self) -> dict:
        doc: dict = {"kind": self.kind}
        if self.kind == "sram":
            doc["capacity_bytes"] = self.capacity_bytes
            if self.banks != 1:
                doc["banks"] = self.banks
        elif self.kind == "regfile":
            doc["entries"] = self.entries
        elif self.kind == "fixed":
            doc["read_energy"] = self.read_energy
            doc["write_energy"] = self.write_energy
        if self.word_bits != 16:
            doc["word_bits"] = self.word_bits
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping) -> "ComponentSpec":
        return cls(
            kind=doc["kind"],
            capacity_bytes=int(doc.get("capacity_bytes", 0)),
            word_bits=int(doc.get("word_bits", 16)),
            banks=int(doc.get("banks", 1)),
            entries=int(doc.get("entries", 0)),
            read_energy=float(doc.get("read_energy", 0.0)),
            write_energy=float(doc.get("write_energy", 0.0)),
        )


@dataclass(frozen=True)
class MemoryLevel:
    """One storage level of the hierarchy (innermost = index 0).

    Attributes
    ----------
    name:
        Human-readable name (``"L1"``, ``"GlobalBuffer"``, ``"DRAM"``...).
    capacity_words:
        Per-instance capacity in words for each datatype role it stores,
        or ``None`` for unbounded capacity (off-chip DRAM).  ``{"*": n}``
        describes a unified buffer of ``n`` words.
    fanout:
        Number of instances of this level per parent-level instance; the
        spatial unrolling between this level and its parent is bounded by
        this.  ``1`` means no spatial boundary above this level.
    fanout_shape:
        Mesh shape ``(x, y)`` of the fanout, used for NoC energy estimates.
    read_energy / write_energy:
        Energy (pJ) per word read from / written to one instance.
    network_energy:
        Energy (pJ) per word crossing the interconnect between the parent
        level and this level's instances (tagged multicast, Eyeriss-style).
    read_bandwidth / write_bandwidth:
        Words per cycle per instance (``inf`` = never a bottleneck).
    component:
        Optional :class:`ComponentSpec` describing the physical component,
        enabling technology retargeting.  ``None`` freezes the energies.
    link:
        Kind of interconnect between the parent level and this level's
        instances: ``"noc"`` (on-chip tagged-multicast mesh, the default),
        ``"chip2chip"`` (package-level chiplet link with its own energy and
        finite bandwidth), or ``"fixed"`` (keep ``network_energy`` as
        given under every technology pack).
    link_bandwidth:
        Words per cycle crossing the link *in total* (``inf`` = never a
        bottleneck; only chip2chip links typically constrain this).
    """

    name: str
    capacity_words: Mapping[str, int] | None
    fanout: int = 1
    fanout_shape: tuple[int, int] | None = None
    read_energy: float = 0.0
    write_energy: float = 0.0
    network_energy: float = 0.0
    read_bandwidth: float = math.inf
    write_bandwidth: float = math.inf
    component: ComponentSpec | None = None
    link: str = "noc"
    link_bandwidth: float = math.inf

    def __post_init__(self) -> None:
        if self.fanout < 1:
            raise ArchitectureError(f"{self.name}: fanout must be >= 1")
        if self.link not in LINK_KINDS:
            raise ArchitectureError(
                f"{self.name}: unknown link kind '{self.link}' "
                f"(expected one of {', '.join(LINK_KINDS)})")
        if not self.link_bandwidth > 0:
            raise ArchitectureError(
                f"{self.name}: link_bandwidth must be positive")
        if self.capacity_words is not None:
            for role, words in self.capacity_words.items():
                if words < 1:
                    raise ArchitectureError(
                        f"{self.name}: capacity for {role} must be positive"
                    )
        if self.fanout_shape is not None:
            x, y = self.fanout_shape
            if x * y != self.fanout:
                raise ArchitectureError(
                    f"{self.name}: fanout_shape {self.fanout_shape} does not "
                    f"multiply to fanout {self.fanout}"
                )

    @property
    def is_unbounded(self) -> bool:
        return self.capacity_words is None

    @property
    def is_unified(self) -> bool:
        return self.capacity_words is not None and UNIFIED in self.capacity_words

    def stores(self, role: str) -> bool:
        """Whether this level buffers the given datatype role."""
        if self.capacity_words is None:
            return True
        return self.is_unified or role in self.capacity_words

    def capacity_for(self, role: str) -> int | None:
        """Capacity available to ``role`` (None = unbounded)."""
        if self.capacity_words is None:
            return None
        if self.is_unified:
            return self.capacity_words[UNIFIED]
        return self.capacity_words.get(role, 0)


class Architecture:
    """A full accelerator: memory levels (innermost first) plus compute.

    ``mac_energy`` is the energy of one multiply-accumulate; ``mac_width``
    the number of scalar MACs ganged per lane (a Simba vector MAC has
    ``mac_width == 8``).  Total peak parallelism is the product of all level
    fanouts times ``mac_width``.

    ``tech`` names the technology pack the per-level energies were resolved
    under (see :mod:`repro.energy.tech`); ``mac_word_bits``, when given,
    lets resolution re-derive ``mac_energy`` from the pack's datapath
    reference energies instead of scaling the given value.
    """

    def __init__(
        self,
        name: str,
        levels: Sequence[MemoryLevel],
        mac_energy: float = 1.0,
        mac_width: int = 1,
        *,
        tech: str = "cmos45",
        mac_word_bits: int | None = None,
    ) -> None:
        if not levels:
            raise ArchitectureError("architecture needs at least one level")
        if not levels[-1].is_unbounded:
            raise ArchitectureError("outermost level must be unbounded (DRAM)")
        for level in levels[:-1]:
            if level.is_unbounded:
                raise ArchitectureError(
                    f"only the outermost level may be unbounded, not {level.name}"
                )
        names = [level.name for level in levels]
        if len(set(names)) != len(names):
            raise ArchitectureError(f"duplicate level names: {names}")
        if levels[-1].fanout != 1:
            raise ArchitectureError("outermost level cannot have a fanout")
        self.name = name
        self.levels: tuple[MemoryLevel, ...] = tuple(levels)
        self.mac_energy = mac_energy
        self.mac_width = mac_width
        self.tech = tech
        self.mac_word_bits = mac_word_bits
        self._energy_table = None

    # ------------------------------------------------------------------
    @property
    def num_levels(self) -> int:
        return len(self.levels)

    @property
    def spatial_levels(self) -> tuple[int, ...]:
        """Indices of levels with a spatial boundary above them (fanout>1)."""
        return tuple(i for i, lvl in enumerate(self.levels) if lvl.fanout > 1)

    @property
    def total_fanout(self) -> int:
        """Peak spatial parallelism (excluding intra-lane vector width)."""
        return math.prod(level.fanout for level in self.levels)

    @property
    def peak_macs_per_cycle(self) -> int:
        return self.total_fanout * self.mac_width

    def level_index(self, name: str) -> int:
        for i, level in enumerate(self.levels):
            if level.name == name:
                return i
        raise KeyError(name)

    def instances_of(self, index: int) -> int:
        """Total number of instances of level ``index`` in the machine.

        ``fanout`` counts instances per parent, so the total multiplies the
        fanouts of this level and everything above it.
        """
        return math.prod(level.fanout for level in self.levels[index:])

    def storage_levels(self, role: str) -> tuple[int, ...]:
        """Indices of levels that buffer ``role``, innermost first.

        Every role is held at least by the unbounded outer level.
        """
        return tuple(
            i for i, level in enumerate(self.levels) if level.stores(role)
        )

    def parent_storage(self, index: int, role: str) -> int | None:
        """The next level above ``index`` that stores ``role`` (None at top)."""
        for i in range(index + 1, self.num_levels):
            if self.levels[i].stores(role):
                return i
        return None

    def with_level(self, name: str, **changes) -> "Architecture":
        """Return a copy with one level's attributes replaced."""
        levels = [
            replace(level, **changes) if level.name == name else level
            for level in self.levels
        ]
        return Architecture(self.name, levels, self.mac_energy, self.mac_width,
                            tech=self.tech, mac_word_bits=self.mac_word_bits)

    def energy_table(self):
        """The resolved energy reference table (ERT) for this architecture.

        One Accelergy-style :class:`~repro.energy.table.EnergyTable` built
        from the already-resolved per-level floats: ``<level>.read`` /
        ``<level>.write`` for every level, ``<level>.transfer`` for levels
        with a spatial boundary above them, and ``MAC.compute``.  The cost
        model gathers its per-level energy arrays from this artefact, so a
        pack that fails to define an action fails here with a contextual
        :class:`~repro.energy.table.EnergyLookupError` rather than
        producing silent zeros.  Built lazily and cached.
        """
        if self._energy_table is None:
            from ..energy.table import EnergyTable  # circular at module load

            table = EnergyTable(pack=self.tech)
            for level in self.levels:
                table.define(level.name, "read", level.read_energy)
                table.define(level.name, "write", level.write_energy)
                if level.fanout > 1:
                    table.define(level.name, "transfer", level.network_energy)
            table.define("MAC", "compute", self.mac_energy)
            self._energy_table = table
        return self._energy_table

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [f"Architecture {self.name} "
                 f"(peak {self.peak_macs_per_cycle} MACs/cycle)"]
        for i in reversed(range(self.num_levels)):
            level = self.levels[i]
            if level.capacity_words is None:
                cap = "unbounded"
            else:
                cap = ", ".join(
                    f"{role}:{words}w" for role, words in level.capacity_words.items()
                )
            fan = f" x{level.fanout}" if level.fanout > 1 else ""
            lines.append(
                f"  [{i}] {level.name}{fan}: {cap} "
                f"(rd {level.read_energy:.2f}pJ wr {level.write_energy:.2f}pJ)"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Architecture({self.name}, {self.num_levels} levels)"


def words(kib: float, word_bits: int) -> int:
    """Capacity helper: words in ``kib`` KiB at ``word_bits`` per word."""
    return int(kib * 1024 * 8 // word_bits)
