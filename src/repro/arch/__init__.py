"""Accelerator architecture descriptions and the paper's Table IV presets."""

from .presets import (
    conventional,
    diannao_like,
    simba_like,
    tiny,
    two_chiplet,
)
from .spec import (
    LINK_KINDS,
    UNIFIED,
    Architecture,
    ArchitectureError,
    ComponentSpec,
    MemoryLevel,
    words,
)

__all__ = [
    "Architecture",
    "ArchitectureError",
    "ComponentSpec",
    "MemoryLevel",
    "LINK_KINDS",
    "UNIFIED",
    "words",
    "conventional",
    "simba_like",
    "diannao_like",
    "tiny",
    "two_chiplet",
]
