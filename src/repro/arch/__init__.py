"""Accelerator architecture descriptions and the paper's Table IV presets."""

from .presets import conventional, diannao_like, simba_like, tiny
from .spec import UNIFIED, Architecture, ArchitectureError, MemoryLevel, words

__all__ = [
    "Architecture",
    "ArchitectureError",
    "MemoryLevel",
    "UNIFIED",
    "words",
    "conventional",
    "simba_like",
    "diannao_like",
    "tiny",
]
