"""Double-buffered pipeline latency model.

The simple latency estimate in :mod:`repro.model.cost` takes the maximum of
the compute-bound and per-level bandwidth-bound cycle counts — the
steady-state limit when double buffering hides every transfer perfectly
(the assumption the paper adopts from Timeloop, §V-A).

This module adds a *refined* recursive model that accounts for the pipeline
fill: a level's pass cannot start before its first tile arrives, so

``T(level) = fill(first tile) + (passes - 1) * max(T(below), refill) +
T(below_last)``

per level, composed bottom-up.  It brackets reality more tightly:

* it equals the simple model when transfers are fully hidden;
* it exceeds it by the (usually negligible) pipeline-fill term otherwise;
* it never exceeds the no-overlap upper bound (compute + all transfers
  serialised).

Tests assert those bracket properties; the scheduler can optionally rank by
the refined number.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..mapping.mapping import Mapping
from .accesses import AccessCounts, count_accesses


@dataclass
class TimingResult:
    """Latency decomposition of one mapping."""

    steady_state_cycles: float  # the simple max-of-bounds estimate
    refined_cycles: float  # with pipeline-fill terms
    serialized_cycles: float  # no-overlap upper bound
    compute_cycles: float
    per_level_transfer_cycles: dict[str, float]

    @property
    def overlap_efficiency(self) -> float:
        """1.0 = perfect double buffering, lower = fill-dominated."""
        if self.refined_cycles == 0:
            return 1.0
        return self.steady_state_cycles / self.refined_cycles


def analyze_timing(mapping: Mapping, partial_reuse: bool = True,
                   counts: AccessCounts | None = None) -> TimingResult:
    """Compute the latency bracket for ``mapping``."""
    arch = mapping.arch
    if counts is None:
        counts = count_accesses(mapping, partial_reuse=partial_reuse)

    used_lanes = mapping.used_lanes() * arch.mac_width
    compute_cycles = counts.total_ops / max(used_lanes, 1)

    transfer_cycles: dict[str, float] = {}
    steady = compute_cycles
    serialized = compute_cycles
    for i, level in enumerate(arch.levels):
        instances = math.prod(
            mapping.levels[j].spatial_size for j in range(i, arch.num_levels)
        ) or 1
        acc = counts.levels[i]
        cycles = max(acc.reads / instances / level.read_bandwidth,
                     acc.writes / instances / level.write_bandwidth)
        transfer_cycles[level.name] = cycles
        steady = max(steady, cycles)
        serialized += cycles

    # Pipeline fill: the first tile of every level must arrive before any
    # compute below it can start.  The fill of level i's first tile moves
    # footprint-at-(i-1) words through level i's read port.
    fill = 0.0
    for i in range(1, arch.num_levels):
        level = arch.levels[i]
        first_tile_words = sum(
            mapping.footprint(i - 1, t.name)
            for t in mapping.workload.tensors
            if level.stores(t.role) or i == arch.num_levels - 1
        )
        fill += first_tile_words / level.read_bandwidth

    refined = min(steady + fill, serialized)
    return TimingResult(
        steady_state_cycles=steady,
        refined_cycles=refined,
        serialized_cycles=serialized,
        compute_cycles=compute_cycles,
        per_level_transfer_cycles=transfer_cycles,
    )
