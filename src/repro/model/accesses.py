"""Analytical per-level access counting (the Timeloop-style cost model core).

Semantics
---------
The mapping encodes a single loop nest, outermost (DRAM) to innermost, with
spatial (parallel) loops interleaved at the fanout boundaries.  For every
tensor we derive, per pair of adjacent *storage* levels (bypassed levels are
skipped), the data volume moved between them:

* **Temporal fills.**  Per child instance, a tile is refetched once per
  iteration of the flattened temporal loops above the child, except that a
  trailing (innermost) run of loops over non-indexing dimensions reuses the
  resident tile (Ordering Principles 1-3).  Formally the fill multiplier is
  the product of the bounds of every temporal loop at or above the innermost
  loop over a dimension that indexes the tensor.

* **Sliding-window partial reuse.**  When the innermost *relevant* loop is
  part of a window coordinate (e.g. ``P`` of ``p + r``), consecutive fetches
  overlap; only the new slice is fetched after the first iteration of that
  loop (paper §IV, Table III "partially reused by").

* **Spatial multicast.**  At the fanout boundaries between child and parent
  storage, factors over non-indexing dimensions broadcast the same words to
  several children: the parent is read once, every child is written.

* **Spatial reduction / accumulation (outputs).**  Non-indexing spatial
  factors merge partial outputs on the way up (the parent is written once).
  When reduction loops iterate *above* the child storage level, partial sums
  are drained to the parent and read back — counted as extra parent reads
  and child writes.

The model is validated against a brute-force loop-nest interpreter in
``repro.model.reference`` (exact match for non-windowed tensors).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..mapping.mapping import Mapping
from ..sparse.saf import compute_scales, traffic_scale
from ..sparse.spec import SparsitySpec
from ..workloads.expression import IndexExpr, TensorRef
from .terms import MappingView, ModelInfo, PartialEvalCache, model_info, \
    pair_term


@dataclass
class LevelAccesses:
    """Access totals for one memory level (machine-wide, in words)."""

    reads: float = 0.0
    writes: float = 0.0

    @property
    def total(self) -> float:
        """Reads plus writes."""
        return self.reads + self.writes


@dataclass
class TransferVolume:
    """Traffic of one storage pair (child level, parent level), in words."""

    child_side: float = 0.0  # words entering/leaving every child instance
    parent_side: float = 0.0  # words read from / written to the parent
    readback_child: float = 0.0  # accumulation partials restored into child
    readback_parent: float = 0.0  # accumulation partials re-read from parent


@dataclass
class TensorTraffic:
    """Per-tensor traffic summary used by tests and the scheduler."""

    tensor: str
    # accesses[level_index] -> LevelAccesses attributable to this tensor
    accesses: dict[int, LevelAccesses] = field(default_factory=dict)
    # transfers[(child, parent)] -> per-pair volumes
    transfers: dict[tuple[int, int], TransferVolume] = field(
        default_factory=dict)

    def at(self, level: int) -> LevelAccesses:
        """This tensor's accesses at one level (created on first use)."""
        return self.accesses.setdefault(level, LevelAccesses())

    def pair(self, child: int, parent: int) -> TransferVolume:
        """Traffic of one (child, parent) storage pair."""
        return self.transfers.setdefault((child, parent), TransferVolume())


@dataclass
class AccessCounts:
    """Full access-count result for a mapping.

    ``total_ops`` is the dense iteration-space volume.  ``energy_ops``
    and ``cycle_ops`` are the effective MAC counts after sparse
    compute-action optimizations (gating elides energy only, skipping
    elides energy and cycles); without a sparsity spec both equal
    ``total_ops``.
    """

    levels: list[LevelAccesses]
    per_tensor: dict[str, TensorTraffic]
    noc_words: dict[int, float]  # boundary level index -> words crossing
    total_ops: int
    energy_ops: float = 0.0
    cycle_ops: float = 0.0

    def __post_init__(self) -> None:
        if not self.energy_ops:
            self.energy_ops = self.total_ops
        if not self.cycle_ops:
            self.cycle_ops = self.total_ops

    def level_total(self, index: int) -> float:
        """Total words moved through one level (reads + writes)."""
        return self.levels[index].total


def _flat_temporal_loops(mapping: Mapping, above_level: int
                         ) -> list[tuple[str, int]]:
    """Temporal loops above storage level ``above_level``.

    Returned outermost-first: top level's nest first, each level's loops in
    their stated order.  Bound-1 loops are dropped (they are no-ops and must
    not break reuse chains).
    """
    loops: list[tuple[str, int]] = []
    for i in reversed(range(above_level + 1, mapping.arch.num_levels)):
        loops.extend(mapping.levels[i].nontrivial_temporal())
    return loops


def _fill_multiplier(loops: list[tuple[str, int]],
                     indexing: frozenset[str]) -> tuple[float, float,
                                                        str | None, int]:
    """(fills, distinct_tiles, innermost_relevant_dim, its_bound).

    ``fills``: product of bounds at or above the innermost relevant loop.
    ``distinct_tiles``: product of bounds of relevant loops only.
    """
    fills = 1.0
    distinct = 1.0
    innermost_dim: str | None = None
    innermost_bound = 1
    # Scan from the innermost loop outwards; trailing non-indexing loops
    # reuse the tile and contribute nothing.
    relevant_seen = False
    for dim, bound in reversed(loops):
        if dim in indexing:
            distinct *= bound
            if not relevant_seen:
                relevant_seen = True
                innermost_dim = dim
                innermost_bound = bound
            fills *= bound
        elif relevant_seen:
            fills *= bound
    return fills, distinct, innermost_dim, innermost_bound


def _window_expr_for(tensor: TensorRef, dim: str) -> IndexExpr | None:
    for expr in tensor.indices:
        if expr.is_window and dim in expr.dims:
            return expr
    return None


def _partial_reuse_words(
    tensor: TensorRef,
    child_sizes: dict[str, int],
    fills: float,
    innermost_dim: str,
    innermost_bound: int,
    footprint: int,
) -> float:
    """Word volume of temporal fills with sliding-window overlap removed.

    Only the innermost relevant loop's overlap is exploited (consecutive
    fetches); overlap across outer loop restarts is conservatively ignored.
    """
    expr = _window_expr_for(tensor, innermost_dim)
    if expr is None or innermost_bound <= 1:
        return fills * footprint
    extent = expr.extent(child_sizes)
    if innermost_dim == expr.dims[0]:
        step = child_sizes.get(innermost_dim, 1) * expr.stride
    else:
        step = child_sizes.get(innermost_dim, 1)
    step = min(step, extent)
    other = footprint / extent
    sweeps = fills / innermost_bound
    words_per_sweep = other * (extent + (innermost_bound - 1) * step)
    return sweeps * words_per_sweep


def count_accesses(mapping: Mapping, partial_reuse: bool = True,
                   sparsity: SparsitySpec | None = None, *,
                   info: ModelInfo | None = None,
                   partial_cache: PartialEvalCache | None = None
                   ) -> AccessCounts:
    """Count machine-wide reads/writes per level for ``mapping``.

    ``sparsity`` optionally scales the dense counts into expected sparse
    traffic (Sparseloop's expected-value formulation, docs/SPARSE.md):
    per-tensor transfers shrink by the compressed-tile word ratio, and
    the compute-side accesses and MAC counts shrink by the effectual
    fraction under gating/skipping.  ``None`` (the default) — and any
    spec whose densities are 1.0 — leaves every count bit-identical to
    the dense model.  Spec entries naming tensors this workload does not
    have are ignored.

    ``info`` optionally supplies pre-hoisted per-(workload, arch)
    invariants; ``partial_cache`` memoises the per-(tensor, storage-pair)
    contribution terms across mappings (see :mod:`repro.model.terms`).
    Both are pure accelerators: every count is bit-identical with or
    without them.
    """
    arch = mapping.arch
    workload = mapping.workload
    if info is None or info.workload is not workload or info.arch is not arch:
        info = model_info(workload, arch)
    if partial_cache is not None:
        partial_cache.check_config(partial_reuse, sparsity)
    view = MappingView(mapping, info)

    num = info.num_levels
    levels = [LevelAccesses() for _ in range(num)]
    per_tensor = {name: TensorTraffic(name) for name in info.tensor_names}
    noc_words: dict[int, float] = {i: 0.0 for i in info.fanout_levels}

    total_ops = info.total_ops
    energy_ops: float = total_ops
    cycle_ops: float = total_ops
    op_scale = 1.0
    if sparsity is not None:
        op_scale, cycle_scale = compute_scales(sparsity, info.tensor_names)
        energy_ops = total_ops * op_scale
        cycle_ops = total_ops * cycle_scale

    for tinfo in info.tensors:
        traffic = per_tensor[tinfo.name]
        spec = sparsity.get(tinfo.name) if sparsity is not None else None
        innermost = tinfo.innermost

        # ---- compute-side accesses at the innermost storage level ----
        # Lanes below the innermost storage share a read when they differ
        # only in non-indexing dimensions (broadcast wire / adder tree).
        compute_accesses = float(total_ops) / float(view.share(tinfo))
        if sparsity is not None:
            # Elided (gated/skipped) MACs touch no operands and merge no
            # partial output: innermost accesses track effectual MACs.
            compute_accesses = compute_accesses * op_scale
        if tinfo.is_output:
            # Read-modify-write accumulation at the innermost buffer.
            traffic.at(innermost).writes += compute_accesses
            traffic.at(innermost).reads += compute_accesses
            levels[innermost].writes += compute_accesses
            levels[innermost].reads += compute_accesses
        else:
            traffic.at(innermost).reads += compute_accesses
            levels[innermost].reads += compute_accesses

        # ---- transfers between adjacent storage levels ----
        for child, parent in tinfo.pairs:
            fills, distinct, fill_words, pair_words = pair_term(
                info, tinfo, view, child, partial_reuse, spec,
                partial_cache,
            )
            between_idx, between_all = view.between(tinfo, child, parent)
            above = view.inst_above[parent]

            child_side = fill_words * between_all * above
            parent_side = fill_words * between_idx * above
            volume = traffic.pair(child, parent)
            volume.child_side += child_side
            volume.parent_side += parent_side

            if tinfo.is_output:
                # Drain partial/final results up; reduce non-indexing
                # spatial copies on the way.
                traffic.at(child).reads += child_side
                traffic.at(parent).writes += parent_side
                levels[child].reads += child_side
                levels[parent].writes += parent_side
                # Accumulation read-back: every non-first visit to a tile
                # must restore partials from the parent.
                revisit = fills - distinct
                if revisit > 0:
                    back_child = float(revisit) * pair_words \
                        * between_all * above
                    back_parent = float(revisit) * pair_words \
                        * between_idx * above
                    volume.readback_child += back_child
                    volume.readback_parent += back_parent
                    traffic.at(child).writes += back_child
                    traffic.at(parent).reads += back_parent
                    levels[child].writes += back_child
                    levels[parent].reads += back_parent
            else:
                traffic.at(child).writes += child_side
                traffic.at(parent).reads += parent_side
                levels[child].writes += child_side
                levels[parent].reads += parent_side

            # NoC traffic: unique words crossing each fanout boundary
            # between the two storage levels.
            for j in range(child, parent):
                if j in info.fanout_set:
                    noc_words[j] += parent_side

    return AccessCounts(
        levels=levels,
        per_tensor=per_tensor,
        noc_words=noc_words,
        total_ops=total_ops,
        energy_ops=energy_ops,
        cycle_ops=cycle_ops,
    )
