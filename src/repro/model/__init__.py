"""Timeloop-style analytical cost model (accesses, energy, latency, EDP)."""

from .accesses import AccessCounts, LevelAccesses, TensorTraffic, count_accesses
from .batch import HAVE_NUMPY, evaluate_batch
from .cost import INVALID_COST, CostResult, edp, evaluate, prefix_energy
from .reference import ReferenceCounts, simulate_fills
from .terms import ModelInfo, PartialEvalCache, model_info
from .timing import TimingResult, analyze_timing

__all__ = [
    "AccessCounts",
    "LevelAccesses",
    "TensorTraffic",
    "count_accesses",
    "CostResult",
    "evaluate",
    "evaluate_batch",
    "HAVE_NUMPY",
    "edp",
    "prefix_energy",
    "INVALID_COST",
    "ModelInfo",
    "PartialEvalCache",
    "model_info",
    "ReferenceCounts",
    "simulate_fills",
    "TimingResult",
    "analyze_timing",
]
