"""Timeloop-style analytical cost model (accesses, energy, latency, EDP)."""

from .accesses import AccessCounts, LevelAccesses, TensorTraffic, count_accesses
from .cost import INVALID_COST, CostResult, edp, evaluate, prefix_energy
from .reference import ReferenceCounts, simulate_fills
from .timing import TimingResult, analyze_timing

__all__ = [
    "AccessCounts",
    "LevelAccesses",
    "TensorTraffic",
    "count_accesses",
    "CostResult",
    "evaluate",
    "edp",
    "prefix_energy",
    "INVALID_COST",
    "ReferenceCounts",
    "simulate_fills",
    "TimingResult",
    "analyze_timing",
]
