"""Brute-force loop-nest interpreter used as ground truth in tests.

Executes the flattened *temporal* loop nest of a mapping step by step,
tracking which tile is resident at every storage level for every tensor and
counting actual refill events.  This pins down the semantics of the
analytical model in :mod:`repro.model.accesses`: for purely temporal
mappings the analytical fill counts must match these exactly (with
``partial_reuse=False``; the interpreter refetches whole tiles).

Only practical for small problems — tests use single-digit loop bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..mapping.mapping import Mapping


@dataclass
class ReferenceCounts:
    """Observed transfer volumes, mirroring the analytical model's output."""

    # (tensor, child_level) -> words transferred into the child level
    fill_words: dict[tuple[str, int], int]
    # (tensor, child_level) -> number of distinct tile refills
    fills: dict[tuple[str, int], int]


def simulate_fills(mapping: Mapping) -> ReferenceCounts:
    """Interpret the temporal nest and count tile refills per storage level.

    Requires a mapping with no spatial unrolling (the interpreter models a
    single instance of every level).
    """
    for level in mapping.levels:
        if level.spatial_size != 1:
            raise ValueError("reference interpreter handles temporal-only "
                             "mappings; spatial factors present")

    arch = mapping.arch
    workload = mapping.workload

    # Flatten temporal loops of levels above the innermost, outermost first.
    flat: list[tuple[str, int, int]] = []  # (dim, bound, level_index)
    for i in reversed(range(1, arch.num_levels)):
        for dim, bound in mapping.levels[i].nontrivial_temporal():
            flat.append((dim, bound, i))

    # For each tensor and each storage pair, which flat-loop positions
    # contribute to the child-tile identity: loops above the child level
    # over dimensions indexing the tensor.
    trackers: list[dict] = []
    for tensor in workload.tensors:
        storage = arch.storage_levels(tensor.role)
        for child in storage[:-1]:
            positions = [
                pos for pos, (dim, _, lvl) in enumerate(flat)
                if lvl > child and dim in tensor.indexing_dims
            ]
            footprint = tensor.footprint(mapping.cumulative_sizes(child))
            trackers.append({
                "key": (tensor.name, child),
                "positions": positions,
                "footprint": footprint,
                "last": None,
                "fills": 0,
            })

    total_steps = math.prod(bound for _, bound, _ in flat) if flat else 1
    odometer = [0] * len(flat)
    for _ in range(total_steps):
        for tracker in trackers:
            identity = tuple(odometer[p] for p in tracker["positions"])
            if identity != tracker["last"]:
                tracker["last"] = identity
                tracker["fills"] += 1
        # increment odometer (innermost position last in `flat`)
        for pos in reversed(range(len(flat))):
            odometer[pos] += 1
            if odometer[pos] < flat[pos][1]:
                break
            odometer[pos] = 0

    fill_words = {
        t["key"]: t["fills"] * t["footprint"] for t in trackers
    }
    fills = {t["key"]: t["fills"] for t in trackers}
    return ReferenceCounts(fill_words=fill_words, fills=fills)
