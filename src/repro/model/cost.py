"""Energy / latency / EDP evaluation of mappings.

Follows the paper's evaluation platform (§V-A): performance of a spatial
accelerator is estimated as the sum of operation/access counts for each
hardware component multiplied by its per-operation/access energy, with
double buffering assumed to hide transfer latency (latency is the maximum of
the compute-bound and per-level bandwidth-bound cycle counts).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..arch.spec import Architecture
from ..mapping.mapping import Mapping
from ..sparse.spec import SparsitySpec
from .accesses import AccessCounts, count_accesses
from .terms import ModelInfo, PartialEvalCache, model_info


@dataclass
class CostResult:
    """Evaluation of one mapping.

    ``chip2chip_energy`` is the portion of ``noc_energy`` spent on
    package-level chiplet links (zero for single-chip hierarchies).
    """

    energy_pj: float
    cycles: float
    valid: bool
    violations: list[str] = field(default_factory=list)
    level_energy: dict[str, float] = field(default_factory=dict)
    compute_energy: float = 0.0
    noc_energy: float = 0.0
    chip2chip_energy: float = 0.0
    utilization: float = 0.0
    accesses: AccessCounts | None = None

    @property
    def edp(self) -> float:
        """Energy-delay product (pJ x cycles)."""
        return self.energy_pj * self.cycles

    def summary(self) -> str:
        status = "valid" if self.valid else "INVALID"
        return (
            f"energy {self.energy_pj:.3e} pJ, latency {self.cycles:.3e} cy, "
            f"EDP {self.edp:.3e}, util {self.utilization:.1%} [{status}]"
        )


INVALID_COST = float("inf")


def evaluate(mapping: Mapping, partial_reuse: bool = True,
             keep_accesses: bool = False,
             sparsity: SparsitySpec | None = None, *,
             info: ModelInfo | None = None,
             partial_cache: PartialEvalCache | None = None) -> CostResult:
    """Evaluate energy, latency and EDP for ``mapping``.

    Invalid mappings (capacity or fanout violations) still receive an
    energy/latency estimate — the search algorithms need a number to rank
    by — but are flagged ``valid=False`` and must never be returned as
    solutions.

    ``sparsity`` optionally applies the expected-value sparse traffic
    model of :mod:`repro.sparse` (docs/SPARSE.md).  ``None`` — and any
    degenerate all-dense spec — yields output bit-identical to the dense
    model; sparsity never changes which mappings are *valid*, since
    buffer occupancy is provisioned for the dense tile (worst case).

    ``info`` and ``partial_cache`` (see :mod:`repro.model.terms`) are
    pure accelerators — every field of the result is bit-identical with
    or without them; docs/PERF.md describes the pipeline.
    """
    arch = mapping.arch
    if info is None:
        info = model_info(mapping.workload, arch)
    violations = mapping.validate()
    counts = count_accesses(mapping, partial_reuse=partial_reuse,
                            sparsity=sparsity, info=info,
                            partial_cache=partial_cache)

    # Per-access energies come from the resolved technology tables hoisted
    # on ModelInfo (identical floats to the levels' attributes).
    read_energies = info.read_energies
    write_energies = info.write_energies
    level_energy: dict[str, float] = {}
    total = 0.0
    for i, arch_level in enumerate(arch.levels):
        acc = counts.levels[i]
        energy = (acc.reads * read_energies[i]
                  + acc.writes * write_energies[i])
        level_energy[arch_level.name] = energy
        total += energy

    noc_energy = 0.0
    chip2chip_energy = 0.0
    network_energies = info.network_energies
    for boundary, words in counts.noc_words.items():
        energy = words * network_energies[boundary]
        noc_energy += energy
        if boundary in info.chip2chip_levels:
            chip2chip_energy += energy
    total += noc_energy

    compute_energy = counts.energy_ops * info.mac_energy
    total += compute_energy

    # Latency: compute-bound vs per-level bandwidth-bound.  Skipping
    # (but not gating) shrinks the effective MAC issue count.
    used_lanes = mapping.used_lanes() * arch.mac_width
    compute_cycles = float(counts.cycle_ops) / float(max(used_lanes, 1))
    cycles = compute_cycles
    for i, arch_level in enumerate(arch.levels):
        instances = math.prod(
            mapping.levels[j].spatial_size for j in range(i, arch.num_levels)
        ) or 1
        acc = counts.levels[i]
        read_cycles = acc.reads / instances / arch_level.read_bandwidth
        write_cycles = acc.writes / instances / arch_level.write_bandwidth
        cycles = max(cycles, read_cycles, write_cycles)
    # Finite-bandwidth interconnect links (chip2chip): all words crossing
    # the boundary share the link.
    for boundary, link_bw in info.link_bandwidths:
        cycles = max(cycles, counts.noc_words[boundary] / link_bw)

    return CostResult(
        energy_pj=total,
        cycles=cycles,
        valid=not violations,
        violations=violations,
        level_energy=level_energy,
        compute_energy=compute_energy,
        noc_energy=noc_energy,
        chip2chip_energy=chip2chip_energy,
        utilization=mapping.spatial_utilization(),
        accesses=counts if keep_accesses else None,
    )


def edp(mapping: Mapping, partial_reuse: bool = True,
        sparsity: SparsitySpec | None = None) -> float:
    """EDP of a mapping; ``inf`` when invalid."""
    result = evaluate(mapping, partial_reuse=partial_reuse,
                      sparsity=sparsity)
    if not result.valid:
        return INVALID_COST
    return result.edp


def prefix_energy(result: CostResult, arch: Architecture,
                  upto_level: int) -> float:
    """Energy attributable to levels ``<= upto_level`` plus compute.

    Used by the bottom-up scheduler's alpha-beta pruning: once the factors
    at levels ``<= upto_level`` are fixed, this portion of the energy is a
    lower bound on any completion of the partial schedule (upper levels can
    only add energy).
    """
    total = result.compute_energy
    for i in range(min(upto_level + 1, arch.num_levels)):
        total += result.level_energy.get(arch.levels[i].name, 0.0)
    return total
