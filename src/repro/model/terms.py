"""Factored cost-model terms and the bounded partial-evaluation cache.

The access model of :mod:`repro.model.accesses` decomposes, per tensor and
per adjacent storage pair ``(child, parent)``, into one *contribution term*

    ``(fills, distinct, fill_words, pair_words)``

that depends only on a **level-local fingerprint**: the child tile's span
over the tensor's indexing dimensions, the fill multiplier, the innermost
temporal loop that indexes the tensor, and the distinct-tile count.  The
fill multiplier never needs the whole flattened nest: with ``t_all`` the
product of every temporal bound above the child and ``trailing`` the
product of the non-indexing run below the innermost relevant loop,

    ``fills = t_all // trailing``            (exact integer division)
    ``distinct = t_rel``                     (product of relevant bounds)

both following directly from the Ordering Principles (paper §IV).  The
:class:`PartialEvalCache` memoises terms on that fingerprint, so when a
level sweep perturbs only level ``L`` every pair whose child sits below
``L`` replays its term verbatim instead of recomputing footprints, window
overlaps and sparse traffic scales.

Everything here is shared by the scalar path (:func:`~repro.model.accesses.
count_accesses`) and the vectorised path (:mod:`repro.model.batch`): both
call the same term function, which is what makes them bit-identical by
construction.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING

from ..sparse.saf import traffic_scale

if TYPE_CHECKING:
    from ..arch.spec import Architecture
    from ..mapping.mapping import Mapping
    from ..sparse.spec import SparsitySpec, TensorSparsity
    from ..workloads.expression import IndexExpr, TensorRef, Workload


# ---------------------------------------------------------------------------
# workload/architecture invariants, hoisted once per (workload, arch) pair
# ---------------------------------------------------------------------------

# Interned structural identities: workloads with identical dimension order
# and tensor access structure share term-cache entries (terms never read
# the architecture, only the child level index and the tile spans).
_TOKEN_IDS: dict[tuple, int] = {}


def _structure_token(workload: "Workload") -> int:
    key = (
        tuple(workload.dim_names),
        tuple(
            (t.name, t.is_output,
             tuple((e.dims, e.stride) for e in t.indices))
            for t in workload.tensors
        ),
    )
    return _TOKEN_IDS.setdefault(key, len(_TOKEN_IDS))


class TensorModelInfo:
    """Per-tensor invariants the model reads on every evaluation."""

    __slots__ = ("index", "tensor", "name", "role", "is_output", "indexing",
                 "rel_dims", "rel_idx", "rel_total", "storage", "pairs",
                 "innermost", "windows")

    def __init__(self, index: int, tensor: "TensorRef",
                 storage: tuple[int, ...]) -> None:
        self.index = index
        self.tensor = tensor
        self.name = tensor.name
        self.role = tensor.role
        self.is_output = tensor.is_output
        self.indexing: frozenset[str] = tensor.indexing_dims
        self.storage = storage
        self.pairs = tuple(zip(storage, storage[1:]))
        self.innermost = storage[0]
        # Indexing dimensions in workload order: the tile spans over these
        # dimensions are the only sizes the tensor's term reads.
        self.rel_dims: tuple[str, ...] = ()
        # Positions of rel_dims in the workload dimension order and the
        # product of the problem sizes over them (set by ModelInfo).
        self.rel_idx: tuple[int, ...] = ()
        self.rel_total: int = 1
        # dim -> the first sliding-window expression containing it
        # (mirrors accesses._window_expr_for's first-match semantics).
        windows: dict[str, "IndexExpr"] = {}
        for expr in tensor.indices:
            if expr.is_window:
                for d in expr.dims:
                    windows.setdefault(d, expr)
        self.windows = windows


class ModelInfo:
    """Hoisted per-(workload, architecture) invariants of the cost model.

    Built once (and memoised by :func:`model_info`) so the thousands of
    candidate evaluations of one search never re-derive storage levels,
    indexing sets or footpr/window structure.
    """

    def __init__(self, workload: "Workload", arch: "Architecture") -> None:
        self.workload = workload
        self.arch = arch
        self.num_levels = arch.num_levels
        self.total_ops = workload.total_operations
        self.dims = workload.dims
        self.tensor_names = [t.name for t in workload.tensors]
        self.fanout_levels = tuple(
            i for i, lvl in enumerate(arch.levels) if lvl.fanout > 1
        )
        self.fanout_set = frozenset(self.fanout_levels)
        # Resolved per-level energies, gathered once from the architecture's
        # energy reference table (the Accelergy-style ERT artefact).  The
        # hot paths multiply these plain floats; a technology pack that
        # failed to define an action fails here with full context instead
        # of mid-evaluation.
        table = arch.energy_table()
        self.energy_table = table
        self.read_energies = tuple(
            table.energy(lvl.name, "read", level=lvl.name)
            for lvl in arch.levels)
        self.write_energies = tuple(
            table.energy(lvl.name, "write", level=lvl.name)
            for lvl in arch.levels)
        self.network_energies = tuple(
            table.energy(lvl.name, "transfer", level=lvl.name)
            if lvl.fanout > 1 else 0.0
            for lvl in arch.levels)
        self.mac_energy = table.energy("MAC", "compute")
        # chip2chip boundaries: fanout levels whose link is a package-level
        # chiplet link.  Their traffic is reported separately and their
        # finite link bandwidth contributes a latency term.
        self.chip2chip_levels = frozenset(
            i for i in self.fanout_levels if arch.levels[i].link == "chip2chip")
        self.link_bandwidths = tuple(
            (i, arch.levels[i].link_bandwidth)
            for i in self.fanout_levels
            if arch.levels[i].link_bandwidth != float("inf"))
        self.dim_names = tuple(workload.dim_names)
        self.dim_index = {d: i for i, d in enumerate(self.dim_names)}
        self.token = _structure_token(workload)
        self.tensors: list[TensorModelInfo] = []
        dim_names = workload.dim_names
        for index, tensor in enumerate(workload.tensors):
            storage = arch.storage_levels(tensor.role)
            if not storage:
                raise ValueError(
                    f"tensor {tensor.name} (role {tensor.role}) "
                    f"is stored nowhere"
                )
            tinfo = TensorModelInfo(index, tensor, tuple(storage))
            tinfo.rel_dims = tuple(d for d in dim_names if d in tinfo.indexing)
            tinfo.rel_idx = tuple(self.dim_index[d] for d in tinfo.rel_dims)
            rel_total = 1
            for d in tinfo.rel_dims:
                rel_total *= workload.dims[d]
            tinfo.rel_total = rel_total
            self.tensors.append(tinfo)
        # Footprint memo shared by terms and the fast validity check:
        # (tensor index, tile spans over rel_dims) -> words.
        self._footprints: dict[tuple, int] = {}
        # Per-level capacity-check metadata for mapping_violations:
        # (arch level, "skip"|"unified"|"per-role", payload, union_dims,
        # union_idx).
        # Unified payload: (cap, stored tinfos); per-role payload:
        # ((role, cap, tinfos), ...) with roles in first-tensor-encounter
        # order, which mirrors the usage-dict insertion order of
        # Mapping.validate.  ``union_dims`` (workload order) spans every
        # stored tensor's indexing set: the tile sizes over it determine
        # the level's capacity verdict, so it keys the cohort memo.
        self.level_checks = []
        for arch_level in arch.levels:
            if arch_level.is_unbounded:
                self.level_checks.append((arch_level, "skip", None, (), ()))
                continue
            by_role: dict[str, list[TensorModelInfo]] = {}
            for tinfo in self.tensors:
                if arch_level.stores(tinfo.role):
                    by_role.setdefault(tinfo.role, []).append(tinfo)
            stored = tuple(t for group in by_role.values() for t in group)
            union = frozenset().union(*(t.indexing for t in stored)) \
                if stored else frozenset()
            union_dims = tuple(d for d in dim_names if d in union)
            union_idx = tuple(self.dim_index[d] for d in union_dims)
            if arch_level.is_unified:
                self.level_checks.append(
                    (arch_level, "unified",
                     (arch_level.capacity_for("*"), stored),
                     union_dims, union_idx))
            else:
                self.level_checks.append(
                    (arch_level, "per-role",
                     tuple((role, arch_level.capacity_for(role),
                            tuple(group))
                           for role, group in by_role.items()),
                     union_dims, union_idx))

    def footprint(self, tinfo: TensorModelInfo,
                  sizes: dict[str, int], sizes_key: tuple) -> int:
        key = (tinfo.index, sizes_key)
        cached = self._footprints.get(key)
        if cached is None:
            if len(self._footprints) > 500_000:
                self._footprints.clear()
            cached = tinfo.tensor.footprint(sizes)
            self._footprints[key] = cached
        return cached


_INFO_CACHE: "OrderedDict[tuple[int, int], ModelInfo]" = OrderedDict()
_INFO_MAX = 64


def model_info(workload: "Workload", arch: "Architecture") -> ModelInfo:
    """Memoised :class:`ModelInfo` for one (workload, arch) object pair."""
    key = (id(workload), id(arch))
    entry = _INFO_CACHE.get(key)
    if (entry is not None and entry.workload is workload
            and entry.arch is arch):
        _INFO_CACHE.move_to_end(key)
        return entry
    entry = ModelInfo(workload, arch)
    _INFO_CACHE[key] = entry
    _INFO_CACHE.move_to_end(key)
    while len(_INFO_CACHE) > _INFO_MAX:
        _INFO_CACHE.popitem(last=False)
    return entry


# ---------------------------------------------------------------------------
# per-mapping geometry
# ---------------------------------------------------------------------------

class MappingView:
    """Integer geometry of one mapping, laid out for term extraction.

    Everything is exact integer arithmetic over the per-level tile bounds:
    spatial suffix products (machine instances, multicast boundaries),
    temporal suffix products (the ``t_all`` of the fill identity) and the
    per-dimension spatial products the relevant-loop quotients divide by.
    """

    __slots__ = ("mapping", "info", "nests", "sp_all", "sp_counts",
                 "inst_above", "t_from", "sp_all_below",
                 "_sp_idx", "_suffix_info")

    def __init__(self, mapping: "Mapping", info: ModelInfo) -> None:
        self.mapping = mapping
        self.info = info
        num = info.num_levels
        levels = mapping.levels
        self.nests = [lvl._nontrivial_temporal for lvl in levels]
        sp_all = [lvl._spatial_size for lvl in levels]
        self.sp_all = sp_all
        self.sp_counts = [len(lvl._nontrivial_spatial) for lvl in levels]
        # sp_all_below[l]: overall spatial product of levels < l.
        below = [1] * (num + 1)
        acc = 1
        for l in range(num):
            acc *= sp_all[l]
            below[l + 1] = acc
        self.sp_all_below = below
        # inst_above[l]: machine-wide instances of level l (1 past the
        # top); the spatial prefix products divide the total exactly.
        self.inst_above = [acc // below[l] for l in range(num + 1)]
        # t_from[l]: product of every temporal bound at levels >= l.
        t_from = [1] * (num + 1)
        acc = 1
        for l in range(num - 1, -1, -1):
            acc *= levels[l]._temporal_product
            t_from[l] = acc
        self.t_from = t_from
        # Lazy per-tensor indexing-spatial prefix products and per-child
        # shared suffix walks.
        self._sp_idx: dict[int, list[int]] = {}
        self._suffix_info: dict[int, list[tuple]] = {}

    def sp_idx_below(self, tinfo: TensorModelInfo) -> list[int]:
        """Prefix products of the tensor-indexing spatial factors:
        ``sp_idx_below(t)[l]`` multiplies the indexing-dimension spatial
        factors of every level ``< l`` (so ratios give range products)."""
        cached = self._sp_idx.get(tinfo.index)
        if cached is None:
            indexing = tinfo.indexing
            levels = self.mapping.levels
            num = self.info.num_levels
            cached = [1] * (num + 1)
            for j in range(num):
                prod = 1
                for d, f in levels[j].spatial:
                    if d in indexing:
                        prod *= f
                cached[j + 1] = cached[j] * prod
            self._sp_idx[tinfo.index] = cached
        return cached

    def share(self, tinfo: TensorModelInfo) -> int:
        """Lanes below the innermost storage sharing one operand read."""
        inner = tinfo.innermost
        # Indexing factors divide the overall product level by level, so
        # the prefix-product ratio equals the per-level quotient product.
        return (self.sp_all_below[inner]
                // self.sp_idx_below(tinfo)[inner])

    def between(self, tinfo: TensorModelInfo, child: int, parent: int
                ) -> tuple[int, int]:
        """(indexing, overall) spatial products across [child, parent)."""
        idx = self.sp_idx_below(tinfo)
        return (idx[parent] // idx[child],
                self.sp_all_below[parent] // self.sp_all_below[child])

    def suffix_info(self, child: int) -> list[tuple]:
        """Per-tensor trailing temporal run above ``child``, in one walk.

        Entry ``i`` (for ``info.tensors[i]``) is ``(sfx, trailing,
        inner_dim, inner_bound)``: the innermost-first suffix up to and
        including the innermost loop over an indexing dimension of the
        tensor, the bound product of the run below that loop, and that
        loop itself.  ``(None, 1, None, 1)`` when no relevant loop exists
        above (the tile is fetched once).  All tensors share one walk.
        """
        cached = self._suffix_info.get(child)
        if cached is not None:
            return cached
        tensors = self.info.tensors
        pending = {t.index: t.indexing for t in tensors}
        out: list[tuple] = [(None, 1, None, 1)] * len(tensors)
        walk: list[tuple[str, int]] = []
        trailing = 1
        for l in range(child + 1, self.info.num_levels):
            if not pending:
                break
            for d, b in reversed(self.nests[l]):
                walk.append((d, b))
                found = [i for i, idx in pending.items() if d in idx]
                if found:
                    sfx = tuple(walk)
                    for i in found:
                        out[i] = (sfx, trailing, d, b)
                        del pending[i]
                    if not pending:
                        break
                trailing *= b
        self._suffix_info[child] = out
        return out

    def suffix(self, indexing: frozenset[str], child: int
               ) -> tuple[tuple[str, int], ...] | None:
        """Trailing temporal run above ``child``, innermost-first, up to
        and including the innermost loop over an indexing dimension.

        ``None`` when no such loop exists (the tile is fetched once)."""
        out: list[tuple[str, int]] = []
        for l in range(child + 1, self.info.num_levels):
            for d, b in reversed(self.nests[l]):
                out.append((d, b))
                if d in indexing:
                    return tuple(out)
        return None


# ---------------------------------------------------------------------------
# the memoised term
# ---------------------------------------------------------------------------

class PartialEvalCache:
    """Bounded LRU memo of per-(tensor, child-level) contribution terms.

    Bound at construction to one ``(partial_reuse, sparsity)`` evaluation
    configuration — both change term *values*, so sharing one cache across
    configurations would be unsound; :meth:`check_config` guards misuse.
    Keys embed the workload's interned structural token, so one cache can
    serve every layer of a network safely.  ``max_entries=None`` or ``0``
    disables eviction (matching the CLI's documented
    ``--cache-size 0 = unbounded``).
    """

    def __init__(self, max_entries: int | None = 200_000,
                 partial_reuse: bool = True,
                 sparsity: "SparsitySpec | None" = None) -> None:
        if max_entries is not None and max_entries < 0:
            raise ValueError(
                "max_entries must be >= 0 or None (0 = unbounded)")
        self.max_entries = max_entries or None
        self.partial_reuse = bool(partial_reuse)
        self.sparsity = sparsity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[tuple, tuple]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def check_config(self, partial_reuse: bool,
                     sparsity: "SparsitySpec | None") -> None:
        if (bool(partial_reuse) != self.partial_reuse
                or sparsity != self.sparsity):
            raise ValueError(
                "PartialEvalCache is bound to a different "
                "(partial_reuse, sparsity) configuration"
            )

    def get(self, key: tuple) -> tuple | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: tuple, value: tuple) -> None:
        if key in self._entries:
            # Refresh recency; replacing never evicts (size is unchanged).
            self._entries.move_to_end(key)
            self._entries[key] = value
            return
        self._entries[key] = value
        if self.max_entries is not None:
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop all entries (counters are preserved)."""
        self._entries.clear()


def _window_fill_words(tinfo: TensorModelInfo, sizes: dict[str, int],
                       fills: int, inner_dim: str, inner_bound: int,
                       footprint: int) -> float:
    """Fill volume with sliding-window overlap removed (accesses §IV)."""
    expr = tinfo.windows.get(inner_dim)
    if expr is None or inner_bound <= 1:
        return float(fills) * footprint
    extent = expr.extent(sizes)
    if inner_dim == expr.dims[0]:
        step = sizes.get(inner_dim, 1) * expr.stride
    else:
        step = sizes.get(inner_dim, 1)
    step = min(step, extent)
    other = footprint / extent
    sweeps = fills / inner_bound
    return sweeps * (other * (extent + (inner_bound - 1) * step))


def pair_term(
    info: ModelInfo,
    tinfo: TensorModelInfo,
    view: MappingView,
    child: int,
    partial_reuse: bool,
    spec: "TensorSparsity | None",
    cache: PartialEvalCache | None = None,
) -> tuple[int, int, float, float]:
    """Contribution term of one (tensor, child storage level).

    Returns ``(fills, distinct, fill_words, pair_words)``:

    * ``fills`` — temporal tile refetches per child instance (exact int);
    * ``distinct`` — distinct tiles visited (exact int; ``fills -
      distinct`` is the accumulation-readback revisit count);
    * ``fill_words`` — words per fill sequence, window overlap removed
      and sparse traffic scaling applied;
    * ``pair_words`` — stored words of one child tile (sparse-scaled).
    """
    sizes = view.mapping.cumulative_sizes(child)
    rel = tinfo.rel_dims
    sizes_key = tuple(sizes[d] for d in rel)
    # Relevant temporal product above the child, straight from the factor
    # identity: size = tile span x spatial>=child x temporal>child, so
    # over the indexing dims t_rel = rel_total / (span x spatial>=child),
    # with spatial>=child the exact prefix-product ratio.
    idx = view.sp_idx_below(tinfo)
    span_prod = 1
    for s in sizes_key:
        span_prod *= s
    t_rel = tinfo.rel_total // (
        span_prod * (idx[info.num_levels] // idx[child]))
    if t_rel == 1:
        # No relevant loop above: the tile is resident for the whole run.
        fills = 1
        inner_dim = None
        inner_bound = 1
    else:
        _, trailing, inner_dim, inner_bound = \
            view.suffix_info(child)[tinfo.index]
        fills = view.t_from[child + 1] // trailing
    if cache is not None:
        key = (info.token, tinfo.index, child, sizes_key, fills,
               inner_dim, inner_bound, t_rel)
        term = cache.get(key)
        if term is not None:
            return term
    term = _compute_term(info, tinfo, sizes, sizes_key, fills, inner_dim,
                         inner_bound, t_rel, partial_reuse, spec)
    if cache is not None:
        cache.put(key, term)
    return term


def _compute_term(info, tinfo, sizes, sizes_key, fills, inner_dim,
                  inner_bound, t_rel, partial_reuse, spec):
    footprint = info.footprint(tinfo, sizes, sizes_key)
    if partial_reuse and not tinfo.is_output and inner_dim is not None:
        fill_words = _window_fill_words(tinfo, sizes, fills, inner_dim,
                                        inner_bound, footprint)
    else:
        fill_words = float(fills) * footprint
    pair_words = float(footprint)
    if spec is not None:
        pair_scale = traffic_scale(spec, footprint)
        fill_words = fill_words * pair_scale
        pair_words = footprint * pair_scale
    return fills, t_rel, fill_words, pair_words


# ---------------------------------------------------------------------------
# fast validity check (mirrors Mapping.validate via the footprint memo)
# ---------------------------------------------------------------------------

def mapping_violations(info: ModelInfo, view: MappingView,
                       mapping: "Mapping") -> list[str]:
    """Violations of ``mapping``, identical to ``Mapping.validate()``.

    Reimplemented on top of the hoisted :class:`ModelInfo` and the shared
    footprint memo so cohort evaluation does not re-derive storage sets
    and occupancies per candidate; the message strings and their order
    mirror :meth:`repro.mapping.mapping.Mapping.validate` exactly (pinned
    by ``tests/test_model_batch.py``).
    """
    problems: list[str] = []
    for i, (arch_level, kind, payload, _union, _uidx) in \
            enumerate(info.level_checks):
        problems.extend(_level_problems(
            info, arch_level, kind, payload,
            view.sp_all[i], view.sp_counts[i],
            None if kind == "skip" else mapping.cumulative_sizes(i),
        ))
    return problems


def _level_problems(info, arch_level, kind, payload, sp_size, sp_count,
                    sizes):
    """One level's violation strings (scalar order and wording)."""
    problems: list[str] = []
    if sp_size > arch_level.fanout:
        problems.append(
            f"level {arch_level.name}: spatial unrolling "
            f"{sp_size} exceeds fanout {arch_level.fanout}"
        )
    if sp_count > 2:
        problems.append(
            f"level {arch_level.name}: {sp_count} dimensions "
            f"unrolled across a 2D fanout"
        )
    if kind == "skip":
        return problems
    footprint = info.footprint
    if kind == "unified":
        cap, stored = payload
        total = 0
        for tinfo in stored:
            sizes_key = tuple(sizes[d] for d in tinfo.rel_dims)
            total += footprint(tinfo, sizes, sizes_key)
        if cap is not None and total > cap:
            problems.append(
                f"level {arch_level.name}: tile of {total} words "
                f"exceeds unified capacity {cap}"
            )
    else:
        for role, cap, group in payload:
            used = 0
            for tinfo in group:
                sizes_key = tuple(sizes[d] for d in tinfo.rel_dims)
                used += footprint(tinfo, sizes, sizes_key)
            if cap is not None and used > cap:
                problems.append(
                    f"level {arch_level.name}: {role} tile of {used} "
                    f"words exceeds capacity {cap}"
                )
    return problems
