"""Vectorised cohort evaluation of mappings (``evaluate_batch``).

A Sunstone level sweep evaluates dozens of sibling candidates that share
one workload and architecture.  This module lays such a cohort out as
float64 numpy arrays — one row per candidate, one column per memory
level — and performs the energy/cycle rollups of
:func:`repro.model.cost.evaluate` with elementwise array ops.

Bit-identity contract
---------------------
Every field of every returned :class:`~repro.model.cost.CostResult` is
bit-identical to the scalar path:

* the per-(tensor, storage-pair) *terms* (fills, window-overlap fill
  words, sparse traffic scaling) come from the very same
  :func:`repro.model.terms.pair_term` the scalar path uses — exact
  integer arithmetic plus Python-float conversions at fixed points;
* every floating-point operation downstream of the terms is elementwise
  (``+``, ``*``, ``/``, ``maximum``) in exactly the scalar accumulation
  order, and IEEE-754 elementwise float64 ops round identically to the
  equivalent Python-float ops — no ``np.sum`` (pairwise summation) or
  other reassociation anywhere;
* numpy absent, or the cohort too small to be worth staging, falls back
  to calling the scalar :func:`~repro.model.cost.evaluate` per mapping.

``tests/test_model_batch.py`` pins the contract with seeded hypothesis
cases across window/halo workloads, bypass configs and sparsity specs.
"""

from __future__ import annotations

from ..mapping.mapping import Mapping
from ..sparse.spec import SparsitySpec
from .cost import CostResult, evaluate
from .terms import (MappingView, ModelInfo, PartialEvalCache,
                    _compute_term, _level_problems, model_info)

try:  # numpy is an optional extra; the scalar fallback is bit-identical
    import numpy as _np
except Exception:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

HAVE_NUMPY = _np is not None

# Below this cohort size the array staging costs more than it saves.
MIN_BATCH = 4


def evaluate_batch(
    mappings: list[Mapping],
    partial_reuse: bool = True,
    sparsity: SparsitySpec | None = None,
    partial_cache: PartialEvalCache | None = None,
) -> list[CostResult]:
    """Evaluate a cohort of mappings, vectorising where profitable.

    Mappings may mix workloads/architectures; candidates are grouped by
    (workload, architecture) object pair and each group large enough is
    evaluated with array rollups.  Results are returned in input order
    and are bit-identical to ``[evaluate(m, ...) for m in mappings]``.
    """
    if partial_cache is not None:
        partial_cache.check_config(partial_reuse, sparsity)
    if _np is None or len(mappings) < MIN_BATCH:
        return [
            evaluate(m, partial_reuse=partial_reuse, sparsity=sparsity,
                     partial_cache=partial_cache)
            for m in mappings
        ]
    results: list[CostResult | None] = [None] * len(mappings)
    groups: dict[tuple[int, int], list[int]] = {}
    for k, m in enumerate(mappings):
        groups.setdefault((id(m.workload), id(m.arch)), []).append(k)
    for indices in groups.values():
        first = mappings[indices[0]]
        if len(indices) < MIN_BATCH:
            for k in indices:
                results[k] = evaluate(
                    mappings[k], partial_reuse=partial_reuse,
                    sparsity=sparsity, partial_cache=partial_cache,
                )
            continue
        info = model_info(first.workload, first.arch)
        group = [mappings[k] for k in indices]
        for k, res in zip(indices,
                          _evaluate_group(group, info, partial_reuse,
                                          sparsity, partial_cache)):
            results[k] = res
    return results  # type: ignore[return-value]


class _CohortGeometry:
    """Exact int64 staging of one cohort's loop-bound geometry.

    The per-level temporal/spatial factors of every candidate are laid
    out as ``(n, levels, dims)`` int64 arrays whose cumulative products
    along the level axis reproduce ``Mapping.cumulative_sizes`` — the
    same integers, so every fingerprint built from them matches the
    scalar path's keys exactly.  Spans and suffix runs are staged
    lazily per requested level.
    """

    __slots__ = ("views", "info", "n", "cum_t", "cum_s", "t_from",
                 "_spans", "_runs", "_sp_cols", "_t_mat", "_order_ids",
                 "_order_table")

    def __init__(self, views: list[MappingView],
                 mappings: list[Mapping], info: ModelInfo) -> None:
        np = _np
        self.views = views
        self.info = info
        n = len(mappings)
        self.n = n
        num = info.num_levels
        nd = len(info.dim_names)
        pos = info.dim_index
        one_row = [1] * nd
        flat_t: list[int] = []
        flat_s: list[int] = []
        for m in mappings:
            for lvl in m.levels:
                row = one_row.copy()
                for d, f in lvl._nontrivial_temporal:
                    row[pos[d]] = f
                flat_t.extend(row)
                row = one_row.copy()
                for d, f in lvl._nontrivial_spatial:
                    row[pos[d]] = f
                flat_s.extend(row)
        shape = (n, num, nd)
        self.cum_t = np.cumprod(
            np.array(flat_t, dtype=np.int64).reshape(shape), axis=1)
        self.cum_s = np.cumprod(
            np.array(flat_s, dtype=np.int64).reshape(shape), axis=1)
        self.t_from = np.array([v.t_from for v in views], dtype=np.int64)
        self._spans: dict[int, object] = {}
        self._runs: dict[int, object] = {}
        self._sp_cols = None
        self._t_mat = None
        self._order_ids = None
        self._order_table = None

    @classmethod
    def from_arrays(cls, info: ModelInfo, t_mat, s_mat, order_ids,
                    order_table) -> "_CohortGeometry":
        """Geometry straight from ``(n, levels, dims)`` factor matrices.

        ``t_mat``/``s_mat`` columns follow ``info.dim_names``;
        ``order_table[order_ids[k]]`` gives candidate ``k``'s per-level
        loop-order dim sequences (trivial factors included — they mask
        out exactly like the nontrivial-only nests of the views path).
        No ``Mapping`` objects exist anywhere on this path.
        """
        np = _np
        geo = cls.__new__(cls)
        geo.views = None
        geo.info = info
        n = int(t_mat.shape[0])
        geo.n = n
        num = info.num_levels
        geo.cum_t = np.cumprod(t_mat, axis=1)
        geo.cum_s = np.cumprod(s_mat, axis=1)
        # t_from[l] = product of every temporal bound at levels >= l;
        # the per-level product over the dim axis equals the nest's
        # _temporal_product exactly (absent dims contribute 1).
        tp = np.prod(t_mat, axis=2, dtype=np.int64)
        t_from = np.ones((n, num + 1), dtype=np.int64)
        acc = np.ones(n, dtype=np.int64)
        for level in range(num - 1, -1, -1):
            acc = acc * tp[:, level]
            t_from[:, level] = acc
        geo.t_from = t_from
        geo._t_mat = t_mat
        geo._order_ids = order_ids
        geo._order_table = order_table
        geo._spans = {}
        geo._runs = {}
        geo._sp_cols = (
            np.prod(s_mat, axis=2, dtype=np.int64),
            (s_mat > 1).sum(axis=2).astype(np.int64),
        )
        return geo

    def sp_cols(self):
        """(n, levels) spatial-size and nontrivial-unroll-count arrays
        (the first two fingerprint columns of the violation checks)."""
        out = self._sp_cols
        if out is None:
            out = (_np.array([v.sp_all for v in self.views],
                             dtype=_np.int64),
                   _np.array([v.sp_counts for v in self.views],
                             dtype=_np.int64))
            self._sp_cols = out
        return out

    def spans(self, level: int):
        """Tile spans ``(n, dims)`` of one level-``level`` instance:
        exactly ``cumulative_sizes(level)`` laid out per candidate."""
        out = self._spans.get(level)
        if out is None:
            out = self.cum_t[:, level]
            if level > 0:
                out = out * self.cum_s[:, level - 1]
            self._spans[level] = out
        return out

    def runs(self, child: int):
        """``(n, tensors, 3)`` int64: per tensor the trailing temporal
        run above ``child`` as (trailing product, innermost relevant
        dim index or -1, its bound), from the shared suffix walks."""
        out = self._runs.get(child)
        if out is None:
            if self.views is not None:
                pos = self.info.dim_index
                out = _np.array(
                    [[(r[1], pos.get(r[2], -1), r[3])
                      for r in v.suffix_info(child)] for v in self.views],
                    dtype=_np.int64)
            else:
                out = self._runs_from_arrays(child)
            self._runs[child] = out
        return out

    def _runs_from_arrays(self, child: int):
        """Vectorized suffix walk over the factor matrices.

        Mirrors ``MappingView.suffix_info`` exactly: walk the loops
        above ``child`` innermost-first, per tensor record the trailing
        bound product *before* the first nontrivial loop over one of its
        indexing dims (plus that loop's dim and bound).  The walk runs
        over the full per-level order sequences; trivial bounds multiply
        1 into the trailing product (a no-op) and are masked out of the
        found check — identical to walking the nontrivial-only nests.
        """
        np = _np
        info = self.info
        tensors = info.tensors
        pos = info.dim_index
        num = info.num_levels
        t_mat = self._t_mat
        out = np.empty((self.n, len(tensors), 3), dtype=np.int64)
        out[:, :, 0] = 1
        out[:, :, 1] = -1
        out[:, :, 2] = 1
        order_ids = self._order_ids
        for combo in np.unique(order_ids).tolist():
            rows = np.nonzero(order_ids == combo)[0]
            seqs = self._order_table[combo]
            trailing = np.ones(len(rows), dtype=np.int64)
            found = np.zeros((len(rows), len(tensors)), dtype=bool)
            for level in range(child + 1, num):
                if found.all():
                    break
                seq = seqs[level] if level < len(seqs) else ()
                for d in reversed(seq):
                    j = pos.get(d, -1)
                    if j < 0:
                        continue
                    f = t_mat[rows, level, j]
                    active = f > 1
                    if active.any():
                        for tinfo in tensors:
                            if d not in tinfo.indexing:
                                continue
                            ti = tinfo.index
                            newly = active & ~found[:, ti]
                            if newly.any():
                                sel = rows[newly]
                                out[sel, ti, 0] = trailing[newly]
                                out[sel, ti, 1] = j
                                out[sel, ti, 2] = f[newly]
                                found[:, ti] |= newly
                    trailing = trailing * f
        return out


def _pair_term_cols(info, tinfo, child, partial_reuse, spec, cache, geo,
                    idxb):
    """Term columns of one (tensor, child) for a whole cohort.

    Builds the fingerprint rows as int64 columns, dedupes them with
    ``np.unique`` and runs :func:`~repro.model.terms._compute_term` (and
    the shared cache probe) once per *distinct* fingerprint — sweep
    cohorts repeat fingerprints heavily.  Returns the per-candidate
    ``(fills, distinct, fill_words, pair_words)`` columns, scattered
    back exactly (integer/float64 gathers reorder nothing).
    """
    np = _np
    num = info.num_levels
    rel = tinfo.rel_dims
    nrel = len(rel)
    sub = geo.spans(child)[:, list(tinfo.rel_idx)]
    span_prod = np.prod(sub, axis=1, dtype=np.int64)
    t_rel = tinfo.rel_total // (
        span_prod * (idxb[:, num] // idxb[:, child]))
    run = geo.runs(child)[:, tinfo.index, :]
    trivial = t_rel == 1
    fills = np.where(trivial, 1,
                     geo.t_from[:, child + 1] // run[:, 0])
    inner_id = np.where(trivial, -1, run[:, 1])
    inner_bound = np.where(trivial, 1, run[:, 2])
    key_mat = np.column_stack([sub, fills, inner_id, inner_bound, t_rel])

    token = info.token
    tindex = tinfo.index
    dim_names = info.dim_names
    entries = cache._entries if cache is not None else None
    hits = misses = 0
    local: dict[tuple, int] = {}
    local_get = local.get
    inverse: list[int] = []
    inv_append = inverse.append
    d_fills: list[int] = []
    d_dist: list[int] = []
    d_fw: list[float] = []
    d_pw: list[float] = []
    for row in key_mat.tolist():
        kt = tuple(row)
        slot = local_get(kt)
        if slot is None:
            spans_row = row[:nrel]
            fills_u, inner_id_u, inner_bound_u, t_rel_u = row[nrel:]
            sizes_key = tuple(spans_row)
            inner_dim = dim_names[inner_id_u] if inner_id_u >= 0 else None
            term = None
            if entries is not None:
                key = (token, tindex, child, sizes_key, fills_u,
                       inner_dim, inner_bound_u, t_rel_u)
                term = entries.get(key)
                if term is not None:
                    entries.move_to_end(key)
                    hits += 1
            if term is None:
                sizes = dict(zip(rel, spans_row))
                term = _compute_term(info, tinfo, sizes, sizes_key,
                                     fills_u, inner_dim, inner_bound_u,
                                     t_rel_u, partial_reuse, spec)
                if entries is not None:
                    misses += 1
                    entries[key] = term
            slot = len(d_fills)
            local[kt] = slot
            d_fills.append(term[0])
            d_dist.append(term[1])
            d_fw.append(term[2])
            d_pw.append(term[3])
        inv_append(slot)
    if cache is not None:
        cache.hits += hits
        cache.misses += misses
        if cache.max_entries is not None:
            while len(entries) > cache.max_entries:
                entries.popitem(last=False)
                cache.evictions += 1
    if len(d_fills) == 1:
        # One fingerprint for the whole cohort — broadcast it.
        n = len(inverse)
        return (np.full(n, d_fills[0], dtype=np.int64),
                np.full(n, d_dist[0], dtype=np.int64),
                np.full(n, d_fw[0]),
                np.full(n, d_pw[0]))
    inv = np.array(inverse, dtype=np.intp)
    return (np.array(d_fills, dtype=np.int64)[inv],
            np.array(d_dist, dtype=np.int64)[inv],
            np.array(d_fw)[inv],
            np.array(d_pw)[inv])


def _violations_cols(info, geo):
    """Per-candidate violation lists, one check per distinct profile.

    Mirrors ``mapping_violations`` (same strings, same order) but builds
    one fused fingerprint row per candidate — every level's spatial
    unrolling plus the tile spans its capacity check reads — and runs
    :func:`~repro.model.terms._level_problems` once per distinct row,
    sharing the (immutable) result lists across candidates.
    """
    np = _np
    sp_all, sp_counts = geo.sp_cols()
    cols = [sp_all, sp_counts]
    num = info.num_levels
    offsets = []
    off = 2 * num
    for _lvl, kind, _payload, _union, union_idx in info.level_checks:
        if kind == "skip":
            offsets.append(None)
        else:
            cols.append(geo.spans(len(offsets))[:, list(union_idx)])
            offsets.append((off, off + len(union_idx)))
            off += len(union_idx)
    key_mat = np.column_stack(cols)
    local: dict[tuple, list[str]] = {}
    local_get = local.get
    results: list[list[str]] = []
    for row in key_mat.tolist():
        kt = tuple(row)
        problems = local_get(kt)
        if problems is None:
            problems = []
            for i, (arch_level, kind, payload, union_dims, _uidx) in \
                    enumerate(info.level_checks):
                span = offsets[i]
                sizes = dict(zip(union_dims, row[span[0]:span[1]])) \
                    if span is not None else None
                problems.extend(_level_problems(
                    info, arch_level, kind, payload, row[i], row[num + i],
                    sizes))
            local[kt] = problems
        # Fresh list per candidate: results must not alias each other.
        results.append(list(problems))
    return results


def _evaluate_group(
    mappings: list[Mapping],
    info: ModelInfo,
    partial_reuse: bool,
    sparsity: SparsitySpec | None,
    partial_cache: PartialEvalCache | None,
) -> list[CostResult]:
    """Array rollup of one same-(workload, arch) cohort of Mappings."""
    views = [MappingView(m, info) for m in mappings]
    geo = _CohortGeometry(views, mappings, info)
    return _rollup(geo, partial_reuse, sparsity, partial_cache)


def evaluate_geometry(
    workload,
    arch,
    t_mat,
    s_mat,
    order_ids,
    order_table,
    partial_reuse: bool = True,
    sparsity: SparsitySpec | None = None,
    partial_cache: PartialEvalCache | None = None,
) -> list[CostResult]:
    """Evaluate a cohort given directly as factor matrices.

    ``t_mat``/``s_mat`` are ``(n, levels, dims)`` int64 arrays in
    ``workload.dim_names`` column order; ``order_table[order_ids[k]]``
    holds candidate ``k``'s per-level loop-order sequences.  Results are
    bit-identical to materializing each candidate as a ``Mapping`` and
    calling the scalar :func:`~repro.model.cost.evaluate` — this is the
    end of the Mapping-free generation pipeline
    (:mod:`repro.mapspace.batch`).
    """
    if _np is None:
        raise RuntimeError("evaluate_geometry requires numpy")
    if partial_cache is not None:
        partial_cache.check_config(partial_reuse, sparsity)
    info = model_info(workload, arch)
    geo = _CohortGeometry.from_arrays(info, t_mat, s_mat, order_ids,
                                      order_table)
    return _rollup(geo, partial_reuse, sparsity, partial_cache)


def _rollup(
    geo: _CohortGeometry,
    partial_reuse: bool,
    sparsity: SparsitySpec | None,
    partial_cache: PartialEvalCache | None,
) -> list[CostResult]:
    """Array rollup over staged geometry (views- or matrix-backed)."""
    np = _np
    info = geo.info
    arch = info.arch
    n = geo.n
    num = info.num_levels

    reads = np.zeros((n, num))
    writes = np.zeros((n, num))
    noc_words = {i: np.zeros(n) for i in info.fanout_levels}

    # Exact spatial prefix products, one row per candidate: ratios of
    # columns give sharing lanes, multicast boundaries and instance
    # counts as exact int64 divisions (identical to the scalar ints).
    ones_col = np.ones((n, 1), dtype=np.int64)
    spb = np.concatenate(
        [ones_col, np.prod(geo.cum_s, axis=2, dtype=np.int64)], axis=1)
    total_inst = spb[:, num]

    total_ops = info.total_ops
    energy_ops: float = total_ops
    cycle_ops: float = total_ops
    op_scale = 1.0
    if sparsity is not None:
        from ..sparse.saf import compute_scales
        op_scale, cycle_scale = compute_scales(sparsity, info.tensor_names)
        energy_ops = total_ops * op_scale
        cycle_ops = total_ops * cycle_scale

    pair_ratios: dict[tuple[int, int], tuple] = {}
    for tinfo in info.tensors:
        spec = sparsity.get(tinfo.name) if sparsity is not None else None
        innermost = tinfo.innermost
        idxb = np.concatenate(
            [ones_col,
             np.prod(geo.cum_s[:, :, list(tinfo.rel_idx)], axis=2,
                     dtype=np.int64)],
            axis=1)

        # ---- compute-side accesses at the innermost storage level ----
        # int64 operands promote to float64 exactly (values < 2**53),
        # identical to the scalar float(int) conversions.
        share = spb[:, innermost] // idxb[:, innermost]
        compute_accesses = float(total_ops) / share
        if sparsity is not None:
            compute_accesses = compute_accesses * op_scale
        if tinfo.is_output:
            writes[:, innermost] += compute_accesses
            reads[:, innermost] += compute_accesses
        else:
            reads[:, innermost] += compute_accesses

        # ---- transfers between adjacent storage levels ----
        for child, parent in tinfo.pairs:
            fills_a, dist_a, fw, pw = _pair_term_cols(
                info, tinfo, child, partial_reuse, spec, partial_cache,
                geo, idxb)
            bi = idxb[:, parent] // idxb[:, child]
            ratios = pair_ratios.get((child, parent))
            if ratios is None:
                ratios = (spb[:, parent] // spb[:, child],
                          total_inst // spb[:, parent])
                pair_ratios[(child, parent)] = ratios
            ba, ab = ratios

            child_side = fw * ba * ab
            parent_side = fw * bi * ab

            if tinfo.is_output:
                reads[:, child] += child_side
                writes[:, parent] += parent_side
                # Accumulation read-back; the masked zeros are exact
                # additive identities (all accumulators are >= +0.0).
                rv = fills_a - dist_a
                mask = rv > 0
                writes[:, child] += np.where(mask, rv * pw * ba * ab, 0.0)
                reads[:, parent] += np.where(mask, rv * pw * bi * ab, 0.0)
            else:
                writes[:, child] += child_side
                reads[:, parent] += parent_side

            for j in range(child, parent):
                if j in info.fanout_set:
                    noc_words[j] += parent_side

    # ---- energy rollup (scalar accumulation order preserved) ----
    # Per-access energies are the resolved-technology floats hoisted on
    # ModelInfo (the same objects as the levels' attributes).
    read_energies = info.read_energies
    write_energies = info.write_energies
    network_energies = info.network_energies
    level_energy = np.empty((n, num))
    total = np.zeros(n)
    for i in range(num):
        energy = (reads[:, i] * read_energies[i]
                  + writes[:, i] * write_energies[i])
        level_energy[:, i] = energy
        total = total + energy

    noc_energy = np.zeros(n)
    chip2chip_energy = np.zeros(n) if info.chip2chip_levels else None
    for boundary in info.fanout_levels:
        contribution = noc_words[boundary] * network_energies[boundary]
        noc_energy = noc_energy + contribution
        if chip2chip_energy is not None and boundary in info.chip2chip_levels:
            chip2chip_energy = chip2chip_energy + contribution
    total = total + noc_energy

    compute_energy = energy_ops * info.mac_energy
    total = total + compute_energy

    # ---- latency rollup ----
    lanes = np.maximum(total_inst * arch.mac_width, 1)
    cycles = float(cycle_ops) / lanes
    for i, arch_level in enumerate(arch.levels):
        instances = total_inst // spb[:, i]
        read_cycles = reads[:, i] / instances / arch_level.read_bandwidth
        write_cycles = writes[:, i] / instances / arch_level.write_bandwidth
        cycles = np.maximum(np.maximum(cycles, read_cycles), write_cycles)
    # Finite-bandwidth interconnect links (chip2chip), mirroring the
    # scalar path's trailing max terms.
    for boundary, link_bw in info.link_bandwidths:
        cycles = np.maximum(cycles, noc_words[boundary] / link_bw)

    total_fanout = arch.total_fanout
    all_violations = _violations_cols(info, geo)
    # ndarray.tolist() converts float64 -> Python float exactly (same
    # bits as per-element float() calls), one C pass per array.
    total_l = total.tolist()
    cycles_l = cycles.tolist()
    noc_l = noc_energy.tolist()
    c2c_l = (chip2chip_energy.tolist()
             if chip2chip_energy is not None else None)
    level_rows = level_energy.tolist()
    # total_inst is the machine-wide instance count (inst_above[0] of
    # the scalar view); the int64/int division is the same IEEE op.
    util_l = (total_inst / total_fanout).tolist()
    names = [arch.levels[i].name for i in range(num)]
    results: list[CostResult] = []
    for k in range(n):
        violations = all_violations[k]
        row = level_rows[k]
        results.append(CostResult(
            energy_pj=total_l[k],
            cycles=cycles_l[k],
            valid=not violations,
            violations=violations,
            level_energy=dict(zip(names, row)),
            compute_energy=compute_energy,
            noc_energy=noc_l[k],
            chip2chip_energy=c2c_l[k] if c2c_l is not None else 0.0,
            utilization=util_l[k],
            accesses=None,
        ))
    return results
