"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``schedule``
    Map a workload onto an accelerator and print the mapping, its loop
    nest and cost; optionally save the mapping document as JSON.
``compare``
    Run Sunstone and the baseline mappers on one workload and print a
    comparison table.
``evaluate``
    Re-evaluate a saved mapping document.
``describe``
    Print an architecture preset or the reuse table of a workload.
``tech``
    List the registered technology packs, or dump the resolved energy
    reference table (ERT) of a pack applied to an architecture.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
from typing import Sequence

from .arch import (
    Architecture,
    conventional,
    diannao_like,
    simba_like,
    tiny,
    two_chiplet,
)
from .baselines import (
    TIMELOOP_FAST,
    cosa_search,
    dmazerunner_search,
    interstellar_search,
    timeloop_search,
)
from .baselines.common import certificate_from_bound
from .baselines.gamma import gamma_search
from .core import SchedulerOptions, schedule
from .mapping import render_nest
from .mapping.serialize import (
    architecture_to_dict,
    load_mapping,
    mapping_to_dict,
    save_mapping,
    workload_to_dict,
)
from .model import evaluate
from .search import (
    CheckpointJournal,
    JournalError,
    SearchEngine,
    atomic_write_json,
    flush_active_journals,
)
from .sparse import SparsityError, SparsitySpec, spec_from_cli
from .workloads import (
    Workload,
    attention_scores,
    attention_values,
    batched_matmul,
    conv1d,
    conv2d,
    depthwise_conv2d,
    fully_connected,
    grouped_conv2d,
    mmc,
    mttkrp,
    sddmm,
    tcl,
    ttmc,
)

ARCHITECTURES = {
    "conventional": conventional,
    "simba": simba_like,
    "diannao": diannao_like,
    "tiny": tiny,
    "two-chiplet": two_chiplet,
}

_WORKLOAD_BUILDERS = {
    "conv1d": (conv1d, ("K", "C", "P", "R")),
    "conv2d": (conv2d, ("N", "K", "C", "P", "Q", "R", "S")),
    "fc": (fully_connected, ("N", "K", "C")),
    "mttkrp": (mttkrp, ("I", "K", "L", "J")),
    "sddmm": (sddmm, ("I", "J", "K")),
    "ttmc": (ttmc, ("I", "J", "K", "L", "M")),
    "mmc": (mmc, ("I", "J", "K", "L")),
    "tcl": (tcl, ("I", "J", "K", "L", "M", "N")),
    "dwconv2d": (depthwise_conv2d, ("N", "C", "P", "Q", "R", "S")),
    "gconv2d": (grouped_conv2d, ("N", "G", "K", "C", "P", "Q", "R", "S")),
    "bmm": (batched_matmul, ("B", "M", "N", "K")),
    "attn_qk": (attention_scores, ("B", "H", "L", "D")),
    "attn_av": (attention_values, ("B", "H", "L", "D")),
}


def _parse_dims(pairs: Sequence[str]) -> dict[str, int]:
    dims = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"expected DIM=SIZE, got {pair!r}")
        name, _, value = pair.partition("=")
        dims[name.upper()] = int(value)
    return dims


def build_workload(kind: str, dims: Sequence[str]) -> Workload:
    """Construct a library workload from DIM=SIZE arguments."""
    if kind not in _WORKLOAD_BUILDERS:
        raise SystemExit(
            f"unknown workload {kind!r}; choose from "
            f"{sorted(_WORKLOAD_BUILDERS)}"
        )
    builder, required = _WORKLOAD_BUILDERS[kind]
    given = _parse_dims(dims)
    missing = [d for d in required if d not in given]
    if missing:
        raise SystemExit(f"{kind} needs dimensions {list(required)}; "
                         f"missing {missing}")
    return builder(**{d: given[d] for d in required})


def _resolve_tech(name: str | None):
    """Look up a technology pack by registry name or JSON path."""
    if name is None:
        return None
    from .energy.tech import TechnologyError, get_pack
    try:
        return get_pack(name)
    except (TechnologyError, OSError) as error:
        raise SystemExit(f"cannot resolve technology pack {name!r}: {error}")


def build_architecture(name: str, tech: str | None = None) -> Architecture:
    """Resolve a preset name or a JSON architecture-config path.

    ``tech`` retargets the architecture to another technology pack.
    Presets re-resolve their component descriptions directly; a JSON
    config can only be retargeted when it carries per-level ``component``
    metadata (configs written from presets do).
    """
    pack = _resolve_tech(tech)
    if name in ARCHITECTURES:
        if pack is not None:
            return ARCHITECTURES[name](tech=pack)
        return ARCHITECTURES[name]()
    if name.endswith(".json"):
        from .mapping.serialize import architecture_from_dict
        try:
            with open(name, encoding="utf-8") as handle:
                arch = architecture_from_dict(json.load(handle))
        except OSError as error:
            raise SystemExit(f"cannot read architecture config: {error}")
        if pack is not None and pack.name != arch.tech:
            if not any(lvl.component is not None for lvl in arch.levels):
                raise SystemExit(
                    f"architecture config {name!r} has no component "
                    f"metadata, so it cannot be retargeted to pack "
                    f"{pack.name!r}; regenerate the config from a preset "
                    f"or drop --tech")
            from .energy.tech import resolve_architecture
            arch = resolve_architecture(arch, pack)
        return arch
    raise SystemExit(f"unknown architecture {name!r}; choose from "
                     f"{sorted(ARCHITECTURES)} or pass a .json config")


def _parse_shard(text: str | None) -> tuple[int, int] | None:
    """Parse an ``I/N`` shard descriptor (e.g. ``0/4``)."""
    if text is None:
        return None
    from .mapspace import check_shard
    index, sep, count = text.partition("/")
    try:
        if not sep:
            raise ValueError
        shard = (int(index), int(count))
        return check_shard(shard)
    except ValueError as error:
        detail = f": {error}" if str(error) else ""
        raise SystemExit(f"expected --shard I/N with 0 <= I < N, "
                         f"got {text!r}{detail}")


def build_sparsity(args: argparse.Namespace,
                   workload: Workload) -> SparsitySpec | None:
    """Assemble the sparsity spec from --density/--format/--saf flags."""
    try:
        return spec_from_cli(
            args.density, args.format, args.saf,
            tensor_names=[t.name for t in workload.tensors],
        )
    except SparsityError as error:
        raise SystemExit(str(error))


def _cost_dict(cost) -> dict:
    return {
        "energy_pj": cost.energy_pj,
        "cycles": cost.cycles,
        "edp": cost.edp,
        "valid": cost.valid,
        "violations": list(cost.violations),
        "utilization": cost.utilization,
        "compute_energy": cost.compute_energy,
        "noc_energy": cost.noc_energy,
        "chip2chip_energy": cost.chip2chip_energy,
        "level_energy": dict(cost.level_energy),
    }


def _certificate_line(certificate: dict | None) -> str | None:
    """Human-readable optimality certificate, or None when absent."""
    if not certificate:
        return None
    gap = certificate.get("gap_pct")
    if gap is None:
        return None
    return (f"certificate: best found is within {gap:.2f}% of the "
            f"analytic lower bound")


def _write_stats_json(path: str, document: dict) -> None:
    # Atomic (temp file + rename): a crash mid-dump must never leave a
    # truncated, unparseable stats file behind.
    atomic_write_json(path, document)
    print(f"stats saved to {path}")


def _open_journal(args: argparse.Namespace, meta: dict
                  ) -> CheckpointJournal | None:
    """Open the crash-safe checkpoint journal requested by --checkpoint/
    --resume (None when checkpointing is off)."""
    path = getattr(args, "checkpoint", None)
    resume = bool(getattr(args, "resume", False))
    if path is None:
        if resume:
            raise SystemExit("--resume requires --checkpoint PATH")
        return None
    try:
        return CheckpointJournal(
            path, meta, resume=resume,
            cache_snapshots=bool(getattr(args, "checkpoint_cache", False)))
    except JournalError as error:
        raise SystemExit(str(error))


def cmd_schedule(args: argparse.Namespace) -> int:
    """Schedule one workload and print mapping, nest, cost (and report)."""
    workload = build_workload(args.workload, args.dims)
    arch = build_architecture(args.arch, args.tech)
    sparsity = build_sparsity(args, workload)
    options = SchedulerOptions(objective=args.objective,
                               workers=args.workers,
                               cache=not args.no_cache,
                               sparsity=sparsity,
                               batch=not args.no_batch,
                               batch_gen=not args.no_batch_gen,
                               cache_size=args.cache_size,
                               shard=_parse_shard(args.shard),
                               bound=not args.no_bound)
    journal = _open_journal(args, {
        "kind": "schedule",
        "workload": workload_to_dict(workload),
        "arch": architecture_to_dict(arch),
        "objective": args.objective,
        "sparsity": sparsity.describe() if sparsity else None,
        "shard": args.shard,
    })
    engine = None
    if journal is not None and not args.no_cache:
        warm = journal.load_cache_snapshot()
        if warm is not None:
            # Resume warm: seed the engine with the snapshotted result
            # cache (a pure accelerator — results are bit-identical).
            engine = SearchEngine(workers=args.workers, cache=warm,
                                  sparsity=sparsity,
                                  batch=not args.no_batch,
                                  cache_size=args.cache_size)
    if engine is not None:
        with engine:
            result = schedule(workload, arch, options, engine=engine,
                              journal=journal)
    else:
        result = schedule(workload, arch, options, journal=journal)
    if not result.found:
        print("no valid mapping found", file=sys.stderr)
        return 1
    print(result.mapping)
    print(render_nest(result.mapping))
    if sparsity is not None:
        print(f"sparsity: {sparsity.describe()}")
    print(result.cost.summary())
    if args.report:
        from .analysis.visualize import mapping_report
        print()
        print(mapping_report(result.mapping, result.cost))
    print(f"candidates evaluated: {result.stats.evaluations} in "
          f"{result.stats.wall_time_s:.2f}s")
    print(f"search engine: {result.stats.search.summary()}")
    certificate = certificate_from_bound(result.stats.prune.bound)
    cert_line = _certificate_line(certificate)
    if cert_line is not None:
        print(cert_line)
    if args.profile:
        print(result.stats.search.profile_summary())
    if args.output:
        save_mapping(result.mapping, args.output)
        print(f"mapping saved to {args.output}")
    if args.stats_json:
        _write_stats_json(args.stats_json, {
            "command": "schedule",
            "workload": workload.name,
            "arch": arch.name,
            "objective": args.objective,
            "sparsity": sparsity.describe() if sparsity else None,
            "mapping": mapping_to_dict(result.mapping),
            "cost": _cost_dict(result.cost),
            "evaluations": result.stats.evaluations,
            "wall_time_s": result.stats.wall_time_s,
            "search": result.stats.search.to_dict(),
            "certificate": certificate,
        })
    return 0


def compare_runners(workload: Workload, arch: Architecture,
                    options: SchedulerOptions, *, engine=None) -> dict:
    """Mapper-name -> search thunk, in the canonical comparison order.

    This is *the* definition of what ``repro compare`` runs per mapper
    (the serve daemon's compare jobs call it too, which is what makes
    their rows bit-identical to the CLI's).  ``engine`` is an optional
    pre-warmed engine for the Sunstone row only — the baselines always
    build their own, keeping their exact cold configuration.
    """
    workers, cache = options.workers, options.cache
    sparsity, batch = options.sparsity, options.batch
    batch_gen, cache_size = options.batch_gen, options.cache_size
    shard, bound = options.shard, options.bound
    return {
        "sunstone": lambda: schedule(workload, arch, options,
                                     engine=engine),
        "timeloop-like": lambda: timeloop_search(workload, arch,
                                                 TIMELOOP_FAST,
                                                 workers=workers,
                                                 cache=cache,
                                                 sparsity=sparsity,
                                                 batch=batch,
                                                 cache_size=cache_size),
        "dmazerunner-like": lambda: dmazerunner_search(workload, arch,
                                                       workers=workers,
                                                       cache=cache,
                                                       sparsity=sparsity,
                                                       batch=batch,
                                                       batch_gen=batch_gen,
                                                       cache_size=cache_size,
                                                       shard=shard,
                                                       bound=bound),
        "interstellar-like": lambda: interstellar_search(
            workload, arch, workers=workers, cache=cache,
            sparsity=sparsity, batch=batch, batch_gen=batch_gen,
            cache_size=cache_size, shard=shard, bound=bound),
        "cosa-like": lambda: cosa_search(workload, arch,
                                         sparsity=sparsity,
                                         batch=batch,
                                         cache_size=cache_size),
        "gamma-like": lambda: gamma_search(workload, arch,
                                           workers=workers, cache=cache,
                                           sparsity=sparsity,
                                           batch=batch,
                                           cache_size=cache_size),
    }


def mapper_row(name: str, result) -> dict:
    """The comparison-table document of one mapper's outcome (shared by
    ``repro compare`` and the serve daemon's compare jobs)."""
    time_s = getattr(result, "wall_time_s", None)
    if time_s is None:
        time_s = result.stats.wall_time_s
    evals = getattr(result, "evaluations", None)
    if evals is None:
        evals = result.stats.evaluations
    search_stats = getattr(result, "search_stats", None)
    if search_stats is None and hasattr(result, "stats"):
        search_stats = getattr(result.stats, "search", None)
    status = "ok" if getattr(result, "valid", None) or (
        result.found and result.cost.valid) else "invalid"
    certificate = getattr(result, "certificate", None)
    if certificate is None and hasattr(result, "stats"):
        prune = getattr(result.stats, "prune", None)
        if prune is not None:
            certificate = certificate_from_bound(
                getattr(prune, "bound", None))
    return {
        "mapper": name,
        "found": result.found,
        "status": status,
        "evaluations": evals,
        "wall_time_s": time_s,
        "cost": _cost_dict(result.cost) if result.found else None,
        "mapping": (mapping_to_dict(result.mapping)
                    if result.found else None),
        "search": (search_stats.to_dict()
                   if search_stats is not None else None),
        "certificate": certificate,
    }


def cmd_compare(args: argparse.Namespace) -> int:
    """Run Sunstone and the selected baselines; print a comparison table."""
    workload = build_workload(args.workload, args.dims)
    arch = build_architecture(args.arch, args.tech)
    sparsity = build_sparsity(args, workload)
    options = SchedulerOptions(workers=args.workers,
                               cache=not args.no_cache,
                               sparsity=sparsity,
                               batch=not args.no_batch,
                               batch_gen=not args.no_batch_gen,
                               cache_size=args.cache_size,
                               shard=_parse_shard(args.shard),
                               bound=not args.no_bound)
    journal = _open_journal(args, {
        "kind": "compare",
        "workload": workload_to_dict(workload),
        "arch": architecture_to_dict(arch),
        "sparsity": sparsity.describe() if sparsity else None,
        "shard": args.shard,
    })
    searches = compare_runners(workload, arch, options)
    selected = None
    if args.mappers:
        selected = {m.strip() for m in args.mappers.split(",") if m.strip()}
    mapper_docs: list[dict] = []
    profiles: list[tuple[str, str]] = []
    for name, runner in searches.items():
        if (selected is not None and name != "sunstone"
                and name.split("-")[0] not in selected):
            continue
        if journal is not None:
            entry = journal.last("mapper", name=name)
            if entry is not None:
                # Completed before the interruption: reuse the journaled
                # row instead of repeating the search.
                mapper_docs.append(entry["doc"])
                continue
        result = runner()
        doc = mapper_row(name, result)
        mapper_docs.append(doc)
        if args.profile and doc["search"] is not None:
            search_stats = getattr(result, "search_stats", None)
            if search_stats is None and hasattr(result, "stats"):
                search_stats = getattr(result.stats, "search", None)
            profiles.append((name, search_stats.profile_summary()))
        if journal is not None:
            journal.append({"type": "mapper", "name": name, "doc": doc})
    if sparsity is not None:
        print(f"sparsity: {sparsity.describe()}")
    print(f"{'mapper':<18} {'EDP':>12} {'time(s)':>8} {'evals':>8} "
          f"{'hits':>8} {'status':>8}")
    for doc in mapper_docs:
        edp = doc["cost"]["edp"] if doc["found"] else float("inf")
        hits = doc["search"]["cache_hits"] if doc["search"] else 0
        print(f"{doc['mapper']:<18} {edp:>12.3e} "
              f"{doc['wall_time_s']:>8.2f} {doc['evaluations']:>8} "
              f"{hits:>8} {doc['status']:>8}")
    for doc in mapper_docs:
        cert_line = _certificate_line(doc.get("certificate"))
        if cert_line is not None:
            print(f"{doc['mapper']}: {cert_line}")
    for name, text in profiles:
        print(f"{name}:")
        print(text)
    if args.stats_json:
        _write_stats_json(args.stats_json, {
            "command": "compare",
            "workload": workload.name,
            "arch": arch.name,
            "sparsity": sparsity.describe() if sparsity else None,
            "mappers": mapper_docs,
        })
    return 0


def cmd_network(args: argparse.Namespace) -> int:
    """Schedule every layer of a model description file."""
    from .core.network import schedule_network
    from .workloads.importer import load_model

    model = load_model(args.model)
    arch = build_architecture(args.arch, args.tech)
    options = SchedulerOptions(workers=args.workers,
                               cache=not args.no_cache,
                               batch=not args.no_batch,
                               batch_gen=not args.no_batch_gen,
                               cache_size=args.cache_size,
                               bound=not args.no_bound)
    journal = _open_journal(args, {
        "kind": "network",
        "model": args.model,
        "layers": [workload_to_dict(w) for w in model],
        "arch": architecture_to_dict(arch),
    })
    network = schedule_network(model, arch, options,
                               processes=args.processes,
                               dedupe=not args.no_dedupe,
                               journal=journal)
    print(network.summary())
    if args.profile:
        print(network.search_stats.profile_summary())
    if args.stats_json:
        _write_stats_json(args.stats_json, {
            "command": "network",
            "model": args.model,
            "arch": arch.name,
            "totals": {
                "energy_pj": network.total_energy_pj,
                "cycles": network.total_cycles,
                "edp": network.total_edp,
                "unique_searches": network.unique_searches,
                "wall_time_s": network.wall_time_s,
            },
            "layers": [
                {
                    "layer": entry.workload.name,
                    "found": entry.result.found,
                    "shared_with": entry.shared_with,
                    "cost": (_cost_dict(entry.result.cost)
                             if entry.result.found else None),
                    "mapping": (mapping_to_dict(entry.result.mapping)
                                if entry.result.found else None),
                }
                for entry in network.layers
            ],
            "search": network.search_stats.to_dict(),
        })
    return 0 if network.all_found else 1


def cmd_evaluate(args: argparse.Namespace) -> int:
    """Re-evaluate a saved mapping document with the cost model."""
    mapping = load_mapping(args.mapping)
    result = evaluate(mapping)
    print(mapping)
    print(result.summary())
    if args.json:
        print(json.dumps({
            "energy_pj": result.energy_pj,
            "cycles": result.cycles,
            "edp": result.edp,
            "valid": result.valid,
            "violations": result.violations,
        }, indent=2))
    return 0 if result.valid else 1


def cmd_describe(args: argparse.Namespace) -> int:
    """Print an architecture summary and/or a workload reuse table."""
    if args.arch:
        print(build_architecture(args.arch, args.tech).describe())
    if args.workload:
        workload = build_workload(args.workload, args.dims)
        print(workload)
        for name, info in workload.reuse_table().items():
            print(f"  {name:<10} indexed by {sorted(info.indexed_by)}, "
                  f"reused by {sorted(info.reused_by)}, "
                  f"partial {sorted(info.partially_reused_by)}")
    return 0


def cmd_tech_list(args: argparse.Namespace) -> int:
    """List the registered technology packs."""
    from .energy.tech import DEFAULT_TECH, available_packs, get_pack

    for name in available_packs():
        pack = get_pack(name)
        marker = " (default)" if name == DEFAULT_TECH else ""
        print(f"{name:<10} {pack.description}{marker}")
    return 0


def cmd_tech_show(args: argparse.Namespace) -> int:
    """Dump a pack's parameters and its resolved ERT for --arch."""
    pack = _resolve_tech(args.pack)
    print(f"technology pack {pack.name}: {pack.description}")
    for key, value in pack.to_dict().items():
        if key in ("name", "description"):
            continue
        print(f"  {key} = {value}")
    if args.arch:
        arch = build_architecture(args.arch, pack)
        table = arch.energy_table()
        print(f"energy reference table for {arch.name} "
              f"(pack {table.pack}):")
        for key, value in sorted(table.actions.items()):
            print(f"  {key:<16} {value:.6f} pJ")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the scheduler-as-a-service daemon (docs/SERVE_API.md)."""
    import asyncio

    from .serve import ServeConfig, ServeDaemon

    if args.resume and not args.journal:
        raise SystemExit("--resume requires --journal PATH")
    config = ServeConfig(host=args.host, port=args.port,
                         workers=args.workers,
                         journal_path=args.journal,
                         resume=args.resume,
                         cache_entries=args.cache_entries,
                         max_task_attempts=args.max_task_attempts,
                         fleet=args.fleet,
                         lease_ttl_s=args.lease_ttl,
                         poll_s=args.poll,
                         window=args.window,
                         queue_limit=args.queue_limit or None,
                         read_timeout_s=args.read_timeout or None)
    daemon = ServeDaemon(config)
    exit_code = 0

    async def _run() -> None:
        nonlocal exit_code
        loop = asyncio.get_running_loop()

        def _stop(code: int) -> None:
            nonlocal exit_code
            exit_code = code
            daemon.request_stop()

        # Same conventional codes as one-shot CLI runs: 130 for SIGINT,
        # 143 for SIGTERM.  Either way the stop is graceful — jobs stay
        # journaled and a --resume restart picks them back up.
        for sig, code in ((signal.SIGINT, 130), (signal.SIGTERM, 143)):
            try:
                loop.add_signal_handler(sig, _stop, code)
            except (NotImplementedError, RuntimeError):
                pass

        def _ready(port: int, resumed: list) -> None:
            fleet = (f"fleet=remote, window={config.window}"
                     if config.fleet == "remote"
                     else f"workers={config.workers}")
            print(f"serving on http://{config.host}:{port} "
                  f"({fleet}, "
                  f"restarted {len(resumed)} unfinished jobs)", flush=True)

        await daemon.serve(ready_cb=_ready)

    asyncio.run(_run())
    print("serve: stopped", file=sys.stderr)
    return exit_code


def cmd_worker(args: argparse.Namespace) -> int:
    """Join a remote-fleet daemon as a worker (docs/SERVE_API.md,
    "Remote worker fleets")."""
    from .serve import run_worker

    host, _, port_text = args.connect.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        raise SystemExit(f"--connect expects HOST:PORT, got "
                         f"{args.connect!r}")

    def _log(message: str) -> None:
        print(f"worker: {message}", file=sys.stderr, flush=True)

    return run_worker(host or "127.0.0.1", port, workers=args.workers,
                      name=args.name, retry_s=args.retry, log=_log)


def _print_serve_result(doc: dict) -> int:
    """Render a daemon result document; returns the process exit code."""
    if doc.get("state") == "failed":
        print(f"job {doc.get('id')} failed: {doc.get('error')}",
              file=sys.stderr)
        return 1
    result = doc.get("result") or {}
    seed_hits = doc.get("seed_hits", 0)
    kind = result.get("kind")
    if kind == "schedule":
        if not result.get("found"):
            print("no valid mapping found", file=sys.stderr)
            return 1
        cost = result["cost"]
        print(f"status {result['status']}: edp {cost['edp']:.3e}, "
              f"energy {cost['energy_pj']:.3e} pJ, "
              f"cycles {cost['cycles']:.3e}")
        print(f"candidates evaluated: {result['evaluations']} across "
              f"{result['shards']} shard(s); seed hits {seed_hits}")
        cert_line = _certificate_line(result.get("certificate"))
        if cert_line is not None:
            print(cert_line)
        return 0 if result["status"] == "ok" else 1
    if kind == "compare":
        print(f"{'mapper':<18} {'EDP':>12} {'time(s)':>8} {'evals':>8} "
              f"{'status':>8}")
        for row in result["mappers"]:
            edp = row["cost"]["edp"] if row["found"] else float("inf")
            print(f"{row['mapper']:<18} {edp:>12.3e} "
                  f"{row['wall_time_s']:>8.2f} {row['evaluations']:>8} "
                  f"{row['status']:>8}")
        for row in result["mappers"]:
            cert_line = _certificate_line(row.get("certificate"))
            if cert_line is not None:
                print(f"{row['mapper']}: {cert_line}")
        print(f"seed hits {seed_hits}")
        return 0
    if kind == "network":
        totals = result["totals"]
        print(f"network: {len(result['layers'])} layers, "
              f"{totals['unique_searches']} unique searches, "
              f"energy {totals['energy_pj']:.3e} pJ, "
              f"cycles {totals['cycles']:.3e}, edp {totals['edp']:.3e}; "
              f"seed hits {seed_hits}")
        return 0 if result["found_all"] else 1
    print(json.dumps(doc, indent=2))
    return 0


def _build_job_spec(args: argparse.Namespace) -> dict:
    """Assemble the job spec ``repro submit`` posts to the daemon."""
    spec: dict = {"kind": args.kind, "arch": args.arch,
                  "objective": args.objective}
    if args.tech:
        # Resolve locally first so bad pack names fail client-side with
        # the same message a daemon would return.
        spec["tech"] = _resolve_tech(args.tech).name
    if args.kind == "network":
        if not args.model:
            raise SystemExit("--kind network requires --model PATH")
        from .workloads.importer import load_model
        spec["layers"] = [workload_to_dict(w) for w in load_model(args.model)]
        return spec
    if not args.workload:
        raise SystemExit(f"--kind {args.kind} requires --workload")
    workload = build_workload(args.workload, args.dims)
    spec["workload"] = workload_to_dict(workload)
    # Validate sparsity flags client-side (same error text as schedule).
    build_sparsity(args, workload)
    if args.density or args.format or args.saf:
        spec["sparsity"] = {"density": args.density,
                            "format": args.format, "saf": args.saf}
    if args.kind == "schedule":
        spec["shards"] = args.shards
    if args.kind == "compare" and args.mappers:
        spec["mappers"] = args.mappers
    if getattr(args, "no_bound", False):
        spec["options"] = {"bound": False}
    return spec


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit one job to a running daemon (optionally wait for it)."""
    from .serve import ServeClient, ServeError

    spec = _build_job_spec(args)
    client = ServeClient(args.host, args.port)
    try:
        row = client.submit(spec)
        print(f"submitted {row['id']}: {row['kind']}, "
              f"{row['tasks_total']} task(s), fingerprint "
              f"{row['fingerprint']}")
        if not args.wait:
            return 0
        doc = client.result(row["id"], wait=True)
    except ServeError as error:
        print(f"serve error: {error}", file=sys.stderr)
        return 1
    return _print_serve_result(doc)


def cmd_jobs(args: argparse.Namespace) -> int:
    """List the daemon's jobs."""
    from .serve import ServeClient, ServeError

    try:
        rows = ServeClient(args.host, args.port).jobs()
    except ServeError as error:
        print(f"serve error: {error}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
        return 0
    print(f"{'id':<8} {'kind':<9} {'state':<8} {'tasks':>7} "
          f"{'seed hits':>10} {'wall(s)':>8}")
    for row in rows:
        print(f"{row['id']:<8} {row['kind']:<9} {row['state']:<8} "
              f"{row['tasks_done']:>3}/{row['tasks_total']:<3} "
              f"{row['seed_hits']:>10} {row['wall_time_s']:>8.2f}")
    return 0


def cmd_result(args: argparse.Namespace) -> int:
    """Fetch (and optionally wait for) one job's merged result."""
    from .serve import ServeClient, ServeError

    try:
        doc = ServeClient(args.host, args.port).result(args.job_id,
                                                       wait=args.wait)
    except ServeError as error:
        print(f"serve error: {error}", file=sys.stderr)
        return 1
    if args.json:
        atomic_write_json(args.json, doc)
        print(f"result saved to {args.json}")
    return _print_serve_result(doc)


def make_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser with all subcommands."""
    parser = argparse.ArgumentParser(prog="repro",
                                     description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    def positive_int(text: str) -> int:
        value = int(text)
        if value < 1:
            raise argparse.ArgumentTypeError("must be >= 1")
        return value

    def nonnegative_int(text: str) -> int:
        value = int(text)
        if value < 0:
            raise argparse.ArgumentTypeError("must be >= 0")
        return value

    def add_engine_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workers", type=positive_int, default=1,
                       help="evaluation worker processes (1 = in-process)")
        p.add_argument("--no-cache", action="store_true",
                       help="disable cost-result memoisation")
        p.add_argument("--no-batch", action="store_true",
                       help="disable vectorised cohort evaluation "
                            "(repro.model.batch); results are identical")
        p.add_argument("--no-batch-gen", action="store_true",
                       help="disable vectorised candidate generation "
                            "(repro.mapspace.batch); results are "
                            "identical")
        p.add_argument("--no-bound", action="store_true",
                       help="disable analytic branch-and-bound pruning "
                            "(repro.mapspace.bounds); results are "
                            "identical, only more candidates are "
                            "evaluated")
        p.add_argument("--cache-size", type=nonnegative_int, default=None,
                       metavar="N",
                       help="entry cap for the result and partial-term "
                            "caches (0 = unbounded; default per-cache "
                            "bound)")
        p.add_argument("--profile", action="store_true",
                       help="print the per-stage evaluation profile "
                            "(model/generation/cache/pool time, "
                            "partial-cache hit rate)")

    def add_shard_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument("--shard", metavar="I/N", default=None,
                       help="walk only the I-th of N disjoint deterministic "
                            "shards of each candidate stream (0 <= I < N); "
                            "run all N shards to cover the whole space. "
                            "Applies to the mapspace-enumerating mappers "
                            "(sunstone, dmazerunner, interstellar)")

    def add_sparsity_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--density", action="append", default=[],
                       metavar="TENSOR=P",
                       help="expected density of a tensor, e.g. A=0.05 "
                            "(repeatable; default format coordinate, "
                            "action skipping)")
        p.add_argument("--format", action="append", default=[],
                       metavar="TENSOR=FMT",
                       help="compressed format: uncompressed, bitmask, "
                            "rle, coordinate, csr")
        p.add_argument("--saf", action="append", default=[],
                       metavar="TENSOR=ACTION",
                       help="compute optimisation: none, gating, skipping")

    def add_tech_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument("--tech", metavar="PACK", default=None,
                       help="technology pack to resolve the architecture "
                            "under (a registered pack name — see "
                            "'repro tech list' — or a pack .json path); "
                            "default: the architecture's own pack")

    def add_stats_json(p: argparse.ArgumentParser) -> None:
        p.add_argument("--stats-json", metavar="PATH",
                       help="dump mapping, cost breakdown and search "
                            "statistics as JSON")

    def add_checkpoint_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--checkpoint", metavar="PATH",
                       help="crash-safe journal of search progress "
                            "(JSON lines, fsync'd per step)")
        p.add_argument("--resume", action="store_true",
                       help="continue an interrupted run from the last "
                            "completed step in --checkpoint; the final "
                            "result is bit-identical to an uninterrupted "
                            "run")
        p.add_argument("--checkpoint-cache", action="store_true",
                       help="also snapshot the evaluation cache beside "
                            "the journal for a warm resume (a pure "
                            "accelerator; never changes results)")

    p = sub.add_parser("schedule", help="map a workload onto an accelerator")
    p.add_argument("--workload", required=True)
    p.add_argument("--arch", default="conventional")
    add_tech_flag(p)
    p.add_argument("--objective", default="edp", choices=("edp", "energy"))
    p.add_argument("--output", help="save the mapping document (JSON)")
    p.add_argument("--report", action="store_true",
                   help="print the occupancy/energy/spatial dashboard")
    add_engine_flags(p)
    add_shard_flag(p)
    add_sparsity_flags(p)
    add_stats_json(p)
    add_checkpoint_flags(p)
    p.add_argument("dims", nargs="*", help="DIM=SIZE assignments")
    p.set_defaults(func=cmd_schedule)

    p = sub.add_parser("network",
                       help="schedule a model description file")
    p.add_argument("model", help="path to a model JSON (see configs/)")
    p.add_argument("--arch", default="conventional")
    add_tech_flag(p)
    p.add_argument("--processes", type=int, default=None)
    p.add_argument("--no-dedupe", action="store_true",
                   help="search every layer even when shapes repeat")
    add_engine_flags(p)
    add_stats_json(p)
    add_checkpoint_flags(p)
    p.set_defaults(func=cmd_network)

    p = sub.add_parser("compare", help="compare Sunstone against baselines")
    p.add_argument("--workload", required=True)
    p.add_argument("--arch", default="conventional")
    add_tech_flag(p)
    p.add_argument("--mappers",
                   help="comma-separated subset of "
                        "timeloop,dmazerunner,interstellar,cosa,gamma")
    add_engine_flags(p)
    add_shard_flag(p)
    add_sparsity_flags(p)
    add_stats_json(p)
    add_checkpoint_flags(p)
    p.add_argument("dims", nargs="*", help="DIM=SIZE assignments")
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("evaluate", help="re-evaluate a saved mapping")
    p.add_argument("mapping", help="path to a mapping JSON document")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_evaluate)

    p = sub.add_parser("describe", help="show an architecture or workload")
    p.add_argument("--arch")
    add_tech_flag(p)
    p.add_argument("--workload")
    p.add_argument("dims", nargs="*", help="DIM=SIZE assignments")
    p.set_defaults(func=cmd_describe)

    p = sub.add_parser("tech",
                       help="list technology packs or dump a resolved ERT")
    tech_sub = p.add_subparsers(dest="tech_command", required=True)
    tp = tech_sub.add_parser("list", help="list the registered packs")
    tp.set_defaults(func=cmd_tech_list)
    tp = tech_sub.add_parser("show",
                             help="show a pack's parameters and, with "
                                  "--arch, its resolved energy reference "
                                  "table")
    tp.add_argument("pack", help="registered pack name or pack .json path")
    tp.add_argument("--arch", default=None,
                    help="architecture preset or config to resolve the "
                         "ERT for")
    tp.set_defaults(func=cmd_tech_show)

    def add_client_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--host", default="127.0.0.1",
                       help="serve daemon address")
        p.add_argument("--port", type=int, default=8181)

    p = sub.add_parser("serve",
                       help="run the scheduling service daemon")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8181,
                   help="listen port (0 = pick a free port; the actual "
                        "port is printed on the ready line)")
    p.add_argument("--workers", type=nonnegative_int, default=1,
                   help="worker processes running job tasks "
                        "(0 = in-process)")
    p.add_argument("--journal", metavar="PATH",
                   help="crash-safe job journal (JSON lines, fsync'd); "
                        "restart with --resume to recover in-flight jobs")
    p.add_argument("--resume", action="store_true",
                   help="recover journaled jobs on startup; recovered "
                        "results are bit-identical to uninterrupted ones")
    p.add_argument("--cache-entries", type=nonnegative_int,
                   default=200_000,
                   help="shared cross-request eval-cache entry cap "
                        "(0 = unbounded)")
    p.add_argument("--max-task-attempts", type=positive_int, default=3,
                   help="pool-crash retries per task before degrading "
                        "to an in-process run")
    p.add_argument("--fleet", default="local",
                   choices=("local", "remote"),
                   help="task execution backend: 'local' runs a process "
                        "pool in the daemon, 'remote' leases tasks to "
                        "'repro worker' processes")
    p.add_argument("--lease-ttl", type=float, default=30.0,
                   metavar="SECONDS",
                   help="remote fleet: lease lifetime without a "
                        "heartbeat before the task is fenced and "
                        "re-leased")
    p.add_argument("--poll", type=float, default=10.0, metavar="SECONDS",
                   help="remote fleet: long-poll window for POST /lease")
    p.add_argument("--window", type=positive_int, default=32,
                   help="remote fleet: tasks dispatched (and cache-"
                        "seeded) concurrently")
    p.add_argument("--queue-limit", type=nonnegative_int, default=4096,
                   help="pending-task bound; POST /jobs answers 429 + "
                        "Retry-After above it (0 = unbounded)")
    p.add_argument("--read-timeout", type=float, default=30.0,
                   metavar="SECONDS",
                   help="per-connection request read timeout "
                        "(0 = none)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("worker",
                       help="join a remote-fleet daemon as a worker")
    p.add_argument("--connect", required=True, metavar="HOST:PORT",
                   help="daemon address (its ready line prints the "
                        "actual port)")
    p.add_argument("--workers", type=positive_int, default=1,
                   help="local worker processes (= lease slots held "
                        "concurrently)")
    p.add_argument("--name", default=None,
                   help="worker name shown in /stats "
                        "(default host:pid)")
    p.add_argument("--retry", type=float, default=60.0, metavar="SECONDS",
                   help="give up after this long without reaching the "
                        "daemon")
    p.set_defaults(func=cmd_worker)

    p = sub.add_parser("submit", help="submit a job to a serve daemon")
    add_client_flags(p)
    p.add_argument("--kind", default="schedule",
                   choices=("schedule", "compare", "network"))
    p.add_argument("--workload", help="workload kind (schedule/compare)")
    p.add_argument("--model", help="model JSON path (--kind network)")
    p.add_argument("--arch", default="conventional")
    add_tech_flag(p)
    p.add_argument("--objective", default="edp", choices=("edp", "energy"))
    p.add_argument("--shards", type=positive_int, default=1,
                   help="split the mapspace into N union-complete shards "
                        "searched in parallel (--kind schedule)")
    p.add_argument("--mappers",
                   help="comma-separated baseline subset (--kind compare)")
    add_sparsity_flags(p)
    p.add_argument("--no-bound", action="store_true",
                   help="run the job without analytic branch-and-bound "
                        "pruning (results are identical)")
    p.add_argument("--wait", action="store_true",
                   help="block until the result is ready and print it")
    p.add_argument("dims", nargs="*", help="DIM=SIZE assignments")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("jobs", help="list a serve daemon's jobs")
    add_client_flags(p)
    p.add_argument("--json", action="store_true",
                   help="print the raw job rows (including search and "
                        "bound-pruning counters) as JSON")
    p.set_defaults(func=cmd_jobs)

    p = sub.add_parser("result", help="fetch a job result from a daemon")
    add_client_flags(p)
    p.add_argument("job_id")
    p.add_argument("--wait", action="store_true",
                   help="block until the job finishes")
    p.add_argument("--json", metavar="PATH",
                   help="save the full result document (atomic write)")
    p.set_defaults(func=cmd_result)

    return parser


class GracefulExit(KeyboardInterrupt):
    """SIGTERM delivered as an exception.

    Subclassing :class:`KeyboardInterrupt` reuses every existing
    interrupt path unchanged — engines drain their pools
    (``shutdown(cancel_futures=True)``), ``engine_scope`` closes what
    it owns — while ``main`` can still tell the two apart to return
    the conventional 128+signal code (143 vs 130).
    """


def _raise_graceful_exit(signum, frame):  # noqa: ARG001 - signal API
    raise GracefulExit(f"signal {signum}")


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = make_parser()
    args = parser.parse_args(argv)
    previous = None
    if args.command != "serve":
        # One-shot runs: turn SIGTERM into the same clean unwinding a
        # Ctrl-C gets.  The serve daemon installs its own loop-level
        # handlers instead (graceful stop, not an exception).
        try:
            previous = signal.signal(signal.SIGTERM, _raise_graceful_exit)
        except (ValueError, OSError):
            previous = None  # not the main thread (embedding)
    try:
        return args.func(args)
    except GracefulExit:
        # Pools are drained on the way out; flush one final journal
        # append so an orchestrated stop is durably recorded, then exit
        # 128+SIGTERM.  Rerun with --resume to continue.
        flush_active_journals("sigterm")
        print("terminated", file=sys.stderr)
        return 143
    except KeyboardInterrupt:
        # Engines shut their pools down on the way out (engine_scope +
        # cancel_futures), so a Ctrl-C exits promptly with the
        # conventional 128+SIGINT code.  A --checkpoint journal keeps
        # every completed step; rerun with --resume to continue.
        flush_active_journals("sigint")
        print("interrupted", file=sys.stderr)
        return 130
    finally:
        if previous is not None:
            try:
                signal.signal(signal.SIGTERM, previous)
            except (ValueError, OSError):
                pass


if __name__ == "__main__":
    raise SystemExit(main())
