"""Picklable worker entry point: run one decomposed job task.

:func:`run_task` executes in a ``ProcessPoolExecutor`` worker (or
inline for ``--workers 0``/fallback).  It reconstructs the search from
a self-contained task document and runs it **exactly as the cold CLI
would** — same :class:`~repro.core.SchedulerOptions`, same engine
construction as ``SunstoneScheduler._get_engine`` — with one
difference: the evaluation cache starts from the daemon's seed
(:class:`~repro.serve.cache.SeedCache`).  The seed is a pure
accelerator (fingerprint-keyed exact results), so the returned mapping,
cost and candidate-evaluation count are bit-identical to the cold run;
only the engine's hit accounting moves (pinned by
``tests/test_serve.py``).

Fault injection: ``REPRO_SERVE_KILL_TASK=JOB:INDEX`` hard-exits the
worker on the *first* attempt at that task (mirroring the
``REPRO_FAULTS``/``REPRO_CHECKPOINT_KILL_AFTER`` idioms), which gives
tests and the CI smoke a deterministic worker death instead of a racy
``pkill``.
"""

from __future__ import annotations

import os
import time
from typing import Any

from ..core import SchedulerOptions, schedule
from ..mapping.serialize import (
    architecture_from_dict,
    mapping_to_dict,
    workload_from_dict,
)
from ..search import SearchEngine
from .cache import SeedCache
from .protocol import build_sparsity_spec

KILL_TASK_ENV = "REPRO_SERVE_KILL_TASK"


def _honour_kill_hook(job_id: str, task: dict, attempt: int) -> None:
    target = os.environ.get(KILL_TASK_ENV)
    if not target or attempt > 0:
        return
    if target == f"{job_id}:{task['index']}":
        # A real crash, as far as the fleet can tell: the process dies
        # without returning.  Retries (attempt > 0) run to completion.
        os._exit(1)


def _seeded_engine(task: dict, options: SchedulerOptions,
                   seed: list[tuple[Any, Any]]) -> tuple[SearchEngine,
                                                         SeedCache]:
    """The engine ``SunstoneScheduler._get_engine`` would build, with
    the result cache pre-populated from the daemon's shared cache."""
    cache_size = options.cache_size
    cache = SeedCache(seed, max_entries=(200_000 if cache_size is None
                                         else cache_size))
    engine = SearchEngine(workers=1, cache=cache,
                          partial_reuse=options.partial_reuse,
                          sparsity=options.sparsity,
                          batch=options.batch,
                          cache_size=cache_size)
    return engine, cache


def _scheduler_options(task: dict) -> SchedulerOptions:
    opts = task["options"]
    shard = task.get("shard")
    return SchedulerOptions(objective=task["objective"],
                            sparsity=build_sparsity_spec(task),
                            batch=opts["batch"],
                            batch_gen=opts["batch_gen"],
                            # .get: journals written before the option
                            # existed resume with the default (on).
                            bound=bool(opts.get("bound", True)),
                            cache_size=opts["cache_size"],
                            shard=tuple(shard) if shard else None)


def _outcome_doc(result) -> dict:
    from ..baselines.common import certificate_from_bound
    return {
        "found": result.found,
        "mapping": mapping_to_dict(result.mapping) if result.found else None,
        "cost": None,
        "evaluations": result.stats.evaluations,
        "wall_time_s": result.stats.wall_time_s,
        "certificate": certificate_from_bound(result.stats.prune.bound),
    }


def _run_schedule(task: dict, seed: list) -> tuple[dict, SearchEngine,
                                                   SeedCache]:
    from ..cli import _cost_dict
    workload = workload_from_dict(task["workload"])
    arch = architecture_from_dict(task["arch"])
    options = _scheduler_options(task)
    engine, cache = _seeded_engine(task, options, seed)
    with engine:
        result = schedule(workload, arch, options, engine=engine)
    doc = _outcome_doc(result)
    if result.found:
        doc["cost"] = _cost_dict(result.cost)
    return doc, engine, cache


def _run_mapper(task: dict, seed: list) -> tuple[dict, SearchEngine | None,
                                                 SeedCache | None]:
    from ..cli import compare_runners, mapper_row
    workload = workload_from_dict(task["workload"])
    arch = architecture_from_dict(task["arch"])
    options = _scheduler_options(task)
    engine = cache = None
    if task["name"] == "sunstone":
        # Only Sunstone takes an injected engine here: the baselines
        # build their own (their exact cold-CLI configuration), so their
        # rows stay byte-for-byte what ``repro compare`` prints.
        engine, cache = _seeded_engine(task, options, seed)
    runner = compare_runners(workload, arch, options,
                             engine=engine)[task["name"]]
    if engine is not None:
        with engine:
            result = runner()
    else:
        result = runner()
    return mapper_row(task["name"], result), engine, cache


def run_task(payload: dict) -> dict:
    """Execute one task; returns the mergeable *part* document.

    ``payload`` is ``{"job_id", "task", "seed", "attempt"}``; the part
    is ``{"index", "doc", "stats", "seed_hits", "entries",
    "wall_time_s"}`` where ``entries`` are the ``(fingerprint,
    CostResult)`` pairs this task computed, offered back to the shared
    cache for admission.
    """
    task = payload["task"]
    seed = payload.get("seed") or []
    _honour_kill_hook(payload.get("job_id", ""), task,
                      payload.get("attempt", 0))
    start = time.perf_counter()
    if task["type"] in ("schedule", "layer"):
        doc, engine, cache = _run_schedule(task, seed)
        stats = engine.stats.to_dict()
    elif task["type"] == "mapper":
        doc, engine, cache = _run_mapper(task, seed)
        stats = doc.get("search")
    else:
        raise ValueError(f"unknown task type {task['type']!r}")
    return {
        "index": task["index"],
        "doc": doc,
        "stats": stats,
        "seed_hits": cache.seed_hits if cache is not None else 0,
        "entries": cache.new_entries() if cache is not None else [],
        "wall_time_s": time.perf_counter() - start,
    }
