"""Blocking HTTP client for the serve daemon (``repro submit`` & co).

Deliberately symmetric with :mod:`repro.serve.server`: stdlib
``http.client``, one request per connection, JSON bodies.  Raises
:class:`ServeError` with the daemon's error message on any non-2xx
response, and on connection failures (message prefixed with the
address, so ``repro submit`` against a dead daemon reads clearly).
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Any


class ServeError(RuntimeError):
    """A request the daemon rejected or could not be delivered."""

    def __init__(self, message: str, status: int | None = None) -> None:
        super().__init__(message)
        self.status = status


class ServeClient:
    """Talk to one daemon at ``host:port``."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8181,
                 timeout: float = 600.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str, body: Any = None) -> dict:
        payload = None
        headers = {}
        if body is not None:
            payload = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        connection = http.client.HTTPConnection(self.host, self.port,
                                                timeout=self.timeout)
        try:
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        except (ConnectionError, socket.timeout, OSError) as error:
            raise ServeError(
                f"cannot reach daemon at {self.host}:{self.port}: {error}")
        finally:
            connection.close()
        try:
            doc = json.loads(raw) if raw else {}
        except ValueError:
            raise ServeError(f"daemon sent non-JSON response "
                             f"(status {response.status})",
                             status=response.status)
        if response.status >= 300:
            raise ServeError(doc.get("error", f"HTTP {response.status}"),
                             status=response.status)
        return doc

    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def submit(self, spec: dict) -> dict:
        """Submit a job spec; returns the accepted job row."""
        return self._request("POST", "/jobs", body=spec)

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str, wait: bool = False) -> dict:
        """The merged result document (409 -> ServeError unless done)."""
        suffix = "?wait=1" if wait else ""
        return self._request("GET", f"/jobs/{job_id}/result{suffix}")

    def shutdown(self) -> dict:
        return self._request("POST", "/shutdown")

    # ------------------------------------------------------------------
    # remote-fleet worker surface (``repro worker``)
    def register_worker(self, name: str | None, slots: int) -> dict:
        return self._request("POST", "/register",
                             body={"name": name, "slots": slots})

    def lease(self, worker_id: str) -> dict:
        """Long-poll one task (``{"lease": None}`` on an empty window)."""
        return self._request("POST", "/lease", body={"worker": worker_id})

    def heartbeat(self, worker_id: str) -> dict:
        return self._request("POST", "/heartbeat",
                             body={"worker": worker_id})

    def deliver_part(self, body: dict) -> dict:
        """``{"worker", "lease", "part"|"error"}`` -> ``{"accepted"}``."""
        return self._request("POST", "/parts", body=body)

    # ------------------------------------------------------------------
    def wait_ready(self, deadline_s: float = 30.0) -> dict:
        """Poll ``/healthz`` until the daemon answers (startup races in
        tests and the CI smoke)."""
        last: ServeError | None = None
        end = time.monotonic() + deadline_s
        while time.monotonic() < end:
            try:
                return self.healthz()
            except ServeError as error:
                last = error
                time.sleep(0.05)
        raise ServeError(f"daemon at {self.host}:{self.port} did not "
                         f"become ready within {deadline_s:.0f}s: {last}")
