"""Stdlib-only asyncio HTTP/JSON front-end (docs/SERVE_API.md).

One event loop owns the listener, the :class:`JobManager` and the
shared cache; CPU-heavy search work never runs on the loop — it is
dispatched to the :class:`~repro.serve.fleet.WorkerFleet`.  The wire
protocol is deliberately minimal HTTP/1.1 (one request per connection,
``Connection: close``) so both ends stay inside the standard library.

Endpoints
---------
``GET /healthz``            liveness + job/worker counts
``GET /stats``              shared-cache, fleet and per-job statistics
``POST /jobs``              submit a job spec; returns the job row
``GET /jobs``               list all jobs
``GET /jobs/ID``            one job row
``GET /jobs/ID/result``     merged result; ``?wait=1`` blocks until done
``POST /shutdown``          graceful stop (drains nothing — in-flight
                            jobs are journaled and resume on restart)
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass

from ..search import CheckpointJournal
from .cache import SharedEvalCache
from .fleet import WorkerFleet
from .jobs import JobManager
from .protocol import ProtocolError

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
             404: "Not Found", 409: "Conflict",
             500: "Internal Server Error"}
_MAX_BODY = 32 * 1024 * 1024


@dataclass
class ServeConfig:
    """``repro serve`` knobs (defaults match the CLI flag defaults)."""

    host: str = "127.0.0.1"
    port: int = 8181
    workers: int = 1
    journal_path: str | None = None
    resume: bool = False
    cache_entries: int | None = 200_000
    max_task_attempts: int = 3


class ServeDaemon:
    """The long-running scheduler service."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.cache = SharedEvalCache(max_entries=config.cache_entries)
        self.fleet = WorkerFleet(config.workers,
                                 max_task_attempts=config.max_task_attempts)
        self.journal: CheckpointJournal | None = None
        if config.journal_path is not None:
            self.journal = CheckpointJournal(
                config.journal_path, {"kind": "serve"},
                resume=config.resume)
        self.manager: JobManager | None = None
        self.port: int | None = None  # actual port (config.port may be 0)
        self._stop = asyncio.Event()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def request_stop(self) -> None:
        self._stop.set()

    async def serve(self, *, ready_cb=None) -> None:
        """Run until :meth:`request_stop`; resumes journaled jobs first."""
        self.manager = JobManager(self.fleet, self.cache,
                                  journal=self.journal)
        resumed = self.manager.resume()
        server = await asyncio.start_server(self._handle, self.config.host,
                                            self.config.port)
        self.port = server.sockets[0].getsockname()[1]
        if ready_cb is not None:
            ready_cb(self.port, resumed)
        try:
            async with server:
                await self._stop.wait()
        finally:
            # In-flight jobs keep their journaled parts; a restart with
            # --resume re-enqueues only the missing tasks.
            for job in self.manager.jobs.values():
                if job.runner is not None and not job.runner.done():
                    job.runner.cancel()
            await self.manager.drain()
            self.fleet.close()
            if self.journal is not None:
                self.journal.append({"type": "shutdown"})

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
                status, doc = await self._route(method, path, body)
            except ProtocolError as error:
                status, doc = 400, {"error": str(error)}
            except _HttpError as error:
                status, doc = error.status, {"error": error.message}
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            except Exception as error:  # noqa: BLE001 - keep serving
                status, doc = 500, {"error":
                                    f"{type(error).__name__}: {error}"}
            payload = (json.dumps(doc, indent=2) + "\n").encode()
            writer.write(
                f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n".encode() + payload)
            await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader,
                            ) -> tuple[str, str, dict | None]:
        head = await reader.readuntil(b"\r\n\r\n")
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = request_line.split(" ", 2)
        except ValueError:
            raise _HttpError(400, "malformed request line")
        length = 0
        for line in header_lines:
            name, sep, value = line.partition(":")
            if sep and name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    raise _HttpError(400, "bad Content-Length")
        if length > _MAX_BODY:
            raise _HttpError(400, "body too large")
        body = None
        if length:
            raw = await reader.readexactly(length)
            try:
                body = json.loads(raw)
            except ValueError:
                raise _HttpError(400, "body is not valid JSON")
        return method.upper(), target, body

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------
    async def _route(self, method: str, target: str, body: dict | None,
                     ) -> tuple[int, dict]:
        path, _, query = target.partition("?")
        parts = [p for p in path.split("/") if p]
        manager = self.manager
        assert manager is not None  # serve() set it before listening

        if method == "GET" and parts == ["healthz"]:
            states = [j.state for j in manager.jobs.values()]
            return 200, {
                "ok": True,
                "workers": self.fleet.workers,
                "jobs": {state: states.count(state)
                         for state in sorted(set(states))},
            }
        if method == "GET" and parts == ["stats"]:
            return 200, {
                "cache": self.cache.stats(),
                "fleet": self.fleet.stats(),
                "jobs": manager.stats(),
            }
        if method == "POST" and parts == ["jobs"]:
            if body is None:
                raise ProtocolError("POST /jobs needs a JSON job spec body")
            job = manager.submit(body)
            return 202, job.describe()
        if method == "GET" and parts == ["jobs"]:
            return 200, {"jobs": manager.describe_jobs()}
        if method == "GET" and len(parts) == 2 and parts[0] == "jobs":
            job = manager.get(parts[1])
            if job is None:
                raise _HttpError(404, f"no such job {parts[1]!r}")
            return 200, job.describe()
        if (method == "GET" and len(parts) == 3 and parts[0] == "jobs"
                and parts[2] == "result"):
            job = manager.get(parts[1])
            if job is None:
                raise _HttpError(404, f"no such job {parts[1]!r}")
            if "wait=1" in query.split("&") and job.runner is not None:
                await asyncio.shield(
                    asyncio.gather(job.runner, return_exceptions=True))
            if job.state == "failed":
                return 200, {"id": job.id, "state": job.state,
                             "error": job.error}
            if job.result is None:
                return 409, {"id": job.id, "state": job.state,
                             "error": "job is still running; retry or "
                                      "pass ?wait=1"}
            return 200, {"id": job.id, "state": job.state,
                         "seed_hits": job.seed_hits, "result": job.result}
        if method == "POST" and parts == ["shutdown"]:
            self.request_stop()
            return 200, {"ok": True, "stopping": True}
        raise _HttpError(404, f"no route {method} {path}")


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
