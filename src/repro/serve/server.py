"""Stdlib-only asyncio HTTP/JSON front-end (docs/SERVE_API.md).

One event loop owns the listener, the :class:`JobManager` and the
shared cache; CPU-heavy search work never runs on the loop — it is
dispatched to the configured :class:`~repro.serve.fleet.FleetBackend`
(a local process pool, or a lease-based remote fleet).  The wire
protocol is deliberately minimal HTTP/1.1 (one request per connection,
``Connection: close``) so both ends stay inside the standard library.

Endpoints
---------
``GET /healthz``            liveness + job/worker counts
``GET /stats``              shared-cache, fleet and per-job statistics
``POST /jobs``              submit a job spec; returns the job row
                            (429 + ``Retry-After`` when the bounded
                            task queue is full)
``GET /jobs``               list all jobs
``GET /jobs/ID``            one job row
``GET /jobs/ID/result``     merged result; ``?wait=1`` blocks until done
``POST /register``          join the remote fleet (remote backend only)
``POST /lease``             long-poll one task payload
``POST /heartbeat``         renew a worker's leases
``POST /parts``             deliver one part (or task error)
``POST /shutdown``          graceful stop (drains nothing — in-flight
                            jobs are journaled and resume on restart)
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass

from ..search import CheckpointJournal
from .cache import SharedEvalCache
from .fleet import FleetBackend, WorkerFleet
from .jobs import JobManager, QueueFullError
from .protocol import ProtocolError
from .remote import RemoteFleet, UnknownWorkerError
from .wire import WireError

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
             404: "Not Found", 408: "Request Timeout", 409: "Conflict",
             429: "Too Many Requests", 500: "Internal Server Error"}
_MAX_BODY = 32 * 1024 * 1024


@dataclass
class ServeConfig:
    """``repro serve`` knobs (defaults match the CLI flag defaults)."""

    host: str = "127.0.0.1"
    port: int = 8181
    workers: int = 1
    journal_path: str | None = None
    resume: bool = False
    cache_entries: int | None = 200_000
    max_task_attempts: int = 3
    fleet: str = "local"
    lease_ttl_s: float = 30.0
    poll_s: float = 10.0
    window: int = 32
    queue_limit: int | None = 4096
    read_timeout_s: float | None = 30.0


class ServeDaemon:
    """The long-running scheduler service."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.cache = SharedEvalCache(max_entries=config.cache_entries)
        self.fleet: FleetBackend
        if config.fleet == "remote":
            self.fleet = RemoteFleet(lease_ttl_s=config.lease_ttl_s,
                                     poll_s=config.poll_s,
                                     window=config.window)
        elif config.fleet == "local":
            self.fleet = WorkerFleet(
                config.workers, max_task_attempts=config.max_task_attempts)
        else:
            raise ValueError(f"unknown fleet backend {config.fleet!r} "
                             f"(expected 'local' or 'remote')")
        self.journal: CheckpointJournal | None = None
        if config.journal_path is not None:
            self.journal = CheckpointJournal(
                config.journal_path, {"kind": "serve"},
                resume=config.resume)
        self.manager: JobManager | None = None
        self.port: int | None = None  # actual port (config.port may be 0)
        self._stop = asyncio.Event()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def request_stop(self) -> None:
        self._stop.set()

    async def serve(self, *, ready_cb=None) -> None:
        """Run until :meth:`request_stop`; resumes journaled jobs first."""
        self.manager = JobManager(self.fleet, self.cache,
                                  journal=self.journal,
                                  queue_limit=self.config.queue_limit)
        resumed = self.manager.resume()
        server = await asyncio.start_server(self._handle, self.config.host,
                                            self.config.port)
        self.port = server.sockets[0].getsockname()[1]
        if ready_cb is not None:
            ready_cb(self.port, resumed)
        try:
            await self._stop.wait()
        finally:
            # In-flight jobs keep their journaled parts; a restart with
            # --resume re-enqueues only the missing tasks.  Close the
            # fleet *before* waiting the server down so long-polling
            # /lease handlers return promptly instead of pinning the
            # listener for a full poll window.
            for job in self.manager.jobs.values():
                if job.runner is not None and not job.runner.done():
                    job.runner.cancel()
            await self.manager.drain()
            self.fleet.close()
            server.close()
            try:
                await server.wait_closed()
            except (ConnectionError, OSError):
                pass
            if self.journal is not None:
                self.journal.append({"type": "shutdown"})

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        headers: dict[str, str] = {}
        try:
            try:
                # A client that connects and never finishes its headers
                # must not pin this handler forever; the timeout covers
                # only the read, never a long-poll route.
                read = self._read_request(reader)
                if self.config.read_timeout_s is not None:
                    read = asyncio.wait_for(read, self.config.read_timeout_s)
                method, path, body = await read
                status, doc = await self._route(method, path, body)
            except ProtocolError as error:
                status, doc = 400, {"error": str(error)}
            except WireError as error:
                status, doc = 400, {"error": f"bad wire document: {error}"}
            except QueueFullError as error:
                headers["Retry-After"] = str(error.retry_after_s)
                status, doc = 429, {"error": str(error),
                                    "retry_after_s": error.retry_after_s}
            except UnknownWorkerError as error:
                status, doc = 409, {"error": str(error)}
            except _HttpError as error:
                status, doc = error.status, {"error": error.message}
            except (asyncio.TimeoutError, TimeoutError):
                status, doc = 408, {"error": "timed out reading request"}
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            except Exception as error:  # noqa: BLE001 - keep serving
                status, doc = 500, {"error":
                                    f"{type(error).__name__}: {error}"}
            payload = (json.dumps(doc, indent=2) + "\n").encode()
            extra = "".join(f"{name}: {value}\r\n"
                            for name, value in headers.items())
            writer.write(
                f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n{extra}"
                f"Connection: close\r\n\r\n".encode() + payload)
            await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader,
                            ) -> tuple[str, str, dict | None]:
        head = await reader.readuntil(b"\r\n\r\n")
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = request_line.split(" ", 2)
        except ValueError:
            raise _HttpError(400, "malformed request line")
        length = 0
        for line in header_lines:
            name, sep, value = line.partition(":")
            if sep and name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    raise _HttpError(400, "bad Content-Length")
        if length < 0:
            # int("-5") parses fine but readexactly(-5) raises a bare
            # ValueError that used to surface as a 500.
            raise _HttpError(400, "bad Content-Length")
        if length > _MAX_BODY:
            raise _HttpError(400, "body too large")
        body = None
        if length:
            raw = await reader.readexactly(length)
            try:
                body = json.loads(raw)
            except ValueError:
                raise _HttpError(400, "body is not valid JSON")
        return method.upper(), target, body

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------
    def _remote_fleet(self) -> RemoteFleet:
        if not isinstance(self.fleet, RemoteFleet):
            raise _HttpError(409, "daemon is running a local fleet "
                                  "(start it with --fleet remote)")
        return self.fleet

    async def _route(self, method: str, target: str, body: dict | None,
                     ) -> tuple[int, dict]:
        path, _, query = target.partition("?")
        parts = [p for p in path.split("/") if p]
        manager = self.manager
        assert manager is not None  # serve() set it before listening

        if method == "GET" and parts == ["healthz"]:
            states = [j.state for j in manager.jobs.values()]
            return 200, {
                "ok": True,
                "workers": self.fleet.workers,
                "jobs": {state: states.count(state)
                         for state in sorted(set(states))},
            }
        if method == "GET" and parts == ["stats"]:
            return 200, {
                "cache": self.cache.stats(),
                "fleet": self.fleet.stats(),
                "queue": {"pending_tasks": manager.pending_tasks(),
                          "limit": manager.queue_limit},
                "jobs": manager.stats(),
            }
        if method == "POST" and parts == ["jobs"]:
            if body is None:
                raise ProtocolError("POST /jobs needs a JSON job spec body")
            job = manager.submit(body)
            return 202, job.describe()
        if method == "GET" and parts == ["jobs"]:
            return 200, {"jobs": manager.describe_jobs()}
        if method == "GET" and len(parts) == 2 and parts[0] == "jobs":
            job = manager.get(parts[1])
            if job is None:
                raise _HttpError(404, f"no such job {parts[1]!r}")
            return 200, job.describe()
        if (method == "GET" and len(parts) == 3 and parts[0] == "jobs"
                and parts[2] == "result"):
            job = manager.get(parts[1])
            if job is None:
                raise _HttpError(404, f"no such job {parts[1]!r}")
            if "wait=1" in query.split("&") and job.runner is not None:
                await asyncio.shield(
                    asyncio.gather(job.runner, return_exceptions=True))
            if job.state == "failed":
                return 200, {"id": job.id, "state": job.state,
                             "error": job.error}
            if job.result is None:
                return 409, {"id": job.id, "state": job.state,
                             "error": "job is still running; retry or "
                                      "pass ?wait=1"}
            return 200, {"id": job.id, "state": job.state,
                         "seed_hits": job.seed_hits, "result": job.result}
        if method == "POST" and parts == ["register"]:
            fleet = self._remote_fleet()
            doc = body or {}
            return 200, fleet.register(doc.get("name"), doc.get("slots", 1))
        if method == "POST" and parts == ["lease"]:
            fleet = self._remote_fleet()
            if not body or "worker" not in body:
                raise ProtocolError("POST /lease needs {\"worker\": id}")
            return 200, await fleet.lease(body["worker"])
        if method == "POST" and parts == ["heartbeat"]:
            fleet = self._remote_fleet()
            if not body or "worker" not in body:
                raise ProtocolError("POST /heartbeat needs {\"worker\": id}")
            return 200, fleet.heartbeat(body["worker"])
        if method == "POST" and parts == ["parts"]:
            fleet = self._remote_fleet()
            if not body or "lease" not in body:
                raise ProtocolError(
                    "POST /parts needs {\"worker\", \"lease\", "
                    "\"part\"|\"error\"}")
            return 200, fleet.deliver(body.get("worker"), body["lease"],
                                      part=body.get("part"),
                                      error=body.get("error"))
        if method == "POST" and parts == ["shutdown"]:
            self.request_stop()
            return 200, {"ok": True, "stopping": True}
        raise _HttpError(404, f"no route {method} {path}")


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
