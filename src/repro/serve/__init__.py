"""Scheduler-as-a-service: the ``repro serve`` daemon (docs/SERVE_API.md).

The pieces PRs 1-6 built — union-complete mapspace shards, the
CRC-journaled :class:`~repro.search.CheckpointJournal`, fault-tolerant
pool execution and the fingerprint-keyed
:class:`~repro.search.EvalCache` — composed into a long-running job
server:

* :mod:`repro.serve.protocol` — job specs, normalisation, and the
  canonical shard-merge tie-breaks;
* :mod:`repro.serve.cache` — the process-shared cross-request
  :class:`SharedEvalCache` (admission/eviction policy, per-job hit
  accounting);
* :mod:`repro.serve.tasks` — the picklable worker entry point;
* :mod:`repro.serve.fleet` — the :class:`FleetBackend` contract and
  the fault-tolerant local pool fleet (workers can die and rejoin;
  lost tasks re-run bit-identically);
* :mod:`repro.serve.remote` — the lease-based :class:`RemoteFleet`
  and the ``repro worker`` agent (multi-host fan-out with lease
  fencing and exactly-once part admission);
* :mod:`repro.serve.wire` — the exact JSON codec that carries cache
  seeds and entries across the HTTP boundary;
* :mod:`repro.serve.jobs` — the :class:`JobManager` (decompose, fan
  out, merge, durable state, resume, bounded-queue backpressure);
* :mod:`repro.serve.server` — the stdlib-only asyncio HTTP/JSON
  front-end;
* :mod:`repro.serve.client` — the ``repro submit``/``jobs``/``result``
  client.
"""

from .cache import SeedCache, SharedEvalCache
from .client import ServeClient, ServeError
from .jobs import Job, JobManager, QueueFullError
from .fleet import FleetBackend, WorkerFleet
from .remote import RemoteFleet, WorkerAgent, run_worker
from .protocol import (
    ProtocolError,
    decompose_job,
    job_fingerprint,
    merge_job,
    normalize_job,
    outcome_sort_key,
)
from .server import ServeConfig, ServeDaemon

__all__ = [
    "FleetBackend",
    "Job",
    "JobManager",
    "ProtocolError",
    "QueueFullError",
    "RemoteFleet",
    "SeedCache",
    "ServeClient",
    "ServeConfig",
    "ServeDaemon",
    "ServeError",
    "SharedEvalCache",
    "WorkerAgent",
    "WorkerFleet",
    "decompose_job",
    "job_fingerprint",
    "merge_job",
    "normalize_job",
    "outcome_sort_key",
    "run_worker",
]
