"""Scheduler-as-a-service: the ``repro serve`` daemon (docs/SERVE_API.md).

The pieces PRs 1-6 built — union-complete mapspace shards, the
CRC-journaled :class:`~repro.search.CheckpointJournal`, fault-tolerant
pool execution and the fingerprint-keyed
:class:`~repro.search.EvalCache` — composed into a long-running job
server:

* :mod:`repro.serve.protocol` — job specs, normalisation, and the
  canonical shard-merge tie-breaks;
* :mod:`repro.serve.cache` — the process-shared cross-request
  :class:`SharedEvalCache` (admission/eviction policy, per-job hit
  accounting);
* :mod:`repro.serve.tasks` — the picklable worker entry point;
* :mod:`repro.serve.fleet` — the fault-tolerant worker fleet (workers
  can die and rejoin; lost tasks re-run bit-identically);
* :mod:`repro.serve.jobs` — the :class:`JobManager` (decompose, fan
  out, merge, durable state, resume);
* :mod:`repro.serve.server` — the stdlib-only asyncio HTTP/JSON
  front-end;
* :mod:`repro.serve.client` — the ``repro submit``/``jobs``/``result``
  client.
"""

from .cache import SeedCache, SharedEvalCache
from .client import ServeClient, ServeError
from .jobs import Job, JobManager
from .fleet import WorkerFleet
from .protocol import (
    ProtocolError,
    decompose_job,
    job_fingerprint,
    merge_job,
    normalize_job,
    outcome_sort_key,
)
from .server import ServeConfig, ServeDaemon

__all__ = [
    "Job",
    "JobManager",
    "ProtocolError",
    "SeedCache",
    "ServeClient",
    "ServeConfig",
    "ServeDaemon",
    "ServeError",
    "SharedEvalCache",
    "WorkerFleet",
    "decompose_job",
    "job_fingerprint",
    "merge_job",
    "normalize_job",
    "outcome_sort_key",
]
