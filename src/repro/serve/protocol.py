"""Job specifications, normalisation and canonical merges.

A *job* is one scheduling request — the service twin of a CLI
invocation:

``schedule``
    one workload, optionally split into ``shards`` union-complete
    mapspace shards (``--shard I/N`` semantics, docs/MAPSPACE.md);
``compare``
    Sunstone plus the selected baseline mappers on one workload;
``network``
    every layer of a model, deduplicated by shape exactly like
    :func:`repro.core.network.schedule_network`.

Specs normalise to a **self-contained JSON document**: workload and
architecture are embedded as the ``repro.mapping.serialize`` dicts, so
a task shipped to a worker (or replayed from the daemon's journal)
never depends on the submitting host's filesystem or preset table.
Normalisation is deterministic, which makes :func:`decompose_job`
replay-stable: a daemon restarted with ``--resume`` re-derives exactly
the task list it journaled.

Merging follows the CLI's canonical-tie-break principle
(``core.scheduler._state_key``): equal-objective outcomes are ranked by
the canonical mapping content, never by shard index or arrival order,
so the merged winner of N shard tasks is bit-identical to what N
cooperating ``repro schedule --shard I/N`` runs plus the same merge
would produce — and a 1-shard job is bit-identical to the cold,
unsharded CLI run (pinned by ``tests/test_serve.py``).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Callable, Sequence

from ..mapping.serialize import (
    architecture_from_dict,
    architecture_to_dict,
    workload_from_dict,
    workload_to_dict,
)
from ..sparse import SparsityError, spec_from_cli

JOB_KINDS = ("schedule", "compare", "network")

# Canonical mapper order of ``repro compare`` (cli.compare_runners).
MAPPER_ORDER = (
    "sunstone",
    "timeloop-like",
    "dmazerunner-like",
    "interstellar-like",
    "cosa-like",
    "gamma-like",
)

MAX_SHARDS = 4096


class ProtocolError(ValueError):
    """A job specification the service cannot accept."""


def _canonical_json(doc: Any) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def job_fingerprint(job: dict) -> str:
    """Short content hash of a normalised job (display / sanity checks)."""
    return hashlib.sha256(_canonical_json(job).encode()).hexdigest()[:12]


# ---------------------------------------------------------------------------
# normalisation
# ---------------------------------------------------------------------------

def _normalize_workload(entry: Any) -> dict:
    """Resolve a workload reference to its serialised document.

    Accepts either an inline ``workload_to_dict`` document or a
    ``{"kind": "mttkrp", "dims": {"I": 64, ...}}`` reference to the
    library builders the CLI exposes.
    """
    if not isinstance(entry, dict):
        raise ProtocolError(f"workload must be an object, got {entry!r}")
    if "tensors" in entry:
        try:
            return workload_to_dict(workload_from_dict(entry))
        except (KeyError, TypeError, ValueError) as error:
            raise ProtocolError(f"bad workload document: {error}")
    kind = entry.get("kind")
    dims = entry.get("dims")
    if not isinstance(kind, str) or not isinstance(dims, dict):
        raise ProtocolError(
            "workload needs either an inline document (with 'tensors') or "
            "{'kind': NAME, 'dims': {DIM: SIZE, ...}}")
    from ..cli import build_workload
    try:
        pairs = [f"{d}={int(v)}" for d, v in dims.items()]
        return workload_to_dict(build_workload(kind, pairs))
    except SystemExit as error:
        raise ProtocolError(str(error))
    except (TypeError, ValueError) as error:
        raise ProtocolError(f"bad workload dims: {error}")


def _normalize_tech(entry: Any) -> str | None:
    """Validate the job-spec ``tech`` field (a registered pack name)."""
    if entry is None:
        return None
    if not isinstance(entry, str):
        raise ProtocolError(f"tech must be a pack name, got {entry!r}")
    from ..energy.tech import TechnologyError, get_pack
    try:
        return get_pack(entry).name
    except TechnologyError as error:
        raise ProtocolError(str(error))


def _normalize_arch(entry: Any, tech: str | None = None) -> dict:
    """Resolve an architecture (preset name or inline document).

    With ``tech``, presets are built under that technology pack and
    inline documents that carry component metadata are re-resolved;
    documents without component metadata cannot be retargeted and are
    rejected when ``tech`` disagrees with the document's own pack.
    The returned document embeds the resolved energies *and* the pack
    identity, so worker tasks are self-contained.
    """
    if isinstance(entry, str):
        from ..cli import ARCHITECTURES
        if entry not in ARCHITECTURES:
            raise ProtocolError(
                f"unknown architecture {entry!r}; choose from "
                f"{sorted(ARCHITECTURES)} or embed a document")
        if tech is not None:
            return architecture_to_dict(ARCHITECTURES[entry](tech=tech))
        return architecture_to_dict(ARCHITECTURES[entry]())
    if isinstance(entry, dict):
        try:
            arch = architecture_from_dict(entry)
        except (KeyError, TypeError, ValueError) as error:
            raise ProtocolError(f"bad architecture document: {error}")
        if tech is not None and tech != arch.tech:
            if not any(lvl.component is not None for lvl in arch.levels):
                raise ProtocolError(
                    f"architecture document (pack '{arch.tech}') carries no "
                    f"component metadata, so it cannot be retargeted to "
                    f"pack '{tech}'")
            from ..energy.tech import TechnologyError, resolve_architecture
            try:
                arch = resolve_architecture(arch, tech)
            except TechnologyError as error:
                raise ProtocolError(str(error))
        return architecture_to_dict(arch)
    raise ProtocolError(f"architecture must be a preset name or an object, "
                        f"got {entry!r}")


def _normalize_sparsity(entry: Any, workload_doc: dict) -> dict | None:
    """Validate the CLI-style sparsity assignment lists."""
    if entry is None:
        return None
    if not isinstance(entry, dict):
        raise ProtocolError("sparsity must be an object of CLI assignment "
                            "lists: {'density': [...], 'format': [...], "
                            "'saf': [...]}")
    density = list(entry.get("density") or [])
    fmt = list(entry.get("format") or [])
    saf = list(entry.get("saf") or [])
    if not (density or fmt or saf):
        return None
    names = [t["name"] for t in workload_doc["tensors"]]
    try:
        spec = spec_from_cli(density, fmt, saf, tensor_names=names)
    except (SparsityError, ValueError) as error:
        raise ProtocolError(f"bad sparsity spec: {error}")
    if spec is None:
        return None
    return {"density": density, "format": fmt, "saf": saf}


def build_sparsity_spec(job_or_task: dict):
    """Reconstruct the :class:`SparsitySpec` of a normalised doc
    (``None`` for dense jobs)."""
    entry = job_or_task.get("sparsity")
    if entry is None:
        return None
    names = [t["name"] for t in job_or_task["workload"]["tensors"]]
    return spec_from_cli(entry["density"], entry["format"], entry["saf"],
                         tensor_names=names)


_OPTION_DEFAULTS = {"batch": True, "batch_gen": True, "bound": True,
                    "cache_size": None}


def _normalize_options(entry: Any) -> dict:
    options = dict(_OPTION_DEFAULTS)
    if entry is None:
        return options
    if not isinstance(entry, dict):
        raise ProtocolError("options must be an object")
    for key, value in entry.items():
        if key not in _OPTION_DEFAULTS:
            raise ProtocolError(f"unknown option {key!r}; choose from "
                                f"{sorted(_OPTION_DEFAULTS)}")
        options[key] = value
    for key in ("batch", "batch_gen", "bound"):
        options[key] = bool(options[key])
    if options["cache_size"] is not None:
        options["cache_size"] = int(options["cache_size"])
        if options["cache_size"] < 0:
            raise ProtocolError("cache_size must be >= 0 (0 = unbounded)")
    return options


def normalize_job(spec: dict) -> dict:
    """Validate a raw job spec and return its canonical document.

    The result is pure JSON (round-tripped through the serialisers), so
    journaling, task decomposition and resume all see the same bytes.
    """
    if not isinstance(spec, dict):
        raise ProtocolError("job spec must be a JSON object")
    kind = spec.get("kind")
    if kind not in JOB_KINDS:
        raise ProtocolError(f"job kind must be one of {JOB_KINDS}, "
                            f"got {kind!r}")
    objective = spec.get("objective", "edp")
    if objective not in ("edp", "energy"):
        raise ProtocolError(f"unknown objective {objective!r}")
    tech = _normalize_tech(spec.get("tech"))
    arch = _normalize_arch(spec.get("arch", "conventional"), tech)
    options = _normalize_options(spec.get("options"))
    job: dict[str, Any] = {"kind": kind, "arch": arch,
                           "objective": objective, "options": options}
    if tech is not None:
        # The resolved arch document already embeds the pack identity;
        # recording the request keeps the job fingerprint pack-aware even
        # for packs whose resolved energies coincide.
        job["tech"] = tech

    if kind == "network":
        layers = spec.get("layers")
        if not isinstance(layers, list) or not layers:
            raise ProtocolError("network jobs need a non-empty 'layers' "
                                "list of workload documents")
        job["layers"] = [_normalize_workload(entry) for entry in layers]
        # Round-trip WITHOUT key sorting: dict order in the serialised
        # workload (e.g. ``dims``) is the searchers' iteration order, and
        # reordering it would send samplers down different (equally
        # valid) trajectories than the cold CLI.  Fingerprints sort.
        return json.loads(json.dumps(job))

    workload = _normalize_workload(spec.get("workload"))
    job["workload"] = workload
    job["sparsity"] = _normalize_sparsity(spec.get("sparsity"), workload)
    if kind == "schedule":
        shards = spec.get("shards", 1)
        try:
            shards = int(shards)
        except (TypeError, ValueError):
            raise ProtocolError(f"shards must be an integer, got {shards!r}")
        if not 1 <= shards <= MAX_SHARDS:
            raise ProtocolError(f"shards must be in [1, {MAX_SHARDS}]")
        job["shards"] = shards
    else:  # compare
        mappers = spec.get("mappers")
        if isinstance(mappers, str):
            mappers = [m.strip() for m in mappers.split(",") if m.strip()]
        if mappers is not None:
            if not isinstance(mappers, list):
                raise ProtocolError("mappers must be a list or a "
                                    "comma-separated string")
            known = {name.split("-")[0] for name in MAPPER_ORDER}
            for m in mappers:
                if m.split("-")[0] not in known:
                    raise ProtocolError(f"unknown mapper {m!r}; choose "
                                        f"from {sorted(known)}")
            mappers = sorted({m.split("-")[0] for m in mappers})
        job["mappers"] = mappers
    # See the network branch above: preserve document key order.
    return json.loads(json.dumps(job))


# ---------------------------------------------------------------------------
# decomposition
# ---------------------------------------------------------------------------

def _shape_key(workload_doc: dict) -> str:
    """Shape identity mirroring ``core.network._shape_key`` (name-blind)."""
    return _canonical_json({
        "dims": workload_doc["dims"],
        "tensors": workload_doc["tensors"],
    })


def selected_mappers(job: dict) -> list[str]:
    """Mapper rows of a compare job, in the CLI's canonical order."""
    chosen = job.get("mappers")
    names = []
    for name in MAPPER_ORDER:
        if (chosen is not None and name != "sunstone"
                and name.split("-")[0] not in chosen):
            continue
        names.append(name)
    return names


def decompose_job(job: dict) -> list[dict]:
    """Split a normalised job into its independent worker tasks.

    Deterministic: the task list is a pure function of the job document
    (resume re-derives it).  Every task is self-contained JSON.
    """
    base = {"arch": job["arch"], "options": job["options"]}
    if job["kind"] == "schedule":
        n = job["shards"]
        return [
            {"type": "schedule", "index": i,
             "workload": job["workload"], "objective": job["objective"],
             "sparsity": job.get("sparsity"),
             "shard": None if n == 1 else [i, n], **base}
            for i in range(n)
        ]
    if job["kind"] == "compare":
        return [
            {"type": "mapper", "index": i, "name": name,
             "workload": job["workload"], "objective": job["objective"],
             "sparsity": job.get("sparsity"), **base}
            for i, name in enumerate(selected_mappers(job))
        ]
    # network: one task per distinct layer shape, covering its repeats.
    tasks: list[dict] = []
    seen: dict[str, dict] = {}
    for i, layer in enumerate(job["layers"]):
        key = _shape_key(layer)
        owner = seen.get(key)
        if owner is not None:
            owner["covers"].append(i)
            continue
        task = {"type": "layer", "index": len(tasks), "layer": i,
                "covers": [i], "workload": layer,
                "objective": job["objective"], "sparsity": None, **base}
        seen[key] = task
        tasks.append(task)
    return tasks


# ---------------------------------------------------------------------------
# canonical merge
# ---------------------------------------------------------------------------

def _mapping_key(mapping_doc: dict) -> tuple:
    """Canonical, totally ordered identity of a mapping document —
    the serialisation-side twin of ``core.scheduler._state_key``, so
    ranking equal-cost outcomes never depends on shard or arrival
    order."""
    return tuple(
        (
            tuple(sorted((d, f) for d, f in lvl["temporal"])),
            tuple(sorted((d, f) for d, f in lvl["spatial"])),
            tuple((d, f) for d, f in lvl["temporal"]),
        )
        for lvl in mapping_doc["levels"]
    )


def outcome_sort_key(doc: dict, objective: str) -> tuple:
    """Rank of one outcome document: valid < invalid < not-found, then
    the objective value, then the canonical mapping key."""
    if not doc.get("found") or doc.get("cost") is None:
        return (2, 0.0, ())
    cost = doc["cost"]
    value = cost["edp"] if objective == "edp" else cost["energy_pj"]
    return ((0 if cost.get("valid") else 1), value,
            _mapping_key(doc["mapping"]))


def merge_stats(dicts: Sequence[dict | None]) -> dict:
    """Fold worker ``SearchStats.to_dict()`` records into one.

    Counters sum, ``workers`` takes the max, booleans OR, nested dicts
    recurse, and the derived ratios (``requests``/``hit_rate``/...) are
    recomputed from the summed counters — the dict twin of
    :meth:`repro.search.SearchStats.merge`.
    """
    merged: dict = {}
    for doc in dicts:
        if not doc:
            continue
        _merge_into(merged, doc)
    _refresh_derived(merged)
    return merged


def _merge_into(target: dict, other: dict) -> None:
    for key, value in other.items():
        if isinstance(value, dict):
            _merge_into(target.setdefault(key, {}), value)
        elif isinstance(value, bool):
            target[key] = bool(target.get(key)) or value
        elif isinstance(value, (int, float)):
            if key == "workers":
                target[key] = max(target.get(key, 0), value)
            else:
                target[key] = target.get(key, 0) + value
        else:
            target.setdefault(key, value)


def _refresh_derived(stats: dict) -> None:
    if not stats:
        return
    requests = stats.get("evaluations", 0) + stats.get("cache_hits", 0)
    stats["requests"] = requests
    stats["hit_rate"] = (stats.get("cache_hits", 0) / requests
                         if requests else 0.0)
    partial = stats.get("partial_hits", 0) + stats.get("partial_misses", 0)
    stats["partial_requests"] = partial
    stats["partial_hit_rate"] = (stats.get("partial_hits", 0) / partial
                                 if partial else 0.0)


def _sum_seed_hits(parts: Sequence[dict]) -> int:
    return sum(int(p.get("seed_hits", 0)) for p in parts)


def merge_job(job: dict, parts: dict[int, dict]) -> dict:
    """Merge the completed task parts of ``job`` into its result doc.

    A pure function of the job document and the per-task parts (each
    ``{"doc": ..., "stats": ..., "seed_hits": ...}``), so a resumed
    daemon merging journaled parts produces byte-identical results.
    """
    tasks = decompose_job(job)
    missing = [t["index"] for t in tasks if t["index"] not in parts]
    if missing:
        raise ProtocolError(f"cannot merge job: tasks {missing} incomplete")
    ordered = [parts[t["index"]] for t in tasks]
    stats = merge_stats([p.get("stats") for p in ordered])
    seed_hits = _sum_seed_hits(ordered)

    if job["kind"] == "schedule":
        docs = [p["doc"] for p in ordered]
        best = min(docs, key=lambda d: outcome_sort_key(d, job["objective"]))
        status = ("ok" if best.get("found") and best["cost"].get("valid")
                  else ("invalid" if best.get("found") else "not-found"))
        return {
            "kind": "schedule",
            "objective": job["objective"],
            "found": bool(best.get("found")),
            "status": status,
            "mapping": best.get("mapping"),
            "cost": best.get("cost"),
            "evaluations": sum(d.get("evaluations", 0) for d in docs),
            "certificate": best.get("certificate"),
            "shards": job["shards"],
            "per_shard": [
                {"shard": t.get("shard"), "found": bool(d.get("found")),
                 "evaluations": d.get("evaluations", 0)}
                for t, d in zip(tasks, docs)
            ],
            "search": stats,
            "seed_hits": seed_hits,
        }

    if job["kind"] == "compare":
        return {
            "kind": "compare",
            "mappers": [p["doc"] for p in ordered],
            "search": stats,
            "seed_hits": seed_hits,
        }

    # network
    owners: dict[int, tuple[dict, dict]] = {}
    for task, part in zip(tasks, ordered):
        for covered in task["covers"]:
            owners[covered] = (task, part)
    layer_docs = []
    total_energy = 0.0
    total_cycles = 0.0
    found_all = True
    for i, layer in enumerate(job["layers"]):
        task, part = owners[i]
        doc = part["doc"]
        found = bool(doc.get("found"))
        found_all = found_all and found
        if found:
            total_energy += doc["cost"]["energy_pj"]
            total_cycles += doc["cost"]["cycles"]
        shared_with = None
        if task["covers"][0] != i:
            shared_with = job["layers"][task["covers"][0]]["name"]
        layer_docs.append({
            "layer": layer["name"],
            "found": found,
            "shared_with": shared_with,
            "cost": doc.get("cost"),
            "mapping": doc.get("mapping"),
            "evaluations": doc.get("evaluations", 0),
        })
    return {
        "kind": "network",
        "found_all": found_all,
        "totals": {
            "energy_pj": total_energy,
            "cycles": total_cycles,
            "edp": total_energy * total_cycles,
            "unique_searches": len(tasks),
        },
        "layers": layer_docs,
        "search": stats,
        "seed_hits": seed_hits,
    }


def workload_fingerprints(task: dict) -> tuple:
    """(workload_fp, arch_fp) of a task — the seed-relevance key the
    shared cache filters on (fingerprints lead every cache key)."""
    from ..search import architecture_fingerprint, workload_fingerprint
    workload = workload_from_dict(task["workload"])
    arch = architecture_from_dict(task["arch"])
    return workload_fingerprint(workload), architecture_fingerprint(arch)


JobMergeFn = Callable[[dict, dict[int, dict]], dict]
