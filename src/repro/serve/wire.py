"""JSON wire codec for cache seeds and computed entries.

The local :class:`~repro.serve.fleet.WorkerFleet` ships task payloads
to pool processes by pickle, so the seed a task receives and the
entries it returns — ``(fingerprint, CostResult)`` pairs, where a
fingerprint is a nest of tuples/scalars that may embed a frozen
:class:`~repro.sparse.spec.SparsitySpec` — never leave the Python
object world.  A remote worker talks HTTP/JSON, so those objects need
an exact, reversible JSON form.

The codec is value-preserving, not merely structural:

* JSON floats round-trip exactly in Python (``repr``-based emit, exact
  parse), so decoded :class:`~repro.model.cost.CostResult`\\ s compare
  equal to the originals bit for bit;
* tuples are tagged (``{"__t__": [...]}``) so decoding restores
  hashable fingerprint keys, never lists;
* dataclass leaves (:class:`SparsitySpec`, :class:`TensorSparsity`,
  the density models, :class:`CostResult`) are tagged by kind and
  rebuilt through their constructors, so invariants (canonical entry
  order, validation) re-apply on decode.

A :class:`CostResult` that carries ``accesses`` cannot be shipped (the
engine's cache never stores one — ``keep_accesses`` is a report-path
flag); :func:`encode_entries` simply drops such an entry, which is
always sound because the shared cache is a pure accelerator.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, Sequence

from ..model.cost import CostResult
from ..sparse.density import Banded, Dense, Uniform
from ..sparse.spec import SparsitySpec, TensorSparsity

_DENSITY_KINDS = {cls.__name__: cls for cls in (Dense, Uniform, Banded)}


class WireError(ValueError):
    """A document the codec cannot encode or decode."""


def _encode_dataclass(value: Any) -> dict:
    return {f.name: encode_value(getattr(value, f.name))
            for f in dataclasses.fields(value)}


def encode_value(value: Any) -> Any:
    """Encode one fingerprint/result value into JSON-safe form."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {"__t__": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return {"__l__": [encode_value(v) for v in value]}
    if isinstance(value, dict):
        return {"__m__": [[encode_value(k), encode_value(v)]
                          for k, v in value.items()]}
    if isinstance(value, SparsitySpec):
        return {"__sparsity__": encode_value(value.entries)}
    if isinstance(value, TensorSparsity):
        return {"__tensor_sparsity__": _encode_dataclass(value)}
    if type(value).__name__ in _DENSITY_KINDS:
        return {"__density__": [type(value).__name__,
                                _encode_dataclass(value)]}
    if isinstance(value, CostResult):
        if value.accesses is not None:
            raise WireError("CostResult with accesses is not shippable")
        doc = _encode_dataclass(value)
        doc.pop("accesses")
        return {"__cost__": doc}
    raise WireError(f"cannot encode {type(value).__name__} for the wire")


def decode_value(doc: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if doc is None or isinstance(doc, (bool, int, float, str)):
        return doc
    if isinstance(doc, list):
        # Bare arrays never leave encode_value; reject rather than
        # guess tuple-vs-list (hashability of keys depends on it).
        raise WireError("untagged array in wire document")
    if not isinstance(doc, dict) or len(doc) != 1:
        raise WireError(f"malformed wire node: {doc!r}")
    tag, body = next(iter(doc.items()))
    if tag == "__t__":
        return tuple(decode_value(v) for v in body)
    if tag == "__l__":
        return [decode_value(v) for v in body]
    if tag == "__m__":
        return {decode_value(k): decode_value(v) for k, v in body}
    if tag == "__sparsity__":
        return SparsitySpec(entries=decode_value(body))
    if tag == "__tensor_sparsity__":
        return TensorSparsity(**{k: decode_value(v)
                                 for k, v in body.items()})
    if tag == "__density__":
        name, fields = body
        if name not in _DENSITY_KINDS:
            raise WireError(f"unknown density model {name!r}")
        return _DENSITY_KINDS[name](**{k: decode_value(v)
                                       for k, v in fields.items()})
    if tag == "__cost__":
        return CostResult(**{k: decode_value(v) for k, v in body.items()})
    raise WireError(f"unknown wire tag {tag!r}")


def encode_entries(entries: Iterable[tuple[Any, Any]]) -> list:
    """Encode ``(fingerprint, CostResult)`` pairs; entries that cannot
    cross the wire (``accesses`` attached) are dropped — sound, because
    the shared cache is a pure accelerator."""
    encoded = []
    for key, result in entries:
        try:
            encoded.append([encode_value(key), encode_value(result)])
        except WireError:
            continue
    return encoded


def decode_entries(doc: Sequence) -> list[tuple[Any, Any]]:
    """Decode a wire entry list back into ``(key, CostResult)`` pairs."""
    if not doc:
        return []
    return [(decode_value(key), decode_value(result))
            for key, result in doc]
