"""Fleet backends for the serve daemon.

:class:`FleetBackend` is the contract the :class:`JobManager` drives:
``run(payload) -> part`` executes one self-contained task document and
returns its mergeable part, ``stats()`` snapshots health counters,
``close()`` releases resources.  Two implementations exist:

* :class:`WorkerFleet` (here) — the local ``ProcessPoolExecutor`` pool
  with the same recovery contract as the search engine's
  ``_run_pooled`` (docs/SEARCH.md, "Fault recovery"): a worker death
  surfaces as ``BrokenExecutor`` on the awaiting task, the pool is
  rebuilt exactly once per break (a generation counter keeps concurrent
  awaiters from stampeding), and the lost task is re-submitted.
  Because :func:`repro.serve.tasks.run_task` is a pure function of its
  payload, the retry is bit-identical to the run that died.  After the
  attempt budget the task degrades to an in-process run so the job
  still completes (counted, and reported via ``/stats``).
* :class:`~repro.serve.remote.RemoteFleet` — lease-based fan-out to
  ``repro worker`` processes on other hosts (docs/SERVE_API.md,
  "Remote worker fleets").

``workers=0`` runs everything in-process (no pool) — the deterministic
mode the unit tests use.
"""

from __future__ import annotations

import abc
import asyncio
import threading
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor

from .tasks import run_task


class FleetBackend(abc.ABC):
    """What the :class:`~repro.serve.jobs.JobManager` needs from a
    fleet: execute payloads, report health, shut down."""

    #: Nominal parallelism, for display (``/healthz``).
    workers: int = 0

    @property
    def gate_size(self) -> int:
        """How many tasks the manager should dispatch (and therefore
        seed) concurrently.  Local fleets gate to their real
        parallelism so queued tasks seed late — and warm."""
        return max(1, self.workers)

    @abc.abstractmethod
    async def run(self, payload: dict) -> dict:
        """Execute one task payload and return its part document."""

    @abc.abstractmethod
    def stats(self) -> dict:
        """JSON-ready health counters for ``/stats``."""

    @abc.abstractmethod
    def close(self) -> None:
        """Release the backend's resources (idempotent)."""


class WorkerFleet(FleetBackend):
    """Owns the local worker pool; ``run`` survives worker deaths.

    Counter discipline: ``stats()`` reads under ``_lock``, so every
    counter write takes the same lock — ``run`` is called from many
    concurrent manager tasks and unlocked ``+= 1`` increments can lose
    updates under free-threaded interleavings.
    """

    def __init__(self, workers: int = 1, *, max_task_attempts: int = 3,
                 rebuild_backoff_s: float = 0.05) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0 (0 = in-process)")
        if max_task_attempts < 1:
            raise ValueError("max_task_attempts must be >= 1")
        self.workers = workers
        self.max_task_attempts = max_task_attempts
        self.rebuild_backoff_s = rebuild_backoff_s
        self._lock = threading.Lock()
        self._generation = 0
        self._closed = False
        self._pool: ProcessPoolExecutor | None = (
            ProcessPoolExecutor(max_workers=workers) if workers else None)
        self.tasks_run = 0
        self.crashes_recovered = 0
        self.retries = 0
        self.pool_rebuilds = 0
        self.degraded_tasks = 0

    # ------------------------------------------------------------------
    def _count(self, counter: str, delta: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + delta)

    def _rebuild(self, seen_generation: int) -> None:
        """Replace a broken pool (once per break: later callers that saw
        the same generation find it already bumped and do nothing)."""
        old = None
        with self._lock:
            if self._closed or not self.workers:
                return
            if self._generation != seen_generation:
                return
            old = self._pool
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
            self._generation += 1
            self.pool_rebuilds += 1
        if old is not None:
            old.shutdown(wait=False, cancel_futures=True)

    async def _run_inline(self, payload: dict) -> dict:
        part = await asyncio.to_thread(run_task, payload)
        self._count("tasks_run")
        return part

    async def run(self, payload: dict) -> dict:
        """Execute one task payload; retries only pool breakage.

        A deterministic task error (bad document, model bug) propagates
        immediately — retrying it would fail identically.
        """
        if self._closed:
            raise RuntimeError("fleet is closed")
        if not self.workers:
            return await self._run_inline(payload)
        for attempt in range(self.max_task_attempts):
            if attempt:
                self._count("retries")
            with self._lock:
                pool, generation = self._pool, self._generation
            try:
                future = pool.submit(run_task, dict(payload, attempt=attempt))
                try:
                    part = await asyncio.wrap_future(future)
                except asyncio.CancelledError:
                    # The awaiting manager task was cancelled (job
                    # failure or daemon shutdown): abandoning the pool
                    # future would leave the worker grinding on — and
                    # journaling nothing — so cancel it explicitly.  A
                    # queued work item dies here; a running one finishes
                    # and is discarded by the pool.
                    future.cancel()
                    raise
                self._count("tasks_run")
                return part
            except BrokenExecutor:
                self._count("crashes_recovered")
                self._rebuild(generation)
                await asyncio.sleep(self.rebuild_backoff_s * (attempt + 1))
        # Attempt budget exhausted: the pool keeps breaking on this
        # task.  Run it in-process so the job completes (bit-identical;
        # the daemon just loses parallelism for this one task).
        self._count("degraded_tasks")
        return await self._run_inline(
            dict(payload, attempt=self.max_task_attempts))

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            return {
                "backend": "local",
                "workers": self.workers,
                "generation": self._generation,
                "tasks_run": self.tasks_run,
                "crashes_recovered": self.crashes_recovered,
                "retries": self.retries,
                "pool_rebuilds": self.pool_rebuilds,
                "degraded_tasks": self.degraded_tasks,
            }

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
