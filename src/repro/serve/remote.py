"""Remote worker fleets: lease-based fan-out over the HTTP surface.

The daemon side (:class:`RemoteFleet`) and the worker side
(:func:`run_worker`, the ``repro worker`` command) of multi-host serve
(docs/SERVE_API.md, "Remote worker fleets").  The protocol is four
endpoints on the existing daemon:

``POST /register``   ``{"name", "slots"}`` -> ``{"worker", "lease_ttl_s"}``
``POST /lease``      long-poll for work: ``{"worker"}`` ->
                     ``{"lease", "payload"}`` (``lease: null`` when the
                     poll window closes empty)
``POST /heartbeat``  ``{"worker"}`` -> ``{"ok", "leases"}`` — renews
                     every lease the worker holds
``POST /parts``      ``{"worker", "lease", "part"|"error"}`` ->
                     ``{"accepted": bool}``

Correctness contract: a lease that is not renewed within
``lease_ttl_s`` is **fenced** — removed from the lease table and its
task re-queued (with ``attempt`` bumped, so first-attempt kill hooks
do not re-fire).  A fenced worker's late ``POST /parts`` no longer
matches a live lease and is discarded, so each task resolves **exactly
once**; because :func:`repro.serve.tasks.run_task` is a pure function
of its payload, the re-leased run's part is bit-identical to the one
the dead worker would have delivered, and the merged job result is
bit-identical to a local-fleet (or cold CLI) run.

Cache seeds and computed entries are Python objects locally; they
cross the HTTP boundary through :mod:`repro.serve.wire`, whose codec
is exact (value-preserving floats, hashable keys).

Everything in :class:`RemoteFleet` runs on the daemon's event loop —
single-threaded, so plain attributes are safe.
"""

from __future__ import annotations

import asyncio
import os
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from .client import ServeClient, ServeError
from .fleet import FleetBackend, WorkerFleet
from .wire import decode_entries, encode_entries

#: ``JOBID:INDEX`` — a ``repro worker`` process hard-exits when it
#: *leases* that task on its first attempt (deterministic stand-in for
#: SIGKILLing the worker mid-lease; the daemon must fence and re-lease).
WORKER_KILL_ENV = "REPRO_WORKER_KILL_LEASE"


class RemoteTaskError(RuntimeError):
    """A deterministic task failure reported by a remote worker."""


class UnknownWorkerError(KeyError):
    """A worker id the daemon does not know (it must re-register —
    e.g. after a daemon restart emptied the in-memory registry)."""

    def __init__(self, worker_id: Any) -> None:
        super().__init__(worker_id)
        self.worker_id = worker_id

    def __str__(self) -> str:
        return (f"unknown worker {self.worker_id!r}; "
                f"POST /register to (re)join the fleet")


@dataclass
class _Task:
    """One outstanding task: queued, leased, or (late) discarded."""

    payload: dict
    future: asyncio.Future
    lease: str | None = None
    worker: str | None = None
    deadline: float = 0.0
    cancelled: bool = False


@dataclass
class _Worker:
    """Daemon-side health record of one registered worker process."""

    id: str
    name: str
    slots: int
    registered_at: float
    last_seen: float
    leases_granted: int = 0
    parts_delivered: int = 0
    errors_delivered: int = 0
    fences: int = 0
    late_parts: int = 0
    heartbeats: int = 0

    def row(self, now: float, leases_held: int, alive_window: float) -> dict:
        return {
            "name": self.name,
            "slots": self.slots,
            "alive": (now - self.last_seen) <= alive_window,
            "last_heartbeat_s": round(now - self.last_seen, 3),
            "leases_held": leases_held,
            "leases_granted": self.leases_granted,
            "parts_delivered": self.parts_delivered,
            "errors_delivered": self.errors_delivered,
            "fences": self.fences,
            "late_parts": self.late_parts,
        }


class RemoteFleet(FleetBackend):
    """Lease-based fleet backend: tasks wait in a queue until a
    registered worker long-polls them out, and lease timeouts fence
    workers that stop heartbeating."""

    def __init__(self, *, lease_ttl_s: float = 30.0, poll_s: float = 10.0,
                 window: int = 32,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if lease_ttl_s <= 0:
            raise ValueError("lease_ttl_s must be > 0")
        if poll_s <= 0:
            raise ValueError("poll_s must be > 0")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.lease_ttl_s = lease_ttl_s
        self.poll_s = poll_s
        self.window = window
        self._clock = clock
        self._closed = False
        self._queue: list[_Task] = []
        self._wake = asyncio.Event()
        self._leases: dict[str, _Task] = {}
        self._workers: dict[str, _Worker] = {}
        self._worker_seq = 0
        self._lease_seq = 0
        self.tasks_run = 0
        self.tasks_failed = 0
        self.fences = 0
        self.late_parts_discarded = 0

    # ------------------------------------------------------------------
    # FleetBackend surface (what the JobManager drives)
    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:  # type: ignore[override]
        """Live worker processes (heartbeated within the alive window)."""
        now = self._clock()
        return sum(1 for w in self._workers.values()
                   if (now - w.last_seen) <= self._alive_window())

    @property
    def gate_size(self) -> int:
        # Dispatch (and therefore seed) up to ``window`` tasks at once:
        # remote capacity is dynamic, so the gate is a configured
        # dispatch window rather than a live worker count.
        return self.window

    async def run(self, payload: dict) -> dict:
        if self._closed:
            raise RuntimeError("fleet is closed")
        record = _Task(payload=dict(payload),
                       future=asyncio.get_running_loop().create_future())
        self._queue.append(record)
        self._notify()
        try:
            return await record.future
        except asyncio.CancelledError:
            self._abandon(record)
            raise

    def stats(self) -> dict:
        now = self._clock()
        held: dict[str, int] = {}
        for rec in self._leases.values():
            if rec.worker is not None:
                held[rec.worker] = held.get(rec.worker, 0) + 1
        return {
            "backend": "remote",
            "workers": self.workers,
            "registered": len(self._workers),
            "tasks_run": self.tasks_run,
            "tasks_failed": self.tasks_failed,
            "fences": self.fences,
            "late_parts_discarded": self.late_parts_discarded,
            "queued": len(self._queue),
            "leased": len(self._leases),
            "lease_ttl_s": self.lease_ttl_s,
            "per_worker": {
                wid: worker.row(now, held.get(wid, 0),
                                self._alive_window())
                for wid, worker in sorted(self._workers.items())
            },
        }

    def close(self) -> None:
        self._closed = True
        self._notify()

    # ------------------------------------------------------------------
    # HTTP-facing operations (called by the server routes)
    # ------------------------------------------------------------------
    def register(self, name: Any, slots: Any) -> dict:
        self._worker_seq += 1
        worker_id = f"w{self._worker_seq:03d}"
        now = self._clock()
        try:
            slots = max(1, int(slots))
        except (TypeError, ValueError):
            slots = 1
        self._workers[worker_id] = _Worker(
            id=worker_id, name=str(name or worker_id), slots=slots,
            registered_at=now, last_seen=now)
        return {"worker": worker_id, "lease_ttl_s": self.lease_ttl_s,
                "poll_s": self.poll_s}

    async def lease(self, worker_id: Any) -> dict:
        """Long-poll one task: blocks until work is available or the
        poll window closes (then ``{"lease": None}``)."""
        worker = self._require_worker(worker_id)
        deadline = self._clock() + self.poll_s
        while True:
            worker.last_seen = self._clock()
            self._renew(worker.id)
            self._reap()
            record = self._pop_runnable()
            if record is not None:
                return self._grant(worker, record)
            remaining = deadline - self._clock()
            if remaining <= 0 or self._closed:
                return {"lease": None}
            # Wake early enough to fence a dead peer's expired lease
            # even when nothing new is enqueued meanwhile.
            self._wake.clear()
            try:
                await asyncio.wait_for(self._wake.wait(),
                                       min(remaining, self._reap_tick()))
            except (asyncio.TimeoutError, TimeoutError):
                pass

    def heartbeat(self, worker_id: Any) -> dict:
        worker = self._require_worker(worker_id)
        worker.last_seen = self._clock()
        worker.heartbeats += 1
        self._renew(worker.id)
        self._reap()
        return {"ok": True,
                "leases": sorted(lid for lid, rec in self._leases.items()
                                 if rec.worker == worker.id)}

    def deliver(self, worker_id: Any, lease_id: Any,
                part: dict | None = None, error: str | None = None) -> dict:
        """Admit one part (or task error) under exactly-once fencing."""
        worker = self._workers.get(worker_id)
        if worker is not None:
            worker.last_seen = self._clock()
        self._reap()
        record = self._leases.pop(str(lease_id), None) if lease_id else None
        if record is None or record.future.done() or record.cancelled:
            # Fenced (or cancelled) lease: the task was re-queued — or
            # already resolved by its re-leased run.  Discarding keeps
            # part admission exactly-once; the lost work is invisible
            # in the result because run_task is pure.
            self.late_parts_discarded += 1
            if worker is not None:
                worker.late_parts += 1
            return {"accepted": False, "reason": "unknown or fenced lease"}
        if error is not None:
            self.tasks_failed += 1
            if worker is not None:
                worker.errors_delivered += 1
            record.future.set_exception(RemoteTaskError(str(error)))
            return {"accepted": True}
        if not isinstance(part, dict):
            # Re-queue rather than lose the task to a malformed POST.
            self._requeue(record)
            return {"accepted": False, "reason": "part must be an object"}
        doc = dict(part)
        doc["entries"] = decode_entries(doc.get("entries") or [])
        self.tasks_run += 1
        if worker is not None:
            worker.parts_delivered += 1
        record.future.set_result(doc)
        return {"accepted": True}

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _alive_window(self) -> float:
        return 2.0 * self.lease_ttl_s

    def _reap_tick(self) -> float:
        return max(0.02, min(1.0, self.lease_ttl_s / 4.0))

    def _notify(self) -> None:
        self._wake.set()

    def _require_worker(self, worker_id: Any) -> _Worker:
        worker = self._workers.get(worker_id)
        if worker is None:
            raise UnknownWorkerError(worker_id)
        return worker

    def _pop_runnable(self) -> _Task | None:
        while self._queue:
            record = self._queue.pop(0)
            if not record.cancelled and not record.future.done():
                return record
        return None

    def _grant(self, worker: _Worker, record: _Task) -> dict:
        self._lease_seq += 1
        lease_id = f"L{self._lease_seq:06d}"
        record.lease = lease_id
        record.worker = worker.id
        record.deadline = self._clock() + self.lease_ttl_s
        self._leases[lease_id] = record
        worker.leases_granted += 1
        payload = dict(record.payload)
        payload["seed"] = encode_entries(payload.get("seed") or [])
        return {"lease": lease_id, "lease_ttl_s": self.lease_ttl_s,
                "payload": payload}

    def _renew(self, worker_id: str) -> None:
        deadline = self._clock() + self.lease_ttl_s
        for record in self._leases.values():
            if record.worker == worker_id:
                record.deadline = deadline

    def _reap(self) -> None:
        """Fence every expired lease and re-queue its task."""
        now = self._clock()
        expired = [lid for lid, rec in self._leases.items()
                   if rec.deadline <= now]
        for lease_id in expired:
            record = self._leases.pop(lease_id)
            self.fences += 1
            worker = self._workers.get(record.worker or "")
            if worker is not None:
                worker.fences += 1
            self._requeue(record)

    def _requeue(self, record: _Task) -> None:
        record.lease = None
        record.worker = None
        if record.cancelled or record.future.done():
            return
        # First-attempt kill hooks must not re-fire on the re-lease.
        record.payload["attempt"] = int(record.payload.get("attempt", 0)) + 1
        self._queue.append(record)
        self._notify()

    def _abandon(self, record: _Task) -> None:
        """The awaiting manager task was cancelled: drop the task so a
        late part cannot resolve (or journal) anything."""
        record.cancelled = True
        if record in self._queue:
            self._queue.remove(record)
        if record.lease is not None:
            self._leases.pop(record.lease, None)


# ---------------------------------------------------------------------------
# worker side: the ``repro worker`` process
# ---------------------------------------------------------------------------

def _honour_worker_kill(payload: dict) -> None:
    target = os.environ.get(WORKER_KILL_ENV)
    if not target or int(payload.get("attempt", 0) or 0) > 0:
        return
    task = payload.get("task") or {}
    if target == f"{payload.get('job_id')}:{task.get('index')}":
        # Die exactly as a SIGKILLed worker would: mid-lease, without
        # delivering.  The daemon must fence and re-lease.
        os._exit(1)


class WorkerAgent:
    """One ``repro worker`` process: N lease slots over a local
    :class:`WorkerFleet`, plus a heartbeat keeping its leases alive."""

    def __init__(self, host: str, port: int, *, workers: int = 1,
                 name: str | None = None, retry_s: float = 60.0,
                 client_timeout_s: float = 600.0,
                 log: Callable[[str], None] | None = None) -> None:
        self.client = ServeClient(host, port, timeout=client_timeout_s)
        self.workers = workers
        self.slots = max(1, workers)
        self.name = name or f"{socket.gethostname()}:{os.getpid()}"
        self.retry_s = retry_s
        self.log = log or (lambda message: None)
        self.worker_id: str | None = None
        self.lease_ttl_s = 10.0
        self.parts_sent = 0
        self.leases_taken = 0
        self._fleet: WorkerFleet | None = None
        self._last_contact = time.monotonic()
        self._stopping = False

    # -- HTTP helpers (blocking client, driven off-loop) ----------------
    async def _call(self, fn, *args):
        result = await asyncio.to_thread(fn, *args)
        self._last_contact = time.monotonic()
        return result

    def _give_up(self) -> bool:
        return (time.monotonic() - self._last_contact) > self.retry_s

    async def _register(self) -> None:
        while not self._stopping:
            try:
                doc = await self._call(self.client.register_worker,
                                       self.name, self.slots)
                self.worker_id = doc["worker"]
                self.lease_ttl_s = float(doc.get("lease_ttl_s", 10.0))
                self.log(f"registered as {self.worker_id} "
                         f"({self.slots} slot(s), "
                         f"lease ttl {self.lease_ttl_s:g}s)")
                return
            except ServeError as error:
                if self._give_up():
                    raise
                self.log(f"register failed ({error}); retrying")
                await asyncio.sleep(0.5)

    # -- the lease loop -------------------------------------------------
    async def _slot(self, index: int) -> None:
        while not self._stopping:
            worker_id = self.worker_id
            if worker_id is None:
                await asyncio.sleep(0.1)
                continue
            try:
                doc = await self._call(self.client.lease, worker_id)
            except ServeError as error:
                if self._stopping:
                    return
                if error.status == 409:
                    # Daemon restarted: the in-memory registry is gone.
                    await self._register()
                    continue
                if self._give_up():
                    raise
                await asyncio.sleep(0.5)
                continue
            lease_id = doc.get("lease")
            if not lease_id:
                continue  # empty poll window; poll again
            payload = doc["payload"]
            payload["seed"] = decode_entries(payload.get("seed") or [])
            _honour_worker_kill(payload)
            self.leases_taken += 1
            try:
                part = await self._fleet.run(payload)
                body = {"worker": worker_id, "lease": lease_id,
                        "part": dict(part, entries=encode_entries(
                            part.get("entries") or []))}
            except Exception as error:  # noqa: BLE001 - report, don't die
                body = {"worker": worker_id, "lease": lease_id,
                        "error": f"{type(error).__name__}: {error}"}
            try:
                answer = await self._call(self.client.deliver_part, body)
                if answer.get("accepted"):
                    self.parts_sent += 1
                else:
                    self.log(f"slot {index}: part for {lease_id} "
                             f"discarded ({answer.get('reason')})")
            except ServeError as error:
                # The daemon will fence the lease and re-run the task;
                # losing this delivery cannot change the result.
                self.log(f"slot {index}: delivery failed ({error})")

    async def _heartbeat(self) -> None:
        while not self._stopping:
            await asyncio.sleep(max(0.05, self.lease_ttl_s / 3.0))
            worker_id = self.worker_id
            if worker_id is None:
                continue
            try:
                await self._call(self.client.heartbeat, worker_id)
            except ServeError as error:
                if error.status == 409 and not self._stopping:
                    try:
                        await self._register()
                    except ServeError:
                        return

    async def run(self) -> int:
        self._fleet = WorkerFleet(self.workers)
        try:
            await self._register()
            slots = [asyncio.create_task(self._slot(i), name=f"slot-{i}")
                     for i in range(self.slots)]
            beat = asyncio.create_task(self._heartbeat(), name="heartbeat")
            try:
                await asyncio.gather(*slots)
                return 0
            except ServeError as error:
                self.log(f"daemon unreachable for {self.retry_s:g}s; "
                         f"giving up: {error}")
                return 1
            finally:
                self._stopping = True
                beat.cancel()
                for task in slots:
                    task.cancel()
                await asyncio.gather(beat, *slots, return_exceptions=True)
        except ServeError as error:
            self.log(f"cannot join fleet: {error}")
            return 1
        finally:
            self._fleet.close()


def run_worker(host: str, port: int, *, workers: int = 1,
               name: str | None = None, retry_s: float = 60.0,
               log: Callable[[str], None] | None = None) -> int:
    """Blocking entry point for ``repro worker`` (returns an exit code)."""
    agent = WorkerAgent(host, port, workers=workers, name=name,
                        retry_s=retry_s, log=log)
    return asyncio.run(agent.run())
