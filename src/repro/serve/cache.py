"""The daemon's process-shared cross-request evaluation cache.

Worker processes cannot share one in-process
:class:`~repro.search.EvalCache`, so the daemon keeps a single
:class:`SharedEvalCache` and moves entries over the task boundary:

* at dispatch time each task receives the **seed** — the subset of
  stored entries relevant to its workload/architecture (mapping
  fingerprints lead with ``(workload_fp, arch_fp)``, so relevance is a
  prefix filter);
* the worker runs with a :class:`SeedCache` built from that seed, which
  separately counts hits served by seeded entries (``seed_hits`` — the
  cross-request amortisation the service advertises);
* the worker returns the entries it *computed* (never the seed echoed
  back), and the daemon admits them under the admission/eviction policy
  below.

The shared cache is a pure accelerator: a seeded entry is keyed by the
canonical mapping fingerprint, so a hit returns exactly the
:class:`~repro.model.cost.CostResult` a fresh evaluation would produce.
Seeding therefore never changes any job's best mapping or cost — only
its hit accounting (pinned by ``tests/test_serve_cache.py``).

Admission policy: an entry whose key is already stored is rejected as a
duplicate (first write wins; both writers computed the same canonical
result, so there is nothing to reconcile); new keys are admitted and
refresh recency.  Eviction is LRU over admissions and seed reads, with
the same ``max_entries``/``0 = unbounded`` convention as
:class:`EvalCache`.  All counters are exact under concurrent access
(one lock around every mutation).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Iterable, Sequence

from ..search import EvalCache


class SeedCache(EvalCache):
    """An :class:`EvalCache` pre-populated from the shared cache.

    Behaves identically to a cold cache that happens to start warm
    (same lookup, same LRU, same counters), plus ``seed_hits``: how
    many hits were served by *seeded* entries rather than entries the
    local search computed itself.  ``new_entries()`` returns only the
    computed ones, so workers never echo the seed back to the daemon.
    """

    def __init__(self, seed: Iterable[tuple[Any, Any]] = (),
                 max_entries: int | None = 200_000) -> None:
        super().__init__(max_entries=max_entries)
        self.seed_hits = 0
        for key, result in seed:
            super().put(key, result)
        self._seeded = set(self._entries)

    def get(self, key):
        entry = super().get(key)
        if entry is not None and key in self._seeded:
            self.seed_hits += 1
        return entry

    def put(self, key, result) -> None:
        before = self.evictions
        super().put(key, result)
        # An eviction may have dropped seeded keys; forget them so a
        # later re-compute + hit is not misattributed to the seed and
        # the recomputed entry flows back to the daemon for admission.
        if self.evictions != before:
            self._seeded.intersection_update(self._entries)

    def new_entries(self) -> list[tuple[Any, Any]]:
        """The ``(key, result)`` pairs this search computed (insertion
        order) — the payload workers return for admission."""
        return [(key, result) for key, result in self._entries.items()
                if key not in self._seeded]


class SharedEvalCache:
    """Daemon-side cross-request result store with exact accounting.

    Thread-safe: the asyncio event loop admits results from many jobs
    and executor callbacks; every read/write takes the one lock, so the
    counters stay exact under contention (satellite requirement).
    """

    def __init__(self, max_entries: int | None = 200_000) -> None:
        if max_entries is not None and max_entries < 0:
            raise ValueError(
                "max_entries must be >= 0 or None (0 = unbounded)")
        self.max_entries = max_entries or None
        self._entries: OrderedDict[Any, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.admitted = 0
        self.rejected_duplicates = 0
        self.evictions = 0
        self.seeds_served = 0
        self.seed_entries_served = 0
        self.seed_hits_reported = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def seed_for(self, workload_fp: Any, arch_fp: Any,
                 ) -> list[tuple[Any, Any]]:
        """Entries relevant to one task, computed at dispatch time so
        a task queued behind another sees everything it admitted.

        Mapping fingerprints are
        ``(workload_fp, arch_fp, levels, partial_reuse, sparsity)``;
        the prefix filter ships only entries the task can actually hit.
        ``arch_fp`` embeds the resolved per-level energies and (for
        non-default packs) the technology pack name, so two resolutions
        of the same hierarchy under different packs never share entries
        (pinned by ``tests/test_serve_cache.py``).  Serving a seed
        refreshes recency of the served entries.
        """
        with self._lock:
            seed = [(key, result) for key, result in self._entries.items()
                    if key[0] == workload_fp and key[1] == arch_fp]
            for key, _ in seed:
                self._entries.move_to_end(key)
            self.seeds_served += 1
            self.seed_entries_served += len(seed)
            return seed

    def admit(self, entries: Sequence[tuple[Any, Any]]) -> dict:
        """Apply the admission policy to one task's computed entries.

        Returns the per-call accounting
        ``{"admitted": n, "duplicates": n, "evictions": n}``.
        """
        admitted = duplicates = evicted = 0
        with self._lock:
            for key, result in entries:
                if key in self._entries:
                    duplicates += 1
                    continue
                self._entries[key] = result
                admitted += 1
                if self.max_entries is not None:
                    while len(self._entries) > self.max_entries:
                        self._entries.popitem(last=False)
                        evicted += 1
            self.admitted += admitted
            self.rejected_duplicates += duplicates
            self.evictions += evicted
        return {"admitted": admitted, "duplicates": duplicates,
                "evictions": evicted}

    def record_seed_hits(self, hits: int) -> None:
        """Fold one task's reported ``seed_hits`` into the global
        counter (per-job accounting lives in the job record)."""
        with self._lock:
            self.seed_hits_reported += int(hits)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        """JSON-ready snapshot for ``/stats``."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "admitted": self.admitted,
                "rejected_duplicates": self.rejected_duplicates,
                "evictions": self.evictions,
                "seeds_served": self.seeds_served,
                "seed_entries_served": self.seed_entries_served,
                "seed_hits_reported": self.seed_hits_reported,
            }
