"""Job lifecycle: decompose, fan out, merge, persist, resume.

One :class:`JobManager` owns every job the daemon has accepted.  A job
moves through ``queued -> running -> done`` (or ``failed``); its task
parts stream in from the :class:`~repro.serve.fleet.FleetBackend`
(local pool or remote lease fleet) in arbitrary order and are merged
by the canonical, order-independent tie-breaks of
:func:`repro.serve.protocol.merge_job`.

Durability: every accepted job and every completed task part is
appended to a :class:`~repro.search.CheckpointJournal` (CRC-per-line,
fsync'd).  On restart, :meth:`JobManager.resume` rebuilds finished
parts from the journal and re-enqueues only the missing tasks —
because task decomposition is deterministic and parts are stored
JSON-round-tripped, the resumed merge is byte-identical to an
uninterrupted run's.  The shared cache is *not* journaled: it is a
pure accelerator, so losing it costs warm-up, never correctness.

Seeds are taken from the shared cache at **dispatch** time (not
submit), gated by a semaphore sized to the fleet, so a task queued
behind another job's tasks sees everything they admitted.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Any

from ..search import CheckpointJournal
from .cache import SharedEvalCache
from .fleet import FleetBackend
from .protocol import (
    decompose_job,
    job_fingerprint,
    merge_job,
    merge_stats,
    normalize_job,
    workload_fingerprints,
)

JOB_STATES = ("queued", "running", "done", "failed")


class QueueFullError(RuntimeError):
    """The bounded task queue is full; the caller should retry later
    (HTTP surface: 429 with a ``Retry-After`` header)."""

    def __init__(self, pending: int, limit: int,
                 retry_after_s: int) -> None:
        super().__init__(f"task queue is full ({pending} task(s) pending, "
                         f"limit {limit}); retry in {retry_after_s}s")
        self.pending = pending
        self.limit = limit
        self.retry_after_s = retry_after_s


def _json_roundtrip(doc: Any) -> Any:
    # Stored and in-memory parts must be the same bytes so a resumed
    # merge reproduces a live merge exactly (JSON floats round-trip).
    return json.loads(json.dumps(doc))


@dataclass
class Job:
    """One accepted job and everything learned about it so far."""

    id: str
    spec: dict
    fingerprint: str
    tasks_total: int
    state: str = "queued"
    parts: dict[int, dict] = field(default_factory=dict)
    result: dict | None = None
    error: str | None = None
    seed_hits: int = 0
    admission: dict = field(default_factory=lambda: {
        "admitted": 0, "duplicates": 0, "evictions": 0})
    submitted_at: float = 0.0
    finished_at: float | None = None
    runner: asyncio.Task | None = None

    def describe(self) -> dict:
        """The ``/jobs`` row."""
        merged = merge_stats([p.get("stats") for p in self.parts.values()])
        return {
            "id": self.id,
            "kind": self.spec["kind"],
            "fingerprint": self.fingerprint,
            "state": self.state,
            "tasks_total": self.tasks_total,
            "tasks_done": len(self.parts),
            "seed_hits": self.seed_hits,
            "admission": dict(self.admission),
            # Branch-and-bound pruning counters merged across the parts
            # finished so far (``repro jobs --json`` surfaces these).
            "bound": merged.get("bound") or {
                "regions_tested": 0, "regions_pruned": 0,
                "candidates_skipped": 0},
            "error": self.error,
            "wall_time_s": ((self.finished_at or time.monotonic())
                            - self.submitted_at),
        }

    def stats(self) -> dict:
        """The per-job ``/stats`` record: merged ``SearchStats`` (with
        its nested ``FaultStats``) plus the cache accounting."""
        return {
            "state": self.state,
            "search": merge_stats([p.get("stats") for p in
                                   self.parts.values()]),
            "seed_hits": self.seed_hits,
            "admission": dict(self.admission),
            "tasks_done": len(self.parts),
            "tasks_total": self.tasks_total,
        }


class JobManager:
    """Accepts jobs, drives them through the fleet, merges results."""

    def __init__(self, fleet: FleetBackend, cache: SharedEvalCache,
                 journal: CheckpointJournal | None = None, *,
                 queue_limit: int | None = None) -> None:
        self.fleet = fleet
        self.cache = cache
        self.journal = journal
        self.queue_limit = queue_limit
        self.jobs: dict[str, Job] = {}
        self._seq = 0
        # Seeds are snapshotted at dispatch; gate dispatch to the
        # backend's dispatch width so queued tasks seed late (and warm).
        self._gate = asyncio.Semaphore(fleet.gate_size)

    # ------------------------------------------------------------------
    # intake
    # ------------------------------------------------------------------
    def _next_id(self) -> str:
        self._seq += 1
        return f"j{self._seq:05d}"

    def pending_tasks(self) -> int:
        """Tasks accepted but not yet finished, across live jobs."""
        return sum(job.tasks_total - len(job.parts)
                   for job in self.jobs.values()
                   if job.state in ("queued", "running"))

    def submit(self, spec: dict) -> Job:
        """Validate, persist and start one job (raises
        :class:`~repro.serve.protocol.ProtocolError` on a bad spec,
        :class:`QueueFullError` when the bounded queue is full)."""
        job_doc = normalize_job(spec)
        if self.queue_limit is not None:
            pending = self.pending_tasks()
            if pending >= self.queue_limit:
                # A rough drain estimate: pending tasks over dispatch
                # width, clamped to something a client can sleep on.
                retry = min(60, max(1, round(pending / self.fleet.gate_size)))
                raise QueueFullError(pending, self.queue_limit, retry)
        job = Job(
            id=self._next_id(),
            spec=job_doc,
            fingerprint=job_fingerprint(job_doc),
            tasks_total=len(decompose_job(job_doc)),
            submitted_at=time.monotonic(),
        )
        self.jobs[job.id] = job
        if self.journal is not None:
            self.journal.append({"type": "job", "id": job.id,
                                 "spec": job_doc})
        self._start(job)
        return job

    def _start(self, job: Job) -> None:
        job.state = "running"
        job.runner = asyncio.get_running_loop().create_task(
            self._run_job(job), name=f"serve-{job.id}")

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    async def _run_task(self, job: Job, task: dict) -> None:
        async with self._gate:
            seed = self.cache.seed_for(*workload_fingerprints(task))
            part = await self.fleet.run({
                "job_id": job.id, "task": task, "seed": seed, "attempt": 0,
            })
        grant = self.cache.admit(part.pop("entries", []) or [])
        self.cache.record_seed_hits(part.get("seed_hits", 0))
        stored = _json_roundtrip({
            key: part.get(key)
            for key in ("index", "doc", "stats", "seed_hits", "wall_time_s")
        })
        job.parts[task["index"]] = stored
        job.seed_hits += int(stored.get("seed_hits") or 0)
        for key in job.admission:
            job.admission[key] += grant[key]
        if self.journal is not None:
            self.journal.append({"type": "task", "id": job.id,
                                 "part": stored})

    async def _run_all(self, job: Job, pending: list[dict]) -> None:
        """Run every pending task; on the first failure, cancel and
        await the siblings (TaskGroup semantics) so a dead job cannot
        keep journaling parts or admitting cache entries."""
        loop = asyncio.get_running_loop()
        runners = [loop.create_task(self._run_task(job, task),
                                    name=f"serve-{job.id}-t{task['index']}")
                   for task in pending]
        try:
            await asyncio.gather(*runners)
        except BaseException:
            for runner in runners:
                runner.cancel()
            await asyncio.gather(*runners, return_exceptions=True)
            raise

    async def _run_job(self, job: Job) -> None:
        try:
            tasks = decompose_job(job.spec)
            pending = [t for t in tasks if t["index"] not in job.parts]
            if pending:
                await self._run_all(job, pending)
            job.result = merge_job(job.spec, job.parts)
            job.state = "done"
        except asyncio.CancelledError:
            job.state = "failed"
            job.error = "cancelled"
            raise
        except Exception as error:  # noqa: BLE001 - job isolation barrier
            job.state = "failed"
            job.error = f"{type(error).__name__}: {error}"
            if self.journal is not None:
                self.journal.append({"type": "failed", "id": job.id,
                                     "error": job.error})
        finally:
            job.finished_at = time.monotonic()

    # ------------------------------------------------------------------
    # resume
    # ------------------------------------------------------------------
    def resume(self) -> list[Job]:
        """Rebuild jobs from the journal and restart unfinished ones.

        Call once, inside the running event loop, before serving.
        Returns the jobs that were re-enqueued.
        """
        if self.journal is None:
            return []
        failed = {e["id"] for e in self.journal.all("failed")}
        # One pass over the task entries, indexed by job id — the
        # journal is read O(1) times however many jobs it holds.
        parts_by_job: dict[str, list[dict]] = {}
        for task_entry in self.journal.all("task"):
            parts_by_job.setdefault(task_entry["id"],
                                    []).append(task_entry["part"])
        restarted: list[Job] = []
        for entry in self.journal.all("job"):
            job = Job(
                id=entry["id"],
                spec=entry["spec"],
                fingerprint=job_fingerprint(entry["spec"]),
                tasks_total=len(decompose_job(entry["spec"])),
                submitted_at=time.monotonic(),
            )
            self.jobs[job.id] = job
            self._seq = max(self._seq, int(job.id.lstrip("j") or 0))
            for part in parts_by_job.get(job.id, ()):
                job.parts[part["index"]] = part
                job.seed_hits += int(part.get("seed_hits") or 0)
            if job.id in failed:
                job.state = "failed"
                job.error = "failed before restart"
                job.finished_at = job.submitted_at
                continue
            if len(job.parts) >= job.tasks_total:
                # Every part is journaled: merging is pure, so the
                # result is byte-identical to the pre-restart one.
                job.result = merge_job(job.spec, job.parts)
                job.state = "done"
                job.finished_at = job.submitted_at
                continue
            self._start(job)
            restarted.append(job)
        return restarted

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Job | None:
        return self.jobs.get(job_id)

    def describe_jobs(self) -> list[dict]:
        return [job.describe() for job in self.jobs.values()]

    def stats(self) -> dict:
        return {job.id: job.stats() for job in self.jobs.values()}

    async def drain(self) -> None:
        """Wait for every in-flight job to settle (shutdown path)."""
        runners = [job.runner for job in self.jobs.values()
                   if job.runner is not None and not job.runner.done()]
        if runners:
            await asyncio.gather(*runners, return_exceptions=True)
