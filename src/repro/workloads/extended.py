"""Extended workload constructors beyond the paper's Table II.

The workload IR is algebraic, so kernels the paper did not evaluate come
for free; these constructors cover common modern layers and demonstrate the
"versatility" claim on access patterns the original evaluation left out:

* depthwise / grouped convolution (MobileNet-family),
* transformer attention sub-kernels (QK^T, AV, projections),
* batched matrix multiplication.

Grouped convolution needs one care point: the group index ``G`` indexes
*every* tensor, so it offers no reuse anywhere — the trie handles that
correctly (it simply never appears in a reuse-carrying suffix).
"""

from __future__ import annotations

from .expression import IndexExpr, TensorRef, Workload, make_workload


def depthwise_conv2d(
    N: int, C: int, P: int, Q: int, R: int, S: int,
    stride: int = 1, name: str = "dwconv2d",
) -> Workload:
    """Depthwise convolution: one filter per channel, no channel reduction.

    ``out[n, c, p, q] = sum_{r, s} in[n, c, p+r, q+s] * w[c, r, s]``
    """
    return Workload(
        name=name,
        dims={"N": N, "C": C, "P": P, "Q": Q, "R": R, "S": S},
        tensors=(
            TensorRef(
                "ifmap",
                (IndexExpr(("N",)), IndexExpr(("C",)),
                 IndexExpr(("P", "R"), stride=stride),
                 IndexExpr(("Q", "S"), stride=stride)),
                role="ifmap",
            ),
            TensorRef(
                "weight",
                (IndexExpr(("C",)), IndexExpr(("R",)), IndexExpr(("S",))),
                role="weight",
            ),
            TensorRef(
                "ofmap",
                (IndexExpr(("N",)), IndexExpr(("C",)), IndexExpr(("P",)),
                 IndexExpr(("Q",))),
                is_output=True,
                role="ofmap",
            ),
        ),
    )


def grouped_conv2d(
    N: int, G: int, K: int, C: int, P: int, Q: int, R: int, S: int,
    stride: int = 1, name: str = "gconv2d",
) -> Workload:
    """Grouped convolution with ``G`` groups of ``K`` filters over ``C``
    channels each.

    ``out[n, g, k, p, q] =
    sum_{c, r, s} in[n, g, c, p+r, q+s] * w[g, k, c, r, s]``
    """
    return Workload(
        name=name,
        dims={"N": N, "G": G, "K": K, "C": C, "P": P, "Q": Q,
              "R": R, "S": S},
        tensors=(
            TensorRef(
                "ifmap",
                (IndexExpr(("N",)), IndexExpr(("G",)), IndexExpr(("C",)),
                 IndexExpr(("P", "R"), stride=stride),
                 IndexExpr(("Q", "S"), stride=stride)),
                role="ifmap",
            ),
            TensorRef(
                "weight",
                (IndexExpr(("G",)), IndexExpr(("K",)), IndexExpr(("C",)),
                 IndexExpr(("R",)), IndexExpr(("S",))),
                role="weight",
            ),
            TensorRef(
                "ofmap",
                (IndexExpr(("N",)), IndexExpr(("G",)), IndexExpr(("K",)),
                 IndexExpr(("P",)), IndexExpr(("Q",))),
                is_output=True,
                role="ofmap",
            ),
        ),
    )


def batched_matmul(B: int, M: int, N: int, K: int,
                   name: str = "bmm") -> Workload:
    """Batched matmul: ``out[b, m, n] = sum_k A[b, m, k] * W[b, k, n]``."""
    return make_workload(
        name,
        dims={"B": B, "M": M, "N": N, "K": K},
        tensor_spec={
            "A": ["B", "M", "K"],
            "W": ["B", "K", "N"],
            "out": ["B", "M", "N"],
        },
        outputs=["out"],
    )


def attention_scores(B: int, H: int, L: int, D: int,
                     name: str = "attn_qk") -> Workload:
    """Attention score computation ``QK^T``:
    ``s[b, h, i, j] = sum_d q[b, h, i, d] * k[b, h, j, d]``."""
    return make_workload(
        name,
        dims={"B": B, "H": H, "I": L, "J": L, "D": D},
        tensor_spec={
            "q": ["B", "H", "I", "D"],
            "k": ["B", "H", "J", "D"],
            "scores": ["B", "H", "I", "J"],
        },
        outputs=["scores"],
    )


def attention_values(B: int, H: int, L: int, D: int,
                     name: str = "attn_av") -> Workload:
    """Attention value aggregation ``AV``:
    ``o[b, h, i, d] = sum_j a[b, h, i, j] * v[b, h, j, d]``."""
    return make_workload(
        name,
        dims={"B": B, "H": H, "I": L, "J": L, "D": D},
        tensor_spec={
            "a": ["B", "H", "I", "J"],
            "v": ["B", "H", "J", "D"],
            "out": ["B", "H", "I", "D"],
        },
        outputs=["out"],
    )


# ---------------------------------------------------------------------------
# MobileNet-v1 representative depthwise-separable blocks.
# ---------------------------------------------------------------------------

MOBILENET_V1_BLOCKS: tuple[tuple[str, dict], ...] = (
    ("dw1", dict(C=32, P=112, Q=112, R=3, S=3)),
    ("dw2", dict(C=64, P=56, Q=56, R=3, S=3, stride=2)),
    ("dw4", dict(C=128, P=28, Q=28, R=3, S=3, stride=2)),
    ("dw6", dict(C=256, P=14, Q=14, R=3, S=3, stride=2)),
    ("dw12", dict(C=512, P=7, Q=7, R=3, S=3, stride=2)),
)


def mobilenet_depthwise(batch: int = 1) -> list[Workload]:
    """The distinct depthwise layers of MobileNet-v1."""
    layers = []
    for name, params in MOBILENET_V1_BLOCKS:
        params = dict(params)
        stride = params.pop("stride", 1)
        layers.append(depthwise_conv2d(N=batch, stride=stride,
                                       name=f"mobilenet_{name}", **params))
    return layers
