"""Layer suites used in the paper's evaluation.

* ResNet-18 convolution layers (Fig. 8, Table VI, Fig. 9) — inference.
* Inception-v3 convolution layers (Table I, Fig. 7) — the Fig. 7 experiment
  schedules the *weight-update* (gradient) computation at batch 16.

Layer shapes follow the published architectures; ``P``/``Q`` are output
spatial sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from .expression import IndexExpr, TensorRef, Workload
from .library import conv2d


@dataclass(frozen=True)
class ConvShape:
    """Shape of one convolution layer."""

    name: str
    K: int
    C: int
    P: int
    Q: int
    R: int
    S: int
    stride: int = 1

    def inference(self, batch: int = 1) -> Workload:
        """Forward-pass convolution workload."""
        return conv2d(
            N=batch, K=self.K, C=self.C, P=self.P, Q=self.Q, R=self.R,
            S=self.S, stride=self.stride, name=self.name,
        )

    def weight_update(self, batch: int = 16) -> Workload:
        """Weight-gradient computation for this layer.

        ``dw[r, s, c, k] = sum_{n, p, q}
        ifmap[n, c, p + r, q + s] * dofmap[n, k, p, q]``

        The output is the *weight* tensor; batch and both spatial output
        dimensions become reduction dimensions — a very different reuse
        pattern from inference, which is why the paper uses it to stress
        versatility.
        """
        return Workload(
            name=f"{self.name}_wu",
            dims={"N": batch, "K": self.K, "C": self.C, "P": self.P,
                  "Q": self.Q, "R": self.R, "S": self.S},
            tensors=(
                TensorRef(
                    "ifmap",
                    (IndexExpr(("N",)), IndexExpr(("C",)),
                     IndexExpr(("P", "R"), stride=self.stride),
                     IndexExpr(("Q", "S"), stride=self.stride)),
                    role="ifmap",
                ),
                TensorRef(
                    "dofmap",
                    (IndexExpr(("N",)), IndexExpr(("K",)), IndexExpr(("P",)),
                     IndexExpr(("Q",))),
                    role="ofmap",
                ),
                TensorRef(
                    "dweight",
                    (IndexExpr(("K",)), IndexExpr(("C",)), IndexExpr(("R",)),
                     IndexExpr(("S",))),
                    is_output=True,
                    role="weight",
                ),
            ),
        )


# ---------------------------------------------------------------------------
# ResNet-18 (ImageNet): the distinct convolution shapes.
# ---------------------------------------------------------------------------

RESNET18_LAYERS: tuple[ConvShape, ...] = (
    ConvShape("conv1", K=64, C=3, P=112, Q=112, R=7, S=7, stride=2),
    ConvShape("conv2_x", K=64, C=64, P=56, Q=56, R=3, S=3),
    ConvShape("conv3_1", K=128, C=64, P=28, Q=28, R=3, S=3, stride=2),
    ConvShape("conv3_x", K=128, C=128, P=28, Q=28, R=3, S=3),
    ConvShape("conv3_ds", K=128, C=64, P=28, Q=28, R=1, S=1, stride=2),
    ConvShape("conv4_1", K=256, C=128, P=14, Q=14, R=3, S=3, stride=2),
    ConvShape("conv4_x", K=256, C=256, P=14, Q=14, R=3, S=3),
    ConvShape("conv4_ds", K=256, C=128, P=14, Q=14, R=1, S=1, stride=2),
    ConvShape("conv5_1", K=512, C=256, P=7, Q=7, R=3, S=3, stride=2),
    ConvShape("conv5_x", K=512, C=512, P=7, Q=7, R=3, S=3),
    ConvShape("conv5_ds", K=512, C=256, P=7, Q=7, R=1, S=1, stride=2),
)


# ---------------------------------------------------------------------------
# Inception-v3: representative convolution shapes, including the asymmetric
# 1x7 / 3x1 layers the paper singles out (dMazeRunner cannot schedule them).
# ---------------------------------------------------------------------------

INCEPTION_V3_LAYERS: tuple[ConvShape, ...] = (
    ConvShape("conv1_3x3", K=32, C=3, P=149, Q=149, R=3, S=3, stride=2),
    ConvShape("conv2_3x3", K=32, C=32, P=147, Q=147, R=3, S=3),
    ConvShape("conv4_1x1", K=80, C=64, P=73, Q=73, R=1, S=1),
    ConvShape("conv5_3x3", K=192, C=80, P=71, Q=71, R=3, S=3),
    ConvShape("mixed_5x5", K=64, C=48, P=35, Q=35, R=5, S=5),
    ConvShape("mixed_3x3", K=96, C=64, P=35, Q=35, R=3, S=3),
    ConvShape("1x7", K=128, C=128, P=17, Q=17, R=1, S=7),
    ConvShape("7x1", K=128, C=128, P=17, Q=17, R=7, S=1),
    ConvShape("1x7_deep", K=192, C=192, P=17, Q=17, R=1, S=7),
    ConvShape("3x1_deep", K=448, C=384, P=8, Q=8, R=3, S=1),
    ConvShape("mixed_1x1_deep", K=320, C=1280, P=8, Q=8, R=1, S=1),
)

# The "example layer" the paper uses when quoting Table I space sizes.
INCEPTION_EXAMPLE_LAYER = INCEPTION_V3_LAYERS[4]  # mixed_5x5


def resnet18(batch: int = 1) -> list[Workload]:
    """ResNet-18 inference convolution workloads at the given batch."""
    return [layer.inference(batch) for layer in RESNET18_LAYERS]


def inception_v3_weight_update(batch: int = 16) -> list[Workload]:
    """Inception-v3 weight-update workloads (the paper's Fig. 7 suite)."""
    return [layer.weight_update(batch) for layer in INCEPTION_V3_LAYERS]
