"""Constructors for the tensor-algebra workloads of the paper's Table II.

Each constructor returns a :class:`~repro.workloads.expression.Workload`
describing the dense iteration space of the kernel.  Dimension names follow
the paper's conventions (K/C/P/Q/R/S/N for convolution, I/J/K/L/M for the
tensor-decomposition kernels).
"""

from __future__ import annotations

import math

from ..sparse.density import Banded, Uniform
from ..sparse.spec import SparsitySpec, TensorSparsity
from .expression import IndexExpr, TensorRef, Workload, make_workload


def conv1d(K: int, C: int, P: int, R: int, stride: int = 1) -> Workload:
    """The paper's running example: 1D convolution with input channels.

    ``ofmap[k, p] = sum_{c, r} ifmap[c, p*stride + r] * weight[k, c, r]``
    """
    return Workload(
        name="conv1d",
        dims={"K": K, "C": C, "P": P, "R": R},
        tensors=(
            TensorRef("ifmap", (IndexExpr(("C",)),
                                IndexExpr(("P", "R"), stride=stride)),
                      role="ifmap"),
            TensorRef("weight", (IndexExpr(("K",)), IndexExpr(("C",)),
                                 IndexExpr(("R",))), role="weight"),
            TensorRef("ofmap", (IndexExpr(("K",)), IndexExpr(("P",))),
                      is_output=True, role="ofmap"),
        ),
    )


def conv2d(
    N: int,
    K: int,
    C: int,
    P: int,
    Q: int,
    R: int,
    S: int,
    stride: int = 1,
    name: str = "conv2d",
) -> Workload:
    """2D convolution (Table II, row "Conv").

    ``ofmap[p, q, k, n] = sum_{c, r, s}
    ifmap[p*stride + r, q*stride + s, c, n] * w[r, s, c, k]``

    ``P``/``Q`` are *output* spatial extents.
    """
    return Workload(
        name=name,
        dims={"N": N, "K": K, "C": C, "P": P, "Q": Q, "R": R, "S": S},
        tensors=(
            TensorRef(
                "ifmap",
                (IndexExpr(("N",)), IndexExpr(("C",)),
                 IndexExpr(("P", "R"), stride=stride),
                 IndexExpr(("Q", "S"), stride=stride)),
                role="ifmap",
            ),
            TensorRef(
                "weight",
                (IndexExpr(("K",)), IndexExpr(("C",)), IndexExpr(("R",)),
                 IndexExpr(("S",))),
                role="weight",
            ),
            TensorRef(
                "ofmap",
                (IndexExpr(("N",)), IndexExpr(("K",)), IndexExpr(("P",)),
                 IndexExpr(("Q",))),
                is_output=True,
                role="ofmap",
            ),
        ),
    )


def fully_connected(N: int, K: int, C: int, name: str = "fc") -> Workload:
    """Fully-connected layer: ``out[n, k] = sum_c in[n, c] * w[k, c]``."""
    return make_workload(
        name,
        dims={"N": N, "K": K, "C": C},
        tensor_spec={
            "ifmap": ["N", "C"],
            "weight": ["K", "C"],
            "ofmap": ["N", "K"],
        },
        outputs=["ofmap"],
        roles={"ifmap": "ifmap", "weight": "weight", "ofmap": "ofmap"},
    )


def mttkrp(I: int, K: int, L: int, J: int, name: str = "mttkrp") -> Workload:
    """Matricized tensor times Khatri-Rao product (CP decomposition kernel).

    ``out[i, j] = sum_{k, l} A[i, k, l] * B[k, j] * C[l, j]``; ``J`` is the
    decomposition rank.
    """
    return make_workload(
        name,
        dims={"I": I, "K": K, "L": L, "J": J},
        tensor_spec={
            "A": ["I", "K", "L"],
            "B": ["K", "J"],
            "C": ["L", "J"],
            "out": ["I", "J"],
        },
        outputs=["out"],
    )


def sddmm(I: int, J: int, K: int, name: str = "sddmm") -> Workload:
    """Sampled dense-dense matrix multiplication.

    ``out[i, j] = A[i, j] * sum_k B[i, k] * C[k, j]``; the sampling matrix
    ``A`` is read element-wise at the output granularity.
    """
    return make_workload(
        name,
        dims={"I": I, "J": J, "K": K},
        tensor_spec={
            "A": ["I", "J"],
            "B": ["I", "K"],
            "C": ["K", "J"],
            "out": ["I", "J"],
        },
        outputs=["out"],
    )


def ttmc(I: int, J: int, K: int, L: int, M: int, name: str = "ttmc") -> Workload:
    """Tensor-times-matrix chain (Tucker decomposition kernel).

    ``out[i, l, m] = sum_{j, k} A[i, j, k] * B[j, l] * C[k, m]``
    """
    return make_workload(
        name,
        dims={"I": I, "J": J, "K": K, "L": L, "M": M},
        tensor_spec={
            "A": ["I", "J", "K"],
            "B": ["J", "L"],
            "C": ["K", "M"],
            "out": ["I", "L", "M"],
        },
        outputs=["out"],
    )


def mmc(I: int, J: int, K: int, L: int, name: str = "mmc") -> Workload:
    """Matrix-multiply chain (attention-style): ``out[i, l] = sum_{j, k}
    A[i, j] * B[j, k] * C[k, l]``."""
    return make_workload(
        name,
        dims={"I": I, "J": J, "K": K, "L": L},
        tensor_spec={
            "A": ["I", "J"],
            "B": ["J", "K"],
            "C": ["K", "L"],
            "out": ["I", "L"],
        },
        outputs=["out"],
    )


def tcl(
    I: int, J: int, K: int, L: int, M: int, N: int, name: str = "tcl"
) -> Workload:
    """Tensor contraction layer: ``out[l, m, n] = sum_{i, j, k}
    A[i, j, k] * B[i, l] * C[j, m] * D[k, n]``."""
    return make_workload(
        name,
        dims={"I": I, "J": J, "K": K, "L": L, "M": M, "N": N},
        tensor_spec={
            "A": ["I", "J", "K"],
            "B": ["I", "L"],
            "C": ["J", "M"],
            "D": ["K", "N"],
            "out": ["L", "M", "N"],
        },
        outputs=["out"],
    )


# ---------------------------------------------------------------------------
# Sparse-tensor shapes from FROSTT / SuiteSparse used in the paper's Fig. 6.
#
# Sunstone (like Timeloop) schedules the *dense* iteration space, so only the
# mode sizes matter.  Shapes below are the published mode sizes, scaled to
# the per-pass tile granularity a dense mapper would be handed (the full
# nell-2 iteration space is ~10^13 MACs; schedulers operate on the loop-nest
# bounds regardless of magnitude).
# ---------------------------------------------------------------------------

FROSTT_SHAPES: dict[str, tuple[int, int, int]] = {
    # tensor: (mode-1, mode-2, mode-3)
    "nell2": (12092, 9184, 28818),
    "netflix": (480189, 17770, 2182),
    "poisson1": (1024, 1024, 1024),
}

SUITESPARSE_SHAPES: dict[str, tuple[int, int]] = {
    "bcsstk17": (10974, 10974),
    "cant": (62451, 62451),
}

# Published nonzero counts for the library entries above.  FROSTT reports
# the nnz of each tensor; SuiteSparse of each matrix.  poisson1 is the
# usual synthetic 1%-dense Poisson tensor.  Densities derived from these
# feed the repro.sparse models the constructors below attach.
FROSTT_NNZ: dict[str, int] = {
    "nell2": 76_879_419,
    "netflix": 100_480_507,
    "poisson1": 10_737_418,  # 1% of 1024^3
}

SUITESPARSE_NNZ: dict[str, int] = {
    "bcsstk17": 428_650,
    "cant": 4_007_383,
}


def frostt_density(tensor: str) -> float:
    """nnz-derived density of a FROSTT tensor (nnz / prod(mode sizes))."""
    return FROSTT_NNZ[tensor] / math.prod(FROSTT_SHAPES[tensor])


def suitesparse_density(matrix: str) -> float:
    """nnz-derived density of a SuiteSparse matrix (nnz / rows*cols)."""
    rows, cols = SUITESPARSE_SHAPES[matrix]
    return SUITESPARSE_NNZ[matrix] / (rows * cols)


def mttkrp_from_frostt(tensor: str, rank: int = 32) -> Workload:
    """MTTKRP over a FROSTT tensor's mode sizes (paper Fig. 6, rank 32).

    The returned workload carries an advisory ``sparsity`` spec for the
    sparse operand ``A`` (uniform-random at the tensor's nnz-derived
    density, coordinate format, skipping).  It is inert metadata until
    passed to the evaluator / scheduler explicitly.
    """
    i, k, l = FROSTT_SHAPES[tensor]
    spec = SparsitySpec.of({
        "A": TensorSparsity(Uniform(frostt_density(tensor)),
                            format="coordinate", action="skipping"),
    })
    workload = mttkrp(I=i, K=k, L=l, J=rank, name=f"mttkrp_{tensor}")
    workload.sparsity = spec
    return workload


def ttmc_from_frostt(tensor: str, rank: int = 8) -> Workload:
    """TTMc over a FROSTT tensor's mode sizes (paper Fig. 6, rank 8)."""
    i, j, k = FROSTT_SHAPES[tensor]
    spec = SparsitySpec.of({
        "A": TensorSparsity(Uniform(frostt_density(tensor)),
                            format="coordinate", action="skipping"),
    })
    workload = ttmc(I=i, J=j, K=k, L=rank, M=rank, name=f"ttmc_{tensor}")
    workload.sparsity = spec
    return workload


def sddmm_from_suitesparse(matrix: str, rank: int = 512) -> Workload:
    """SDDMM over a SuiteSparse matrix's shape (paper Fig. 6, rank 512).

    SuiteSparse FEM matrices are banded, so the sampling matrix ``A`` uses
    the clustered density model; the output inherits A's sparsity pattern
    (SDDMM only produces values where the sample is nonzero) but takes no
    compute action of its own.
    """
    i, j = SUITESPARSE_SHAPES[matrix]
    p = suitesparse_density(matrix)
    spec = SparsitySpec.of({
        "A": TensorSparsity(Banded(p), format="coordinate",
                            action="skipping"),
        "out": TensorSparsity(Banded(p), format="coordinate"),
    })
    workload = sddmm(I=i, J=j, K=rank, name=f"sddmm_{matrix}")
    workload.sparsity = spec
    return workload
