"""Tensor-workload intermediate representation.

Sunstone accepts an einsum-like description of a tensor computation: a set of
named problem dimensions with integer extents, and a list of tensors, each
indexed by a tuple of *index expressions*.  An index expression is either a
single dimension (e.g. ``K``) or a sliding-window sum of dimensions (e.g.
``(P, R)`` meaning the tensor coordinate ``p * stride + r``), as found in
convolutions.

From this description the IR infers, per tensor, which dimensions *index* it,
which dimensions it can be *fully reused* across (the non-indexing
dimensions), and which dimensions offer *partial* (sliding-window) reuse —
exactly the information of Table III in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

if TYPE_CHECKING:
    from ..sparse.spec import SparsitySpec


class WorkloadError(ValueError):
    """Raised when a workload description is malformed."""


@dataclass(frozen=True)
class IndexExpr:
    """One coordinate of a tensor, as a (possibly strided) sum of dimensions.

    ``dims`` lists the problem dimensions whose loop variables are summed to
    form this coordinate.  A plain index like ``K`` is ``IndexExpr(("K",))``;
    the sliding-window access ``p * stride + r`` of a convolution is
    ``IndexExpr(("P", "R"), stride=stride)`` where the stride applies to the
    first (outer) dimension.
    """

    dims: tuple[str, ...]
    stride: int = 1

    def __post_init__(self) -> None:
        if not self.dims:
            raise WorkloadError("an index expression needs at least one dimension")
        if len(set(self.dims)) != len(self.dims):
            raise WorkloadError(f"repeated dimension in index expression {self.dims}")
        if self.stride < 1:
            raise WorkloadError(f"stride must be >= 1, got {self.stride}")
        if self.stride != 1 and len(self.dims) == 1:
            raise WorkloadError("a stride is only meaningful for sliding windows")

    @property
    def is_window(self) -> bool:
        """Whether this coordinate slides over more than one dimension."""
        return len(self.dims) > 1

    def extent(self, sizes: Mapping[str, int]) -> int:
        """Coordinate extent when each dimension spans ``sizes[d]`` values.

        For a window ``(P, R)`` with stride ``s`` the accessed range is
        ``(P - 1) * s + R`` — the familiar halo formula.
        """
        outer, *inner = self.dims
        span = (sizes.get(outer, 1) - 1) * self.stride + 1
        for d in inner:
            span += sizes.get(d, 1) - 1
        return span

    def __str__(self) -> str:
        if not self.is_window:
            return self.dims[0]
        head = self.dims[0] if self.stride == 1 else f"{self.stride}*{self.dims[0]}"
        return "(" + "+".join([head, *self.dims[1:]]) + ")"


def _as_index_expr(raw: object) -> IndexExpr:
    if isinstance(raw, IndexExpr):
        return raw
    if isinstance(raw, str):
        return IndexExpr((raw,))
    if isinstance(raw, (tuple, list)):
        return IndexExpr(tuple(raw))
    raise WorkloadError(f"cannot interpret {raw!r} as an index expression")


@dataclass(frozen=True)
class TensorRef:
    """One tensor participating in the computation.

    ``role`` names the datatype class the architecture uses for buffer
    sizing (e.g. ``"ifmap"``/``"weight"``/``"ofmap"`` on DNN accelerators).
    Architectures with unified buffers ignore it.
    """

    name: str
    indices: tuple[IndexExpr, ...]
    is_output: bool = False
    role: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("tensor needs a name")
        object.__setattr__(self, "role", self.role or self.name)

    @property
    def indexing_dims(self) -> frozenset[str]:
        """All problem dimensions that appear in this tensor's coordinates."""
        return frozenset(d for expr in self.indices for d in expr.dims)

    @property
    def window_dims(self) -> frozenset[str]:
        """Dimensions that take part in a sliding-window coordinate."""
        return frozenset(d for expr in self.indices if expr.is_window for d in expr.dims)

    def footprint(self, sizes: Mapping[str, int]) -> int:
        """Number of tensor elements touched when dims span ``sizes``."""
        result = 1
        for expr in self.indices:
            result *= expr.extent(sizes)
        return result

    def __str__(self) -> str:
        return f"{self.name}[{', '.join(str(e) for e in self.indices)}]"


@dataclass(frozen=True)
class ReuseInfo:
    """Per-tensor reuse summary (the paper's Table III)."""

    indexed_by: frozenset[str]
    reused_by: frozenset[str]
    partially_reused_by: frozenset[str]


class Workload:
    """A tensor computation: named dimensions plus the tensors they index.

    Example — the paper's running 1D convolution::

        Workload(
            name="conv1d",
            dims={"K": 4, "C": 4, "P": 7, "R": 3},
            tensors=[
                TensorRef("ifmap", (IndexExpr(("C",)), IndexExpr(("P", "R")))),
                TensorRef("weight", (IndexExpr(("K",)), IndexExpr(("C",)),
                                     IndexExpr(("R",)))),
                TensorRef("ofmap", (IndexExpr(("K",)), IndexExpr(("P",))),
                          is_output=True),
            ],
        )
    """

    def __init__(
        self,
        name: str,
        dims: Mapping[str, int],
        tensors: Sequence[TensorRef],
        sparsity: "SparsitySpec | None" = None,
    ) -> None:
        self.name = name
        self.dims: dict[str, int] = dict(dims)
        self.tensors: tuple[TensorRef, ...] = tuple(tensors)
        # Advisory per-tensor sparsity (nnz-derived for the FROSTT /
        # SuiteSparse library entries).  Inert metadata: evaluation only
        # applies a spec passed to it explicitly, so attaching one here
        # never perturbs dense results.
        self.sparsity: "SparsitySpec | None" = sparsity
        self._validate()

    def _validate(self) -> None:
        if not self.dims:
            raise WorkloadError("workload needs at least one dimension")
        for dim, size in self.dims.items():
            if size < 1:
                raise WorkloadError(f"dimension {dim} has non-positive size {size}")
        if not self.tensors:
            raise WorkloadError("workload needs at least one tensor")
        names = [t.name for t in self.tensors]
        if len(set(names)) != len(names):
            raise WorkloadError(f"duplicate tensor names in {names}")
        if not any(t.is_output for t in self.tensors):
            raise WorkloadError("workload needs at least one output tensor")
        used: set[str] = set()
        for tensor in self.tensors:
            for expr in tensor.indices:
                for dim in expr.dims:
                    if dim not in self.dims:
                        raise WorkloadError(
                            f"tensor {tensor.name} uses unknown dimension {dim}"
                        )
                    used.add(dim)
        unused = set(self.dims) - used
        if unused:
            raise WorkloadError(f"dimensions {sorted(unused)} index no tensor")

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def dim_names(self) -> tuple[str, ...]:
        return tuple(self.dims)

    @property
    def outputs(self) -> tuple[TensorRef, ...]:
        return tuple(t for t in self.tensors if t.is_output)

    @property
    def inputs(self) -> tuple[TensorRef, ...]:
        return tuple(t for t in self.tensors if not t.is_output)

    def tensor(self, name: str) -> TensorRef:
        for t in self.tensors:
            if t.name == name:
                return t
        raise KeyError(name)

    @property
    def total_operations(self) -> int:
        """MAC (or generally fused multiply-accumulate) count: the full
        iteration-space volume."""
        return math.prod(self.dims.values())

    def tensor_size(self, name: str) -> int:
        """Total element count of a tensor over the full problem."""
        return self.tensor(name).footprint(self.dims)

    # ------------------------------------------------------------------
    # reuse inference (Table III)
    # ------------------------------------------------------------------
    def reuse_info(self, tensor_name: str) -> ReuseInfo:
        """Infer which dimensions fully / partially reuse ``tensor_name``.

        * A dimension that does not index the tensor fully reuses it
          (Ordering Principle 1).
        * Dimensions participating in a sliding window partially reuse it:
          consecutive iterations overlap in the accessed region.
        """
        tensor = self.tensor(tensor_name)
        indexed = tensor.indexing_dims
        reused = frozenset(self.dims) - indexed
        partial = tensor.window_dims
        return ReuseInfo(indexed_by=indexed, reused_by=reused,
                         partially_reused_by=partial)

    def reuse_table(self) -> dict[str, ReuseInfo]:
        """Table III for every tensor in the workload."""
        return {t.name: self.reuse_info(t.name) for t in self.tensors}

    def reusers_of(self, dim: str) -> frozenset[str]:
        """Tensors fully reused across ``dim``."""
        return frozenset(
            t.name for t in self.tensors if dim not in t.indexing_dims
        )

    def partial_reusers_of(self, dim: str) -> frozenset[str]:
        """Tensors partially (window) reused across ``dim``."""
        return frozenset(t.name for t in self.tensors if dim in t.window_dims)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def footprints(self, sizes: Mapping[str, int]) -> dict[str, int]:
        """Per-tensor footprint for a tile spanning ``sizes`` per dim."""
        return {t.name: t.footprint(sizes) for t in self.tensors}

    def scale(self, factors: Mapping[str, int]) -> "Workload":
        """Return a copy with some dimension sizes multiplied (e.g. batch)."""
        dims = dict(self.dims)
        for dim, factor in factors.items():
            if dim not in dims:
                raise WorkloadError(f"unknown dimension {dim}")
            dims[dim] *= factor
        return Workload(self.name, dims, self.tensors,
                        sparsity=self.sparsity)

    def __repr__(self) -> str:
        dims = ", ".join(f"{d}={s}" for d, s in self.dims.items())
        tensors = "; ".join(str(t) for t in self.tensors)
        return f"Workload({self.name}: {dims} | {tensors})"


def make_workload(
    name: str,
    dims: Mapping[str, int],
    tensor_spec: Mapping[str, Sequence[object]],
    outputs: Iterable[str],
    roles: Mapping[str, str] | None = None,
) -> Workload:
    """Convenience constructor mirroring the paper's problem description.

    ``tensor_spec`` maps tensor names to lists of raw index expressions
    (strings or tuples), e.g. ``{"ifmap": ["C", ("P", "R")], ...}``.
    """
    output_set = set(outputs)
    roles = dict(roles or {})
    tensors = []
    for tname, raw_indices in tensor_spec.items():
        indices = tuple(_as_index_expr(raw) for raw in raw_indices)
        tensors.append(
            TensorRef(
                tname,
                indices,
                is_output=tname in output_set,
                role=roles.get(tname, ""),
            )
        )
    missing = output_set - {t.name for t in tensors}
    if missing:
        raise WorkloadError(f"outputs {sorted(missing)} not among tensors")
    return Workload(name, dims, tensors)
