"""Import whole models from a simple JSON description.

A model file is a list of layer records, each naming a layer type from the
workload library plus its dimensions — the minimal interchange format a
framework exporter would emit.  Example::

    {
      "name": "tiny-cnn",
      "layers": [
        {"type": "conv2d", "name": "stem",
         "dims": {"N": 1, "K": 16, "C": 3, "P": 32, "Q": 32,
                  "R": 3, "S": 3}, "stride": 2},
        {"type": "conv2d", "name": "body",
         "dims": {"N": 1, "K": 32, "C": 16, "P": 16, "Q": 16,
                  "R": 3, "S": 3}},
        {"type": "fc", "name": "head",
         "dims": {"N": 1, "K": 10, "C": 8192}}
      ]
    }

``repeat`` on a layer expands it in place (the network scheduler's shape
deduplication makes repeats free to search).
"""

from __future__ import annotations

import json
from typing import Any, Sequence

from .expression import Workload
from .extended import (
    attention_scores,
    attention_values,
    batched_matmul,
    depthwise_conv2d,
    grouped_conv2d,
)
from .library import conv1d, conv2d, fully_connected, mmc, mttkrp, sddmm, tcl, ttmc


class ModelFormatError(ValueError):
    """Raised when a model description is malformed."""


_LAYER_TYPES = {
    "conv1d": (conv1d, ("K", "C", "P", "R"), ("stride",)),
    "conv2d": (conv2d, ("N", "K", "C", "P", "Q", "R", "S"), ("stride",)),
    "dwconv2d": (depthwise_conv2d, ("N", "C", "P", "Q", "R", "S"),
                 ("stride",)),
    "gconv2d": (grouped_conv2d, ("N", "G", "K", "C", "P", "Q", "R", "S"),
                ("stride",)),
    "fc": (fully_connected, ("N", "K", "C"), ()),
    "bmm": (batched_matmul, ("B", "M", "N", "K"), ()),
    "attn_qk": (attention_scores, ("B", "H", "L", "D"), ()),
    "attn_av": (attention_values, ("B", "H", "L", "D"), ()),
    "mttkrp": (mttkrp, ("I", "K", "L", "J"), ()),
    "sddmm": (sddmm, ("I", "J", "K"), ()),
    "ttmc": (ttmc, ("I", "J", "K", "L", "M"), ()),
    "mmc": (mmc, ("I", "J", "K", "L"), ()),
    "tcl": (tcl, ("I", "J", "K", "L", "M", "N"), ()),
}

SUPPORTED_LAYER_TYPES = tuple(_LAYER_TYPES)


def layer_from_record(record: dict[str, Any]) -> Workload:
    """Build one workload from a layer record."""
    if "type" not in record:
        raise ModelFormatError(f"layer record missing 'type': {record}")
    layer_type = record["type"]
    if layer_type not in _LAYER_TYPES:
        raise ModelFormatError(
            f"unknown layer type {layer_type!r}; supported: "
            f"{sorted(_LAYER_TYPES)}"
        )
    builder, required, optional = _LAYER_TYPES[layer_type]
    dims = record.get("dims")
    if not isinstance(dims, dict):
        raise ModelFormatError(f"layer {record.get('name', '?')}: 'dims' "
                               f"must be a mapping")
    missing = [d for d in required if d not in dims]
    if missing:
        raise ModelFormatError(
            f"layer {record.get('name', layer_type)}: missing dimensions "
            f"{missing} (needs {list(required)})"
        )
    kwargs: dict[str, Any] = {d: int(dims[d]) for d in required}
    for option in optional:
        if option in record:
            kwargs[option] = int(record[option])
    if "name" in record:
        kwargs["name"] = str(record["name"])
    return builder(**kwargs)


def model_from_dict(document: dict[str, Any]) -> list[Workload]:
    """Expand a model document into its layer workloads."""
    layers = document.get("layers")
    if not isinstance(layers, list) or not layers:
        raise ModelFormatError("model document needs a non-empty 'layers' "
                               "list")
    workloads: list[Workload] = []
    for record in layers:
        repeat = int(record.get("repeat", 1))
        if repeat < 1:
            raise ModelFormatError(
                f"layer {record.get('name', '?')}: repeat must be >= 1"
            )
        workload = layer_from_record(record)
        workloads.extend([workload] * repeat)
    return workloads


def load_model(path: str) -> list[Workload]:
    """Load a model description file into its layer workloads."""
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    return model_from_dict(document)
