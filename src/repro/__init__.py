"""Sunstone reproduction: a scalable, versatile scheduler for mapping tensor
algebra onto spatial accelerators, plus the substrates it depends on.

Public API highlights
---------------------
* :mod:`repro.workloads` — tensor-algebra workload descriptions (Table II).
* :mod:`repro.arch` — accelerator architecture specs (Table IV presets).
* :mod:`repro.mapping` — the mapping (dataflow) representation.
* :mod:`repro.model` — Timeloop-style analytical cost model.
* :mod:`repro.core` — the Sunstone scheduler itself.
* :mod:`repro.search` — parallel, memoized evaluation engine (see
  ``docs/SEARCH.md``).
* :mod:`repro.baselines` — reimplementations of the compared mappers.
* :mod:`repro.sim` — DianNao-like simulator for the overhead study.
* :mod:`repro.analysis` — search-space size accounting (Table I).

Quickstart::

    from repro.workloads import conv2d
    from repro.arch import simba_like
    from repro.core import schedule

    result = schedule(conv2d(N=1, K=64, C=64, P=56, Q=56, R=3, S=3),
                      simba_like())
    print(result.mapping)
    print(result.cost.summary())
"""

__version__ = "1.0.0"

from . import analysis, arch, baselines, core, energy, mapping, model, noc, search, sim, workloads
from .arch import conventional, diannao_like, simba_like
from .core import SchedulerOptions, SunstoneScheduler, schedule
from .mapping import Mapping, build_mapping, render_nest
from .model import evaluate
from .search import EvalCache, SearchEngine, SearchStats
from .workloads import Workload, conv1d, conv2d, mmc, mttkrp, sddmm, tcl, ttmc

__all__ = [
    "analysis",
    "arch",
    "baselines",
    "core",
    "energy",
    "mapping",
    "model",
    "noc",
    "search",
    "sim",
    "workloads",
    "__version__",
    "EvalCache",
    "SearchEngine",
    "SearchStats",
    "schedule",
    "SunstoneScheduler",
    "SchedulerOptions",
    "Mapping",
    "build_mapping",
    "render_nest",
    "evaluate",
    "Workload",
    "conv1d",
    "conv2d",
    "mttkrp",
    "sddmm",
    "ttmc",
    "mmc",
    "tcl",
    "conventional",
    "simba_like",
    "diannao_like",
]
