"""Eyeriss-style tagged-multicast mesh NoC simulator."""

from .mesh import (
    BoundaryTraffic,
    Delivery,
    MeshNoc,
    NocSimulation,
    simulate_boundary,
)

__all__ = [
    "MeshNoc",
    "Delivery",
    "BoundaryTraffic",
    "NocSimulation",
    "simulate_boundary",
]
