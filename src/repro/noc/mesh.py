"""Eyeriss-style tagged-multicast mesh NoC simulator (paper §V-A).

The paper models the interconnect as in Eyeriss: every packet carries an
(X, Y) destination tag, an X-bus spans the PE-array columns, one Y-bus runs
down each column, and a tag-check comparator at each PE accepts only
designated packets.  This module simulates that delivery mechanism at the
granularity of individual multicast groups:

* :class:`MeshNoc` computes, for one delivery to a set of PE coordinates,
  the driven wire length, the number of tag checks, and the bus cycles;
* :func:`simulate_boundary` derives the multicast groups of every tensor
  from a mapping's spatial factors at a fanout boundary and aggregates the
  traffic into energy and serialisation-cycle totals.

It serves as ground truth for the closed-form NoC energy used by the cost
model (:class:`repro.energy.noc.NocModel`): tests check the analytical
per-word energies land within the simulator's envelope.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..energy.noc import PE_PITCH_MM, TAG_CHECK_ENERGY
from ..energy.table import WIRE_ENERGY_PER_MM_PER_BIT
from ..mapping.mapping import Mapping
from ..model.accesses import count_accesses


@dataclass(frozen=True)
class Delivery:
    """Cost of delivering one word to a set of PEs."""

    destinations: int
    wire_mm: float
    tag_checks: int
    bus_cycles: int

    @property
    def energy_pj_per_bit(self) -> float:
        return self.wire_mm * WIRE_ENERGY_PER_MM_PER_BIT

    def energy_pj(self, word_bits: int) -> float:
        return (self.energy_pj_per_bit * word_bits
                + self.tag_checks * TAG_CHECK_ENERGY)


class MeshNoc:
    """An (x, y) mesh with an X-bus along row 0 and per-column Y-buses."""

    def __init__(self, shape: tuple[int, int],
                 word_bits: int = 16,
                 pe_pitch_mm: float = PE_PITCH_MM) -> None:
        x, y = shape
        if x < 1 or y < 1:
            raise ValueError("mesh dimensions must be positive")
        self.shape = shape
        self.word_bits = word_bits
        self.pe_pitch_mm = pe_pitch_mm

    def deliver(self, destinations: Iterable[tuple[int, int]]) -> Delivery:
        """Deliver one word to ``destinations`` (grid coordinates).

        X-Y routing: the X-bus is driven up to the farthest needed column;
        each needed column's Y-bus is driven down to its farthest needed
        row.  Every PE on a driven bus segment performs one tag check.
        """
        dests = list(set(destinations))
        if not dests:
            raise ValueError("need at least one destination")
        max_x, max_y = self.shape
        for (cx, cy) in dests:
            if not (0 <= cx < max_x and 0 <= cy < max_y):
                raise ValueError(f"destination {(cx, cy)} outside mesh "
                                 f"{self.shape}")
        farthest_col = max(cx for cx, _ in dests)
        x_span = farthest_col + 1
        wire = x_span * self.pe_pitch_mm
        tag_checks = x_span  # column routers on the X-bus
        needed_cols: dict[int, int] = {}
        for cx, cy in dests:
            needed_cols[cx] = max(needed_cols.get(cx, -1), cy)
        for depth in needed_cols.values():
            wire += (depth + 1) * self.pe_pitch_mm
            tag_checks += depth + 1
        # One bus transaction delivers the word to every tagged PE.
        return Delivery(
            destinations=len(dests),
            wire_mm=wire,
            tag_checks=tag_checks,
            bus_cycles=1,
        )

    def unicast(self, destination: tuple[int, int]) -> Delivery:
        return self.deliver([destination])

    def broadcast(self) -> Delivery:
        x, y = self.shape
        return self.deliver([(cx, cy) for cx in range(x) for cy in range(y)])


@dataclass
class BoundaryTraffic:
    """Aggregated NoC traffic of one tensor at one fanout boundary."""

    tensor: str
    groups: int  # distinct multicast groups per fill
    group_size: int  # PEs per group
    fills: float  # word-fill events (from the access model)
    energy_pj: float = 0.0
    bus_cycles: float = 0.0


@dataclass
class NocSimulation:
    """Result of simulating one boundary of a mapping."""

    boundary_level: int
    per_tensor: list[BoundaryTraffic] = field(default_factory=list)

    @property
    def total_energy_pj(self) -> float:
        return sum(t.energy_pj for t in self.per_tensor)

    @property
    def total_bus_cycles(self) -> float:
        return sum(t.bus_cycles for t in self.per_tensor)


def _axis_split(spatial: Sequence[tuple[str, int]],
                shape: tuple[int, int]) -> dict[str, tuple[int, int]]:
    """Place each unrolled dimension on a mesh axis (row-major packing).

    Returns, per dimension, (stride, extent) over the linearised PE index;
    groups of a tensor are then rectangles in that linearisation.
    """
    placement: dict[str, tuple[int, int]] = {}
    stride = 1
    for dim, factor in spatial:
        if factor <= 1:
            continue
        placement[dim] = (stride, factor)
        stride *= factor
    return placement


def simulate_boundary(mapping: Mapping, level: int,
                      word_bits: int | None = None) -> NocSimulation:
    """Simulate delivery traffic at the fanout boundary of ``level``.

    For every tensor stored at or below the boundary, the spatial factors
    over its indexing dimensions partition the PEs into distinct multicast
    groups (each receiving different data); the remaining factors broadcast
    within each group.  Every fill of a group delivers its words with one
    multicast transaction per word.
    """
    arch = mapping.arch
    arch_level = arch.levels[level]
    if arch_level.fanout <= 1:
        raise ValueError(f"level {arch_level.name} has no fanout boundary")
    shape = arch_level.fanout_shape or (arch_level.fanout, 1)
    noc = MeshNoc(shape, word_bits or 16)
    spatial = [(d, f) for d, f in mapping.levels[level].spatial if f > 1]
    placement = _axis_split(spatial, shape)
    used = math.prod(f for _, f in spatial) or 1

    counts = count_accesses(mapping)
    result = NocSimulation(boundary_level=level)
    for tensor in mapping.workload.tensors:
        # Words crossing this boundary for this tensor: the parent-side
        # volume of the storage pair spanning the boundary.
        words = 0.0
        for (child, parent), volume in \
                counts.per_tensor[tensor.name].transfers.items():
            if child <= level < parent:
                words += volume.parent_side
        if words == 0:
            continue
        group_size = 1
        for dim, (_, extent) in placement.items():
            if dim not in tensor.indexing_dims:
                group_size *= extent
        groups = used // group_size

        # Representative group: the first `group_size` PEs in linearised
        # order of the broadcast dims (rectangle through the mesh).
        destinations = []
        for index in range(group_size):
            linear = _linear_index_of_group_member(placement, tensor, index)
            destinations.append((linear % shape[0], linear // shape[0]))
        delivery = noc.deliver(destinations)
        energy = words * delivery.energy_pj(noc.word_bits)
        cycles = words * delivery.bus_cycles
        result.per_tensor.append(BoundaryTraffic(
            tensor=tensor.name,
            groups=groups,
            group_size=group_size,
            fills=words,
            energy_pj=energy,
            bus_cycles=cycles,
        ))
    return result


def _linear_index_of_group_member(placement, tensor, index: int) -> int:
    """Linear PE index of the ``index``-th member of a tensor's multicast
    group anchored at PE 0 (broadcast dims enumerate members)."""
    linear = 0
    remaining = index
    for dim, (stride, extent) in placement.items():
        if dim in tensor.indexing_dims:
            continue
        coordinate = remaining % extent
        remaining //= extent
        linear += coordinate * stride
    return linear
