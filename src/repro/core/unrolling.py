"""Spatial-unrolling candidates with the Spatial Unrolling Principle (§III-B).

Given the loop ordering at the parent memory level (which fixes the operand
``OP`` temporally reused across tiles) and the already-chosen tiling, we
enumerate unrollings of the fanout boundary.  The principle rejects, as
unrolling candidates, the *non-indexing* dimensions of ``OP``: unrolling
them would spend the fanout spatially reusing an operand whose upper-level
access count is already optimised temporally.  The remaining (indexing)
dimensions spatially reuse the *other* tensors.

High-throughput pruning keeps only the candidates with maximal achievable
utilisation of the fanout (ties kept), mirroring the paper's
"high throughput" pruning method (Table I).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..workloads.expression import Workload
from .tiling_tree import divisors


@dataclass
class UnrollingStats:
    """Search-size accounting."""

    combinations_visited: int = 0
    candidates: int = 0


def allowed_unroll_dims(
    workload: Workload,
    reused_tensors: Iterable[str],
) -> tuple[str, ...]:
    """Dimensions the Spatial Unrolling Principle permits to unroll.

    Rejects dimensions that are non-indexing for any temporally-reused
    operand (they would only re-reuse that operand spatially).
    """
    rejected: set[str] = set()
    for name in reused_tensors:
        tensor = workload.tensor(name)
        rejected |= set(workload.dims) - set(tensor.indexing_dims)
    return tuple(d for d in workload.dims if d not in rejected)


def enumerate_unrollings(
    workload: Workload,
    fanout: int,
    remaining: Mapping[str, int],
    allowed_dims: Sequence[str] | None = None,
    stats: UnrollingStats | None = None,
    utilization_threshold: float = 1.0,
    max_unrolled_dims: int = 2,
) -> list[dict[str, int]]:
    """Enumerate spatial factor assignments for one fanout boundary.

    Parameters
    ----------
    fanout:
        Number of child instances available at this boundary.
    remaining:
        Residual per-dimension extents available for unrolling (factors must
        divide these).
    allowed_dims:
        Dimensions permitted by the Unrolling Principle (default: all).
    utilization_threshold:
        Keep candidates whose utilisation is at least this fraction of the
        best achievable utilisation (1.0 = only maximal: the paper's
        high-throughput pruning).
    max_unrolled_dims:
        Real interconnects deliver data along at most two mesh axes;
        unrolling more dimensions than this per boundary is not realisable.

    Returns per-dimension factor dictionaries (trivial factors omitted).
    The no-unrolling candidate ``{}`` is included when nothing better
    exists (e.g. fanout 1).
    """
    stats = stats if stats is not None else UnrollingStats()
    if fanout <= 1:
        stats.candidates += 1
        return [{}]
    dims = [
        d for d in (allowed_dims if allowed_dims is not None
                    else workload.dim_names)
        if remaining.get(d, 1) > 1
    ]

    results: list[dict[str, int]] = []

    def recurse(i: int, current: dict[str, int], product: int,
                used_dims: int) -> None:
        if i == len(dims):
            stats.combinations_visited += 1
            results.append(dict(current))
            return
        dim = dims[i]
        for factor in divisors(remaining[dim]):
            if product * factor > fanout:
                break
            if factor > 1 and used_dims >= max_unrolled_dims:
                break
            if factor > 1:
                current[dim] = factor
            recurse(i + 1, current, product * factor,
                    used_dims + (1 if factor > 1 else 0))
            current.pop(dim, None)

    recurse(0, {}, 1, 0)

    if not results:
        stats.candidates += 1
        return [{}]

    def utilization(candidate: Mapping[str, int]) -> float:
        used = 1
        for factor in candidate.values():
            used *= factor
        return used / fanout

    best = max(utilization(c) for c in results)
    cutoff = best * utilization_threshold
    kept = [c for c in results if utilization(c) >= cutoff]
    # Deduplicate (same factors regardless of insertion order).
    unique: dict[tuple[tuple[str, int], ...], dict[str, int]] = {}
    for c in kept:
        unique[tuple(sorted(c.items()))] = c
    final = list(unique.values())
    stats.candidates += len(final)
    return final
