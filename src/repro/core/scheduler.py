"""The Sunstone scheduler: level-by-level dataflow optimisation (§III-C, §V).

The optimiser proceeds memory level by memory level.  At each step it
chooses, jointly:

* the **loop ordering** of the parent level's nest (from the pruned trie of
  :mod:`repro.core.order_trie`) — this fixes which operand ``OP`` is
  temporally reused across the current level's tiles;
* the **tile** of the current level (from the tiling tree of
  :mod:`repro.core.tiling_tree`, grown only along ``OP``'s indexing
  dimensions — the Tiling Principle);
* the **spatial unrolling** of the current level's fanout boundary (from
  :mod:`repro.core.unrolling`, excluding ``OP``'s non-indexing dimensions —
  the Spatial Unrolling Principle).

Partial schedules are ranked by evaluating their trivial completion (all
residual factors at the outermost level) with the full cost model;
alpha-beta pruning discards partials whose estimate exceeds the best
estimate by more than a slack factor, and a beam bounds the frontier.

Both the paper's default **bottom-up** sweep and the ablated **top-down**
sweep are implemented, as are the three intra-level optimisation orders of
Table VI.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Iterator, Sequence

from ..arch.spec import Architecture
from ..mapping.mapping import Mapping, MappingError, build_mapping
from ..mapspace.batch import NestCohort
from ..mapspace.bounds import BoundModel, Region
from ..mapspace.factor import prime_factors
from ..mapspace.spaces import (
    DependentSpace,
    ListSpace,
    PruneStats,
    Space,
    check_shard,
)
from ..mapspace.tile import ExhaustiveTileSpace, TileSpace
from ..mapspace.unroll import UnrollSpace
from ..mapping.serialize import mapping_from_dict, mapping_to_dict
from ..model.cost import CostResult
from ..search import (
    CheckpointJournal,
    MappingOutcome,
    SearchEngine,
    SearchStats,
    engine_scope,
)
from ..sparse.spec import SparsitySpec
from ..workloads.expression import Workload
from .order_trie import OrderingCandidate, TrieStats, enumerate_orderings
from .tiling_tree import TilingStats, placement_fits
from .unrolling import UnrollingStats, allowed_unroll_dims

INTRA_LEVEL_ORDERS = (
    "ordering-tiling-unrolling",
    "tiling-unrolling-ordering",
    "unrolling-tiling-ordering",
)


@dataclass(frozen=True)
class SchedulerOptions:
    """Knobs of the Sunstone search.

    The defaults correspond to the paper's configuration: bottom-up,
    ordering -> tiling -> unrolling within a level, alpha-beta pruning on,
    high-throughput (maximal-utilisation) unrolling pruning on.
    """

    objective: str = "edp"  # "edp" or "energy"
    direction: str = "bottom-up"  # or "top-down"
    intra_level_order: str = "ordering-tiling-unrolling"
    alpha_beta: bool = True
    alpha_slack: float = 2.0
    beam_width: int | None = 48
    partial_reuse: bool = True
    utilization_threshold: float = 1.0
    max_unrolled_dims: int = 2
    # Per-step candidate caps (bottom-up sweeps): keep the tilings with the
    # largest footprints (most reuse) and the unrollings with the highest
    # utilisation.  None = unlimited.
    max_tilings_per_step: int | None = 10
    max_unrolls_per_step: int | None = 12
    # Greedy single-factor hill climb around the sweep's winner.
    polish: bool = True
    # When the capped search ends below full spatial utilisation, retry
    # once with widened caps and keep the better result.  Layers that
    # already saturate the array (the common case) never pay for this.
    auto_escalate: bool = True
    # Evaluation engine: worker processes for candidate batches (1 = fully
    # in-process) and fingerprint-keyed memoisation of cost results.  Both
    # are behaviour-preserving: the best mapping and its cost are identical
    # for every (workers, cache) combination.
    workers: int = 1
    cache: bool = True
    # Vectorised cohort evaluation (repro.model.batch) for cache-miss
    # batches, and the entry cap shared by the result and partial-term
    # caches (None = default bound, 0 = unbounded).  Both are
    # behaviour-preserving knobs like workers/cache.
    batch: bool = True
    # Vectorised cohort *generation* (repro.mapspace.batch): per-step
    # candidates stream to the engine as geometry cohorts and Mapping
    # objects are built only for per-step winners and journal entries.
    # Behaviour-preserving like batch/workers/cache; the scalar
    # materialization path is used when off, and cohorts degrade to
    # per-row materialization when numpy is unavailable.
    batch_gen: bool = True
    cache_size: int | None = None
    # Optional sparsity spec (repro.sparse) forwarded to every cost-model
    # evaluation.  None keeps the dense model bit-identical; the spec is
    # part of the evaluation-cache key, so dense and sparse searches never
    # exchange results.
    sparsity: SparsitySpec | None = None
    # Analytic branch-and-bound pruning (repro.mapspace.bounds): the
    # final sweep step and the polish skip candidates whose closed-form
    # lower bound strictly exceeds the incumbent, and the result carries
    # a certificate (best value vs the whole-space lower bound) in
    # ``stats.prune.bound``.  Behaviour-preserving: the best mapping and
    # its cost are bit-identical with the flag off; only evaluation
    # counts change (tests/test_bounds.py).
    bound: bool = True
    # Deterministic shard of the per-step candidate stream: ``(i, n)``
    # keeps only the candidates whose enumeration index is congruent to
    # ``i`` modulo ``n``.  The ``n`` shards are pairwise disjoint and
    # their union is the full stream, so cooperating processes can split
    # one search without coordination.  None = the whole space.
    shard: tuple[int, int] | None = None
    # Where a top-down partial parks its residual factors for estimation:
    # "innermost" (paper-faithful: the estimate is far from the final
    # energy, so alpha-beta prunes poorly — the Table VI effect) or
    # "current" (park at the highest undecided level: estimates are real
    # mappings and the sweep prunes as well as bottom-up).
    topdown_estimate: str = "innermost"

    def __post_init__(self) -> None:
        if self.objective not in ("edp", "energy"):
            raise ValueError(f"unknown objective {self.objective}")
        if self.direction not in ("bottom-up", "top-down"):
            raise ValueError(f"unknown direction {self.direction}")
        if self.intra_level_order not in INTRA_LEVEL_ORDERS:
            raise ValueError(
                f"unknown intra-level order {self.intra_level_order}"
            )
        if self.alpha_slack < 1.0:
            raise ValueError("alpha_slack must be >= 1.0")
        if self.topdown_estimate not in ("innermost", "current"):
            raise ValueError(
                f"unknown topdown_estimate {self.topdown_estimate}"
            )
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.cache_size is not None and self.cache_size < 0:
            raise ValueError("cache_size must be >= 0 (0 = unbounded)")
        check_shard(self.shard)


@dataclass
class SchedulerStats:
    """Search-size and timing accounting (Table I, Table VI, Figs. 6-8)."""

    evaluations: int = 0
    pruned_alpha_beta: int = 0
    pruned_beam: int = 0
    wall_time_s: float = 0.0
    trie: TrieStats = field(default_factory=TrieStats)
    tiling: TilingStats = field(default_factory=TilingStats)
    unrolling: UnrollingStats = field(default_factory=UnrollingStats)
    # Per-pass candidate drop counters from the mapspace pruning passes
    # (e.g. the bottom-up capacity filter).
    prune: PruneStats = field(default_factory=PruneStats)
    # Engine-side telemetry (shared with the engine, which may itself be
    # shared across searches — e.g. the layers of one network).
    search: SearchStats = field(default_factory=SearchStats)

    @property
    def space_size(self) -> int:
        """Number of complete mappings the search evaluated."""
        return self.evaluations


@dataclass
class ScheduleResult(MappingOutcome):
    """Outcome of a scheduling run.

    ``mapping``/``cost`` and the ``found``/``valid``/``edp``/``energy_pj``
    accessors live on the shared :class:`~repro.search.result.MappingOutcome`
    base.
    """

    stats: SchedulerStats
    options: SchedulerOptions


@dataclass(frozen=True)
class _State:
    """A partial schedule.

    ``temporal[i]`` / ``spatial[i]`` hold decided factors per level (empty
    dict when undecided); ``orders[i]`` the decided nest order of level
    ``i``.  ``frontier`` tracks the per-dimension extents still to be
    assigned at the undecided levels.
    """

    temporal: tuple[dict[str, int], ...]
    spatial: tuple[dict[str, int], ...]
    orders: tuple[tuple[str, ...] | None, ...]
    frontier: dict[str, int]
    # Level where residual (undecided) factors are parked when the partial
    # schedule is completed for estimation: the outermost level for
    # bottom-up sweeps, the highest still-undecided level for top-down.
    sink_level: int = -1


def _state_key(state: _State) -> tuple:
    """Canonical, totally ordered identity of a partial schedule's
    decisions.  Used both to deduplicate frontier states and as the
    tie-break when ranking equal-cost candidates, so the winner never
    depends on arrival order (which parallel evaluation must be free to
    change)."""
    return (
        tuple(tuple(sorted(t.items())) for t in state.temporal),
        tuple(tuple(sorted(s.items())) for s in state.spatial),
        tuple(o if o is not None else () for o in state.orders),
    )


class SunstoneScheduler:
    """Maps a tensor workload onto a spatial accelerator.

    Example::

        scheduler = SunstoneScheduler(conv2d(...), simba_like())
        result = scheduler.schedule()
        print(result.mapping, result.cost.summary())
    """

    def __init__(
        self,
        workload: Workload,
        arch: Architecture,
        options: SchedulerOptions | None = None,
        engine: SearchEngine | None = None,
        journal: CheckpointJournal | None = None,
    ) -> None:
        self.workload = workload
        self.arch = arch
        self.options = options or SchedulerOptions()
        # Frontier states frequently share (base, remaining) at a step, so
        # candidate enumeration is memoised per scheduler instance.
        self._tiling_cache: dict = {}
        self._unroll_cache: dict = {}
        # Evaluation engine: injected to share a result cache (and pool)
        # across searches, or built lazily from the options.
        self._engine = engine
        self._owns_engine = False
        # Optional crash-safe checkpoint journal (docs/SEARCH.md): after
        # every completed sweep step the frontier and running best are
        # persisted, and a journal opened with ``resume=True`` continues
        # the search from the last completed step instead of restarting.
        self._journal = journal
        # Lazy analytic bound model (options.bound); shared by the final
        # sweep step, the polish, and the result certificate.
        self._bounds: BoundModel | None = None

    def _bound_model(self) -> "BoundModel | None":
        if not self.options.bound:
            return None
        if self._bounds is None:
            self._bounds = BoundModel(
                self.workload, self.arch,
                objective=self.options.objective,
                partial_reuse=self.options.partial_reuse,
                sparsity=self.options.sparsity)
        return self._bounds

    def _get_engine(self) -> SearchEngine:
        if self._engine is None:
            self._engine = SearchEngine(
                workers=self.options.workers,
                cache=self.options.cache,
                partial_reuse=self.options.partial_reuse,
                sparsity=self.options.sparsity,
                batch=self.options.batch,
                cache_size=self.options.cache_size,
            )
            self._owns_engine = True
        return self._engine

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def schedule(self) -> ScheduleResult:
        """Run the search and return the best mapping found."""
        start = time.perf_counter()
        owned = self._engine is None
        with engine_scope(self._engine,
                          workers=self.options.workers,
                          cache=self.options.cache,
                          partial_reuse=self.options.partial_reuse,
                          sparsity=self.options.sparsity,
                          batch=self.options.batch,
                          cache_size=self.options.cache_size) as engine:
            self._engine = engine
            self._owns_engine = owned
            result = self._run_with_escalation()
        result.stats.wall_time_s = time.perf_counter() - start
        return result

    def _run_one_phase(self, phase: str) -> ScheduleResult:
        """Run one search phase, or restore it from the journal when a
        prior (interrupted) run already completed it.  The restored best
        mapping is *re-evaluated* with the live cost model, so its cost is
        bit-identical to what the uninterrupted run would report."""
        if self._journal is not None:
            done = self._journal.last("phase_done", phase=phase)
            if done is not None:
                return self._restore_phase_result(done)
        result = self._schedule_once(phase=phase)
        if self._journal is not None:
            self._journal.append({
                "type": "phase_done",
                "phase": phase,
                "mapping": (mapping_to_dict(result.mapping)
                            if result.found else None),
                "evaluations": result.stats.evaluations,
            })
            self._journal.save_cache_snapshot(self._get_engine().cache)
        return result

    def _restore_phase_result(self, entry: dict) -> ScheduleResult:
        stats = SchedulerStats()
        stats.search = self._get_engine().stats
        stats.evaluations = entry["evaluations"]
        doc = entry.get("mapping")
        if doc is None:
            return ScheduleResult(None, None, stats, self.options)
        mapping = mapping_from_dict(doc)
        cost = self._get_engine().evaluate(mapping)
        bound_model = self._bound_model()
        if bound_model is not None:
            # The certificate is a pure function of the analytic model
            # and the journaled winner, so the restored run reports the
            # same line the uninterrupted one printed.
            bnd = stats.prune.bound
            bnd.lower_bound = bound_model.space_bound()
            bnd.best_value = (cost.edp if self.options.objective == "edp"
                              else cost.energy_pj)
        return ScheduleResult(mapping, cost, stats, self.options)

    def _run_with_escalation(self) -> ScheduleResult:
        result = self._run_one_phase("base")
        if (self.options.auto_escalate
                and self.options.beam_width is not None
                and result.found
                and result.cost.utilization < 1.0):
            # The capped search left lanes idle; widen the caps once.
            wide = replace(
                self.options,
                beam_width=max(128, self.options.beam_width * 2),
                max_tilings_per_step=(
                    None if self.options.max_tilings_per_step is None
                    else max(20, self.options.max_tilings_per_step * 2)),
                max_unrolls_per_step=(
                    None if self.options.max_unrolls_per_step is None
                    else max(24, self.options.max_unrolls_per_step * 2)),
                auto_escalate=False,
            )
            retry = SunstoneScheduler(self.workload, self.arch, wide,
                                      engine=self._engine,
                                      journal=self._journal)
            escalated = retry._run_one_phase("wide")
            escalated.stats.evaluations += result.stats.evaluations
            escalated.stats.prune.bound.merge(result.stats.prune.bound)
            if escalated.found:
                def value(r: ScheduleResult) -> float:
                    return (r.edp if self.options.objective == "edp"
                            else r.energy_pj)
                if value(escalated) < value(result):
                    result = escalated
                else:
                    result.stats.evaluations = escalated.stats.evaluations
                    result.stats.prune.bound = escalated.stats.prune.bound
        return result

    def _schedule_once(self, phase: str = "base") -> ScheduleResult:
        start = time.perf_counter()
        stats = SchedulerStats()
        stats.search = self._get_engine().stats
        orderings = enumerate_orderings(self.workload, stats=stats.trie)

        if self.options.direction == "bottom-up":
            best = self._sweep(orderings, stats, bottom_up=True, phase=phase)
        else:
            best = self._sweep(orderings, stats, bottom_up=False, phase=phase)

        if best is not None and self.options.polish:
            best = self._polish(best[0], best[1], stats)

        stats.wall_time_s = time.perf_counter() - start
        bound_model = self._bound_model()
        if bound_model is not None:
            bnd = stats.prune.bound
            if best is not None:
                # Optimality certificate: the whole-space analytic floor
                # bounds the scheduler's restricted space from below too.
                bnd.lower_bound = bound_model.space_bound()
                cost = best[1]
                bnd.best_value = (cost.edp if self.options.objective == "edp"
                                  else cost.energy_pj)
            eng_stats = self._get_engine().stats
            eng_stats.bound_regions_tested += bnd.regions_tested
            eng_stats.bound_regions_pruned += bnd.regions_pruned
            eng_stats.bound_candidates_skipped += bnd.candidates_skipped
        if best is None:
            return ScheduleResult(None, None, stats, self.options)
        mapping, cost = best
        return ScheduleResult(mapping, cost, stats, self.options)

    # ------------------------------------------------------------------
    # greedy polish
    # ------------------------------------------------------------------
    def _polish(
        self,
        mapping: Mapping,
        cost: CostResult,
        stats: SchedulerStats,
        max_rounds: int = 24,
    ) -> tuple[Mapping, CostResult]:
        """Hill-climb around the sweep's winner.

        The neighbourhood moves one prime factor of one dimension between
        two *slots*, where a slot is a (kind, level) pair over temporal
        loops and spatial unrollings.  When single moves converge, paired
        exchange moves (evict one dimension's prime from a slot while
        pulling another dimension's prime in) cross the capacity valleys
        single moves cannot.  This recovers tile shapes and lane splits
        that mix the growth dimensions of different orderings — a blind
        spot of the pure per-ordering tiling tree.
        """
        def value_of(result: CostResult) -> float:
            return (result.edp if self.options.objective == "edp"
                    else result.energy_pj)

        num = self.arch.num_levels
        best_mapping, best_cost = mapping, cost
        best_value = value_of(cost)

        def snapshot():
            temporal = [dict(lvl.temporal_factors)
                        for lvl in best_mapping.levels]
            spatial = [dict(lvl.spatial_factors)
                       for lvl in best_mapping.levels]
            orders = [[d for d, _ in lvl.temporal]
                      for lvl in best_mapping.levels]
            return temporal, spatial, orders

        def slots():
            out = [("t", i) for i in range(num)]
            out += [("s", i) for i in range(num)
                    if self.arch.levels[i].fanout > 1]
            return out

        def get(state, kind, level, dim):
            temporal, spatial = state
            store = temporal if kind == "t" else spatial
            return store[level].get(dim, 1)

        def apply(state, changes):
            """changes: list of (kind, level, dim, multiplier-or-divisor)"""
            temporal = [dict(t) for t in state[0]]
            spatial = [dict(s) for s in state[1]]
            for kind, level, dim, p, direction in changes:
                store = temporal if kind == "t" else spatial
                current = store[level].get(dim, 1)
                if direction == "mul":
                    store[level][dim] = current * p
                else:
                    if current % p != 0:
                        return None
                    store[level][dim] = current // p
            return temporal, spatial

        bound_model = self._bound_model()

        def try_candidate(temporal, spatial, orders) -> bool:
            nonlocal best_mapping, best_cost, best_value
            try:
                candidate = build_mapping(
                    self.workload, self.arch,
                    temporal=[dict(t) for t in temporal],
                    spatial=[dict(s) for s in spatial],
                    orders=orders,
                )
            except Exception:
                return False
            if bound_model is not None:
                # Point bound: a candidate whose analytic floor strictly
                # exceeds the incumbent can never be accepted (its value
                # is >= floor > best_value, and acceptance requires
                # value < best_value), so the evaluation is skipped
                # without changing the climb.
                bnd = stats.prune.bound
                bnd.regions_tested += 1
                if bound_model.mapping_bound(candidate) > best_value:
                    bnd.regions_pruned += 1
                    bnd.candidates_skipped += 1
                    return False
            result = self._get_engine().evaluate(candidate)
            stats.evaluations += 1
            if result.valid and value_of(result) < best_value:
                best_mapping = candidate
                best_cost = result
                best_value = value_of(result)
                return True
            return False

        all_slots = slots()

        def single_moves(state):
            out = []
            for dim in self.workload.dim_names:
                for src in all_slots:
                    factor = get(state, src[0], src[1], dim)
                    if factor <= 1:
                        continue
                    for p in sorted(set(prime_factors(factor))):
                        for dst in all_slots:
                            if dst == src:
                                continue
                            trial = apply(state, [
                                (src[0], src[1], dim, p, "div"),
                                (dst[0], dst[1], dim, p, "mul"),
                            ])
                            if trial is not None:
                                out.append(trial)
            return out

        def exchange_moves(state):
            out = []
            dims = self.workload.dim_names
            for slot in all_slots:
                for d1 in dims:
                    f1 = get(state, slot[0], slot[1], d1)
                    if f1 <= 1:
                        continue
                    for p1 in sorted(set(prime_factors(f1))):
                        for d2 in dims:
                            if d2 == d1:
                                continue
                            for src in all_slots:
                                if src == slot:
                                    continue
                                f2 = get(state, src[0], src[1], d2)
                                if f2 <= 1:
                                    continue
                                for p2 in sorted(set(prime_factors(f2))):
                                    trial = apply(state, [
                                        (slot[0], slot[1], d1, p1, "div"),
                                        (src[0], src[1], d1, p1, "mul"),
                                        (src[0], src[1], d2, p2, "div"),
                                        (slot[0], slot[1], d2, p2, "mul"),
                                    ])
                                    if trial is not None:
                                        out.append(trial)
            return out

        for _ in range(max_rounds):
            temporal, spatial, orders = snapshot()
            state = (temporal, spatial)
            improved = False
            for trial in single_moves(state):
                if try_candidate(trial[0], trial[1], orders):
                    improved = True
            if not improved:
                for trial in exchange_moves(state):
                    if try_candidate(trial[0], trial[1], orders):
                        improved = True
                        break
            if not improved:
                break
        return best_mapping, best_cost

    # ------------------------------------------------------------------
    # search core
    # ------------------------------------------------------------------
    def _sweep(
        self,
        orderings: Sequence[OrderingCandidate],
        stats: SchedulerStats,
        bottom_up: bool,
        phase: str = "base",
    ) -> tuple[Mapping, CostResult] | None:
        num = self.arch.num_levels
        initial = _State(
            temporal=tuple({} for _ in range(num)),
            spatial=tuple({} for _ in range(num)),
            orders=tuple(None for _ in range(num)),
            frontier=dict(self.workload.dims),
            sink_level=num - 1 if bottom_up else num - 1,
        )
        frontier: list[tuple[float, _State]] = [(float("inf"), initial)]
        steps = list(range(num - 1) if bottom_up else range(num - 2, -1, -1))

        # Every estimated partial is a complete (if possibly suboptimal)
        # mapping, so the best valid one seen anywhere is the answer.
        engine = self._get_engine()
        best: tuple[float, Mapping, CostResult] | None = None

        # Crash recovery: pick the sweep up after the last journaled step.
        # A frontier `_State` is all integers/strings, so it round-trips
        # JSON exactly, and the restored best mapping is re-evaluated so
        # its cost (and every later comparison) is bit-identical to an
        # uninterrupted run.  The journaled *scores* are display-only:
        # the sweep loop never reads a frontier value across steps.
        start_ordinal = 0
        if self._journal is not None:
            restored = self._journal.last("level", phase=phase)
            if restored is not None:
                start_ordinal = restored["step"] + 1
                frontier = [(value, self._state_from_doc(doc))
                            for value, doc in restored["frontier"]]
                stats.evaluations = restored["evaluations"]
                stats.pruned_alpha_beta = restored["pruned_alpha_beta"]
                stats.pruned_beam = restored["pruned_beam"]
                tested, pruned, skipped = restored.get("bound", (0, 0, 0))
                stats.prune.bound.regions_tested = tested
                stats.prune.bound.regions_pruned = pruned
                stats.prune.bound.candidates_skipped = skipped
                if restored["best"] is not None:
                    mapping = mapping_from_dict(restored["best"])
                    cost = engine.evaluate(mapping)
                    value = (cost.edp if self.options.objective == "edp"
                             else cost.energy_pj)
                    best = (value, mapping, cost)
                if not frontier:
                    # The sweep had already exhausted its frontier.
                    start_ordinal = len(steps)

        for ordinal, level in enumerate(steps):
            if ordinal < start_ordinal:
                continue
            level_start = time.perf_counter()
            children: list[_State] = []
            for _, state in frontier:
                children.extend(
                    self._children(state, level, orderings, stats, bottom_up))
            bound_model = self._bound_model()
            if (bound_model is not None and best is not None
                    and ordinal == len(steps) - 1):
                # Final step only: these children feed nothing but the
                # running best (the post-step frontier is never read
                # again), so a child whose analytic floor strictly
                # exceeds the incumbent provably cannot improve it —
                # value >= floor > best-at-skip-time >= best at any later
                # point of the scan — and is dropped before evaluation.
                # Mid-sweep filtering would alter the beam frontier and
                # is therefore never done.
                bnd = stats.prune.bound
                kept: list[_State] = []
                for child in children:
                    temporal, spatial = self._completion_factors(child)
                    region = Region(temporal, spatial, {}, num)
                    bnd.regions_tested += 1
                    if bound_model.region_bound(region) > best[0]:
                        bnd.regions_pruned += 1
                        bnd.candidates_skipped += 1
                    else:
                        kept.append(child)
                children = kept
            # Batch the whole level: the engine dedupes equal fingerprints
            # and vectorises (or fans out) the misses, returning results
            # in candidate order so ranking matches the serial path
            # exactly.  With batch_gen, candidates stream as a geometry
            # cohort and a Mapping is built only when a child improves
            # the running best.
            cohort: NestCohort | None = None
            mappings: list[Mapping] | None = None
            if self.options.batch_gen and len(children) >= 2:
                cohort = NestCohort.from_nests(
                    self.workload, self.arch,
                    [self._completion_nests(child) for child in children])
                engine.stats.add_stage_time(
                    "generation", time.perf_counter() - level_start)
                costs = engine.evaluate_cohort(cohort)
            else:
                mappings = [self._materialize(child) for child in children]
                engine.stats.add_stage_time(
                    "generation", time.perf_counter() - level_start)
                costs = engine.evaluate_many(mappings)
            stats.evaluations += len(children)
            scored: list[tuple[float, _State]] = []
            for idx, (child, cost) in enumerate(zip(children, costs)):
                value = (cost.edp if self.options.objective == "edp"
                         else cost.energy_pj)
                if not cost.valid:
                    if bottom_up:
                        # Occupancy only grows as more levels are
                        # decided bottom-up, so an invalid completion
                        # can never become valid.
                        continue
                    # Top-down estimates park residual factors at a
                    # lower level and may be (transiently) invalid;
                    # keep searching through them.
                    scored.append((value, child))
                    continue
                scored.append((value, child))
                if best is None or value < best[0]:
                    mapping = (mappings[idx] if mappings is not None
                               else cohort.materialize(idx))
                    best = (value, mapping, cost)
            engine.stats.add_level_time(
                self.arch.levels[level].name,
                time.perf_counter() - level_start)
            if not scored:
                frontier = []
                self._journal_level(phase, ordinal, level, frontier,
                                    best, stats)
                break
            remaining_steps = (num - 1 - level) if bottom_up else (level + 1)
            frontier = self._prune(scored, stats, remaining_steps)
            self._journal_level(phase, ordinal, level, frontier, best, stats)
        engine.stats.prunes += stats.pruned_alpha_beta + stats.pruned_beam

        if best is not None:
            return best[1], best[2]
        return None

    # ------------------------------------------------------------------
    # checkpoint (de)serialisation
    # ------------------------------------------------------------------
    def _journal_level(
        self,
        phase: str,
        ordinal: int,
        level: int,
        frontier: list[tuple[float, _State]],
        best: tuple[float, Mapping, CostResult] | None,
        stats: SchedulerStats,
    ) -> None:
        """Persist one completed sweep step: the pruned frontier, the
        running best, and the counters a resume must restore."""
        if self._journal is None:
            return
        self._journal.append({
            "type": "level",
            "phase": phase,
            "step": ordinal,
            "level": level,
            "frontier": [[value, self._state_doc(state)]
                         for value, state in frontier],
            "best": mapping_to_dict(best[1]) if best is not None else None,
            "evaluations": stats.evaluations,
            "pruned_alpha_beta": stats.pruned_alpha_beta,
            "pruned_beam": stats.pruned_beam,
            "bound": [stats.prune.bound.regions_tested,
                      stats.prune.bound.regions_pruned,
                      stats.prune.bound.candidates_skipped],
        })
        self._journal.save_cache_snapshot(self._get_engine().cache)

    @staticmethod
    def _state_doc(state: _State) -> dict:
        return {
            "temporal": [dict(t) for t in state.temporal],
            "spatial": [dict(s) for s in state.spatial],
            "orders": [list(o) if o is not None else None
                       for o in state.orders],
            "frontier": dict(state.frontier),
            "sink_level": state.sink_level,
        }

    @staticmethod
    def _state_from_doc(doc: dict) -> _State:
        return _State(
            temporal=tuple(dict(t) for t in doc["temporal"]),
            spatial=tuple(dict(s) for s in doc["spatial"]),
            orders=tuple(tuple(o) if o is not None else None
                         for o in doc["orders"]),
            frontier=dict(doc["frontier"]),
            sink_level=doc["sink_level"],
        )

    def _prune(
        self,
        scored: list[tuple[float, _State]],
        stats: SchedulerStats,
        remaining_steps: int = 1,
    ) -> list[tuple[float, _State]]:
        # Rank by estimate with the canonical decision key as tie-break:
        # equal-cost candidates are ordered by *what they decide*, never by
        # arrival order, so batch/merge order cannot flip the winner.
        keyed = [(value, _state_key(state), state) for value, state in scored]
        keyed.sort(key=lambda item: (item[0], item[1]))
        # Deduplicate states that encode identical decisions.
        unique: list[tuple[float, _State]] = []
        seen: set = set()
        for value, key, state in keyed:
            if key in seen:
                continue
            seen.add(key)
            unique.append((value, state))
        scored = unique
        kept = scored
        if self.options.alpha_beta and scored:
            alpha = scored[0][0]
            # Early estimates (many undecided levels) correlate weakly with
            # the final cost; widen the cutoff accordingly, and never cut
            # below the beam width — alpha-beta trims the long tail, the
            # beam keeps the head diverse.
            cutoff = alpha * (self.options.alpha_slack
                              ** max(1, remaining_steps))
            floor = self.options.beam_width or 0
            kept = [item for i, item in enumerate(scored)
                    if i < floor or item[0] <= cutoff]
            stats.pruned_alpha_beta += len(scored) - len(kept)
        if self.options.beam_width is not None:
            if len(kept) > self.options.beam_width:
                stats.pruned_beam += len(kept) - self.options.beam_width
                kept = self._diverse_head(kept, self.options.beam_width)
        return kept

    @staticmethod
    def _diverse_head(
        scored: list[tuple[float, _State]],
        width: int,
    ) -> list[tuple[float, _State]]:
        """Take the ``width`` best states while preserving decision
        diversity: the single best state of every distinct
        (orders, spatial-unrolling) group is admitted before the remainder
        fills up by score.  Early estimates correlate weakly with final
        cost, so a purely greedy beam tends to flood with near-identical
        siblings and starve the eventually-best unrolling choice."""
        groups: dict = {}
        for item in scored:  # already sorted by score
            _, state = item
            key = (
                state.orders,
                tuple(tuple(sorted(s.items())) for s in state.spatial),
            )
            groups.setdefault(key, item)
        head = sorted(groups.values(), key=lambda item: item[0])[:width]
        chosen = {id(state) for _, state in head}
        for item in scored:
            if len(head) >= width:
                break
            if id(item[1]) not in chosen:
                head.append(item)
                chosen.add(id(item[1]))
        head.sort(key=lambda item: item[0])
        return head

    # ------------------------------------------------------------------
    # per-level candidate generation
    # ------------------------------------------------------------------
    def _children(
        self,
        state: _State,
        level: int,
        orderings: Sequence[OrderingCandidate],
        stats: SchedulerStats,
        bottom_up: bool,
    ) -> Iterator[_State]:
        if bottom_up:
            yield from self._children_bottom_up(state, level, orderings, stats)
        else:
            yield from self._children_top_down(state, level, orderings, stats)

    def _stored_reused(self, order: OrderingCandidate, level: int
                       ) -> frozenset[str]:
        """Reused tensors that the child level actually buffers."""
        stored = frozenset(
            t.name for t in self.workload.tensors
            if self.arch.levels[level].stores(t.role)
        )
        return order.reused_tensors & stored

    def _growth_dims(self, order: OrderingCandidate, level: int
                     ) -> tuple[str, ...]:
        reused = self._stored_reused(order, level)
        if not reused:
            reused = order.partially_reused_tensors & frozenset(
                t.name for t in self.workload.tensors
                if self.arch.levels[level].stores(t.role)
            )
        if reused:
            dims: set[str] = set()
            for name in reused:
                dims |= set(self.workload.tensor(name).indexing_dims)
            return tuple(d for d in self.workload.dim_names if d in dims)
        return self.workload.dim_names

    def _allowed_unroll(self, order: OrderingCandidate, level: int
                        ) -> tuple[str, ...]:
        reused = self._stored_reused(order, level)
        if not reused:
            return self.workload.dim_names
        return allowed_unroll_dims(self.workload, reused)

    def _unroll_candidates(
        self,
        order: OrderingCandidate,
        level: int,
        fanout: int,
        remaining: dict[str, int],
        stats: SchedulerStats,
    ) -> list[dict[str, int]]:
        """Unrollings per the Spatial Unrolling Principle, as an
        :class:`~repro.mapspace.unroll.UnrollSpace` with the ``augment``
        fallback (when the principled dimension set cannot fill the
        fanout, the remaining dimensions are admitted rather than leaving
        lanes idle — throughput dominates EDP) and the per-step
        utilisation cap."""
        allowed = self._allowed_unroll(order, level)
        cache_key = (level, fanout, tuple(sorted(remaining.items())), allowed)
        cached = self._unroll_cache.get(cache_key)
        if cached is not None:
            return cached
        space = UnrollSpace(
            self.workload, fanout, remaining, allowed,
            utilization_threshold=self.options.utilization_threshold,
            max_unrolled_dims=self.options.max_unrolled_dims,
            fallback="augment",
            cap=self.options.max_unrolls_per_step,
            stats=stats.unrolling,
        )
        unrolls = space.materialize()
        self._unroll_cache[cache_key] = unrolls
        return unrolls

    def _tiling_candidates(
        self,
        level: int,
        base: dict[str, int],
        remaining: dict[str, int],
        growth: Sequence[str],
        stats: SchedulerStats,
    ) -> list[dict[str, int]]:
        """Maximal tiles per the Tiling Principle, as a
        :class:`~repro.mapspace.tile.TileSpace` capped to the frontier's
        corners plus the largest footprints (the most temporal reuse)
        when the frontier is wide."""
        cache_key = (
            level,
            tuple(sorted(base.items())),
            tuple(sorted(remaining.items())),
            tuple(growth),
        )
        cached = self._tiling_cache.get(cache_key)
        if cached is not None:
            return cached
        space = TileSpace(
            self.workload, self.arch, level, base, remaining, growth,
            cap=self.options.max_tilings_per_step,
            stats=stats.tiling,
        )
        tilings = space.materialize()
        self._tiling_cache[cache_key] = tilings
        return tilings

    def _base_sizes(self, state: _State, level: int) -> dict[str, int]:
        """Cumulative tile span fixed by decided levels below ``level``."""
        sizes = {d: 1 for d in self.workload.dims}
        for i in range(level):
            for d in sizes:
                sizes[d] *= state.temporal[i].get(d, 1)
                sizes[d] *= state.spatial[i].get(d, 1)
        return sizes

    def _extend_bottom_up(
        self,
        state: _State,
        level: int,
        order_nest: tuple[str, ...],
        tiling: dict[str, int],
        unroll: dict[str, int],
    ) -> _State | None:
        """Attach one (tiling, unrolling, parent order) decision to a
        bottom-up partial schedule; None when the placement is infeasible."""
        base = self._base_sizes(state, level)
        # Bypassed tensors must still fit their upstream homes once the
        # boundary's spatial factors replicate/partition the tile.
        sizes = {
            d: base.get(d, 1) * tiling.get(d, 1) for d in self.workload.dims
        }
        if not placement_fits(self.workload, self.arch, level, sizes, unroll):
            return None
        new_frontier = dict(state.frontier)
        for d, f in tiling.items():
            new_frontier[d] //= f
        for d, f in unroll.items():
            new_frontier[d] //= f
        temporal = list(state.temporal)
        spatial = list(state.spatial)
        orders = list(state.orders)
        temporal[level] = dict(tiling)
        spatial[level] = dict(unroll)
        orders[level + 1] = order_nest
        if orders[level] is None:
            # The innermost nest order is irrelevant to upper levels; use
            # the same ordering canonically.
            orders[level] = order_nest
        return _State(
            temporal=tuple(temporal),
            spatial=tuple(spatial),
            orders=tuple(orders),
            frontier=new_frontier,
            sink_level=self.arch.num_levels - 1,
        )

    def _step_space_bottom_up(
        self,
        state: _State,
        level: int,
        orderings: Sequence[OrderingCandidate],
        stats: SchedulerStats,
    ) -> Space:
        """The composed (ordering, tiling, unrolling) decision space of one
        bottom-up step, nested per the configured intra-level order.  Axes
        are composed with :class:`~repro.mapspace.spaces.DependentSpace`
        so each inner axis is generated lazily for its outer choice, in
        the exact historical enumeration order."""
        base = self._base_sizes(state, level)
        remaining = dict(state.frontier)
        fanout = self.arch.levels[level].fanout
        mode = self.options.intra_level_order

        def rem_after(tiling: dict[str, int]) -> dict[str, int]:
            return {d: remaining[d] // tiling.get(d, 1) for d in remaining}

        union_growth = tuple(dict.fromkeys(
            d for order in orderings for d in self._growth_dims(order, level)
        ))
        if mode == "ordering-tiling-unrolling":
            def tilings_for(order: OrderingCandidate) -> Space:
                growth = self._growth_dims(order, level)
                tilings = self._tiling_candidates(level, base, remaining,
                                                  growth, stats)
                if set(union_growth) - set(growth):
                    # Mixed-growth tiles (union of all orderings' growth
                    # dimensions) cover solution basins the per-ordering
                    # tree cannot reach; include them as extra candidates.
                    extra = self._tiling_candidates(
                        level, base, remaining, union_growth, stats)
                    seen = {tuple(sorted(t.items())) for t in tilings}
                    tilings = tilings + [
                        t for t in extra
                        if tuple(sorted(t.items())) not in seen
                    ]
                return ListSpace(tilings)

            return DependentSpace(
                ListSpace(list(orderings)),
                lambda order: DependentSpace(
                    tilings_for(order),
                    lambda tiling: ListSpace(self._unroll_candidates(
                        order, level, fanout, rem_after(tiling), stats)),
                ),
                combine=lambda order, pair: (order, pair[0], pair[1]),
            )

        union_allowed = tuple(dict.fromkeys(
            d for order in orderings for d in self._allowed_unroll(order, level)
        ))

        def union_unrolls(remaining_now: dict[str, int]) -> Space:
            return UnrollSpace(
                self.workload, fanout, remaining_now, union_allowed,
                utilization_threshold=self.options.utilization_threshold,
                max_unrolled_dims=self.options.max_unrolled_dims,
                stats=stats.unrolling,
            )

        if mode == "tiling-unrolling-ordering":
            tilings = self._tiling_candidates(level, base, remaining,
                                              union_growth, stats)
            return DependentSpace(
                ListSpace(tilings),
                lambda tiling: DependentSpace(
                    union_unrolls(rem_after(tiling)),
                    lambda unroll: ListSpace(list(orderings)),
                ),
                combine=lambda tiling, pair: (pair[1], tiling, pair[0]),
            )

        # unrolling-tiling-ordering
        return DependentSpace(
            union_unrolls(remaining),
            lambda unroll: DependentSpace(
                ListSpace(self._tiling_candidates(
                    level, base,
                    {d: remaining[d] // unroll.get(d, 1) for d in remaining},
                    union_growth, stats)),
                lambda tiling: ListSpace(list(orderings)),
            ),
            combine=lambda unroll, pair: (pair[1], pair[0], unroll),
        )

    def _children_bottom_up(
        self,
        state: _State,
        level: int,
        orderings: Sequence[OrderingCandidate],
        stats: SchedulerStats,
    ) -> Iterator[_State]:
        decisions = self._step_space_bottom_up(state, level, orderings, stats)
        # Placement feasibility is the capacity pruning pass of the step
        # space: children whose tile cannot fit its storage homes under
        # the boundary's replication are dropped (and counted).
        children = decisions.map(
            lambda triple: self._extend_bottom_up(
                state, level, triple[0].order, triple[1], triple[2]),
        ).filter(lambda child: child is not None, "capacity", stats.prune)
        return children.enumerate(shard=self.options.shard)

    def _children_top_down(
        self,
        state: _State,
        level: int,
        orderings: Sequence[OrderingCandidate],
        stats: SchedulerStats,
    ) -> Iterator[_State]:
        """Top-down step: split the frontier between the levels above
        ``level`` (parent temporal + boundary spatial) and the tile kept at
        ``level`` and below.

        The decision space composes, per ordering, an
        :class:`~repro.mapspace.tile.ExhaustiveTileSpace` — maximality
        pruning is unsound going down, since the lower levels are
        undecided and a smaller tile here can enable a better lower-level
        structure; this is why the top-down space is an order of
        magnitude larger (Table VI) — with the unroll candidates of the
        residual quotient."""
        remaining = dict(state.frontier)
        base = {d: 1 for d in self.workload.dims}
        fanout = self.arch.levels[level].fanout

        def quotient(tiling: dict[str, int]) -> dict[str, int]:
            return {d: remaining[d] // tiling.get(d, 1) for d in remaining}

        decisions = DependentSpace(
            ListSpace(list(orderings)),
            lambda order: DependentSpace(
                ExhaustiveTileSpace(
                    self.workload, self.arch, level, base, remaining,
                    dims=self._growth_dims(order, level), stats=stats.tiling,
                ),
                lambda tiling: ListSpace(self._unroll_candidates(
                    order, level, fanout, quotient(tiling), stats)),
            ),
            combine=lambda order, pair: (order, pair[0], pair[1]),
        )

        def extend(triple) -> _State:
            order, tiling, unroll = triple
            quot = quotient(tiling)
            parent_temporal = {
                d: quot[d] // unroll.get(d, 1)
                for d in quot
                if quot[d] // unroll.get(d, 1) > 1
            }
            temporal = list(state.temporal)
            spatial = list(state.spatial)
            orders = list(state.orders)
            temporal[level + 1] = {
                **state.temporal[level + 1], **parent_temporal,
            }
            spatial[level] = dict(unroll)
            orders[level + 1] = order.order
            new_frontier = {
                d: tiling.get(d, 1) for d in remaining
            }
            return _State(
                temporal=tuple(temporal),
                spatial=tuple(spatial),
                orders=tuple(orders),
                frontier=new_frontier,
                sink_level=(
                    0 if self.options.topdown_estimate == "innermost"
                    else level
                ),
            )

        return decisions.map(extend).enumerate(shard=self.options.shard)

    # ------------------------------------------------------------------
    # estimation / materialisation
    # ------------------------------------------------------------------
    def _materialize(self, state: _State) -> Mapping:
        """Complete a partial schedule: residual factors at the fallback
        level (outermost for bottom-up partials, innermost for top-down)."""
        temporal = [dict(t) for t in state.temporal]
        sink = state.sink_level
        for d, extent in state.frontier.items():
            if extent > 1:
                temporal[sink][d] = temporal[sink].get(d, 1) * extent
        orders = []
        for i in range(self.arch.num_levels):
            if state.orders[i] is not None:
                orders.append(list(state.orders[i]))
            else:
                orders.append(list(self.workload.dim_names))
        return build_mapping(
            self.workload,
            self.arch,
            temporal=temporal,
            spatial=[dict(s) for s in state.spatial],
            orders=orders,
        )

    def _completion_factors(
        self, state: _State,
    ) -> tuple[list[dict], list[dict]]:
        """The fully-decided per-level (temporal, spatial) factor dicts
        of the completion ``_materialize`` would build: frontier extents
        parked at the sink level, residual factors pushed to the top,
        mirroring ``build_mapping``."""
        num = self.arch.num_levels
        temporal = [dict(t) for t in state.temporal]
        sink = state.sink_level
        for d, extent in state.frontier.items():
            if extent > 1:
                temporal[sink][d] = temporal[sink].get(d, 1) * extent
        spatial = [dict(s) for s in state.spatial]
        for dim, size in self.workload.dims.items():
            covered = 1
            for i in range(num):
                covered *= temporal[i].get(dim, 1)
                covered *= spatial[i].get(dim, 1)
            if size % covered != 0:
                raise MappingError(
                    f"factors of {dim} ({covered}) do not divide size {size}"
                )
            residual = size // covered
            if residual > 1:
                top = temporal[num - 1]
                top[dim] = top.get(dim, 1) * residual
        return temporal, spatial

    def _completion_nests(self, state: _State) -> tuple[tuple, tuple]:
        """The completed per-level nests ``_materialize`` would build,
        without the ``Mapping``: ``(nests, spatials)`` where ``nests``
        are temporal nest tuples (outermost first, trivial factors
        included) and ``spatials`` sorted spatial factor tuples — the
        exact ``LevelMapping`` contents of ``build_mapping``, so
        ``NestCohort.materialize`` on this payload reproduces
        ``self._materialize(state)`` bit-for-bit.
        """
        num = self.arch.num_levels
        temporal, spatial = self._completion_factors(state)
        dim_names = self.workload.dim_names
        nests = []
        spatials = []
        for i in range(num):
            factors = temporal[i]
            order = (list(state.orders[i]) if state.orders[i] is not None
                     else list(dim_names))
            missing = [d for d in factors if d not in order]
            nests.append(tuple((d, factors.get(d, 1))
                               for d in order + missing))
            spatials.append(tuple(sorted(spatial[i].items())))
        return tuple(nests), tuple(spatials)

    def _estimate(self, state: _State, stats: SchedulerStats
                  ) -> tuple[float, Mapping, CostResult]:
        mapping = self._materialize(state)
        cost = self._get_engine().evaluate(mapping)
        stats.evaluations += 1
        value = cost.edp if self.options.objective == "edp" else cost.energy_pj
        return value, mapping, cost


def schedule(
    workload: Workload,
    arch: Architecture,
    options: SchedulerOptions | None = None,
    engine: SearchEngine | None = None,
    journal: CheckpointJournal | None = None,
) -> ScheduleResult:
    """Convenience wrapper: ``SunstoneScheduler(workload, arch).schedule()``."""
    return SunstoneScheduler(workload, arch, options, engine=engine,
                             journal=journal).schedule()
