"""Sunstone core: the algebra-derived dataflow optimiser."""

from .network import LayerSchedule, NetworkSchedule, schedule_network

from .order_trie import (
    OrderingCandidate,
    ReuseOutcome,
    TrieStats,
    enumerate_orderings,
)
from .scheduler import (
    INTRA_LEVEL_ORDERS,
    ScheduleResult,
    SchedulerOptions,
    SchedulerStats,
    SunstoneScheduler,
    schedule,
)
from .tiling_tree import (
    TilingStats,
    divisors,
    enumerate_all_tilings,
    enumerate_tilings,
    next_divisor,
)
from .unrolling import UnrollingStats, allowed_unroll_dims, enumerate_unrollings

__all__ = [
    "OrderingCandidate",
    "ReuseOutcome",
    "TrieStats",
    "enumerate_orderings",
    "TilingStats",
    "divisors",
    "next_divisor",
    "enumerate_tilings",
    "enumerate_all_tilings",
    "UnrollingStats",
    "allowed_unroll_dims",
    "enumerate_unrollings",
    "SunstoneScheduler",
    "SchedulerOptions",
    "SchedulerStats",
    "ScheduleResult",
    "schedule",
    "INTRA_LEVEL_ORDERS",
    "schedule_network",
    "NetworkSchedule",
    "LayerSchedule",
]
