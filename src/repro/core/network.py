"""Network-level scheduling: map a whole model, layer by layer.

Dataflow optimisation is per-layer, but users schedule *networks*.  This
module adds the obvious production conveniences:

* shape deduplication — ResNet-18 has 20 conv layers but only 11 distinct
  shapes; identical shapes share one search;
* aggregated network totals (energy, cycles, EDP) and per-layer reports;
* a pluggable mapper so the same harness drives Sunstone or any baseline.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..arch.spec import Architecture
from ..core.scheduler import (
    ScheduleResult,
    SchedulerOptions,
    SchedulerStats,
    SunstoneScheduler,
)
from ..mapping.serialize import mapping_from_dict, mapping_to_dict
from ..model.cost import evaluate as _model_evaluate
from ..search import CheckpointJournal, SearchEngine, SearchStats, engine_scope
from ..workloads.expression import Workload

Mapper = Callable[[Workload, Architecture], ScheduleResult]


def _schedule_one(args: tuple[Workload, Architecture,
                              SchedulerOptions | None]) -> ScheduleResult:
    """Top-level worker so process pools can pickle it."""
    workload, arch, options = args
    return SunstoneScheduler(workload, arch, options).schedule()


@dataclass
class LayerSchedule:
    """One layer's outcome within a network schedule."""

    workload: Workload
    result: ScheduleResult
    shared_with: str | None = None  # name of the layer whose search was reused


@dataclass
class NetworkSchedule:
    """Aggregate of per-layer schedules."""

    layers: list[LayerSchedule]
    wall_time_s: float = 0.0
    # Evaluation-engine totals across every layer search (merged from the
    # worker processes when layer-parallelism is used).
    search_stats: SearchStats = field(default_factory=SearchStats)

    @property
    def all_found(self) -> bool:
        return all(entry.result.found for entry in self.layers)

    @property
    def total_energy_pj(self) -> float:
        return sum(entry.result.cost.energy_pj for entry in self.layers
                   if entry.result.found)

    @property
    def total_cycles(self) -> float:
        # Layers execute back to back (no inter-layer pipelining).
        return sum(entry.result.cost.cycles for entry in self.layers
                   if entry.result.found)

    @property
    def total_edp(self) -> float:
        """Network EDP: total energy x total latency."""
        return self.total_energy_pj * self.total_cycles

    @property
    def unique_searches(self) -> int:
        return sum(1 for entry in self.layers if entry.shared_with is None)

    def summary(self) -> str:
        lines = [
            f"{'layer':<16} {'EDP':>12} {'energy(uJ)':>11} {'cycles':>12} "
            f"{'util':>5}  note"
        ]
        for entry in self.layers:
            result = entry.result
            if not result.found:
                lines.append(f"{entry.workload.name:<16} {'--':>12} "
                             f"{'--':>11} {'--':>12} {'--':>5}  NO MAPPING")
                continue
            note = (f"shared with {entry.shared_with}"
                    if entry.shared_with else "")
            lines.append(
                f"{entry.workload.name:<16} {result.edp:>12.3e} "
                f"{result.cost.energy_pj / 1e6:>11.2f} "
                f"{result.cost.cycles:>12.0f} "
                f"{result.cost.utilization:>5.0%}  {note}"
            )
        lines.append(
            f"total: energy {self.total_energy_pj / 1e6:.2f} uJ, "
            f"latency {self.total_cycles:.3e} cy, EDP {self.total_edp:.3e} "
            f"({self.unique_searches} unique searches, "
            f"{self.wall_time_s:.1f}s)"
        )
        if self.search_stats.requests:
            lines.append(f"search engine: {self.search_stats.summary()}")
        return "\n".join(lines)


def _shape_key(workload: Workload) -> tuple:
    return (
        tuple(sorted(workload.dims.items())),
        tuple(
            (t.name, t.role, t.is_output,
             tuple((e.dims, e.stride) for e in t.indices))
            for t in workload.tensors
        ),
    )


def _restore_layer(
    entry: dict,
    opts: SchedulerOptions,
    engine: SearchEngine | None = None,
) -> ScheduleResult:
    """Rebuild one journaled layer result.  The stored mapping is
    re-evaluated with the live cost model (through the shared engine when
    one exists), so the restored cost is bit-identical to a fresh search's."""
    stats = SchedulerStats()
    if engine is not None:
        stats.search = engine.stats
    stats.evaluations = entry["evaluations"]
    doc = entry.get("mapping")
    if doc is None:
        return ScheduleResult(None, None, stats, opts)
    mapping = mapping_from_dict(doc)
    if engine is not None:
        cost = engine.evaluate(mapping)
    else:
        cost = _model_evaluate(mapping, partial_reuse=opts.partial_reuse,
                               sparsity=opts.sparsity)
    return ScheduleResult(mapping, cost, stats, opts)


def schedule_network(
    workloads: Sequence[Workload],
    arch: Architecture,
    options: SchedulerOptions | None = None,
    mapper: Mapper | None = None,
    processes: int | None = None,
    engine: SearchEngine | None = None,
    dedupe: bool = True,
    journal: CheckpointJournal | None = None,
) -> NetworkSchedule:
    """Schedule every layer of a network, deduplicating identical shapes.

    ``mapper`` defaults to Sunstone; pass a baseline's search function to
    reuse the same harness (it must return an object with ``found``,
    ``cost`` and ``mapping``).  ``processes`` > 1 searches distinct shapes
    in parallel worker processes (the paper runs its tools with 8 threads);
    only the default Sunstone mapper supports it.

    The default Sunstone path shares one evaluation engine (and hence one
    result cache) across all layer searches, so near-identical layers
    dedupe at the evaluation level too.  ``dedupe=False`` disables the
    shape-level search sharing (every layer runs its own search; the
    shared cache then absorbs the repeats).

    ``journal`` (a :class:`~repro.search.CheckpointJournal`) makes the
    run crash-safe: each completed layer search is persisted, and a
    journal opened with ``resume=True`` skips the already-finished layers
    — their stored mappings are re-evaluated with the live cost model, so
    the resumed network totals are bit-identical to an uninterrupted
    run's.  Only the default Sunstone mapper is journaled.
    """
    start = time.perf_counter()
    opts = options or SchedulerOptions()

    # Deduplicate first so parallel workers never repeat a search.
    keys = [_shape_key(workload) for workload in workloads]
    first_index: dict[tuple, int] = {}
    unique_indices: list[int] = []
    for i, key in enumerate(keys):
        if dedupe and key in first_index:
            continue
        first_index[key] = i
        unique_indices.append(i)

    def restored(i: int, eng: SearchEngine | None = None
                 ) -> ScheduleResult | None:
        if journal is None:
            return None
        entry = journal.last("layer", index=i)
        if entry is None:
            return None
        return _restore_layer(entry, opts, engine=eng)

    def record(i: int, result: ScheduleResult) -> None:
        if journal is None:
            return
        journal.append({
            "type": "layer",
            "index": i,
            "name": workloads[i].name,
            "mapping": (mapping_to_dict(result.mapping)
                        if result.found else None),
            "evaluations": result.stats.evaluations,
        })

    totals = SearchStats()
    results: dict[int, ScheduleResult] = {}
    if processes and processes > 1 and mapper is None:
        pending = []
        for i in unique_indices:
            prior = restored(i)
            if prior is not None:
                results[i] = prior
            else:
                pending.append(i)
        jobs = [(workloads[i], arch, options) for i in pending]
        if jobs:
            with ProcessPoolExecutor(max_workers=processes) as pool:
                for i, result in zip(pending,
                                     pool.map(_schedule_one, jobs)):
                    results[i] = result
                    totals.merge(result.stats.search)
                    record(i, result)
    elif mapper is None:
        # Sunstone path: one shared engine (and result cache) spans every
        # layer search; ``engine_scope`` reuses an injected engine or owns
        # a fresh one, closing it even if a layer search raises.
        with engine_scope(engine, workers=opts.workers, cache=opts.cache,
                          partial_reuse=opts.partial_reuse,
                          sparsity=opts.sparsity, batch=opts.batch,
                          cache_size=opts.cache_size) as shared_engine:
            if journal is not None:
                warm = journal.load_cache_snapshot()
                if warm is not None and shared_engine.cache is not None:
                    for key, value in warm._entries.items():
                        shared_engine.cache.put(key, value)
            for i in unique_indices:
                prior = restored(i, shared_engine)
                if prior is not None:
                    results[i] = prior
                    continue
                results[i] = SunstoneScheduler(
                    workloads[i], arch, options,
                    engine=shared_engine).schedule()
                record(i, results[i])
                if journal is not None:
                    journal.save_cache_snapshot(shared_engine.cache)
            totals = shared_engine.stats
    else:
        for i in unique_indices:
            results[i] = mapper(workloads[i], arch)
        if engine is not None:
            totals = engine.stats
        else:
            for result in results.values():
                sub = (getattr(getattr(result, "stats", None), "search", None)
                       or getattr(result, "search_stats", None))
                if sub is not None:
                    totals.merge(sub)

    layers: list[LayerSchedule] = []
    for i, workload in enumerate(workloads):
        owner = i if i in results else first_index[keys[i]]
        if owner == i:
            layers.append(LayerSchedule(workload, results[owner]))
        else:
            layers.append(LayerSchedule(
                workload, results[owner],
                shared_with=workloads[owner].name,
            ))
    return NetworkSchedule(layers,
                           wall_time_s=time.perf_counter() - start,
                           search_stats=totals)
