"""Network-level scheduling: map a whole model, layer by layer.

Dataflow optimisation is per-layer, but users schedule *networks*.  This
module adds the obvious production conveniences:

* shape deduplication — ResNet-18 has 20 conv layers but only 11 distinct
  shapes; identical shapes share one search;
* aggregated network totals (energy, cycles, EDP) and per-layer reports;
* a pluggable mapper so the same harness drives Sunstone or any baseline.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..arch.spec import Architecture
from ..core.scheduler import ScheduleResult, SchedulerOptions, SunstoneScheduler
from ..search import SearchEngine, SearchStats, engine_scope
from ..workloads.expression import Workload

Mapper = Callable[[Workload, Architecture], ScheduleResult]


def _schedule_one(args: tuple[Workload, Architecture,
                              SchedulerOptions | None]) -> ScheduleResult:
    """Top-level worker so process pools can pickle it."""
    workload, arch, options = args
    return SunstoneScheduler(workload, arch, options).schedule()


@dataclass
class LayerSchedule:
    """One layer's outcome within a network schedule."""

    workload: Workload
    result: ScheduleResult
    shared_with: str | None = None  # name of the layer whose search was reused


@dataclass
class NetworkSchedule:
    """Aggregate of per-layer schedules."""

    layers: list[LayerSchedule]
    wall_time_s: float = 0.0
    # Evaluation-engine totals across every layer search (merged from the
    # worker processes when layer-parallelism is used).
    search_stats: SearchStats = field(default_factory=SearchStats)

    @property
    def all_found(self) -> bool:
        return all(entry.result.found for entry in self.layers)

    @property
    def total_energy_pj(self) -> float:
        return sum(entry.result.cost.energy_pj for entry in self.layers
                   if entry.result.found)

    @property
    def total_cycles(self) -> float:
        # Layers execute back to back (no inter-layer pipelining).
        return sum(entry.result.cost.cycles for entry in self.layers
                   if entry.result.found)

    @property
    def total_edp(self) -> float:
        """Network EDP: total energy x total latency."""
        return self.total_energy_pj * self.total_cycles

    @property
    def unique_searches(self) -> int:
        return sum(1 for entry in self.layers if entry.shared_with is None)

    def summary(self) -> str:
        lines = [
            f"{'layer':<16} {'EDP':>12} {'energy(uJ)':>11} {'cycles':>12} "
            f"{'util':>5}  note"
        ]
        for entry in self.layers:
            result = entry.result
            if not result.found:
                lines.append(f"{entry.workload.name:<16} {'--':>12} "
                             f"{'--':>11} {'--':>12} {'--':>5}  NO MAPPING")
                continue
            note = (f"shared with {entry.shared_with}"
                    if entry.shared_with else "")
            lines.append(
                f"{entry.workload.name:<16} {result.edp:>12.3e} "
                f"{result.cost.energy_pj / 1e6:>11.2f} "
                f"{result.cost.cycles:>12.0f} "
                f"{result.cost.utilization:>5.0%}  {note}"
            )
        lines.append(
            f"total: energy {self.total_energy_pj / 1e6:.2f} uJ, "
            f"latency {self.total_cycles:.3e} cy, EDP {self.total_edp:.3e} "
            f"({self.unique_searches} unique searches, "
            f"{self.wall_time_s:.1f}s)"
        )
        if self.search_stats.requests:
            lines.append(f"search engine: {self.search_stats.summary()}")
        return "\n".join(lines)


def _shape_key(workload: Workload) -> tuple:
    return (
        tuple(sorted(workload.dims.items())),
        tuple(
            (t.name, t.role, t.is_output,
             tuple((e.dims, e.stride) for e in t.indices))
            for t in workload.tensors
        ),
    )


def schedule_network(
    workloads: Sequence[Workload],
    arch: Architecture,
    options: SchedulerOptions | None = None,
    mapper: Mapper | None = None,
    processes: int | None = None,
    engine: SearchEngine | None = None,
    dedupe: bool = True,
) -> NetworkSchedule:
    """Schedule every layer of a network, deduplicating identical shapes.

    ``mapper`` defaults to Sunstone; pass a baseline's search function to
    reuse the same harness (it must return an object with ``found``,
    ``cost`` and ``mapping``).  ``processes`` > 1 searches distinct shapes
    in parallel worker processes (the paper runs its tools with 8 threads);
    only the default Sunstone mapper supports it.

    The default Sunstone path shares one evaluation engine (and hence one
    result cache) across all layer searches, so near-identical layers
    dedupe at the evaluation level too.  ``dedupe=False`` disables the
    shape-level search sharing (every layer runs its own search; the
    shared cache then absorbs the repeats).
    """
    start = time.perf_counter()
    opts = options or SchedulerOptions()

    # Deduplicate first so parallel workers never repeat a search.
    keys = [_shape_key(workload) for workload in workloads]
    first_index: dict[tuple, int] = {}
    unique_indices: list[int] = []
    for i, key in enumerate(keys):
        if dedupe and key in first_index:
            continue
        first_index[key] = i
        unique_indices.append(i)

    totals = SearchStats()
    results: dict[int, ScheduleResult] = {}
    if processes and processes > 1 and mapper is None:
        jobs = [(workloads[i], arch, options) for i in unique_indices]
        with ProcessPoolExecutor(max_workers=processes) as pool:
            for i, result in zip(unique_indices,
                                 pool.map(_schedule_one, jobs)):
                results[i] = result
                totals.merge(result.stats.search)
    elif mapper is None:
        # Sunstone path: one shared engine (and result cache) spans every
        # layer search; ``engine_scope`` reuses an injected engine or owns
        # a fresh one, closing it even if a layer search raises.
        with engine_scope(engine, workers=opts.workers, cache=opts.cache,
                          partial_reuse=opts.partial_reuse,
                          sparsity=opts.sparsity, batch=opts.batch,
                          cache_size=opts.cache_size) as shared_engine:
            for i in unique_indices:
                results[i] = SunstoneScheduler(
                    workloads[i], arch, options,
                    engine=shared_engine).schedule()
            totals = shared_engine.stats
    else:
        for i in unique_indices:
            results[i] = mapper(workloads[i], arch)
        if engine is not None:
            totals = engine.stats
        else:
            for result in results.values():
                sub = (getattr(getattr(result, "stats", None), "search", None)
                       or getattr(result, "search_stats", None))
                if sub is not None:
                    totals.merge(sub)

    layers: list[LayerSchedule] = []
    for i, workload in enumerate(workloads):
        owner = i if i in results else first_index[keys[i]]
        if owner == i:
            layers.append(LayerSchedule(workload, results[owner]))
        else:
            layers.append(LayerSchedule(
                workload, results[owner],
                shared_with=workloads[owner].name,
            ))
    return NetworkSchedule(layers,
                           wall_time_s=time.perf_counter() - start,
                           search_stats=totals)
