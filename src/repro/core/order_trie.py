"""Loop-ordering trie (paper §IV-A).

The space of loop orders at a memory level is represented as a trie whose
nodes are partially-determined orders, built innermost-loop-first.  Each node
is annotated with the reuse it provides; two pruning rules shrink the trie:

1. **No further reuse** (Ordering Principle 3): a child whose added loop
   contributes no reuse (given the loops already inside it) is pruned —
   none of its descendants can add reuse either, and the ordering of loops
   above a reuse-carrying suffix does not change access counts.
2. **Dominance**: if one suffix's reuse outcome is a (weak) subset of
   another's — same tensors reused across a subset of dimensions, with no
   extra partial reuse — the dominated suffix is pruned (Fig. 4's rule for
   discarding ``xxxC`` in favour of ``xxCR``).

The surviving suffixes, completed with the remaining dimensions in canonical
order (their order is irrelevant by Principle 3), are the level's candidate
orderings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..workloads.expression import Workload


@dataclass(frozen=True)
class ReuseOutcome:
    """Reuse achieved by one ordering suffix.

    ``full`` maps a tensor name to the set of dimensions across which it is
    fully (temporally) reused; ``partial`` to the set of sliding-window
    dimensions giving partial reuse.
    """

    full: tuple[tuple[str, frozenset[str]], ...]
    partial: tuple[tuple[str, frozenset[str]], ...]

    @staticmethod
    def from_dicts(full: dict[str, set[str]],
                   partial: dict[str, set[str]]) -> "ReuseOutcome":
        return ReuseOutcome(
            full=tuple(sorted((t, frozenset(d)) for t, d in full.items() if d)),
            partial=tuple(sorted(
                (t, frozenset(d)) for t, d in partial.items() if d
            )),
        )

    def full_dict(self) -> dict[str, frozenset[str]]:
        return dict(self.full)

    def partial_dict(self) -> dict[str, frozenset[str]]:
        return dict(self.partial)

    def dominates(self, other: "ReuseOutcome") -> bool:
        """True when this outcome reuses at least everything ``other`` does."""
        mine_full = self.full_dict()
        mine_partial = self.partial_dict()
        for tensor, dims in other.full:
            if not dims <= mine_full.get(tensor, frozenset()):
                return False
        for tensor, dims in other.partial:
            combined = (mine_partial.get(tensor, frozenset())
                        | mine_full.get(tensor, frozenset()))
            if not dims <= combined:
                return False
        return True


@dataclass(frozen=True)
class OrderingCandidate:
    """One surviving loop order for a memory level.

    ``order`` lists dimensions outermost-first.  ``reused_tensors`` are the
    tensors fully reused across the innermost loops (the "OP" of the Tiling
    and Unrolling Principles); ``outcome`` records the full annotation.
    """

    order: tuple[str, ...]
    reused_tensors: frozenset[str]
    partially_reused_tensors: frozenset[str]
    outcome: ReuseOutcome

    def __str__(self) -> str:
        return "".join(self.order)


def _new_reuse(
    workload: Workload,
    dim: str,
    below: Sequence[str],
) -> tuple[set[str], set[str]]:
    """Tensors gaining (full, partial) reuse from putting ``dim``'s loop
    immediately above the loops in ``below`` (innermost first)."""
    full: set[str] = set()
    partial: set[str] = set()
    for tensor in workload.tensors:
        indexing = tensor.indexing_dims
        windows = tensor.window_dims
        if dim not in indexing:
            # Full reuse requires every inner loop to also be non-indexing
            # for this tensor (Ordering Principle 2).
            if all(inner not in indexing for inner in below):
                full.add(tensor.name)
        elif dim in windows:
            # Sliding-window partial reuse: inner loops must either not
            # index the tensor or be window partners of the same coordinate.
            partners = set()
            for expr in tensor.indices:
                if expr.is_window and dim in expr.dims:
                    partners |= set(expr.dims)
            ok = all(
                inner not in indexing or inner in partners for inner in below
            )
            if ok:
                partial.add(tensor.name)
    return full, partial


@dataclass
class _Node:
    suffix: tuple[str, ...] = ()  # innermost first
    full: dict[str, set[str]] = field(default_factory=dict)
    partial: dict[str, set[str]] = field(default_factory=dict)

    def outcome(self) -> ReuseOutcome:
        return ReuseOutcome.from_dicts(self.full, self.partial)


@dataclass
class TrieStats:
    """Size accounting for the ordering search (used for Table I/VI)."""

    nodes_visited: int = 0
    nodes_pruned_no_reuse: int = 0
    candidates_before_dominance: int = 0
    candidates: int = 0


def enumerate_orderings(
    workload: Workload,
    dims: Sequence[str] | None = None,
    stats: TrieStats | None = None,
) -> list[OrderingCandidate]:
    """Enumerate the pruned set of loop orderings for one memory level.

    ``dims`` restricts the ordered dimensions (default: every problem
    dimension).  The result is typically a handful of orderings even for
    7-dimensional convolutions, versus ``7! = 5040`` unpruned.
    """
    dims = tuple(dims if dims is not None else workload.dim_names)
    stats = stats if stats is not None else TrieStats()

    terminals: list[_Node] = []
    frontier: list[_Node] = [_Node()]
    while frontier:
        node = frontier.pop()
        extended = False
        for dim in dims:
            if dim in node.suffix:
                continue
            stats.nodes_visited += 1
            full, partial = _new_reuse(workload, dim, node.suffix)
            if not full and not partial:
                stats.nodes_pruned_no_reuse += 1
                continue
            child = _Node(
                suffix=(*node.suffix, dim),
                full={t: set(d) for t, d in node.full.items()},
                partial={t: set(d) for t, d in node.partial.items()},
            )
            for tensor in full:
                child.full.setdefault(tensor, set()).add(dim)
            for tensor in partial:
                child.partial.setdefault(tensor, set()).add(dim)
            frontier.append(child)
            extended = True
        if not extended:
            terminals.append(node)

    stats.candidates_before_dominance = len(terminals)

    # Dominance pruning across terminal suffixes.
    outcomes = [node.outcome() for node in terminals]
    keep: list[int] = []
    for i, outcome in enumerate(outcomes):
        dominated = False
        for j, other in enumerate(outcomes):
            if i == j:
                continue
            if other.dominates(outcome):
                if not outcome.dominates(other):
                    dominated = True
                    break
                # Identical outcomes: keep the lexicographically first.
                if j < i:
                    dominated = True
                    break
        if not dominated:
            keep.append(i)

    candidates: list[OrderingCandidate] = []
    for i in keep:
        node = terminals[i]
        rest = [d for d in dims if d not in node.suffix]
        # suffix is innermost-first; order is outermost-first.
        order = tuple(sorted(rest) + list(reversed(node.suffix)))
        candidates.append(
            OrderingCandidate(
                order=order,
                reused_tensors=frozenset(
                    t for t, d in node.full.items() if d
                ),
                partially_reused_tensors=frozenset(
                    t for t, d in node.partial.items() if d
                ),
                outcome=outcomes[i],
            )
        )
    stats.candidates = len(candidates)
    if not candidates:
        # Degenerate workloads with no reuse anywhere: fall back to one
        # canonical order.
        candidates.append(
            OrderingCandidate(
                order=tuple(sorted(dims)),
                reused_tensors=frozenset(),
                partially_reused_tensors=frozenset(),
                outcome=ReuseOutcome((), ()),
            )
        )
        stats.candidates = 1
    return candidates
