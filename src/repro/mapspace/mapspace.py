"""The :class:`Mapspace` facade and whole-mapping space builders.

``assignment_slots`` fixes the canonical slot order every strategy
shares (temporal slot per level, spatial slot at fanout boundaries);
``assemble_mapping`` is the one decode from per-level factor dicts plus
loop orders to a :class:`~repro.mapping.mapping.Mapping`; and
``full_mapping_space`` composes per-dimension :class:`FactorLattice`
axes with per-level orderings into the complete mapping space the
exhaustive and sampling baselines are defined over — with an analytic
``size()`` and the exact historical enumeration order.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping as MappingT, Sequence

from ..arch.spec import Architecture
from ..mapping.mapping import LevelMapping, Mapping
from ..workloads.expression import Workload
from .factor import FactorLattice
from .order import PermutationSpace
from .spaces import FilteredSpace, ProductSpace, PruneStats, Space

Slot = "tuple[str, int]"


def spatial_boundaries(arch: Architecture) -> list[int]:
    """Levels with a usable fanout boundary (spatial slots)."""
    return [i for i, level in enumerate(arch.levels) if level.fanout > 1]


def assignment_slots(
    arch: Architecture,
    constraints: Any = None,
    dim: str | None = None,
) -> list[tuple[str, int]]:
    """The canonical ordered slot list factors are distributed over:
    ``("t", level)`` for every level, ``("s", level)`` at each fanout
    boundary, innermost level first.

    ``constraints`` (an object with ``allows_temporal(level, dim)`` /
    ``allows_spatial(level, dim)``, e.g. Timeloop's
    :class:`~repro.baselines.random_search.MappingConstraints`) filters
    the slots for ``dim``; a fully constrained dimension falls back to
    the outermost temporal slot so every factor has a home.
    """
    num = arch.num_levels
    boundaries = set(spatial_boundaries(arch))
    slots: list[tuple[str, int]] = []
    for level in range(num):
        if (constraints is None or dim is None
                or constraints.allows_temporal(level, dim)):
            slots.append(("t", level))
        if level in boundaries and (
            constraints is None or dim is None
            or constraints.allows_spatial(level, dim)
        ):
            slots.append(("s", level))
    if not slots:
        slots = [("t", num - 1)]
    return slots


def stores_from_splits(
    dims: Sequence[str],
    splits: Sequence[Sequence[int]],
    slots: Sequence[tuple[str, int]],
    num_levels: int,
) -> tuple[list[dict[str, int]], list[dict[str, int]]]:
    """Scatter per-dimension slot splits into per-level temporal and
    spatial factor dicts (trivial factors omitted)."""
    temporal = [dict[str, int]() for _ in range(num_levels)]
    spatial = [dict[str, int]() for _ in range(num_levels)]
    for dim, split in zip(dims, splits):
        for (kind, level), factor in zip(slots, split):
            if factor == 1:
                continue
            store = temporal if kind == "t" else spatial
            store[level][dim] = store[level].get(dim, 1) * factor
    return temporal, spatial


def assemble_mapping(
    workload: Workload,
    arch: Architecture,
    temporal: Sequence[MappingT[str, int]],
    spatial: Sequence[MappingT[str, int]],
    orders: Sequence[Sequence[str]],
) -> Mapping:
    """Build a :class:`Mapping` from per-level factor dicts and loop
    orders.  Every dimension appears in each level's temporal nest (with
    factor 1 when absent from the dict); spatial factors are stored
    sorted, as everywhere else in the repo."""
    levels = []
    for i in range(arch.num_levels):
        nest = tuple((d, temporal[i].get(d, 1)) for d in orders[i])
        levels.append(LevelMapping(
            temporal=nest,
            spatial=tuple(sorted(spatial[i].items())),
        ))
    return Mapping(workload, arch, levels)


class Mapspace(Space):
    """A composed mapping space with named axes and shared prune stats.

    ``root`` is the composed :class:`Space` that yields the candidates;
    ``axes`` names the constituent axis spaces for reporting (sizes per
    axis, docs, tests); ``stats`` collects per-pass drop counters from
    every pruning pass attached via :meth:`constrain`.
    """

    def __init__(
        self,
        root: Space,
        axes: MappingT[str, Space] | None = None,
        stats: PruneStats | None = None,
        name: str = "mapspace",
    ) -> None:
        self.root = root
        self.axes = dict(axes) if axes else {}
        self.stats = stats if stats is not None else PruneStats()
        self.name = name

    def size(self) -> int:
        return self.root.size()

    def bound(self, objective: str, context=None) -> float:
        return self.root.bound(objective, context)

    def _generate(self) -> Iterator:
        return self.root.enumerate()

    def constrain(self, predicate, name: str) -> "Mapspace":
        """Append a named pruning pass; drops are counted in ``stats``."""
        self.root = FilteredSpace(self.root, predicate, name, self.stats)
        return self

    def axis_sizes(self) -> dict[str, int]:
        return {name: axis.size() for name, axis in self.axes.items()}

    def prune_report(self) -> dict[str, dict[str, int]]:
        return self.stats.to_dict()


def full_mapping_space(
    workload: Workload,
    arch: Architecture,
    orders_per_level: int | None = None,
) -> Mapspace:
    """The complete mapping space: per-dimension factor lattices over the
    canonical assignment slots, crossed with per-level loop orderings.

    Enumeration order is the historical exhaustive-search order: the
    per-dimension splits form the outer product (first workload dimension
    outermost), the per-level orderings the inner product (innermost
    level's ordering varying slowest of the order axes).  ``size()`` is
    analytic — no enumeration happens until the space is walked.
    """
    num = arch.num_levels
    dims = workload.dim_names
    slots = assignment_slots(arch)
    lattices = [FactorLattice(d, workload.dims[d], slots) for d in dims]
    orderings = PermutationSpace(dims).head(orders_per_level)

    def build(*parts):
        splits = parts[:len(dims)]
        level_orders = parts[len(dims):]
        temporal, spatial = stores_from_splits(dims, splits, slots, num)
        return assemble_mapping(workload, arch, temporal, spatial,
                                level_orders)

    root = ProductSpace(list(lattices) + [orderings] * num, combine=build)
    axes: dict[str, Space] = {
        f"tiling[{d}]": lattice for d, lattice in zip(dims, lattices)
    }
    axes["ordering"] = orderings
    return Mapspace(root, axes=axes, name="full")
