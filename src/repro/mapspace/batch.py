"""Evaluation-ready candidate cohorts: geometry matrices, not Mappings.

The scalar pipeline builds a :class:`~repro.mapping.mapping.Mapping`
dataclass per candidate only for :mod:`repro.model.batch` to immediately
re-stage it as int64 factor matrices.  A :class:`Cohort` skips the
round-trip: it carries the per-candidate temporal/spatial factor
matrices (``(n, levels, dims)``) plus per-level loop-order sequences —
exactly the staging the vectorized cost model consumes — and can still
``materialize(i)`` the *i*-th candidate as a bona-fide ``Mapping``
(bit-identical to what the scalar path would have built) for winners and
checkpoint journal entries.

Two concrete cohorts cover the two producers:

* :class:`NestCohort` — built by the beam schedulers from per-candidate
  completed nests (:meth:`from_nests`);
* :class:`MatrixCohort` — built by :func:`full_space_cohorts`, which
  index-decodes the exhaustive full mapping space straight into
  matrices, in the exact historical enumeration order, shardable.

Everything degrades gracefully without numpy: ``geometry()`` and
``evaluate_rows`` return ``None`` and callers fall back to
``materialize`` + scalar evaluation, which the differential tests pin.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator, Sequence

from ..arch.spec import Architecture
from ..mapping.mapping import LevelMapping, Mapping
from ..workloads.expression import Workload
from .factor import FactorLattice
from .spaces import DEFAULT_COHORT, check_shard

try:  # numpy is optional everywhere in this repo
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on the no-numpy CI leg
    _np = None

HAVE_NUMPY = _np is not None

# Spaces larger than this never take the index-decoded path (the
# exhaustive driver's evaluation budget rejects them long before, but
# the decode math should not be asked to range over them either).
_MAX_DECODED_SPACE = 1 << 40


class Cohort:
    """A batch of mapping candidates in evaluation-ready form."""

    workload: Workload
    arch: Architecture

    def __len__(self) -> int:
        raise NotImplementedError

    def fingerprint_levels(self, i: int) -> tuple:
        """The per-level part of ``mapping_fingerprint`` for row ``i``:
        ``tuple((nontrivial_temporal, sorted_nontrivial_spatial))`` per
        level, with python ints — identical to what the scalar path
        computes from the materialized ``Mapping``."""
        raise NotImplementedError

    def materialize(self, i: int) -> Mapping:
        """The row-``i`` candidate as a ``Mapping``, bit-identical to
        the one the scalar path would have built."""
        raise NotImplementedError

    def geometry(self):
        """``(t_mat, s_mat, order_ids, order_table)`` or ``None``.

        ``t_mat``/``s_mat`` are ``(n, levels, dims)`` int64 matrices in
        ``workload.dim_names`` column order; ``order_table[order_ids[i]]``
        is row ``i``'s tuple of per-level loop-order dim sequences.
        ``None`` when numpy is unavailable.
        """
        raise NotImplementedError

    def evaluate_rows(self, indices: Sequence[int], partial_reuse,
                      sparsity, partial_cache):
        """Vectorized evaluation of the selected rows (in order), or
        ``None`` when the geometry path is unavailable."""
        geom = self.geometry()
        if geom is None:
            return None
        from ..model.batch import evaluate_geometry
        t_mat, s_mat, order_ids, order_table = geom
        idx = _np.asarray(list(indices), dtype=_np.int64)
        return evaluate_geometry(
            self.workload, self.arch,
            t_mat[idx], s_mat[idx], order_ids[idx], order_table,
            partial_reuse=partial_reuse, sparsity=sparsity,
            partial_cache=partial_cache,
        )


def _nontrivial_temporal(nest: Sequence[tuple[str, int]]) -> tuple:
    return tuple((d, f) for d, f in nest if f > 1)


def _nontrivial_spatial(pairs: Sequence[tuple[str, int]]) -> tuple:
    return tuple(sorted((d, f) for d, f in pairs if f > 1))


class NestCohort(Cohort):
    """Cohort over explicitly completed per-candidate nests.

    ``candidates[i]`` is ``(nests, spatials)``: per-level temporal nest
    tuples (outermost first, trivial factors included, exactly as
    ``build_mapping`` would emit them) and per-level sorted spatial
    factor tuples.
    """

    def __init__(self, workload: Workload, arch: Architecture,
                 candidates: Sequence[tuple]) -> None:
        self.workload = workload
        self.arch = arch
        self._candidates = list(candidates)
        self._geometry = None
        self._geometry_built = False

    @classmethod
    def from_nests(cls, workload: Workload, arch: Architecture,
                   candidates: Sequence[tuple]) -> "NestCohort":
        return cls(workload, arch, candidates)

    def __len__(self) -> int:
        return len(self._candidates)

    def fingerprint_levels(self, i: int) -> tuple:
        nests, spatials = self._candidates[i]
        return tuple(
            (_nontrivial_temporal(nest), _nontrivial_spatial(spatial))
            for nest, spatial in zip(nests, spatials)
        )

    def materialize(self, i: int) -> Mapping:
        nests, spatials = self._candidates[i]
        levels = [
            LevelMapping(temporal=tuple(nest), spatial=tuple(spatial))
            for nest, spatial in zip(nests, spatials)
        ]
        return Mapping(self.workload, self.arch, levels)

    def geometry(self):
        if self._geometry_built:
            return self._geometry
        self._geometry_built = True
        if _np is None or not self._candidates:
            return None
        dims = self.workload.dim_names
        pos = {d: j for j, d in enumerate(dims)}
        num = self.arch.num_levels
        n = len(self._candidates)
        t_mat = _np.ones((n, num, len(dims)), dtype=_np.int64)
        s_mat = _np.ones((n, num, len(dims)), dtype=_np.int64)
        order_ids = _np.empty(n, dtype=_np.int64)
        combo_ids: dict[tuple, int] = {}
        order_table: list[tuple] = []
        for i, (nests, spatials) in enumerate(self._candidates):
            seqs = tuple(tuple(d for d, _ in nest) for nest in nests)
            combo = combo_ids.get(seqs)
            if combo is None:
                combo = combo_ids[seqs] = len(order_table)
                order_table.append(seqs)
            order_ids[i] = combo
            for level, nest in enumerate(nests):
                for d, f in nest:
                    if f != 1:
                        t_mat[i, level, pos[d]] = f
            for level, spatial in enumerate(spatials):
                for d, f in spatial:
                    if f != 1:
                        s_mat[i, level, pos[d]] = f
        self._geometry = (t_mat, s_mat, order_ids, order_table)
        return self._geometry


class MatrixCohort(Cohort):
    """Cohort backed directly by factor matrices (full-space decode)."""

    def __init__(self, workload: Workload, arch: Architecture,
                 t_mat, s_mat, order_ids, order_table) -> None:
        self.workload = workload
        self.arch = arch
        self._t_mat = t_mat
        self._s_mat = s_mat
        self._order_ids = order_ids
        self._order_table = order_table
        # python-int row views for exact fingerprints / materialization
        self._t_rows = t_mat.tolist()
        self._s_rows = s_mat.tolist()
        self._order_id_list = order_ids.tolist()

    def __len__(self) -> int:
        return len(self._t_rows)

    def fingerprint_levels(self, i: int) -> tuple:
        dims = self.workload.dim_names
        pos = {d: j for j, d in enumerate(dims)}
        sorted_dims = sorted(dims)
        orders = self._order_table[self._order_id_list[i]]
        t_row = self._t_rows[i]
        s_row = self._s_rows[i]
        out = []
        for level in range(self.arch.num_levels):
            t_level = t_row[level]
            s_level = s_row[level]
            nest = tuple((d, t_level[pos[d]]) for d in orders[level]
                         if t_level[pos[d]] > 1)
            spatial = tuple((d, s_level[pos[d]]) for d in sorted_dims
                            if s_level[pos[d]] > 1)
            out.append((nest, spatial))
        return tuple(out)

    def materialize(self, i: int) -> Mapping:
        dims = self.workload.dim_names
        pos = {d: j for j, d in enumerate(dims)}
        sorted_dims = sorted(dims)
        orders = self._order_table[self._order_id_list[i]]
        t_row = self._t_rows[i]
        s_row = self._s_rows[i]
        levels = []
        for level in range(self.arch.num_levels):
            t_level = t_row[level]
            s_level = s_row[level]
            nest = tuple((d, t_level[pos[d]]) for d in orders[level])
            spatial = tuple((d, s_level[pos[d]]) for d in sorted_dims
                            if s_level[pos[d]] > 1)
            levels.append(LevelMapping(temporal=nest, spatial=spatial))
        return Mapping(self.workload, self.arch, levels)

    def geometry(self):
        return (self._t_mat, self._s_mat, self._order_ids,
                self._order_table)


class SpaceDecoder:
    """Index-decoder for the full mapping space.

    Stages every per-dimension factor lattice as an int64 split matrix
    once, then :meth:`decode` turns any ascending array of global
    enumeration indices into a :class:`MatrixCohort` — the primitive
    under both :func:`full_space_cohorts` (contiguous/shard-strided
    streams) and the branch-and-bound walker (the surviving leaf blocks,
    arbitrary indices).  ``available`` is False when the vectorized
    decode cannot run (no numpy, a lattice too large to stage, or a
    space beyond the decode guard).
    """

    def __init__(self, workload: Workload, arch: Architecture,
                 orders_per_level: int | None = None) -> None:
        # Imported here: mapspace.py reaches repro.core (via the order
        # trie), which imports the scheduler, which imports this module —
        # a cycle at package-load time but not at call time.
        from .mapspace import assignment_slots

        self.workload = workload
        self.arch = arch
        self.num = arch.num_levels
        self.dims = workload.dim_names
        self.slots = assignment_slots(arch)
        self.available = False
        self.total = 0
        if _np is None:
            return
        lattices = [FactorLattice(d, workload.dims[d], self.slots)
                    for d in self.dims]
        matrices = [lattice.split_matrix() for lattice in lattices]
        if any(m is None for m in matrices):
            return
        order_items = list(itertools.permutations(self.dims))
        if orders_per_level is not None:
            order_items = order_items[:orders_per_level]
        if not order_items:
            return
        self.matrices = matrices
        self.order_items = order_items
        self.radices = [len(m) for m in matrices] \
            + [len(order_items)] * self.num
        total = 1
        for radix in self.radices:
            total *= radix
        if total == 0 or total > _MAX_DECODED_SPACE:
            return
        self.total = total
        self.available = True

    def decode(self, ks) -> "MatrixCohort":
        """Cohort for the rows at global indices ``ks`` (int64 array,
        ascending), in that order."""
        num = self.num
        dims = self.dims
        m = len(self.order_items)
        n = len(ks)
        digits = []
        rem = ks
        for radix in reversed(self.radices):
            rem, digit = _np.divmod(rem, radix)
            digits.append(digit)
        digits.reverse()
        t_mat = _np.ones((n, num, len(dims)), dtype=_np.int64)
        s_mat = _np.ones((n, num, len(dims)), dtype=_np.int64)
        for j, matrix in enumerate(self.matrices):
            block = matrix[digits[j]]  # (n, num_slots)
            for s_idx, (kind, level) in enumerate(self.slots):
                col = block[:, s_idx]
                if kind == "t":
                    t_mat[:, level, j] = col
                else:
                    s_mat[:, level, j] = col
        combo = _np.zeros(n, dtype=_np.int64)
        for level in range(num):
            combo = combo * m + digits[len(dims) + level]
        uniq, inv = _np.unique(combo, return_inverse=True)
        order_table = []
        for value in uniq.tolist():
            # least-significant digit is the innermost-listed order axis
            # (level num-1); reverse to get level 0 first.
            decoded = []
            for _ in range(num):
                value, digit = divmod(value, m)
                decoded.append(digit)
            decoded.reverse()
            order_table.append(tuple(self.order_items[d] for d in decoded))
        return MatrixCohort(self.workload, self.arch, t_mat, s_mat,
                            inv.astype(_np.int64), order_table)


def full_space_cohorts(
    workload: Workload,
    arch: Architecture,
    orders_per_level: int | None = None,
    shard: tuple[int, int] | None = None,
    batch_size: int = DEFAULT_COHORT,
) -> "Iterator[MatrixCohort] | None":
    """Stream the full mapping space as :class:`MatrixCohort` batches.

    Row order matches :func:`~repro.mapspace.mapspace.full_mapping_space`
    enumeration (and hence the historical exhaustive stream) exactly;
    ``shard=(i, n)`` selects the rows whose global enumeration index is
    congruent to ``i`` mod ``n``.  Returns ``None`` when the vectorized
    decode is unavailable (no numpy, a lattice too large to stage, or a
    space beyond the decode guard) — callers then walk the scalar space.
    """
    decoder = SpaceDecoder(workload, arch, orders_per_level)
    if not decoder.available:
        return None
    shard = check_shard(shard)
    return _decode_cohorts(decoder, shard, batch_size)


def _decode_cohorts(decoder, shard, batch_size):
    start, step = (0, 1) if shard is None else shard
    total = decoder.total
    for block_start in range(start, total, step * batch_size):
        block_end = min(total, block_start + step * batch_size)
        ks = _np.arange(block_start, block_end, step, dtype=_np.int64)
        yield decoder.decode(ks)
