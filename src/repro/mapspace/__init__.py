"""repro.mapspace — declarative, deterministic mapping-space IR.

The mapspace IR separates *what the candidate space is* from *how a
strategy walks it*.  Axes (factor lattices, order tries, unroll and
bypass choices) are :class:`Space` objects composed with products,
dependent chains and named pruning passes; every composed space is
deterministic, sized, and shardable.  See docs/MAPSPACE.md.
"""

from .batch import (
    Cohort,
    MatrixCohort,
    NestCohort,
    full_space_cohorts,
)
from .bounds import BoundContext, BoundModel, Region
from .bypass import BypassAssignment, BypassSpace, architecture_assignment
from .constraints import (
    capacity_fits,
    divisibility,
    tile_capacity_fits,
    utilization_band,
    utilization_floor,
)
from .factor import (
    DivisorSpace,
    FactorLattice,
    ordered_factorizations,
    prime_factors,
)
from .mapspace import (
    Mapspace,
    assemble_mapping,
    assignment_slots,
    full_mapping_space,
    spatial_boundaries,
    stores_from_splits,
)
from .order import OrderSpace, PermutationSpace
from .spaces import (
    DEFAULT_COHORT,
    BoundStats,
    ChainSpace,
    DependentSpace,
    FilteredSpace,
    LazySpace,
    ListSpace,
    MappedSpace,
    PointSpace,
    ProductSpace,
    PruneStats,
    Space,
    TruncatedSpace,
    check_shard,
)
from .tile import (
    DivisorGridSpace,
    ExhaustiveTileSpace,
    TileSpace,
    cap_tilings_by_footprint,
)
from .unroll import UnrollSpace, unroll_size

__all__ = [
    "BoundContext",
    "BoundModel",
    "BoundStats",
    "Region",
    "BypassAssignment",
    "BypassSpace",
    "ChainSpace",
    "Cohort",
    "DEFAULT_COHORT",
    "MatrixCohort",
    "NestCohort",
    "full_space_cohorts",
    "DependentSpace",
    "DivisorGridSpace",
    "DivisorSpace",
    "ExhaustiveTileSpace",
    "FactorLattice",
    "FilteredSpace",
    "LazySpace",
    "ListSpace",
    "MappedSpace",
    "Mapspace",
    "OrderSpace",
    "PermutationSpace",
    "PointSpace",
    "ProductSpace",
    "PruneStats",
    "Space",
    "TileSpace",
    "TruncatedSpace",
    "UnrollSpace",
    "architecture_assignment",
    "assemble_mapping",
    "assignment_slots",
    "cap_tilings_by_footprint",
    "capacity_fits",
    "check_shard",
    "divisibility",
    "full_mapping_space",
    "ordered_factorizations",
    "prime_factors",
    "spatial_boundaries",
    "stores_from_splits",
    "tile_capacity_fits",
    "unroll_size",
    "utilization_band",
    "utilization_floor",
    "DivisorSpace",
]
__all__ = sorted(set(__all__))
