"""Constraint predicates applied to mapspaces as pruning passes.

Each factory returns a named predicate suitable for
``Space.filter(predicate, name, stats)``, so composed spaces report
per-pass drop counters through :class:`~repro.mapspace.spaces.PruneStats`.

Every predicate also carries a ``.batch`` attribute — a bulk form
``batch(items) -> sequence[bool]`` that the batch generation path
(:meth:`FilteredSpace.enumerate_batch`) applies as one vectorized mask
per cohort.  The bulk form must agree elementwise with the scalar
predicate; where the check reduces to integer arithmetic over factor
dicts (divisibility, utilization bands) it is computed with numpy when
available, otherwise it degrades to a tight scalar sweep.
"""

from __future__ import annotations

import math
from typing import Callable, Mapping, Sequence

from ..arch.spec import Architecture
from ..core.tiling_tree import placement_fits, tile_fits
from ..workloads.expression import Workload

try:  # numpy is optional everywhere in this repo
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on the no-numpy CI leg
    _np = None


def _with_batch(predicate, batch_fn):
    """Attach the bulk mask form to a scalar predicate."""
    predicate.batch = batch_fn
    return predicate


def capacity_fits(
    workload: Workload,
    arch: Architecture,
    level: int,
) -> Callable[[tuple[Mapping[str, int], Mapping[str, int]]], bool]:
    """Predicate over ``(sizes, spatial)`` pairs: the tile spanning
    ``sizes`` with boundary unrolling ``spatial`` fits every tensor's
    innermost storage home at or above ``level``."""

    def predicate(candidate: tuple[Mapping[str, int], Mapping[str, int]],
                  ) -> bool:
        sizes, spatial = candidate
        return placement_fits(workload, arch, level, sizes, spatial)

    def batch(candidates: Sequence) -> list[bool]:
        return [placement_fits(workload, arch, level, sizes, spatial)
                for sizes, spatial in candidates]

    return _with_batch(predicate, batch)


def tile_capacity_fits(
    workload: Workload,
    arch: Architecture,
    level: int,
    base: Mapping[str, int],
) -> Callable[[Mapping[str, int]], bool]:
    """Predicate over tile multiplier dicts: the implied tile fits."""

    def predicate(tiling: Mapping[str, int]) -> bool:
        sizes = {
            d: base.get(d, 1) * tiling.get(d, 1) for d in workload.dims
        }
        return tile_fits(workload, arch, level, sizes)

    def batch(tilings: Sequence[Mapping[str, int]]) -> list[bool]:
        return [predicate(tiling) for tiling in tilings]

    return _with_batch(predicate, batch)


def divisibility(
    remaining: Mapping[str, int],
) -> Callable[[Mapping[str, int]], bool]:
    """Predicate over factor dicts: every factor divides the residual
    extent of its dimension."""

    def predicate(factors: Mapping[str, int]) -> bool:
        for dim, factor in factors.items():
            if factor < 1 or remaining.get(dim, 1) % factor != 0:
                return False
        return True

    def batch(items: Sequence[Mapping[str, int]]) -> list[bool]:
        if _np is None or len(items) < 8:
            return [predicate(factors) for factors in items]
        dims = sorted({dim for factors in items for dim in factors})
        if not dims:
            return [True] * len(items)
        mat = _np.ones((len(items), len(dims)), dtype=_np.int64)
        pos = {dim: j for j, dim in enumerate(dims)}
        for i, factors in enumerate(items):
            for dim, factor in factors.items():
                mat[i, pos[dim]] = factor
        rem = _np.array([remaining.get(dim, 1) for dim in dims],
                        dtype=_np.int64)
        ok = (mat >= 1) & (rem[None, :] % _np.maximum(mat, 1) == 0)
        # A dim absent from an item's dict contributes factor 1, which
        # always passes — the ones-initialised matrix encodes that.
        return _np.all(ok, axis=1).tolist()

    return _with_batch(predicate, batch)


def utilization_floor(
    fanout: int,
    floor: float,
) -> Callable[[Mapping[str, int]], bool]:
    """Predicate over unroll dicts: occupied lanes reach at least
    ``floor * fanout`` (always true for fanout <= 1)."""

    def predicate(unroll: Mapping[str, int]) -> bool:
        if fanout <= 1:
            return True
        used = math.prod(unroll.values()) if unroll else 1
        return used >= floor * fanout

    def batch(items: Sequence[Mapping[str, int]]) -> list[bool]:
        if fanout <= 1:
            return [True] * len(items)
        threshold = floor * fanout
        return [(math.prod(u.values()) if u else 1) >= threshold
                for u in items]

    return _with_batch(predicate, batch)


def utilization_band(
    floor: float,
    ceiling: float,
    measure: Callable[[Mapping[str, int]], float],
) -> Callable[[Mapping[str, int]], bool]:
    """Predicate keeping candidates whose ``measure`` lies in
    ``[floor, ceiling]`` — dMazeRunner's buffer-utilisation band."""

    def predicate(candidate: Mapping[str, int]) -> bool:
        utilization = measure(candidate)
        return floor <= utilization <= ceiling

    def batch(items: Sequence[Mapping[str, int]]) -> list[bool]:
        return [floor <= measure(candidate) <= ceiling
                for candidate in items]

    return _with_batch(predicate, batch)
