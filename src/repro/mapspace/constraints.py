"""Constraint predicates applied to mapspaces as pruning passes.

Each factory returns a named predicate suitable for
``Space.filter(predicate, name, stats)``, so composed spaces report
per-pass drop counters through :class:`~repro.mapspace.spaces.PruneStats`.
"""

from __future__ import annotations

import math
from typing import Callable, Mapping, Sequence

from ..arch.spec import Architecture
from ..core.tiling_tree import placement_fits, tile_fits
from ..workloads.expression import Workload


def capacity_fits(
    workload: Workload,
    arch: Architecture,
    level: int,
) -> Callable[[tuple[Mapping[str, int], Mapping[str, int]]], bool]:
    """Predicate over ``(sizes, spatial)`` pairs: the tile spanning
    ``sizes`` with boundary unrolling ``spatial`` fits every tensor's
    innermost storage home at or above ``level``."""

    def predicate(candidate: tuple[Mapping[str, int], Mapping[str, int]],
                  ) -> bool:
        sizes, spatial = candidate
        return placement_fits(workload, arch, level, sizes, spatial)

    return predicate


def tile_capacity_fits(
    workload: Workload,
    arch: Architecture,
    level: int,
    base: Mapping[str, int],
) -> Callable[[Mapping[str, int]], bool]:
    """Predicate over tile multiplier dicts: the implied tile fits."""

    def predicate(tiling: Mapping[str, int]) -> bool:
        sizes = {
            d: base.get(d, 1) * tiling.get(d, 1) for d in workload.dims
        }
        return tile_fits(workload, arch, level, sizes)

    return predicate


def divisibility(
    remaining: Mapping[str, int],
) -> Callable[[Mapping[str, int]], bool]:
    """Predicate over factor dicts: every factor divides the residual
    extent of its dimension."""

    def predicate(factors: Mapping[str, int]) -> bool:
        for dim, factor in factors.items():
            if factor < 1 or remaining.get(dim, 1) % factor != 0:
                return False
        return True

    return predicate


def utilization_floor(
    fanout: int,
    floor: float,
) -> Callable[[Mapping[str, int]], bool]:
    """Predicate over unroll dicts: occupied lanes reach at least
    ``floor * fanout`` (always true for fanout <= 1)."""

    def predicate(unroll: Mapping[str, int]) -> bool:
        if fanout <= 1:
            return True
        used = math.prod(unroll.values()) if unroll else 1
        return used >= floor * fanout

    return predicate


def utilization_band(
    floor: float,
    ceiling: float,
    measure: Callable[[Mapping[str, int]], float],
) -> Callable[[Mapping[str, int]], bool]:
    """Predicate keeping candidates whose ``measure`` lies in
    ``[floor, ceiling]`` — dMazeRunner's buffer-utilisation band."""

    def predicate(candidate: Mapping[str, int]) -> bool:
        utilization = measure(candidate)
        return floor <= utilization <= ceiling

    return predicate
