"""Loop-ordering spaces: the pruned reuse trie and raw permutations.

:class:`OrderSpace` wraps :mod:`repro.core.order_trie` — the paper's
per-level ordering trie with no-further-reuse and dominance pruning — as
a declarative space of :class:`~repro.core.order_trie.OrderingCandidate`
objects.  :class:`PermutationSpace` is the unpruned ``n!`` alternative
the exhaustive and random baselines define their spaces over.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterator, Sequence

from ..core.order_trie import OrderingCandidate, TrieStats, enumerate_orderings
from ..workloads.expression import Workload
from .spaces import Space


class OrderSpace(Space):
    """The pruned loop-ordering candidates of one memory level.

    Enumeration is the order-trie output (deterministic); ``size()`` is
    its length.  ``stats`` receives the trie's node accounting on first
    materialisation.
    """

    def __init__(self, workload: Workload,
                 dims: Sequence[str] | None = None,
                 stats: TrieStats | None = None) -> None:
        self.workload = workload
        self.dims = tuple(dims) if dims is not None else None
        self.stats = stats
        self._candidates: list[OrderingCandidate] | None = None

    def candidates(self) -> list[OrderingCandidate]:
        if self._candidates is None:
            self._candidates = enumerate_orderings(
                self.workload, dims=self.dims, stats=self.stats)
        return self._candidates

    def size(self) -> int:
        return len(self.candidates())

    def _generate(self) -> Iterator[OrderingCandidate]:
        return iter(self.candidates())

    def batch_axis_items(self) -> list[OrderingCandidate]:
        # The trie materialises (and records its node stats) exactly
        # once, whichever path touches it first — same as scalar.
        return self.candidates()


class PermutationSpace(Space):
    """All permutations of ``dims`` in :func:`itertools.permutations`
    order; ``size()`` is ``len(dims)!``."""

    def __init__(self, dims: Sequence[str]) -> None:
        self.dims = tuple(dims)

    def size(self) -> int:
        return math.factorial(len(self.dims))

    def _generate(self) -> Iterator[tuple[str, ...]]:
        return iter(itertools.permutations(self.dims))

    def batch_axis_items(self) -> list[tuple[str, ...]]:
        return list(itertools.permutations(self.dims))
