"""Unroll spaces: spatial slot assignments for one fanout boundary.

:class:`UnrollSpace` wraps :func:`repro.core.unrolling.enumerate_unrollings`
(the Spatial Unrolling Principle with high-throughput pruning) as a
declarative space, folding in the two fallback policies the searches
used to hand-roll:

* ``fallback="augment"`` (Sunstone): when the principled dimension set
  cannot fill the fanout, the remaining dimensions' candidates are
  appended (deduplicated) rather than leaving lanes idle;
* ``fallback="replace"`` (Interstellar): when the preset dimensions
  cannot fill the grid, the candidate set is regenerated over all
  dimensions;
* ``fallback=None``: the principled set is final.

An optional ``cap`` keeps the highest-utilisation candidates, matching
Sunstone's per-step candidate budget.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from ..core.unrolling import UnrollingStats, enumerate_unrollings
from ..workloads.expression import Workload
from .spaces import LazySpace


def unroll_size(unroll: Mapping[str, int]) -> int:
    """Lanes occupied by an unrolling (1 for the empty unrolling)."""
    return math.prod(unroll.values()) if unroll else 1


class UnrollSpace(LazySpace):
    """Spatial factor assignments for one fanout boundary."""

    def __init__(
        self,
        workload: Workload,
        fanout: int,
        remaining: Mapping[str, int],
        allowed: Sequence[str] | None = None,
        utilization_threshold: float = 1.0,
        max_unrolled_dims: int = 2,
        fallback: str | None = None,
        cap: int | None = None,
        stats: UnrollingStats | None = None,
    ) -> None:
        if fallback not in (None, "augment", "replace"):
            raise ValueError(f"unknown fallback policy {fallback!r}")
        allowed_dims = (tuple(allowed) if allowed is not None
                        else workload.dim_names)
        self.fanout = fanout
        self.allowed = allowed_dims

        def build() -> list[dict[str, int]]:
            unrolls = enumerate_unrollings(
                workload, fanout, remaining, allowed_dims,
                stats=stats,
                utilization_threshold=utilization_threshold,
                max_unrolled_dims=max_unrolled_dims,
            )
            if fallback is not None and fanout > 1:
                best = max((unroll_size(u) for u in unrolls), default=1)
                short = best < fanout
                if short and fallback == "replace":
                    unrolls = enumerate_unrollings(
                        workload, fanout, remaining, workload.dim_names,
                        stats=stats,
                        utilization_threshold=utilization_threshold,
                        max_unrolled_dims=max_unrolled_dims,
                    )
                elif (short and fallback == "augment"
                        and len(allowed_dims) < len(workload.dim_names)):
                    extra = enumerate_unrollings(
                        workload, fanout, remaining, workload.dim_names,
                        stats=stats,
                        utilization_threshold=utilization_threshold,
                        max_unrolled_dims=max_unrolled_dims,
                    )
                    seen = {tuple(sorted(u.items())) for u in unrolls}
                    unrolls += [u for u in extra
                                if tuple(sorted(u.items())) not in seen]
            if cap is not None and len(unrolls) > cap:
                unrolls.sort(key=unroll_size, reverse=True)
                unrolls = unrolls[:cap]
            return unrolls

        super().__init__(build)
