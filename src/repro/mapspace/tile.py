"""Tile spaces: per-level temporal factor candidates.

Three declarative forms cover every tiling strategy in the repo:

* :class:`TileSpace` — the Tiling-Principle tree of maximal fitting
  tiles (:func:`repro.core.tiling_tree.enumerate_tilings`), with the
  footprint-corner cap policy Sunstone's bottom-up sweep applies when
  the frontier is wide;
* :class:`ExhaustiveTileSpace` — every fitting divisor combination
  (:func:`repro.core.tiling_tree.enumerate_all_tilings`), used by the
  top-down sweep where maximality pruning is unsound;
* :class:`DivisorGridSpace` — the raw, unfiltered divisor grid, which
  baselines constrain with their own pruning passes (dMazeRunner's
  utilisation band).

All three yield per-dimension multiplier dicts in a deterministic
order.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Mapping, Sequence

from ..arch.spec import Architecture
from ..core.tiling_tree import (
    TilingStats,
    divisors,
    enumerate_all_tilings,
    enumerate_tilings,
)
from ..workloads.expression import Workload
from .spaces import LazySpace, Space


def _region_bound(context) -> float:
    """Shared hook body for geometry spaces: delegate to the analytic
    :class:`repro.mapspace.bounds.BoundModel` when a context supplies
    one, otherwise never prune."""
    if context is None or getattr(context, "model", None) is None:
        return float("-inf")
    return context.model.region_bound(context.region)


def cap_tilings_by_footprint(
    tilings: list[dict[str, int]],
    cap: int,
    workload: Workload,
    base: Mapping[str, int],
    growth: Sequence[str],
) -> list[dict[str, int]]:
    """Keep at most ``cap`` tiles: the *corners* of the maximal frontier
    (per growth dimension, the fattest and leanest max-``d`` tiles) are
    admitted first, then the largest footprints fill the budget.  The
    corners preserve e.g. the P-heavy tile that best exploits
    sliding-window overlap; the footprint fill keeps the most temporal
    reuse."""

    def footprint(tiling: dict[str, int]) -> int:
        sizes = {
            d: base.get(d, 1) * tiling.get(d, 1)
            for d in workload.dims
        }
        return sum(t.footprint(sizes) for t in workload.tensors)

    chosen: list[dict[str, int]] = []
    chosen_keys: set = set()

    def admit(tiling: dict[str, int]) -> None:
        key = tuple(sorted(tiling.items()))
        if key not in chosen_keys:
            chosen_keys.add(key)
            chosen.append(tiling)

    for dim in growth:
        admit(max(tilings,
                  key=lambda t: (t.get(dim, 1), footprint(t))))
        admit(max(tilings,
                  key=lambda t: (t.get(dim, 1), -footprint(t))))
    for tiling in sorted(tilings, key=footprint, reverse=True):
        if len(chosen) >= cap:
            break
        admit(tiling)
    return chosen


class TileSpace(LazySpace):
    """Maximal tiles per the Tiling Principle, optionally capped to the
    frontier's corners plus the largest footprints."""

    def __init__(
        self,
        workload: Workload,
        arch: Architecture,
        level: int,
        base: Mapping[str, int],
        remaining: Mapping[str, int],
        growth: Sequence[str],
        cap: int | None = None,
        stats: TilingStats | None = None,
    ) -> None:
        self.workload = workload
        self.growth = tuple(growth)

        def build() -> list[dict[str, int]]:
            tilings = enumerate_tilings(
                workload, arch, level, base, remaining, self.growth,
                stats=stats,
            )
            if cap is not None and len(tilings) > cap:
                tilings = cap_tilings_by_footprint(
                    tilings, cap, workload, base, self.growth)
            return tilings

        super().__init__(build)

    def bound(self, objective: str, context=None) -> float:
        return _region_bound(context)


class ExhaustiveTileSpace(LazySpace):
    """Every fitting divisor combination (no maximality pruning)."""

    def __init__(
        self,
        workload: Workload,
        arch: Architecture,
        level: int,
        base: Mapping[str, int],
        remaining: Mapping[str, int],
        dims: Sequence[str] | None = None,
        stats: TilingStats | None = None,
    ) -> None:
        super().__init__(lambda: enumerate_all_tilings(
            workload, arch, level, base, remaining,
            stats=stats, dims=dims,
        ))

    def bound(self, objective: str, context=None) -> float:
        return _region_bound(context)


class DivisorGridSpace(Space):
    """The raw divisor grid: every combination of per-dimension divisor
    multipliers of ``remaining``, unfiltered, in row-major
    :func:`itertools.product` order over ``dims``.  Trivial factors are
    omitted from the yielded dicts."""

    def __init__(self, remaining: Mapping[str, int],
                 dims: Sequence[str]) -> None:
        self.dims = tuple(d for d in dims if remaining.get(d, 1) > 1)
        self.remaining = {d: remaining[d] for d in self.dims}

    def size(self) -> int:
        total = 1
        for d in self.dims:
            total *= len(divisors(self.remaining[d]))
        return total

    def bound(self, objective: str, context=None) -> float:
        return _region_bound(context)

    def _generate(self) -> Iterator[dict[str, int]]:
        choice_lists = [divisors(self.remaining[d]) for d in self.dims]
        for combo in itertools.product(*choice_lists):
            yield {d: f for d, f in zip(self.dims, combo) if f > 1}
