"""Per-dimension factor lattices: prime-factor tile splits over slots.

A :class:`FactorLattice` is the declarative form of "distribute the prime
factors of one dimension's extent across an ordered set of slots" — the
decision every tiling strategy in this repo ultimately makes, whether the
slots are the temporal levels of a hierarchy, the (temporal, spatial)
assignment slots of the full mapping space, or two abstract halves of an
off-chip/on-chip split.  Its ``size()`` is the closed-form count of
ordered factorisations, its ``enumerate()`` a deterministic stream of
splits, and ``sample(rng)`` a uniform prime-placement draw matching the
sampling baselines' historical RNG consumption exactly.
"""

from __future__ import annotations

import itertools
import math
from typing import Any, Iterator, Sequence

from .spaces import DEFAULT_COHORT, Space, check_shard

try:  # numpy is optional everywhere in this repo
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on the no-numpy CI leg
    _np = None

# Above this many raw prime placements (slots ** num_primes) the
# vectorized lattice would materialise an unreasonably large staging
# matrix; fall back to the streaming scalar generator instead.
_MAX_VECTOR_PLACEMENTS = 1 << 22


def prime_factors(n: int) -> list[int]:
    """Prime factorisation of ``n`` with multiplicity, ascending."""
    factors: list[int] = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            factors.append(d)
            n //= d
        d += 1
    if n > 1:
        factors.append(n)
    return factors


def ordered_factorizations(n: int, slots: int) -> int:
    """Number of ways to write ``n`` as an ordered product of ``slots``
    positive integers: multiplicative over primes,
    ``prod_p C(e_p + slots - 1, slots - 1)``."""
    if slots < 1:
        raise ValueError("slots must be >= 1")
    count = 1
    exponents: dict[int, int] = {}
    for p in prime_factors(n):
        exponents[p] = exponents.get(p, 0) + 1
    for e in exponents.values():
        count *= math.comb(e + slots - 1, slots - 1)
    return count


class FactorLattice(Space):
    """All ordered splits of ``extent`` across ``slots``.

    ``slots`` is an ordered sequence of opaque labels (e.g. ``("t", 0)``,
    ``("s", 0)``, ``("t", 1)`` …).  Enumeration yields tuples of factors
    aligned with ``slots`` whose product is ``extent``, deduplicated, in
    the canonical prime-placement order; ``size()`` is the closed-form
    ordered-factorisation count and always equals the stream length.
    """

    def __init__(self, dim: str, extent: int, slots: Sequence[Any]) -> None:
        if extent < 1:
            raise ValueError(f"extent of {dim!r} must be >= 1, got {extent}")
        if not slots:
            raise ValueError("at least one slot is required")
        self.dim = dim
        self.extent = extent
        self.slots = tuple(slots)
        self.primes = tuple(prime_factors(extent))

    def size(self) -> int:
        return ordered_factorizations(self.extent, len(self.slots))

    def bound(self, objective: str, context: Any = None) -> float:
        """Analytic lower bound from the decided-factor region carried
        by ``context`` (a :class:`repro.mapspace.bounds.BoundContext`);
        the lattice itself holds no cost information, so without a
        context nothing can be pruned."""
        if context is None or getattr(context, "model", None) is None:
            return float("-inf")
        return context.model.region_bound(context.region)

    def _generate(self) -> Iterator[tuple[int, ...]]:
        slots = len(self.slots)
        if not self.primes:
            yield (1,) * slots
            return
        seen: set[tuple[int, ...]] = set()
        for placement in itertools.product(range(slots),
                                           repeat=len(self.primes)):
            split = [1] * slots
            for prime, slot in zip(self.primes, placement):
                split[slot] *= prime
            key = tuple(split)
            if key not in seen:
                seen.add(key)
                yield key

    def split_matrix(self):
        """The full dedup'd split list as an ``(n, slots)`` int64 matrix.

        Row ``i`` equals the ``i``-th tuple of the scalar stream.  The
        construction vectorises the prime-placement walk: placement
        index ``k`` decodes to per-prime slot digits (first prime
        slowest, matching ``itertools.product``), each prime multiplies
        into its slot column, and ``np.unique`` keeps first occurrences
        in stream order.  Returns ``None`` when numpy is unavailable or
        the raw placement count exceeds the staging guard.
        """
        if _np is None:
            return None
        slots = len(self.slots)
        num_primes = len(self.primes)
        if not num_primes:
            return _np.ones((1, slots), dtype=_np.int64)
        placements = slots ** num_primes
        if placements > _MAX_VECTOR_PLACEMENTS:
            return None
        idx = _np.arange(placements, dtype=_np.int64)
        splits = _np.ones((placements, slots), dtype=_np.int64)
        for j, prime in enumerate(self.primes):
            digit = (idx // (slots ** (num_primes - 1 - j))) % slots
            # scatter-multiply prime j into its chosen slot per placement
            _np.multiply.at(splits, (idx, digit), prime)
        _, first = _np.unique(splits, axis=0, return_index=True)
        return splits[_np.sort(first)]

    def enumerate_batch(
        self,
        seed: int | None = None,
        shard: tuple[int, int] | None = None,
        batch_size: int = DEFAULT_COHORT,
    ) -> Iterator[list]:
        if seed is not None:
            yield from super().enumerate_batch(seed, shard, batch_size)
            return
        matrix = self.split_matrix()
        if matrix is None:
            yield from super().enumerate_batch(seed, shard, batch_size)
            return
        shard = check_shard(shard)
        if shard is not None:
            index, count = shard
            matrix = matrix[index::count]
        rows = matrix.tolist()  # python ints, bit-identical to scalar
        for start in range(0, len(rows), batch_size):
            yield [tuple(row) for row in rows[start:start + batch_size]]

    def batch_axis_items(self) -> list:
        matrix = self.split_matrix()
        if matrix is None:
            return list(self._generate())
        return [tuple(row) for row in matrix.tolist()]

    def sample(self, rng) -> dict[Any, int]:
        """One uniform prime-placement draw: each prime factor lands in
        ``rng.choice(self.slots)``.  Returns slot label -> factor.

        The RNG consumption (one ``choice`` over the slot sequence per
        prime) is part of the contract: the sampling baselines'
        reproducibility tests pin bit-identical candidate streams for a
        given seed.
        """
        split: dict[Any, int] = {slot: 1 for slot in self.slots}
        for p in self.primes:
            slot = rng.choice(self.slots)
            split[slot] *= p
        return split

    def divisibility_ok(self, split: Sequence[int]) -> bool:
        """Constraint predicate: ``split`` is a lattice member (right
        arity, positive factors, product equal to the extent)."""
        if len(split) != len(self.slots):
            return False
        product = 1
        for factor in split:
            if factor < 1 or self.extent % factor != 0:
                return False
            product *= factor
        return product == self.extent


class DivisorSpace(Space):
    """Divisors of ``extent`` not exceeding ``bound``, ascending.

    The per-boundary unrolling choice set of Table I's counting model.
    """

    def __init__(self, extent: int, bound: int | None = None) -> None:
        if extent < 1:
            raise ValueError("extent must be >= 1")
        self.extent = extent
        self.bound = bound
        from ..core.tiling_tree import divisors
        choices = divisors(extent)
        if bound is not None:
            choices = tuple(d for d in choices if d <= bound)
        self._choices = choices

    def size(self) -> int:
        return len(self._choices)

    def _generate(self) -> Iterator[int]:
        return iter(self._choices)

    def batch_axis_items(self) -> list:
        return list(self._choices)
