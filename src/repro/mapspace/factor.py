"""Per-dimension factor lattices: prime-factor tile splits over slots.

A :class:`FactorLattice` is the declarative form of "distribute the prime
factors of one dimension's extent across an ordered set of slots" — the
decision every tiling strategy in this repo ultimately makes, whether the
slots are the temporal levels of a hierarchy, the (temporal, spatial)
assignment slots of the full mapping space, or two abstract halves of an
off-chip/on-chip split.  Its ``size()`` is the closed-form count of
ordered factorisations, its ``enumerate()`` a deterministic stream of
splits, and ``sample(rng)`` a uniform prime-placement draw matching the
sampling baselines' historical RNG consumption exactly.
"""

from __future__ import annotations

import itertools
import math
from typing import Any, Iterator, Sequence

from .spaces import Space


def prime_factors(n: int) -> list[int]:
    """Prime factorisation of ``n`` with multiplicity, ascending."""
    factors: list[int] = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            factors.append(d)
            n //= d
        d += 1
    if n > 1:
        factors.append(n)
    return factors


def ordered_factorizations(n: int, slots: int) -> int:
    """Number of ways to write ``n`` as an ordered product of ``slots``
    positive integers: multiplicative over primes,
    ``prod_p C(e_p + slots - 1, slots - 1)``."""
    if slots < 1:
        raise ValueError("slots must be >= 1")
    count = 1
    exponents: dict[int, int] = {}
    for p in prime_factors(n):
        exponents[p] = exponents.get(p, 0) + 1
    for e in exponents.values():
        count *= math.comb(e + slots - 1, slots - 1)
    return count


class FactorLattice(Space):
    """All ordered splits of ``extent`` across ``slots``.

    ``slots`` is an ordered sequence of opaque labels (e.g. ``("t", 0)``,
    ``("s", 0)``, ``("t", 1)`` …).  Enumeration yields tuples of factors
    aligned with ``slots`` whose product is ``extent``, deduplicated, in
    the canonical prime-placement order; ``size()`` is the closed-form
    ordered-factorisation count and always equals the stream length.
    """

    def __init__(self, dim: str, extent: int, slots: Sequence[Any]) -> None:
        if extent < 1:
            raise ValueError(f"extent of {dim!r} must be >= 1, got {extent}")
        if not slots:
            raise ValueError("at least one slot is required")
        self.dim = dim
        self.extent = extent
        self.slots = tuple(slots)
        self.primes = tuple(prime_factors(extent))

    def size(self) -> int:
        return ordered_factorizations(self.extent, len(self.slots))

    def _generate(self) -> Iterator[tuple[int, ...]]:
        slots = len(self.slots)
        if not self.primes:
            yield (1,) * slots
            return
        seen: set[tuple[int, ...]] = set()
        for placement in itertools.product(range(slots),
                                           repeat=len(self.primes)):
            split = [1] * slots
            for prime, slot in zip(self.primes, placement):
                split[slot] *= prime
            key = tuple(split)
            if key not in seen:
                seen.add(key)
                yield key

    def sample(self, rng) -> dict[Any, int]:
        """One uniform prime-placement draw: each prime factor lands in
        ``rng.choice(self.slots)``.  Returns slot label -> factor.

        The RNG consumption (one ``choice`` over the slot sequence per
        prime) is part of the contract: the sampling baselines'
        reproducibility tests pin bit-identical candidate streams for a
        given seed.
        """
        split: dict[Any, int] = {slot: 1 for slot in self.slots}
        for p in self.primes:
            slot = rng.choice(self.slots)
            split[slot] *= p
        return split

    def divisibility_ok(self, split: Sequence[int]) -> bool:
        """Constraint predicate: ``split`` is a lattice member (right
        arity, positive factors, product equal to the extent)."""
        if len(split) != len(self.slots):
            return False
        product = 1
        for factor in split:
            if factor < 1 or self.extent % factor != 0:
                return False
            product *= factor
        return product == self.extent


class DivisorSpace(Space):
    """Divisors of ``extent`` not exceeding ``bound``, ascending.

    The per-boundary unrolling choice set of Table I's counting model.
    """

    def __init__(self, extent: int, bound: int | None = None) -> None:
        if extent < 1:
            raise ValueError("extent must be >= 1")
        self.extent = extent
        self.bound = bound
        from ..core.tiling_tree import divisors
        choices = divisors(extent)
        if bound is not None:
            choices = tuple(d for d in choices if d <= bound)
        self._choices = choices

    def size(self) -> int:
        return len(self._choices)

    def _generate(self) -> Iterator[int]:
        return iter(self._choices)
