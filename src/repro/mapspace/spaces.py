"""Core mapspace IR: composable, deterministic candidate spaces.

A :class:`Space` is a declarative description of a set of scheduling
decisions (tile splits, loop orders, spatial unrollings, whole mappings).
Every space guarantees:

* **determinism** — ``enumerate()`` yields candidates in one canonical
  order, identical across calls, processes and worker counts;
* **sizing** — ``size()`` equals ``len(list(space.enumerate()))``;
* **shardability** — ``enumerate(shard=(i, n))`` yields exactly the
  candidates whose enumeration index is congruent to ``i`` modulo ``n``,
  so the ``n`` shards are pairwise disjoint and their union (interleaved
  by index) is the unsharded stream.

Spaces compose with the usual combinators: :class:`ProductSpace`
(cartesian product, row-major), :class:`DependentSpace` (inner space
chosen per outer item — how tilings depend on the loop order),
:class:`FilteredSpace` (a named pruning pass with drop counters in a
:class:`PruneStats`), :class:`MappedSpace` and :class:`TruncatedSpace`.
The search strategies (Sunstone and the baselines) differ only in which
spaces they compose and how they walk them; see docs/MAPSPACE.md.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Sequence

Shard = "tuple[int, int] | None"


def check_shard(shard: tuple[int, int] | None) -> tuple[int, int] | None:
    """Validate a ``(index, count)`` shard descriptor."""
    if shard is None:
        return None
    index, count = shard
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    if not 0 <= index < count:
        raise ValueError(f"shard index {index} outside 0..{count - 1}")
    return (int(index), int(count))


def _shard_stream(stream: Iterator, shard: tuple[int, int] | None) -> Iterator:
    if shard is None:
        yield from stream
        return
    index, count = shard
    for i, item in enumerate(stream):
        if i % count == index:
            yield item


@dataclass
class PruneStats:
    """Per-pass candidate accounting for pruning passes.

    ``considered[name]`` counts candidates a pass examined and
    ``dropped[name]`` how many it rejected; ``kept(name)`` is the
    difference.  One instance can be shared by every pass of a composed
    space, giving the per-pass drop counters the mapspace IR promises.
    """

    considered: dict[str, int] = field(default_factory=dict)
    dropped: dict[str, int] = field(default_factory=dict)

    def record(self, name: str, kept: bool) -> None:
        self.considered[name] = self.considered.get(name, 0) + 1
        if not kept:
            self.dropped[name] = self.dropped.get(name, 0) + 1

    def kept(self, name: str) -> int:
        return self.considered.get(name, 0) - self.dropped.get(name, 0)

    def merge(self, other: "PruneStats") -> None:
        for name, count in other.considered.items():
            self.considered[name] = self.considered.get(name, 0) + count
        for name, count in other.dropped.items():
            self.dropped[name] = self.dropped.get(name, 0) + count

    def to_dict(self) -> dict[str, dict[str, int]]:
        return {
            name: {
                "considered": self.considered.get(name, 0),
                "dropped": self.dropped.get(name, 0),
            }
            for name in sorted(self.considered)
        }


class Space:
    """Abstract declarative candidate space.

    Subclasses implement ``size()`` and ``_generate()``; ``enumerate()``
    layers the determinism/seed/shard contract on top.  ``seed=None``
    (the default) keeps the canonical order; a non-``None`` seed applies
    a deterministic Fisher-Yates shuffle (materialising the stream), so
    stochastic searches can draw reproducible random walks from the same
    declarative object.
    """

    def size(self) -> int:
        raise NotImplementedError

    def _generate(self) -> Iterator:
        raise NotImplementedError

    def enumerate(
        self,
        seed: int | None = None,
        shard: tuple[int, int] | None = None,
    ) -> Iterator:
        """Lazily yield candidates; deterministic, optionally sharded."""
        shard = check_shard(shard)
        stream: Iterator = self._generate()
        if seed is not None:
            items = list(stream)
            random.Random(seed).shuffle(items)
            stream = iter(items)
        return _shard_stream(stream, shard)

    def __iter__(self) -> Iterator:
        return self.enumerate()

    def materialize(self) -> list:
        """The full candidate list in canonical order."""
        return list(self.enumerate())

    # ------------------------------------------------------------------
    # combinators
    # ------------------------------------------------------------------
    def filter(self, predicate: Callable[[Any], bool], name: str,
               stats: PruneStats | None = None) -> "FilteredSpace":
        """A named pruning pass keeping items where ``predicate`` holds."""
        return FilteredSpace(self, predicate, name, stats)

    def map(self, fn: Callable[[Any], Any]) -> "MappedSpace":
        return MappedSpace(self, fn)

    def head(self, count: int | None) -> "Space":
        """At most the first ``count`` candidates (None = unlimited)."""
        if count is None:
            return self
        return TruncatedSpace(self, count)


class ListSpace(Space):
    """Explicit candidate list (already materialised)."""

    def __init__(self, items: Sequence) -> None:
        self._items = list(items)

    def size(self) -> int:
        return len(self._items)

    def _generate(self) -> Iterator:
        return iter(self._items)


class PointSpace(ListSpace):
    """A single-candidate space (e.g. CoSA's one-shot emission)."""

    def __init__(self, item: Any) -> None:
        super().__init__([item])


class LazySpace(Space):
    """Space materialised on first use by a thunk (cached thereafter)."""

    def __init__(self, thunk: Callable[[], Sequence]) -> None:
        self._thunk = thunk
        self._items: list | None = None

    def _ensure(self) -> list:
        if self._items is None:
            self._items = list(self._thunk())
        return self._items

    def size(self) -> int:
        return len(self._ensure())

    def _generate(self) -> Iterator:
        return iter(self._ensure())


class MappedSpace(Space):
    def __init__(self, inner: Space, fn: Callable[[Any], Any]) -> None:
        self._inner = inner
        self._fn = fn

    def size(self) -> int:
        return self._inner.size()

    def _generate(self) -> Iterator:
        return (self._fn(item) for item in self._inner.enumerate())


class FilteredSpace(Space):
    """A pruning pass: items failing ``predicate`` are dropped and
    counted under ``name`` in the shared :class:`PruneStats`."""

    def __init__(self, inner: Space, predicate: Callable[[Any], bool],
                 name: str, stats: PruneStats | None = None) -> None:
        self._inner = inner
        self._predicate = predicate
        self.name = name
        self.stats = stats if stats is not None else PruneStats()

    def size(self) -> int:
        # Pruned sizes have no closed form; count the survivors without
        # touching the live counters.
        return sum(1 for item in self._inner.enumerate()
                   if self._predicate(item))

    def _generate(self) -> Iterator:
        for item in self._inner.enumerate():
            kept = self._predicate(item)
            self.stats.record(self.name, kept)
            if kept:
                yield item


class TruncatedSpace(Space):
    """The first ``count`` candidates of ``inner`` (generation stops
    pulling once the quota is reached, preserving laziness)."""

    def __init__(self, inner: Space, count: int) -> None:
        if count < 0:
            raise ValueError("count must be >= 0")
        self._inner = inner
        self._count = count

    def size(self) -> int:
        return min(self._inner.size(), self._count)

    def _generate(self) -> Iterator:
        # The quota check runs immediately after the yield so the inner
        # stream is never pulled past the last emitted item — upstream
        # passes with side effects (node counters, prune stats) see only
        # the candidates the truncated stream actually consumed.
        if self._count == 0:
            return
        emitted = 0
        for item in self._inner.enumerate():
            yield item
            emitted += 1
            if emitted >= self._count:
                return


class ProductSpace(Space):
    """Cartesian product in row-major order (first axis outermost).

    ``combine`` folds one item per axis into a candidate (default: a
    tuple).  Axes re-enumerate per outer step, so laziness along the
    first axis is preserved for large products.
    """

    def __init__(self, axes: Sequence[Space],
                 combine: Callable[..., Any] = lambda *parts: parts) -> None:
        self._axes = list(axes)
        self._combine = combine

    def size(self) -> int:
        total = 1
        for axis in self._axes:
            total *= axis.size()
        return total

    def _generate(self) -> Iterator:
        def recurse(index: int, chosen: list) -> Iterator:
            if index == len(self._axes):
                yield self._combine(*chosen)
                return
            for item in self._axes[index].enumerate():
                chosen.append(item)
                yield from recurse(index + 1, chosen)
                chosen.pop()

        return recurse(0, [])


class DependentSpace(Space):
    """Sequential composition where the inner space depends on the outer
    item — how tile candidates depend on the chosen loop order, and
    unrollings on the chosen tile.

    ``fn(outer_item)`` returns the inner :class:`Space`; ``combine``
    folds ``(outer_item, inner_item)`` into the yielded candidate
    (default: the pair).
    """

    def __init__(self, outer: Space, fn: Callable[[Any], Space],
                 combine: Callable[[Any, Any], Any] = lambda a, b: (a, b),
                 ) -> None:
        self._outer = outer
        self._fn = fn
        self._combine = combine

    def size(self) -> int:
        return sum(self._fn(item).size()
                   for item in self._outer.enumerate())

    def _generate(self) -> Iterator:
        for item in self._outer.enumerate():
            inner = self._fn(item)
            for sub in inner.enumerate():
                yield self._combine(item, sub)


class ChainSpace(Space):
    """Concatenation of spaces, in order."""

    def __init__(self, parts: Sequence[Space]) -> None:
        self._parts = list(parts)

    def size(self) -> int:
        return sum(part.size() for part in self._parts)

    def _generate(self) -> Iterator:
        for part in self._parts:
            yield from part.enumerate()
