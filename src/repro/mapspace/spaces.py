"""Core mapspace IR: composable, deterministic candidate spaces.

A :class:`Space` is a declarative description of a set of scheduling
decisions (tile splits, loop orders, spatial unrollings, whole mappings).
Every space guarantees:

* **determinism** — ``enumerate()`` yields candidates in one canonical
  order, identical across calls, processes and worker counts;
* **sizing** — ``size()`` equals ``len(list(space.enumerate()))``;
* **shardability** — ``enumerate(shard=(i, n))`` yields exactly the
  candidates whose enumeration index is congruent to ``i`` modulo ``n``,
  so the ``n`` shards are pairwise disjoint and their union (interleaved
  by index) is the unsharded stream.

Spaces compose with the usual combinators: :class:`ProductSpace`
(cartesian product, row-major), :class:`DependentSpace` (inner space
chosen per outer item — how tilings depend on the loop order),
:class:`FilteredSpace` (a named pruning pass with drop counters in a
:class:`PruneStats`), :class:`MappedSpace` and :class:`TruncatedSpace`.
The search strategies (Sunstone and the baselines) differ only in which
spaces they compose and how they walk them; see docs/MAPSPACE.md.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Sequence

Shard = "tuple[int, int] | None"

# Cohort size of the batch generation path: large enough to amortise the
# numpy staging of repro.model.batch, small enough to keep peak memory
# and the argmin scan granularity bounded.
DEFAULT_COHORT = 1024


def check_shard(shard: tuple[int, int] | None) -> tuple[int, int] | None:
    """Validate a ``(index, count)`` shard descriptor."""
    if shard is None:
        return None
    index, count = shard
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    if not 0 <= index < count:
        raise ValueError(f"shard index {index} outside 0..{count - 1}")
    return (int(index), int(count))


def _shard_stream(stream: Iterator, shard: tuple[int, int] | None) -> Iterator:
    if shard is None:
        yield from stream
        return
    index, count = shard
    for i, item in enumerate(stream):
        if i % count == index:
            yield item


@dataclass
class BoundStats:
    """Branch-and-bound accounting (docs/MAPSPACE.md).

    ``regions_tested`` / ``regions_pruned`` count whole-region bound
    tests and the regions discarded; ``candidates_skipped`` counts the
    individual evaluations those prunes (plus point-bound skips)
    provably avoided.  ``lower_bound`` is the analytic bound over the
    whole space and ``best_value`` the incumbent at search end — their
    ratio is the bound-tightness certificate ("best found is within
    ``gap_pct()``% of the analytic lower bound").
    """

    regions_tested: int = 0
    regions_pruned: int = 0
    candidates_skipped: int = 0
    lower_bound: float | None = None
    best_value: float | None = None

    def active(self) -> bool:
        """True once any bound machinery has run."""
        return bool(self.regions_tested or self.regions_pruned
                    or self.candidates_skipped
                    or self.lower_bound is not None)

    def gap_pct(self) -> float | None:
        """Certificate gap: how far (in %) the best found sits above the
        analytic lower bound; ``None`` when unknowable."""
        if (self.lower_bound is None or self.best_value is None
                or self.lower_bound <= 0):
            return None
        return (self.best_value / self.lower_bound - 1.0) * 100.0

    def merge(self, other: "BoundStats") -> None:
        self.regions_tested += other.regions_tested
        self.regions_pruned += other.regions_pruned
        self.candidates_skipped += other.candidates_skipped
        if other.lower_bound is not None:
            self.lower_bound = (other.lower_bound
                                if self.lower_bound is None
                                else min(self.lower_bound,
                                         other.lower_bound))
        if other.best_value is not None:
            self.best_value = (other.best_value
                               if self.best_value is None
                               else min(self.best_value, other.best_value))

    def to_dict(self) -> dict:
        doc: dict = {
            "regions_tested": self.regions_tested,
            "regions_pruned": self.regions_pruned,
            "candidates_skipped": self.candidates_skipped,
        }
        if self.lower_bound is not None:
            doc["lower_bound"] = self.lower_bound
        if self.best_value is not None:
            doc["best_value"] = self.best_value
        gap = self.gap_pct()
        if gap is not None:
            doc["gap_pct"] = gap
        return doc


@dataclass
class PruneStats:
    """Per-pass candidate accounting for pruning passes.

    ``considered[name]`` counts candidates a pass examined and
    ``dropped[name]`` how many it rejected; ``kept(name)`` is the
    difference.  One instance can be shared by every pass of a composed
    space, giving the per-pass drop counters the mapspace IR promises.
    """

    considered: dict[str, int] = field(default_factory=dict)
    dropped: dict[str, int] = field(default_factory=dict)
    # Branch-and-bound counters ride along with the pass counters so one
    # SchedulerStats.prune object tells the whole pruning story.
    bound: BoundStats = field(default_factory=BoundStats)

    def record(self, name: str, kept: bool) -> None:
        self.considered[name] = self.considered.get(name, 0) + 1
        if not kept:
            self.dropped[name] = self.dropped.get(name, 0) + 1

    def record_many(self, name: str, considered: int, kept: int) -> None:
        """Bulk-record a whole cohort through one pass.

        Equivalent to ``considered`` calls to :meth:`record` of which
        ``kept`` passed — the batch generation path uses this so its
        counters stay bit-identical to the scalar stream's.
        """
        if considered:
            self.considered[name] = self.considered.get(name, 0) + considered
        if considered > kept:
            self.dropped[name] = (self.dropped.get(name, 0)
                                  + considered - kept)

    def kept(self, name: str) -> int:
        return self.considered.get(name, 0) - self.dropped.get(name, 0)

    def merge(self, other: "PruneStats") -> None:
        for name, count in other.considered.items():
            self.considered[name] = self.considered.get(name, 0) + count
        for name, count in other.dropped.items():
            self.dropped[name] = self.dropped.get(name, 0) + count
        self.bound.merge(other.bound)

    def to_dict(self) -> dict[str, dict]:
        doc: dict[str, dict] = {
            name: {
                "considered": self.considered.get(name, 0),
                "dropped": self.dropped.get(name, 0),
            }
            for name in sorted(self.considered)
        }
        if self.bound.active():
            doc["bound"] = self.bound.to_dict()
        return doc


class Space:
    """Abstract declarative candidate space.

    Subclasses implement ``size()`` and ``_generate()``; ``enumerate()``
    layers the determinism/seed/shard contract on top.  ``seed=None``
    (the default) keeps the canonical order; a non-``None`` seed applies
    a deterministic Fisher-Yates shuffle (materialising the stream), so
    stochastic searches can draw reproducible random walks from the same
    declarative object.
    """

    def size(self) -> int:
        raise NotImplementedError

    def _generate(self) -> Iterator:
        raise NotImplementedError

    def enumerate(
        self,
        seed: int | None = None,
        shard: tuple[int, int] | None = None,
    ) -> Iterator:
        """Lazily yield candidates; deterministic, optionally sharded."""
        shard = check_shard(shard)
        stream: Iterator = self._generate()
        if seed is not None:
            items = list(stream)
            random.Random(seed).shuffle(items)
            stream = iter(items)
        return _shard_stream(stream, shard)

    def __iter__(self) -> Iterator:
        return self.enumerate()

    def materialize(self) -> list:
        """The full candidate list in canonical order."""
        return list(self.enumerate())

    # ------------------------------------------------------------------
    # batch generation
    # ------------------------------------------------------------------
    def enumerate_batch(
        self,
        seed: int | None = None,
        shard: tuple[int, int] | None = None,
        batch_size: int = DEFAULT_COHORT,
    ) -> Iterator[list]:
        """Yield the ``enumerate`` stream chunked into cohorts.

        The contract is strict: concatenating the yielded lists must be
        *bit-identical* to ``list(self.enumerate(seed, shard))`` — same
        items, same order, same side effects on shared
        :class:`PruneStats` counters.  The base implementation chunks
        the scalar stream (the no-numpy fallback); subclasses override
        it with vectorized producers that preserve the same contract.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        chunk: list = []
        for item in self.enumerate(seed, shard):
            chunk.append(item)
            if len(chunk) >= batch_size:
                yield chunk
                chunk = []
        if chunk:
            yield chunk

    def batch_axis_items(self) -> list | None:
        """The full candidate list when enumeration is side-effect free.

        :class:`ProductSpace` uses this to decide whether an axis can be
        materialised once and indexed, instead of re-enumerated per
        outer step.  Spaces whose enumeration mutates shared state per
        pull (e.g. :class:`FilteredSpace` recording prune counters)
        must return ``None`` so the product falls back to the scalar
        recursion and the side effects replay exactly.
        """
        return None

    # ------------------------------------------------------------------
    # branch-and-bound
    # ------------------------------------------------------------------
    def bound(self, objective: str, context: Any = None) -> float:
        """Provable lower bound of ``objective`` over every candidate in
        this space, or ``-inf`` when no bound is derivable (the
        conservative default — a ``-inf`` bound never prunes anything).

        ``context`` carries whatever the concrete space needs to turn
        its geometry into a number — for the factor/tile lattices a
        :class:`repro.mapspace.bounds.BoundContext` (the analytic
        :class:`~repro.mapspace.bounds.BoundModel` plus the region of
        decided factors).  Searches prune a space only when its bound
        *strictly* exceeds the incumbent, so any sound underestimate is
        safe here (docs/MAPSPACE.md).
        """
        return float("-inf")

    # ------------------------------------------------------------------
    # combinators
    # ------------------------------------------------------------------
    def filter(self, predicate: Callable[[Any], bool], name: str,
               stats: PruneStats | None = None) -> "FilteredSpace":
        """A named pruning pass keeping items where ``predicate`` holds."""
        return FilteredSpace(self, predicate, name, stats)

    def map(self, fn: Callable[[Any], Any]) -> "MappedSpace":
        return MappedSpace(self, fn)

    def head(self, count: int | None) -> "Space":
        """At most the first ``count`` candidates (None = unlimited)."""
        if count is None:
            return self
        return TruncatedSpace(self, count)


class ListSpace(Space):
    """Explicit candidate list (already materialised)."""

    def __init__(self, items: Sequence) -> None:
        self._items = list(items)

    def size(self) -> int:
        return len(self._items)

    def _generate(self) -> Iterator:
        return iter(self._items)

    def batch_axis_items(self) -> list:
        return self._items


class PointSpace(ListSpace):
    """A single-candidate space (e.g. CoSA's one-shot emission)."""

    def __init__(self, item: Any) -> None:
        super().__init__([item])


class LazySpace(Space):
    """Space materialised on first use by a thunk (cached thereafter)."""

    def __init__(self, thunk: Callable[[], Sequence]) -> None:
        self._thunk = thunk
        self._items: list | None = None

    def _ensure(self) -> list:
        if self._items is None:
            self._items = list(self._thunk())
        return self._items

    def size(self) -> int:
        return len(self._ensure())

    def _generate(self) -> Iterator:
        return iter(self._ensure())

    def batch_axis_items(self) -> list:
        return self._ensure()


class MappedSpace(Space):
    def __init__(self, inner: Space, fn: Callable[[Any], Any]) -> None:
        self._inner = inner
        self._fn = fn

    def size(self) -> int:
        return self._inner.size()

    def bound(self, objective: str, context: Any = None) -> float:
        # ``fn`` relabels candidates without changing which mappings the
        # space denotes, so the inner geometry's bound carries over.
        return self._inner.bound(objective, context)

    def _generate(self) -> Iterator:
        return (self._fn(item) for item in self._inner.enumerate())

    def enumerate_batch(
        self,
        seed: int | None = None,
        shard: tuple[int, int] | None = None,
        batch_size: int = DEFAULT_COHORT,
    ) -> Iterator[list]:
        if seed is not None:
            # Seeded order shuffles the *mapped* items; delegating would
            # apply ``fn`` in shuffled order.  The items would match for
            # pure fns, but the chunked scalar path is exact always.
            yield from super().enumerate_batch(seed, shard, batch_size)
            return
        fn = self._fn
        for batch in self._inner.enumerate_batch(None, shard, batch_size):
            yield [fn(item) for item in batch]


class FilteredSpace(Space):
    """A pruning pass: items failing ``predicate`` are dropped and
    counted under ``name`` in the shared :class:`PruneStats`."""

    def __init__(self, inner: Space, predicate: Callable[[Any], bool],
                 name: str, stats: PruneStats | None = None) -> None:
        self._inner = inner
        self._predicate = predicate
        self.name = name
        self.stats = stats if stats is not None else PruneStats()

    def size(self) -> int:
        # Pruned sizes have no closed form; count the survivors without
        # touching the live counters.
        return sum(1 for item in self._inner.enumerate()
                   if self._predicate(item))

    def bound(self, objective: str, context: Any = None) -> float:
        # The survivors are a subset of the inner space, so any lower
        # bound over the superset is a (possibly loose) bound here too.
        return self._inner.bound(objective, context)

    def _generate(self) -> Iterator:
        for item in self._inner.enumerate():
            kept = self._predicate(item)
            self.stats.record(self.name, kept)
            if kept:
                yield item

    def enumerate_batch(
        self,
        seed: int | None = None,
        shard: tuple[int, int] | None = None,
        batch_size: int = DEFAULT_COHORT,
    ) -> Iterator[list]:
        if seed is not None:
            # The scalar path filters (recording every candidate) before
            # shuffling; replicating that ordering-sensitive interleaving
            # here buys nothing, so defer to the exact chunked stream.
            yield from super().enumerate_batch(seed, shard, batch_size)
            return
        shard = check_shard(shard)
        predicate = self._predicate
        batch_predicate = getattr(predicate, "batch", None)
        kept_index = 0  # global index into the *filtered* stream
        out: list = []
        for batch in self._inner.enumerate_batch(None, None, batch_size):
            if batch_predicate is not None:
                mask = list(batch_predicate(batch))
            else:
                mask = [predicate(item) for item in batch]
            survivors = [item for item, ok in zip(batch, mask) if ok]
            self.stats.record_many(self.name, len(batch), len(survivors))
            if shard is None:
                out.extend(survivors)
            else:
                index, count = shard
                for item in survivors:
                    if kept_index % count == index:
                        out.append(item)
                    kept_index += 1
            while len(out) >= batch_size:
                yield out[:batch_size]
                out = out[batch_size:]
        if out:
            yield out


class TruncatedSpace(Space):
    """The first ``count`` candidates of ``inner`` (generation stops
    pulling once the quota is reached, preserving laziness)."""

    def __init__(self, inner: Space, count: int) -> None:
        if count < 0:
            raise ValueError("count must be >= 0")
        self._inner = inner
        self._count = count

    def size(self) -> int:
        return min(self._inner.size(), self._count)

    def bound(self, objective: str, context: Any = None) -> float:
        # A prefix is a subset: the superset's bound still holds.
        return self._inner.bound(objective, context)

    def _generate(self) -> Iterator:
        # The quota check runs immediately after the yield so the inner
        # stream is never pulled past the last emitted item — upstream
        # passes with side effects (node counters, prune stats) see only
        # the candidates the truncated stream actually consumed.
        if self._count == 0:
            return
        emitted = 0
        for item in self._inner.enumerate():
            yield item
            emitted += 1
            if emitted >= self._count:
                return


class ProductSpace(Space):
    """Cartesian product in row-major order (first axis outermost).

    ``combine`` folds one item per axis into a candidate (default: a
    tuple).  Axes re-enumerate per outer step, so laziness along the
    first axis is preserved for large products.
    """

    def __init__(self, axes: Sequence[Space],
                 combine: Callable[..., Any] = lambda *parts: parts) -> None:
        self._axes = list(axes)
        self._combine = combine

    def size(self) -> int:
        total = 1
        for axis in self._axes:
            total *= axis.size()
        return total

    def bound(self, objective: str, context: Any = None) -> float:
        # Every candidate combines one item from each axis, so each
        # axis's bound holds for the whole product; take the tightest.
        return max((axis.bound(objective, context)
                    for axis in self._axes),
                   default=float("-inf"))

    def _generate(self) -> Iterator:
        def recurse(index: int, chosen: list) -> Iterator:
            if index == len(self._axes):
                yield self._combine(*chosen)
                return
            for item in self._axes[index].enumerate():
                chosen.append(item)
                yield from recurse(index + 1, chosen)
                chosen.pop()

        return recurse(0, [])

    def enumerate_batch(
        self,
        seed: int | None = None,
        shard: tuple[int, int] | None = None,
        batch_size: int = DEFAULT_COHORT,
    ) -> Iterator[list]:
        """Index-decoded product when every axis is side-effect pure.

        The scalar recursion re-enumerates inner axes once per outer
        step; an axis whose enumeration carries side effects (a
        filtered axis recording prune counters per re-enumeration)
        therefore cannot be materialised once without changing the
        counters — such axes report ``batch_axis_items() is None`` and
        the product falls back to chunking the recursion.
        """
        if seed is not None:
            yield from super().enumerate_batch(seed, shard, batch_size)
            return
        axis_items = [axis.batch_axis_items() for axis in self._axes]
        if any(items is None for items in axis_items):
            yield from super().enumerate_batch(seed, shard, batch_size)
            return
        shard = check_shard(shard)
        total = 1
        for items in axis_items:
            total *= len(items)
        start, step = (0, 1) if shard is None else shard
        combine = self._combine
        chunk: list = []
        for k in range(start, total, step):
            rem = k
            parts = []
            for items in reversed(axis_items):
                rem, digit = divmod(rem, len(items))
                parts.append(items[digit])
            parts.reverse()
            chunk.append(combine(*parts))
            if len(chunk) >= batch_size:
                yield chunk
                chunk = []
        if chunk:
            yield chunk


class DependentSpace(Space):
    """Sequential composition where the inner space depends on the outer
    item — how tile candidates depend on the chosen loop order, and
    unrollings on the chosen tile.

    ``fn(outer_item)`` returns the inner :class:`Space`; ``combine``
    folds ``(outer_item, inner_item)`` into the yielded candidate
    (default: the pair).
    """

    def __init__(self, outer: Space, fn: Callable[[Any], Space],
                 combine: Callable[[Any, Any], Any] = lambda a, b: (a, b),
                 ) -> None:
        self._outer = outer
        self._fn = fn
        self._combine = combine

    def size(self) -> int:
        return sum(self._fn(item).size()
                   for item in self._outer.enumerate())

    def bound(self, objective: str, context: Any = None) -> float:
        # Inner spaces vary per outer item; only the outer geometry is
        # common to every candidate.
        return self._outer.bound(objective, context)

    def _generate(self) -> Iterator:
        for item in self._outer.enumerate():
            inner = self._fn(item)
            for sub in inner.enumerate():
                yield self._combine(item, sub)


class ChainSpace(Space):
    """Concatenation of spaces, in order."""

    def __init__(self, parts: Sequence[Space]) -> None:
        self._parts = list(parts)

    def size(self) -> int:
        return sum(part.size() for part in self._parts)

    def bound(self, objective: str, context: Any = None) -> float:
        # A candidate may come from any part: only the loosest part
        # bound holds for the union.
        return min((part.bound(objective, context)
                    for part in self._parts),
                   default=float("-inf"))

    def _generate(self) -> Iterator:
        for part in self._parts:
            yield from part.enumerate()

    def enumerate_batch(
        self,
        seed: int | None = None,
        shard: tuple[int, int] | None = None,
        batch_size: int = DEFAULT_COHORT,
    ) -> Iterator[list]:
        if seed is not None or shard is not None:
            # Sharding indexes the concatenated stream globally; routing
            # it into per-part shards needs each part's size up front,
            # which re-enumerates filtered parts.  Chunk scalar instead.
            yield from super().enumerate_batch(seed, shard, batch_size)
            return
        for part in self._parts:
            yield from part.enumerate_batch(None, None, batch_size)
