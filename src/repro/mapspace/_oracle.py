"""Test-only oracles: the pre-mapspace inline candidate generators.

These are **verbatim** copies of the generator code the searches used
before they were refactored onto the declarative mapspace IR.  They
exist solely so the equivalence tests can prove the refactor preserved
behaviour bit-for-bit — same candidate streams, same best mapping, same
cost — without depending on git history.  Nothing outside ``tests/``
may import this module.
"""

from __future__ import annotations

import itertools
import math
import random
from typing import Iterator, Sequence

from ..arch.spec import Architecture
from ..core.scheduler import SchedulerStats, SunstoneScheduler, _State
from ..core.tiling_tree import (
    divisors,
    enumerate_all_tilings,
    enumerate_tilings,
)
from ..core.unrolling import enumerate_unrollings
from ..mapping.mapping import LevelMapping, Mapping
from ..workloads.expression import Workload


class OracleSunstoneScheduler(SunstoneScheduler):
    """Sunstone with the historical inline candidate generators."""

    def _unroll_candidates(self, order, level, fanout, remaining, stats):
        allowed = self._allowed_unroll(order, level)
        cache_key = (level, fanout, tuple(sorted(remaining.items())), allowed)
        cached = self._unroll_cache.get(cache_key)
        if cached is not None:
            return cached
        unrolls = enumerate_unrollings(
            self.workload, fanout, remaining, allowed,
            stats=stats.unrolling,
            utilization_threshold=self.options.utilization_threshold,
            max_unrolled_dims=self.options.max_unrolled_dims,
        )
        best = max(
            (math.prod(u.values()) if u else 1 for u in unrolls), default=1,
        )
        if fanout > 1 and best < fanout and len(allowed) < len(
                self.workload.dim_names):
            fallback = enumerate_unrollings(
                self.workload, fanout, remaining, self.workload.dim_names,
                stats=stats.unrolling,
                utilization_threshold=self.options.utilization_threshold,
                max_unrolled_dims=self.options.max_unrolled_dims,
            )
            seen = {tuple(sorted(u.items())) for u in unrolls}
            unrolls += [u for u in fallback
                        if tuple(sorted(u.items())) not in seen]
        cap = self.options.max_unrolls_per_step
        if cap is not None and len(unrolls) > cap:
            unrolls.sort(
                key=lambda u: math.prod(u.values()) if u else 1, reverse=True,
            )
            unrolls = unrolls[:cap]
        self._unroll_cache[cache_key] = unrolls
        return unrolls

    def _tiling_candidates(self, level, base, remaining, growth, stats):
        cache_key = (
            level,
            tuple(sorted(base.items())),
            tuple(sorted(remaining.items())),
            tuple(growth),
        )
        cached = self._tiling_cache.get(cache_key)
        if cached is not None:
            return cached
        tilings = enumerate_tilings(
            self.workload, self.arch, level, base, remaining, growth,
            stats=stats.tiling,
        )
        cap = self.options.max_tilings_per_step
        if cap is not None and len(tilings) > cap:
            def footprint(tiling: dict[str, int]) -> int:
                sizes = {
                    d: base.get(d, 1) * tiling.get(d, 1)
                    for d in self.workload.dims
                }
                return sum(t.footprint(sizes) for t in self.workload.tensors)

            chosen: list[dict[str, int]] = []
            chosen_keys: set = set()

            def admit(tiling: dict[str, int]) -> None:
                key = tuple(sorted(tiling.items()))
                if key not in chosen_keys:
                    chosen_keys.add(key)
                    chosen.append(tiling)

            for dim in growth:
                admit(max(tilings,
                          key=lambda t: (t.get(dim, 1), footprint(t))))
                admit(max(tilings,
                          key=lambda t: (t.get(dim, 1), -footprint(t))))
            for tiling in sorted(tilings, key=footprint, reverse=True):
                if len(chosen) >= cap:
                    break
                admit(tiling)
            tilings = chosen
        self._tiling_cache[cache_key] = tilings
        return tilings

    def _children_bottom_up(self, state, level, orderings, stats):
        base = self._base_sizes(state, level)
        remaining = dict(state.frontier)
        fanout = self.arch.levels[level].fanout
        mode = self.options.intra_level_order

        def extend(order, tiling, unroll):
            return self._extend_bottom_up(state, level, order.order, tiling,
                                          unroll)

        union_growth_all = tuple(dict.fromkeys(
            d for order in orderings for d in self._growth_dims(order, level)
        ))
        if mode == "ordering-tiling-unrolling":
            for order in orderings:
                growth = self._growth_dims(order, level)
                tilings = self._tiling_candidates(level, base, remaining,
                                                  growth, stats)
                if set(union_growth_all) - set(growth):
                    extra = self._tiling_candidates(
                        level, base, remaining, union_growth_all, stats)
                    seen = {tuple(sorted(t.items())) for t in tilings}
                    tilings = tilings + [
                        t for t in extra
                        if tuple(sorted(t.items())) not in seen
                    ]
                for tiling in tilings:
                    rem_after = {
                        d: remaining[d] // tiling.get(d, 1) for d in remaining
                    }
                    unrolls = self._unroll_candidates(
                        order, level, fanout, rem_after, stats)
                    for unroll in unrolls:
                        child = extend(order, tiling, unroll)
                        if child is not None:
                            yield child
            return

        union_growth = tuple(dict.fromkeys(
            d for order in orderings for d in self._growth_dims(order, level)
        ))
        union_allowed = tuple(dict.fromkeys(
            d for order in orderings for d in self._allowed_unroll(order, level)
        ))
        if mode == "tiling-unrolling-ordering":
            tilings = self._tiling_candidates(level, base, remaining,
                                              union_growth, stats)
            for tiling in tilings:
                rem_after = {
                    d: remaining[d] // tiling.get(d, 1) for d in remaining
                }
                unrolls = enumerate_unrollings(
                    self.workload, fanout, rem_after, union_allowed,
                    stats=stats.unrolling,
                    utilization_threshold=self.options.utilization_threshold,
                    max_unrolled_dims=self.options.max_unrolled_dims,
                )
                for unroll in unrolls:
                    for order in orderings:
                        child = extend(order, tiling, unroll)
                        if child is not None:
                            yield child
            return

        unrolls = enumerate_unrollings(
            self.workload, fanout, remaining, union_allowed,
            stats=stats.unrolling,
            utilization_threshold=self.options.utilization_threshold,
            max_unrolled_dims=self.options.max_unrolled_dims,
        )
        for unroll in unrolls:
            rem_after = {
                d: remaining[d] // unroll.get(d, 1) for d in remaining
            }
            tilings = self._tiling_candidates(level, base, rem_after,
                                              union_growth, stats)
            for tiling in tilings:
                for order in orderings:
                    child = extend(order, tiling, unroll)
                    if child is not None:
                        yield child

    def _children_top_down(self, state, level, orderings, stats):
        remaining = dict(state.frontier)
        base = {d: 1 for d in self.workload.dims}
        fanout = self.arch.levels[level].fanout

        for order in orderings:
            growth = self._growth_dims(order, level)
            tilings = enumerate_all_tilings(
                self.workload, self.arch, level, base, remaining,
                stats=stats.tiling, dims=growth,
            )
            for tiling in tilings:
                quotient = {
                    d: remaining[d] // tiling.get(d, 1) for d in remaining
                }
                unrolls = self._unroll_candidates(
                    order, level, fanout, quotient, stats)
                for unroll in unrolls:
                    parent_temporal = {
                        d: quotient[d] // unroll.get(d, 1)
                        for d in quotient
                        if quotient[d] // unroll.get(d, 1) > 1
                    }
                    temporal = list(state.temporal)
                    spatial = list(state.spatial)
                    orders = list(state.orders)
                    temporal[level + 1] = {
                        **state.temporal[level + 1], **parent_temporal,
                    }
                    spatial[level] = dict(unroll)
                    orders[level + 1] = order.order
                    new_frontier = {
                        d: tiling.get(d, 1) for d in remaining
                    }
                    yield _State(
                        temporal=tuple(temporal),
                        spatial=tuple(spatial),
                        orders=tuple(orders),
                        frontier=new_frontier,
                        sink_level=(
                            0 if self.options.topdown_estimate == "innermost"
                            else level
                        ),
                    )


def make_oracle_interstellar(base_cls):
    """Subclass ``base_cls`` (the live _InterstellarSearch) with the
    historical inline child generator."""

    class OracleInterstellarSearch(base_cls):
        def _children_bottom_up(self, state, level, orderings, stats):
            base = self._base_sizes(state, level)
            remaining = dict(state.frontier)
            fanout = self.arch.levels[level].fanout

            preferred = tuple(
                d for d in self.config.preferred_spatial_dims
                if d in self.workload.dims
            )
            for order in orderings:
                tilings = enumerate_tilings(
                    self.workload, self.arch, level, base, remaining,
                    self.workload.dim_names, stats=stats.tiling,
                )
                for tiling in tilings:
                    rem_after = {
                        d: remaining[d] // tiling.get(d, 1) for d in remaining
                    }
                    unrolls = enumerate_unrollings(
                        self.workload, fanout, rem_after, preferred,
                        stats=stats.unrolling,
                        utilization_threshold=1.0,
                    )
                    best_pref = max(
                        (math.prod(u.values()) if u else 1 for u in unrolls),
                        default=1,
                    )
                    if fanout > 1 and best_pref < fanout:
                        unrolls = enumerate_unrollings(
                            self.workload, fanout, rem_after,
                            self.workload.dim_names,
                            stats=stats.unrolling,
                            utilization_threshold=1.0,
                        )
                    for unroll in unrolls:
                        child = self._extend_bottom_up(
                            state, level, order.order, tiling, unroll,
                        )
                        if child is not None:
                            yield child

    return OracleInterstellarSearch


def make_oracle_dmaze(base_cls):
    """Subclass ``base_cls`` (the live _DMazeSearch) with the historical
    inline child generator."""

    class OracleDMazeSearch(base_cls):
        def _children_bottom_up(self, state, level, orderings, stats):
            base = self._base_sizes(state, level)
            remaining = dict(state.frontier)
            fanout = self.arch.levels[level].fanout
            threshold = self._threshold_for(level)

            dims = [d for d in self.workload.dim_names
                    if remaining.get(d, 1) > 1]
            choice_lists = [divisors(remaining[d]) for d in dims]

            if self.config.spatial_reduction_allowed:
                unroll_dims = self.workload.dim_names
            else:
                output_dims: set[str] = set()
                for tensor in self.workload.outputs:
                    output_dims |= set(tensor.indexing_dims)
                unroll_dims = tuple(d for d in self.workload.dim_names
                                    if d in output_dims)

            emitted_tilings = 0
            for combo in itertools.product(*choice_lists):
                if emitted_tilings >= self.config.max_tilings_per_state:
                    break
                tiling = {d: f for d, f in zip(dims, combo) if f > 1}
                sizes = {
                    d: base.get(d, 1) * tiling.get(d, 1)
                    for d in self.workload.dims
                }
                stats.tiling.nodes_visited += 1
                utilization = self._utilization(level, sizes)
                if utilization > 1.0 or utilization < threshold:
                    continue
                emitted_tilings += 1
                rem_after = {
                    d: remaining[d] // tiling.get(d, 1) for d in remaining
                }
                unrolls = enumerate_unrollings(
                    self.workload, fanout, rem_after, unroll_dims,
                    stats=stats.unrolling,
                    utilization_threshold=self.config.pe_utilization,
                    max_unrolled_dims=2,
                )
                for unroll in unrolls:
                    used = 1
                    for f in unroll.values():
                        used *= f
                    if (fanout > 1
                            and used < self.config.pe_utilization * fanout):
                        continue
                    for order in orderings:
                        child = self._extend_bottom_up(
                            state, level, order.order, tiling, unroll,
                        )
                        if child is not None:
                            yield child

    return OracleDMazeSearch


def oracle_prime_factors(n: int) -> list[int]:
    factors: list[int] = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            factors.append(d)
            n //= d
        d += 1
    if n > 1:
        factors.append(n)
    return factors


def oracle_spatial_slots(arch: Architecture) -> list[int]:
    return [i for i, level in enumerate(arch.levels) if level.fanout > 1]


def oracle_factor_assignments(size: int, slots: int
                              ) -> Iterator[tuple[int, ...]]:
    """Historical exhaustive-search per-dimension split enumeration."""
    primes = oracle_prime_factors(size)
    if not primes:
        yield (1,) * slots
        return
    seen: set[tuple[int, ...]] = set()
    for placement in itertools.product(range(slots), repeat=len(primes)):
        split = [1] * slots
        for prime, slot in zip(primes, placement):
            split[slot] *= prime
        key = tuple(split)
        if key not in seen:
            seen.add(key)
            yield key


def oracle_full_space_stream(
    workload: Workload,
    arch: Architecture,
    orders_per_level: int | None = None,
) -> Iterator[Mapping]:
    """Historical exhaustive-search mapping stream (enumeration order)."""
    num = arch.num_levels
    boundaries = set(oracle_spatial_slots(arch))
    dims = workload.dim_names

    slots: list[tuple[str, int]] = []
    for level in range(num):
        slots.append(("t", level))
        if level in boundaries:
            slots.append(("s", level))

    per_dim_assignments = [
        list(oracle_factor_assignments(workload.dims[d], len(slots)))
        for d in dims
    ]
    orderings = list(itertools.permutations(dims))
    if orders_per_level is not None:
        orderings = orderings[:orders_per_level]

    for combo in itertools.product(*per_dim_assignments):
        temporal = [dict[str, int]() for _ in range(num)]
        spatial = [dict[str, int]() for _ in range(num)]
        for dim, split in zip(dims, combo):
            for (kind, level), factor in zip(slots, split):
                if factor == 1:
                    continue
                store = temporal if kind == "t" else spatial
                store[level][dim] = store[level].get(dim, 1) * factor
        for level_orders in itertools.product(orderings, repeat=num):
            levels = []
            for i in range(num):
                nest = tuple(
                    (d, temporal[i].get(d, 1)) for d in level_orders[i]
                )
                levels.append(LevelMapping(
                    temporal=nest,
                    spatial=tuple(sorted(spatial[i].items())),
                ))
            yield Mapping(workload, arch, levels)


def oracle_sample_random_mapping(
    workload: Workload,
    arch: Architecture,
    rng: random.Random,
    constraints=None,
) -> Mapping:
    """Historical Timeloop-like uniform sampler."""
    num = arch.num_levels
    boundaries = set(oracle_spatial_slots(arch))
    temporal = [dict[str, int]() for _ in range(num)]
    spatial = [dict[str, int]() for _ in range(num)]

    for dim, size in workload.dims.items():
        slots: list[tuple[str, int]] = []
        for level in range(num):
            if constraints is None or constraints.allows_temporal(level, dim):
                slots.append(("t", level))
            if level in boundaries and (
                constraints is None or constraints.allows_spatial(level, dim)
            ):
                slots.append(("s", level))
        if not slots:
            slots = [("t", num - 1)]
        for p in oracle_prime_factors(size):
            kind, level = rng.choice(slots)
            store = temporal if kind == "t" else spatial
            store[level][dim] = store[level].get(dim, 1) * p

    levels = []
    for i in range(num):
        order = list(workload.dim_names)
        rng.shuffle(order)
        nest = tuple((d, temporal[i].get(d, 1)) for d in order)
        levels.append(LevelMapping(
            temporal=nest,
            spatial=tuple(sorted(spatial[i].items())),
        ))
    return Mapping(workload, arch, levels)


def oracle_gamma_decode(workload: Workload, arch: Architecture,
                        primes: dict[str, list[int]],
                        placements: dict[str, list[tuple[str, int]]],
                        orders: Sequence[tuple[str, ...]]) -> Mapping:
    """Historical GAMMA genome decode."""
    num = arch.num_levels
    temporal = [dict[str, int]() for _ in range(num)]
    spatial = [dict[str, int]() for _ in range(num)]
    for dim, placement in placements.items():
        for prime, (kind, level) in zip(primes[dim], placement):
            store = temporal if kind == "t" else spatial
            store[level][dim] = store[level].get(dim, 1) * prime
    levels = []
    for i in range(num):
        nest = tuple((d, temporal[i].get(d, 1)) for d in orders[i])
        levels.append(LevelMapping(
            temporal=nest, spatial=tuple(sorted(spatial[i].items())),
        ))
    return Mapping(workload, arch, levels)
