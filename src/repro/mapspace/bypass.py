"""Bypass spaces: which tensors each memory level buffers.

In this reproduction the datatype-to-level assignment is fixed by the
architecture description (each level declares the roles it stores; a
tensor *bypasses* every level that does not store its role), so the
bypass axis of the mapspace is a single point.  Making it an explicit
:class:`BypassSpace` keeps the axis addressable: architectures that
expose optional bypassing can enumerate alternative assignments without
the search strategies changing shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..arch.spec import Architecture
from ..workloads.expression import Workload
from .spaces import Space


@dataclass(frozen=True)
class BypassAssignment:
    """One datatype-to-level storage assignment.

    ``stored[i]`` is the (sorted) tuple of tensor names level ``i``
    buffers; every other tensor bypasses that level.  ``home[name]`` is
    the tensor's innermost storage level at or above level 0.
    """

    stored: tuple[tuple[str, ...], ...]
    home: tuple[tuple[str, int], ...]

    def stored_at(self, level: int) -> tuple[str, ...]:
        return self.stored[level]

    def home_of(self, tensor: str) -> int | None:
        return dict(self.home).get(tensor)


def architecture_assignment(workload: Workload,
                            arch: Architecture) -> BypassAssignment:
    """The assignment induced by the architecture's role declarations."""
    stored = tuple(
        tuple(sorted(t.name for t in workload.tensors
                     if level.stores(t.role)))
        for level in arch.levels
    )
    home: list[tuple[str, int]] = []
    for tensor in workload.tensors:
        for j in range(arch.num_levels):
            if arch.levels[j].stores(tensor.role):
                home.append((tensor.name, j))
                break
    return BypassAssignment(stored=stored, home=tuple(sorted(home)))


class BypassSpace(Space):
    """The space of bypass assignments (a point space for the fixed
    role-driven architectures in this repo)."""

    def __init__(self, assignments: Sequence[BypassAssignment]) -> None:
        if not assignments:
            raise ValueError("at least one bypass assignment is required")
        self._assignments = list(assignments)

    @classmethod
    def from_architecture(cls, workload: Workload,
                          arch: Architecture) -> "BypassSpace":
        return cls([architecture_assignment(workload, arch)])

    def size(self) -> int:
        return len(self._assignments)

    def _generate(self) -> Iterator[BypassAssignment]:
        return iter(self._assignments)

    def batch_axis_items(self) -> list[BypassAssignment]:
        return self._assignments
