"""Closed-form lower bounds over mapspace regions (branch-and-bound).

A *region* is a rectangular sub-space of mappings: some per-level
temporal/spatial factors are **decided**, the rest of each dimension's
extent is **free** — not yet distributed across levels.  From the
decided factors alone, :class:`BoundModel` derives a provable lower
bound on the energy / EDP of *every valid mapping in the region*,
without enumerating any of them:

* **compute energy** is mapping-invariant (``energy_ops x mac_energy``),
  so it is counted exactly;
* **innermost accesses**: each tensor is touched at least
  ``energy_ops / share_cap`` times at its innermost storage level, where
  ``share_cap`` caps the broadcast/reduction sharing across lanes by the
  machine fanout below that level and by the problem extents of the
  tensor's non-indexing dimensions;
* **compulsory traffic per (tensor, storage pair)**: every fill sequence
  moves at least one minimal tile — ``t_rel_min x scaled_words(fp_min)``
  where ``fp_min`` is the footprint of the decided tile sizes at the
  child (footprints are monotone in tile sizes) and ``t_rel_min`` the
  decided relevant temporal product above it.  The exact model then
  multiplies each side by spatial products — ``between`` across
  ``[child, parent)`` (all dims on the child side, indexing dims on the
  parent side) and the parent's machine instances above — which are
  floored by the products of the *decided* spatial factors (free dims
  contribute at least 1).  For dense, non-windowed tensors each side
  additionally moves the tensor's whole extent at least once per parent
  instance (``rel_total / instances_of(parent)``).  Sliding-window
  tensors may overlap their fills, so only the footprint term is kept
  for them.  Sparse tiles keep the traffic scale *inside* the floor
  (``scaled_words(n) = n x traffic_scale(n)`` is nondecreasing in
  ``n``; pinned by ``tests/test_bounds.py``);
* **cycles**: compute-bound cycles are floored by the maximum spatial
  parallelism the region can still reach (decided unrolls x remaining
  slack across fanout boundaries), and each level's bandwidth-bound
  cycles by its floored traffic over the maximal instance count.

Every floor is a term of the exact model of :mod:`repro.model` with the
mapping-dependent multipliers replaced by their provable minima, so
``bound(region) <= evaluate(m)`` for every *valid* ``m`` in the region
(invalid mappings are never returned by a search, so they need no
bound).  The final bound is scaled by ``1 - 1e-9`` so that exact-equality
edge cases can never flip a strict comparison against the incumbent;
searches prune only when ``bound > incumbent``, which preserves the
first-attainer tie-break of every scan (docs/MAPSPACE.md).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Mapping as TMapping, Sequence

from ..model.terms import model_info
from ..sparse.saf import compute_scales, traffic_scale

if TYPE_CHECKING:
    from ..arch.spec import Architecture
    from ..mapping.mapping import Mapping
    from ..sparse.spec import SparsitySpec
    from ..workloads.expression import Workload

NEG_INF = float("-inf")

# Slack applied to every finite bound: large enough to swallow any
# floating-point reordering between the floor expressions and the exact
# model (relative error ~1e-15), small enough to be irrelevant to
# pruning power.
_SAFETY = 1.0 - 1e-9


class Region:
    """A rectangular sub-space of mappings.

    ``t_factors[i]`` / ``s_factors[i]`` hold the decided temporal /
    spatial factors of level ``i`` (dim -> factor; trivial factors may
    be omitted).  ``free`` maps each dimension to the residual extent
    not yet placed anywhere.  ``free_min_level`` promises that free
    factors can only land at levels ``>= free_min_level`` (temporal) or
    fanout boundaries ``>= free_min_level`` (spatial); ``0`` means
    anywhere.  A fully decided mapping is a region with ``free`` empty.
    """

    __slots__ = ("t_factors", "s_factors", "free", "free_min_level")

    def __init__(
        self,
        t_factors: Sequence[TMapping[str, int]],
        s_factors: Sequence[TMapping[str, int]],
        free: TMapping[str, int],
        free_min_level: int = 0,
    ) -> None:
        self.t_factors = tuple(t_factors)
        self.s_factors = tuple(s_factors)
        self.free = {d: e for d, e in free.items() if e > 1}
        self.free_min_level = free_min_level

    @staticmethod
    def whole(workload: "Workload", num_levels: int) -> "Region":
        """The region containing every mapping of the workload."""
        empty = [{} for _ in range(num_levels)]
        return Region(empty, list(empty), dict(workload.dims), 0)

    @staticmethod
    def from_splits(
        workload: "Workload",
        arch: "Architecture",
        decided: TMapping[str, Sequence[int]],
    ) -> "Region":
        """Region from full per-slot factor assignments of a subset of
        dimensions (the exhaustive walker's prefix), slots as in
        :func:`repro.mapspace.mapspace.assignment_slots`."""
        from .mapspace import assignment_slots, stores_from_splits

        slots = assignment_slots(arch)
        dims = list(decided)
        splits = [tuple(decided[d]) for d in dims]
        temporal, spatial = stores_from_splits(dims, splits, slots,
                                               arch.num_levels)
        free = {d: e for d, e in workload.dims.items() if d not in decided}
        return Region(temporal, spatial, free, 0)

    @staticmethod
    def from_mapping(mapping: "Mapping") -> "Region":
        """The single-point region containing exactly ``mapping``."""
        return Region(
            [lvl.temporal_factors for lvl in mapping.levels],
            [lvl.spatial_factors for lvl in mapping.levels],
            {},
            len(mapping.levels),
        )


class BoundContext:
    """Carries the model + region a :meth:`Space.bound` hook needs."""

    __slots__ = ("model", "region")

    def __init__(self, model: "BoundModel", region: Region) -> None:
        self.model = model
        self.region = region


class BoundModel:
    """Analytic lower bounds for one (workload, arch, objective) triple."""

    def __init__(
        self,
        workload: "Workload",
        arch: "Architecture",
        objective: str = "edp",
        partial_reuse: bool = True,
        sparsity: "SparsitySpec | None" = None,
    ) -> None:
        self.workload = workload
        self.arch = arch
        self.objective = objective
        self.partial_reuse = partial_reuse
        self.sparsity = sparsity
        self.info = info = model_info(workload, arch)
        op_scale = cycle_scale = 1.0
        if sparsity is not None:
            op_scale, cycle_scale = compute_scales(sparsity,
                                                   info.tensor_names)
        self.energy_ops = info.total_ops * op_scale
        self.cycle_ops = info.total_ops * cycle_scale
        num = arch.num_levels
        self._instances = [arch.instances_of(i) for i in range(num)]
        dims_product = math.prod(workload.dims.values())
        self._lanes_cap = min(arch.total_fanout, dims_product)
        # fanout product strictly below each level (sharing cap).
        below = [1] * (num + 1)
        for i in range(num):
            below[i + 1] = below[i] * arch.levels[i].fanout
        self._tensors = []
        for tinfo in info.tensors:
            ts = sparsity.get(tinfo.name) if sparsity is not None else None
            windowed = bool(partial_reuse and not tinfo.is_output
                            and tinfo.windows)
            nonidx = math.prod(e for d, e in workload.dims.items()
                               if d not in tinfo.indexing)
            share_cap = min(below[tinfo.innermost], nonidx)
            self._tensors.append((tinfo, ts, windowed, max(1, share_cap)))
        self._whole: float | None = None
        # Last-region memo: ProductSpace.bound asks every axis for the
        # same region, so the hooks would otherwise recompute it D times.
        self._memo: tuple[Region, float] | None = None

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def space_bound(self) -> float:
        """Lower bound over the *entire* mapping space (the certificate
        denominator)."""
        if self._whole is None:
            self._whole = self.region_bound(
                Region.whole(self.workload, self.arch.num_levels))
        return self._whole

    def mapping_bound(self, mapping: "Mapping") -> float:
        """Point bound: a cheap underestimate of ``evaluate(mapping)``."""
        return self.region_bound(Region.from_mapping(mapping))

    def region_bound(self, region: Region) -> float:
        """Provable lower bound of the objective over ``region``."""
        if self._memo is not None and self._memo[0] is region:
            return self._memo[1]
        value = self._region_bound(region)
        self._memo = (region, value)
        return value

    def _region_bound(self, region: Region) -> float:
        info = self.info
        arch = self.arch
        num = info.num_levels
        reads = [0.0] * num
        writes = [0.0] * num
        # All per-access energies below come from the resolved technology
        # tables hoisted on ModelInfo — the identical floats the exact
        # model multiplies, so the floors stay exact under any pack.
        energy = self.energy_ops * info.mac_energy
        sizes_cache: dict[int, dict[str, int]] = {}
        above_cache: dict[int, dict[str, int]] = {}
        slack = None
        # Decided spatial prefix products: the exact model multiplies
        # every pair's fill words by the spatial products across
        # [child, parent) (``between``) and at levels >= parent
        # (``inst_above``).  Decided dims contribute their exact factors,
        # free dims at least 1, so these prefix products floor all three
        # multipliers.
        sp_below = [1] * (num + 1)
        for i in range(num):
            lvl = 1
            for f in region.s_factors[i].values():
                lvl *= f
            sp_below[i + 1] = sp_below[i] * lvl
        total_sp = sp_below[num]
        idx_below_cache: dict[int, list[int]] = {}
        for tinfo, ts, windowed, share_cap in self._tensors:
            acc = self.energy_ops / share_cap
            reads[tinfo.innermost] += acc
            if tinfo.is_output:
                writes[tinfo.innermost] += acc
            idx_below = idx_below_cache.get(tinfo.index)
            if idx_below is None:
                idx_below = [1] * (num + 1)
                for i in range(num):
                    lvl = 1
                    for d, f in region.s_factors[i].items():
                        if d in tinfo.indexing:
                            lvl *= f
                    idx_below[i + 1] = idx_below[i] * lvl
                idx_below_cache[tinfo.index] = idx_below
            for child, parent in tinfo.pairs:
                sizes = self._sizes_at(region, child, sizes_cache)
                sizes_key = tuple(sizes[d] for d in tinfo.rel_dims)
                fp = info.footprint(tinfo, sizes, sizes_key)
                vol = float(fp) if ts is None else fp * traffic_scale(ts, fp)
                if not windowed:
                    t_rel = 1.0
                    t_above = self._t_above(region, child, above_cache)
                    for d in tinfo.rel_dims:
                        t_rel *= t_above.get(d, 1)
                    if region.free and region.free_min_level > child:
                        free_rel = 1
                        for d in tinfo.rel_dims:
                            free_rel *= region.free.get(d, 1)
                        if free_rel > 1:
                            if slack is None:
                                slack = self._spatial_slack(region)
                            if free_rel > slack:
                                t_rel *= free_rel / slack
                    vol *= t_rel
                above_min = total_sp // sp_below[parent]
                child_vol = (vol * above_min
                             * (sp_below[parent] // sp_below[child]))
                parent_vol = (vol * above_min
                              * (idx_below[parent] // idx_below[child]))
                if ts is None and not windowed:
                    # Compulsory: the whole tensor crosses this pair at
                    # least once per parent instance (child side moves
                    # at least as much: between_all >= between_idx).
                    cover = tinfo.rel_total / self._instances[parent]
                    if cover > parent_vol:
                        parent_vol = cover
                    if cover > child_vol:
                        child_vol = cover
                if tinfo.is_output:
                    reads[child] += child_vol
                    writes[parent] += parent_vol
                else:
                    writes[child] += child_vol
                    reads[parent] += parent_vol
                for j in range(child, parent):
                    if j in info.fanout_set:
                        energy += parent_vol * info.network_energies[j]
        for i in range(num):
            energy += (reads[i] * info.read_energies[i]
                       + writes[i] * info.write_energies[i])
        if self.objective == "energy":
            return energy * _SAFETY
        lanes = self._max_lanes(region, slack) * arch.mac_width
        cycles = float(self.cycle_ops) / float(max(lanes, 1))
        for i, arch_level in enumerate(arch.levels):
            inst = self._instances[i]
            if arch_level.read_bandwidth != math.inf:
                cycles = max(cycles,
                             reads[i] / inst / arch_level.read_bandwidth)
            if arch_level.write_bandwidth != math.inf:
                cycles = max(cycles,
                             writes[i] / inst / arch_level.write_bandwidth)
        # The exact model adds a further latency floor for finite
        # chip2chip link bandwidths; omitting it here only makes the
        # bound smaller, so it stays a sound lower bound.
        return energy * cycles * _SAFETY

    # ------------------------------------------------------------------
    # region geometry
    # ------------------------------------------------------------------
    def _sizes_at(self, region: Region, child: int,
                  cache: dict[int, dict[str, int]]) -> dict[str, int]:
        """Minimal tile sizes at ``child``: decided factors only (free
        factors can always be placed above, and footprints are monotone
        in sizes)."""
        sizes = cache.get(child)
        if sizes is None:
            sizes = dict.fromkeys(self.info.dim_names, 1)
            for i in range(child + 1):
                for d, f in region.t_factors[i].items():
                    sizes[d] *= f
            for i in range(child):
                for d, f in region.s_factors[i].items():
                    sizes[d] *= f
            cache[child] = sizes
        return sizes

    def _t_above(self, region: Region, child: int,
                 cache: dict[int, dict[str, int]]) -> dict[str, int]:
        """Decided temporal factor product per dim, strictly above
        ``child``."""
        above = cache.get(child)
        if above is None:
            above = {}
            for i in range(child + 1, self.info.num_levels):
                for d, f in region.t_factors[i].items():
                    above[d] = above.get(d, 1) * f
            cache[child] = above
        return above

    def _spatial_slack(self, region: Region) -> float:
        """Upper bound on the spatial factor product the free extents
        can still claim (room left at fanout boundaries the free factors
        may use), >= 1."""
        slack = 1.0
        for b in self.info.fanout_levels:
            if b < region.free_min_level:
                continue
            used = 1
            for f in region.s_factors[b].values():
                used *= f
            slack *= self.arch.levels[b].fanout / max(1, used)
        return max(1.0, slack)

    def _max_lanes(self, region: Region, slack: float | None) -> float:
        """Upper bound on ``used_lanes()`` over the region."""
        decided = 1
        for level in region.s_factors:
            for f in level.values():
                decided *= f
        if not region.free:
            return min(self._lanes_cap, decided)
        if slack is None:
            slack = self._spatial_slack(region)
        free_total = 1
        for e in region.free.values():
            free_total *= e
        return min(float(self._lanes_cap), decided * min(free_total, slack))
