"""Exhaustive oracle mapper for small problems.

Enumerates *every* mapping — the composed
:func:`~repro.mapspace.mapspace.full_mapping_space` of all prime-factor
distributions across temporal and spatial slots and all loop
permutations per level — and returns the best valid one.  Exponential;
guarded by an explicit budget (checked analytically via
``Mapspace.size()`` before anything is enumerated) so tests cannot
hang.  Used to verify that Sunstone's pruning never rejects all optimal
mappings.
"""

from __future__ import annotations

import time

from ..arch.spec import Architecture
from ..mapping.mapping import Mapping
from ..mapspace.batch import full_space_cohorts
from ..mapspace.mapspace import full_mapping_space
from ..search import SearchEngine
from ..sparse.spec import SparsitySpec
from ..workloads.expression import Workload
from .common import SearchResult, engine_scope


class SearchBudgetExceeded(RuntimeError):
    """The exhaustive space is larger than the configured budget."""


def exhaustive_search(
    workload: Workload,
    arch: Architecture,
    max_evaluations: int = 2_000_000,
    orders_per_level: int | None = None,
    partial_reuse: bool = True,
    objective: str = "edp",
    engine: SearchEngine | None = None,
    workers: int = 1,
    cache: bool = True,
    sparsity: SparsitySpec | None = None,
    batch: bool = True,
    cache_size: int | None = None,
    shard: tuple[int, int] | None = None,
    batch_gen: bool = True,
) -> SearchResult:
    """Enumerate the full mapping space and return the best valid mapping.

    ``orders_per_level`` caps the loop permutations tried per level (None =
    all).  ``shard=(i, n)`` walks only the ``i``-th of ``n`` disjoint
    deterministic shards of the space.  ``batch_gen`` index-decodes the
    space into matrix cohorts (same candidates, same order) instead of
    materializing one ``Mapping`` per candidate; the winner is
    bit-identical either way.  Raises :class:`SearchBudgetExceeded` when
    the space exceeds ``max_evaluations``.
    """
    start = time.perf_counter()
    space = full_mapping_space(workload, arch, orders_per_level)

    size = space.size()
    if size > max_evaluations:
        raise SearchBudgetExceeded(
            f"exhaustive space {size} exceeds budget {max_evaluations}"
        )

    cohorts = None
    if batch_gen:
        cohorts = full_space_cohorts(workload, arch, orders_per_level,
                                     shard=shard)

    best = None
    evaluations = 0
    with engine_scope(engine, workers, cache, partial_reuse, sparsity,
                      batch, cache_size) as eng:
        if cohorts is not None:
            # Vectorized generation: the space is index-decoded straight
            # into factor matrices in the exact enumeration order; only
            # per-cohort winners are materialized as Mappings.
            while True:
                gen_start = time.perf_counter()
                cohort = next(cohorts, None)
                eng.stats.add_stage_time(
                    "generation", time.perf_counter() - gen_start)
                if cohort is None:
                    break
                costs = eng.evaluate_cohort(cohort)
                for idx, cost in enumerate(costs):
                    evaluations += 1
                    if not cost.valid:
                        continue
                    value = (cost.edp if objective == "edp"
                             else cost.energy_pj)
                    if best is None or value < best[0]:
                        best = (value, cohort.materialize(idx), cost)
            stats = eng.stats
        else:
            buffer: list[Mapping] = []
            # Chunk size for batched evaluation; results are scanned in
            # enumeration order with a strict < so the winner matches the
            # one-at-a-time scan exactly.
            flush_at = max(256, eng.workers * eng.chunk_size)

            def flush() -> None:
                nonlocal best, evaluations
                costs = eng.evaluate_many(buffer)
                for mapping, cost in zip(buffer, costs):
                    evaluations += 1
                    if not cost.valid:
                        continue
                    value = (cost.edp if objective == "edp"
                             else cost.energy_pj)
                    if best is None or value < best[0]:
                        best = (value, mapping, cost)
                buffer.clear()

            for mapping in space.enumerate(shard=shard):
                buffer.append(mapping)
                if len(buffer) >= flush_at:
                    flush()
            flush()
            stats = eng.stats

    elapsed = time.perf_counter() - start
    if best is None:
        return SearchResult(
            mapper="exhaustive",
            mapping=None,
            cost=None,
            evaluations=evaluations,
            wall_time_s=elapsed,
            invalid_reason="no valid mapping exists",
            search_stats=stats,
        )
    return SearchResult(
        mapper="exhaustive",
        mapping=best[1],
        cost=best[2],
        evaluations=evaluations,
        wall_time_s=elapsed,
        search_stats=stats,
    )
