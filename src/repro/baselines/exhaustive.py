"""Exhaustive oracle mapper for small problems.

Enumerates *every* mapping — all prime-factor distributions across temporal
and spatial slots and all loop permutations per level — and returns the best
valid one.  Exponential; guarded by an explicit budget so tests cannot hang.
Used to verify that Sunstone's pruning never rejects all optimal mappings.
"""

from __future__ import annotations

import itertools
import math
import time
from typing import Iterator

from ..arch.spec import Architecture
from ..mapping.mapping import LevelMapping, Mapping
from ..search import SearchEngine
from ..sparse.spec import SparsitySpec
from ..workloads.expression import Workload
from .common import SearchResult, prime_factors, resolve_engine, spatial_slots


class SearchBudgetExceeded(RuntimeError):
    """The exhaustive space is larger than the configured budget."""


def _factor_assignments(size: int, slots: int) -> Iterator[tuple[int, ...]]:
    """All ways to split ``size`` into an ordered product over ``slots``."""
    primes = prime_factors(size)
    if not primes:
        yield (1,) * slots
        return
    seen: set[tuple[int, ...]] = set()
    for placement in itertools.product(range(slots), repeat=len(primes)):
        split = [1] * slots
        for prime, slot in zip(primes, placement):
            split[slot] *= prime
        key = tuple(split)
        if key not in seen:
            seen.add(key)
            yield key


def exhaustive_search(
    workload: Workload,
    arch: Architecture,
    max_evaluations: int = 2_000_000,
    orders_per_level: int | None = None,
    partial_reuse: bool = True,
    objective: str = "edp",
    engine: SearchEngine | None = None,
    workers: int = 1,
    cache: bool = True,
    sparsity: SparsitySpec | None = None,
    batch: bool = True,
    cache_size: int | None = None,
) -> SearchResult:
    """Enumerate the full mapping space and return the best valid mapping.

    ``orders_per_level`` caps the loop permutations tried per level (None =
    all).  Raises :class:`SearchBudgetExceeded` when the space exceeds
    ``max_evaluations``.
    """
    start = time.perf_counter()
    num = arch.num_levels
    boundaries = set(spatial_slots(arch))
    dims = workload.dim_names

    # Slots per dimension: temporal at every level, spatial at boundaries.
    slots: list[tuple[str, int]] = []
    for level in range(num):
        slots.append(("t", level))
        if level in boundaries:
            slots.append(("s", level))

    per_dim_assignments = [
        list(_factor_assignments(workload.dims[d], len(slots))) for d in dims
    ]
    orderings = list(itertools.permutations(dims))
    if orders_per_level is not None:
        orderings = orderings[:orders_per_level]

    space = math.prod(len(a) for a in per_dim_assignments)
    space *= len(orderings) ** num
    if space > max_evaluations:
        raise SearchBudgetExceeded(
            f"exhaustive space {space} exceeds budget {max_evaluations}"
        )

    engine, owns_engine = resolve_engine(engine, workers, cache,
                                         partial_reuse, sparsity,
                                         batch, cache_size)
    best = None
    evaluations = 0
    buffer: list[Mapping] = []
    # Chunk size for batched evaluation; results are scanned in
    # enumeration order with a strict < so the winner matches the
    # one-at-a-time scan exactly.
    flush_at = max(256, engine.workers * engine.chunk_size)

    def flush() -> None:
        nonlocal best, evaluations
        costs = engine.evaluate_many(buffer)
        for mapping, cost in zip(buffer, costs):
            evaluations += 1
            if not cost.valid:
                continue
            value = cost.edp if objective == "edp" else cost.energy_pj
            if best is None or value < best[0]:
                best = (value, mapping, cost)
        buffer.clear()

    for combo in itertools.product(*per_dim_assignments):
        temporal = [dict[str, int]() for _ in range(num)]
        spatial = [dict[str, int]() for _ in range(num)]
        for dim, split in zip(dims, combo):
            for (kind, level), factor in zip(slots, split):
                if factor == 1:
                    continue
                store = temporal if kind == "t" else spatial
                store[level][dim] = factor
        for level_orders in itertools.product(orderings, repeat=num):
            levels = []
            for i in range(num):
                nest = tuple(
                    (d, temporal[i].get(d, 1)) for d in level_orders[i]
                )
                levels.append(LevelMapping(
                    temporal=nest,
                    spatial=tuple(sorted(spatial[i].items())),
                ))
            buffer.append(Mapping(workload, arch, levels))
            if len(buffer) >= flush_at:
                flush()
    flush()

    elapsed = time.perf_counter() - start
    if owns_engine:
        engine.close()
    if best is None:
        return SearchResult(
            mapper="exhaustive",
            mapping=None,
            cost=None,
            evaluations=evaluations,
            wall_time_s=elapsed,
            invalid_reason="no valid mapping exists",
            search_stats=engine.stats,
        )
    return SearchResult(
        mapper="exhaustive",
        mapping=best[1],
        cost=best[2],
        evaluations=evaluations,
        wall_time_s=elapsed,
        search_stats=engine.stats,
    )
