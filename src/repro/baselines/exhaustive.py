"""Exhaustive oracle mapper for small problems.

Enumerates *every* mapping — the composed
:func:`~repro.mapspace.mapspace.full_mapping_space` of all prime-factor
distributions across temporal and spatial slots and all loop
permutations per level — and returns the best valid one.  Exponential;
guarded by an explicit budget (checked analytically via
``Mapspace.size()`` before anything is enumerated) so tests cannot
hang.  Used to verify that Sunstone's pruning never rejects all optimal
mappings.

With ``bound=True`` (the default) the walk is branch-and-bound: the
space is traversed as a DFS over per-dimension factor-split prefixes,
and each prefix region is tested against the incumbent via the analytic
:class:`~repro.mapspace.bounds.BoundModel` (through the
:meth:`Space.bound` hook).  A pruned prefix discards every completion —
all remaining split choices *times* all ``P**num_levels`` loop-order
combinations — in O(1), with the skipped candidate count computed
analytically (shard-aware).  Pruning only fires when the bound
*strictly* exceeds the incumbent, which preserves the first-attainer
tie-break of the linear scan: the returned mapping and cost are
bit-identical to ``bound=False`` (pinned by ``tests/test_bounds.py``).
"""

from __future__ import annotations

import time

from ..arch.spec import Architecture
from ..mapping.mapping import Mapping
from ..mapspace.batch import SpaceDecoder, full_space_cohorts
from ..mapspace.bounds import BoundContext, BoundModel, Region
from ..mapspace.mapspace import (
    assemble_mapping,
    assignment_slots,
    full_mapping_space,
    stores_from_splits,
)
from ..search import SearchEngine
from ..sparse.spec import SparsitySpec
from ..workloads.expression import Workload
from .common import SearchResult, engine_scope

try:  # numpy is optional; the scalar walk covers its absence.
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


class SearchBudgetExceeded(RuntimeError):
    """The exhaustive space is larger than the configured budget."""


def exhaustive_search(
    workload: Workload,
    arch: Architecture,
    max_evaluations: int = 2_000_000,
    orders_per_level: int | None = None,
    partial_reuse: bool = True,
    objective: str = "edp",
    engine: SearchEngine | None = None,
    workers: int = 1,
    cache: bool = True,
    sparsity: SparsitySpec | None = None,
    batch: bool = True,
    cache_size: int | None = None,
    shard: tuple[int, int] | None = None,
    batch_gen: bool = True,
    bound: bool = True,
) -> SearchResult:
    """Enumerate the full mapping space and return the best valid mapping.

    ``orders_per_level`` caps the loop permutations tried per level (None =
    all).  ``shard=(i, n)`` walks only the ``i``-th of ``n`` disjoint
    deterministic shards of the space.  ``batch_gen`` index-decodes the
    space into matrix cohorts (same candidates, same order) instead of
    materializing one ``Mapping`` per candidate; the winner is
    bit-identical either way.  ``bound`` enables exact branch-and-bound
    pruning of whole split-prefix regions (identical winner and cost;
    see module docstring).  Raises :class:`SearchBudgetExceeded` when
    the space exceeds ``max_evaluations``.
    """
    start = time.perf_counter()
    space = full_mapping_space(workload, arch, orders_per_level)

    size = space.size()
    if size > max_evaluations:
        raise SearchBudgetExceeded(
            f"exhaustive space {size} exceeds budget {max_evaluations}"
        )

    cohorts = None
    if batch_gen and not bound:
        cohorts = full_space_cohorts(workload, arch, orders_per_level,
                                     shard=shard)

    best = None
    evaluations = 0
    certificate = None
    with engine_scope(engine, workers, cache, partial_reuse, sparsity,
                      batch, cache_size) as eng:
        if bound:
            best, evaluations, certificate = _branch_and_bound(
                workload, arch, space, objective, eng, shard,
                partial_reuse, sparsity, batch_gen)
            stats = eng.stats
        elif cohorts is not None:
            # Vectorized generation: the space is index-decoded straight
            # into factor matrices in the exact enumeration order; only
            # per-cohort winners are materialized as Mappings.
            while True:
                gen_start = time.perf_counter()
                cohort = next(cohorts, None)
                eng.stats.add_stage_time(
                    "generation", time.perf_counter() - gen_start)
                if cohort is None:
                    break
                costs = eng.evaluate_cohort(cohort)
                for idx, cost in enumerate(costs):
                    evaluations += 1
                    if not cost.valid:
                        continue
                    value = (cost.edp if objective == "edp"
                             else cost.energy_pj)
                    if best is None or value < best[0]:
                        best = (value, cohort.materialize(idx), cost)
            stats = eng.stats
        else:
            buffer: list[Mapping] = []
            # Chunk size for batched evaluation; results are scanned in
            # enumeration order with a strict < so the winner matches the
            # one-at-a-time scan exactly.
            flush_at = max(256, eng.workers * eng.chunk_size)

            def flush() -> None:
                nonlocal best, evaluations
                costs = eng.evaluate_many(buffer)
                for mapping, cost in zip(buffer, costs):
                    evaluations += 1
                    if not cost.valid:
                        continue
                    value = (cost.edp if objective == "edp"
                             else cost.energy_pj)
                    if best is None or value < best[0]:
                        best = (value, mapping, cost)
                buffer.clear()

            for mapping in space.enumerate(shard=shard):
                buffer.append(mapping)
                if len(buffer) >= flush_at:
                    flush()
            flush()
            stats = eng.stats

    elapsed = time.perf_counter() - start
    if best is None:
        return SearchResult(
            mapper="exhaustive",
            mapping=None,
            cost=None,
            evaluations=evaluations,
            wall_time_s=elapsed,
            invalid_reason="no valid mapping exists",
            search_stats=stats,
        )
    if certificate is not None:
        certificate["best_value"] = best[0]
        lb = certificate["lower_bound"]
        if lb > 0:
            certificate["gap_pct"] = (best[0] / lb - 1.0) * 100.0
    return SearchResult(
        mapper="exhaustive",
        mapping=best[1],
        cost=best[2],
        evaluations=evaluations,
        wall_time_s=elapsed,
        search_stats=stats,
        certificate=certificate,
    )


def _branch_and_bound(
    workload: Workload,
    arch: Architecture,
    space,
    objective: str,
    eng: SearchEngine,
    shard: tuple[int, int] | None,
    partial_reuse: bool,
    sparsity: SparsitySpec | None,
    batch_gen: bool = True,
):
    """Best-first DFS over split prefixes with analytic region pruning.

    Each visited node bounds *all* of its children once, then descends
    in ascending-bound order — the incumbent converges to near-optimal
    quickly, so later (worse) siblings prune wholesale.  Exactness under
    the reordered traversal comes from the argmin rule: the winner is
    the lexicographic minimum of ``(value, enumeration_index)`` over
    evaluated candidates, which is exactly the first attainer a linear
    scan would crown, and the true winner can never be pruned (the bound
    of any region containing it is <= its value <= every incumbent,
    while pruning requires a *strictly* greater bound).

    Surviving leaves (full per-dimension splits) contribute their
    in-shard ordering-block indices; those are accumulated and
    index-decoded into matrix cohorts (``batch_gen``, numpy available)
    or materialized as ``Mapping`` objects, then streamed through the
    batched evaluator.
    """
    dims = list(workload.dim_names)
    num = arch.num_levels
    slots = assignment_slots(arch)
    lattice_items = [space.axes[f"tiling[{d}]"].materialize() for d in dims]
    order_items = space.axes["ordering"].materialize()
    perms = len(order_items)
    block = perms ** num
    # tail[k]: candidates per fixed split prefix of length k.
    tail = [block] * (len(dims) + 1)
    for k in range(len(dims) - 1, -1, -1):
        tail[k] = tail[k + 1] * len(lattice_items[k])
    shard_index, shard_count = shard if shard is not None else (0, 1)

    def in_shard(base: int, count: int) -> int:
        """How many of the indices [base, base+count) land in the shard."""
        first = base + ((shard_index - base) % shard_count)
        if first >= base + count:
            return 0
        return (base + count - 1 - first) // shard_count + 1

    model = BoundModel(workload, arch, objective=objective,
                       partial_reuse=partial_reuse, sparsity=sparsity)
    stats = eng.stats
    best = None  # (value, enumeration_index, mapping, cost)
    evaluations = 0

    decoder = None
    if batch_gen and _np is not None:
        decoder = SpaceDecoder(workload, arch, perms)
        if not decoder.available:
            decoder = None

    def better(value: float, index: int) -> bool:
        return (best is None or value < best[0]
                or (value == best[0] and index < best[1]))

    if decoder is not None:
        pending: list = []  # int64 index arrays of surviving leaf blocks
        pending_n = 0
        flush_at = max(1024, eng.workers * eng.chunk_size)

        def flush() -> None:
            nonlocal best, evaluations, pending, pending_n
            if not pending_n:
                return
            gen_start = time.perf_counter()
            ks = pending[0] if len(pending) == 1 else _np.concatenate(pending)
            cohort = decoder.decode(ks)
            stats.add_stage_time(
                "generation", time.perf_counter() - gen_start)
            costs = eng.evaluate_cohort(cohort)
            for idx, cost in enumerate(costs):
                evaluations += 1
                if not cost.valid:
                    continue
                value = cost.edp if objective == "edp" else cost.energy_pj
                index = int(ks[idx])
                if better(value, index):
                    best = (value, index, cohort.materialize(idx), cost)
            pending = []
            pending_n = 0

        def emit_leaf(base: int, first: int) -> None:
            nonlocal pending_n
            pending.append(_np.arange(first, base + block, shard_count,
                                      dtype=_np.int64))
            pending_n += len(pending[-1])
            if pending_n >= flush_at:
                flush()
    else:
        # Same flush threshold and block-granularity cadence as the
        # vectorized path, so the incumbent trajectory — and therefore
        # every prune decision and the evaluation count — is identical
        # with and without numpy.
        buffer: list[tuple[int, Mapping]] = []
        flush_at = max(1024, eng.workers * eng.chunk_size)

        def flush() -> None:
            nonlocal best, evaluations
            if not buffer:
                return
            costs = eng.evaluate_many([m for _, m in buffer])
            for (index, mapping), cost in zip(buffer, costs):
                evaluations += 1
                if not cost.valid:
                    continue
                value = cost.edp if objective == "edp" else cost.energy_pj
                if better(value, index):
                    best = (value, index, mapping, cost)
            buffer.clear()

        def emit_leaf(base: int, first: int) -> None:
            temporal, spatial = stores_from_splits(dims, prefix, slots, num)
            for index in range(first, base + block, shard_count):
                local = index - base
                orders = []
                for level in range(num):
                    digit = (local // perms ** (num - 1 - level)) % perms
                    orders.append(order_items[digit])
                buffer.append((index, assemble_mapping(
                    workload, arch, temporal, spatial, orders)))
            if len(buffer) >= flush_at:
                flush()

    prefix: list[tuple[int, ...]] = []

    def walk(k: int, base: int) -> None:
        if k == len(dims):
            first = base + ((shard_index - base) % shard_count)
            if first < base + block:
                emit_leaf(base, first)
            return
        stride = tail[k + 1]
        kids = []
        for j, split in enumerate(lattice_items[k]):
            prefix.append(split)
            region = Region.from_splits(
                workload, arch, dict(zip(dims, prefix)))
            prefix.pop()
            kids.append((space.bound(objective,
                                     BoundContext(model, region)), j, split))
            stats.bound_regions_tested += 1
        kids.sort(key=lambda kid: (kid[0], kid[1]))
        for pos, (value, j, split) in enumerate(kids):
            # Strict >: a region whose bound merely equals the incumbent
            # could still hold an equal-value candidate that outranks the
            # incumbent on enumeration index.
            if best is not None and value > best[0]:
                # Siblings are sorted by bound, so everything from here
                # on prunes against the same incumbent.
                for _, j2, _ in kids[pos:]:
                    stats.bound_regions_pruned += 1
                    stats.bound_candidates_skipped += in_shard(
                        base + j2 * stride, stride)
                return
            prefix.append(split)
            walk(k + 1, base + j * stride)
            prefix.pop()

    walk(0, 0)
    flush()
    certificate = {"lower_bound": model.space_bound()}
    if best is not None:
        best = (best[0], best[2], best[3])
    return best, evaluations, certificate
