"""Interstellar-like mapper: preset CK spatial unrolling (§V, "INTER").

Interstellar restricts spatial unrolling to the input- and output-channel
dimensions (C and K) as prescribed in the paper, falling back to other
dimensions only when CK cannot fully utilise the PE grid.  Tiling considers
all dimensions, pruned by a high-throughput requirement.  The restriction
shrinks the search space dramatically but sometimes excludes better
mappings (e.g. it may reuse the output both temporally and spatially,
against the Unrolling Principle) — reproduced here by construction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator

from ..arch.spec import Architecture
from ..core.scheduler import SchedulerOptions, SchedulerStats, SunstoneScheduler, _State
from ..core.tiling_tree import enumerate_tilings
from ..core.unrolling import enumerate_unrollings
from ..sparse.spec import SparsitySpec
from ..workloads.expression import Workload
from .common import SearchResult


@dataclass(frozen=True)
class InterstellarConfig:
    """Interstellar's (fixed) strategy knobs."""

    preferred_spatial_dims: tuple[str, ...] = ("C", "K")
    full_utilization: float = 1.0  # CK must fully utilise the grid, else relax
    beam_width: int = 32
    objective: str = "edp"


class _InterstellarSearch(SunstoneScheduler):
    """Level sweep with CK-preset unrolling and all-dims tiling growth."""

    def __init__(self, workload: Workload, arch: Architecture,
                 config: InterstellarConfig, options: SchedulerOptions,
                 engine=None) -> None:
        super().__init__(workload, arch, options, engine=engine)
        self.config = config

    def _children_bottom_up(self, state: _State, level: int, orderings,
                            stats: SchedulerStats) -> Iterator[_State]:
        base = self._base_sizes(state, level)
        remaining = dict(state.frontier)
        fanout = self.arch.levels[level].fanout

        preferred = tuple(
            d for d in self.config.preferred_spatial_dims
            if d in self.workload.dims
        )
        for order in orderings:
            # Interstellar tiles over every dimension (no Tiling Principle).
            tilings = enumerate_tilings(
                self.workload, self.arch, level, base, remaining,
                self.workload.dim_names, stats=stats.tiling,
            )
            for tiling in tilings:
                rem_after = {
                    d: remaining[d] // tiling.get(d, 1) for d in remaining
                }
                unrolls = enumerate_unrollings(
                    self.workload, fanout, rem_after, preferred,
                    stats=stats.unrolling,
                    utilization_threshold=1.0,
                )
                best_pref = max(
                    (self._unroll_size(u) for u in unrolls), default=1,
                )
                if fanout > 1 and best_pref < fanout:
                    # CK cannot fill the grid: allow the other dimensions.
                    unrolls = enumerate_unrollings(
                        self.workload, fanout, rem_after,
                        self.workload.dim_names,
                        stats=stats.unrolling,
                        utilization_threshold=1.0,
                    )
                for unroll in unrolls:
                    child = self._extend_bottom_up(
                        state, level, order.order, tiling, unroll,
                    )
                    if child is not None:
                        yield child

    @staticmethod
    def _unroll_size(unroll: dict[str, int]) -> int:
        size = 1
        for f in unroll.values():
            size *= f
        return size


def interstellar_search(
    workload: Workload,
    arch: Architecture,
    config: InterstellarConfig = InterstellarConfig(),
    partial_reuse: bool = True,
    engine=None,
    workers: int = 1,
    cache: bool = True,
    sparsity: SparsitySpec | None = None,
    batch: bool = True,
    cache_size: int | None = None,
) -> SearchResult:
    """Run the Interstellar-like search."""
    start = time.perf_counter()
    options = SchedulerOptions(
        alpha_beta=False,
        beam_width=config.beam_width,
        objective=config.objective,
        partial_reuse=partial_reuse,
        workers=workers,
        cache=cache,
        sparsity=sparsity,
        batch=batch,
        cache_size=cache_size,
    )
    search = _InterstellarSearch(workload, arch, config, options,
                                 engine=engine)
    result = search.schedule()
    elapsed = time.perf_counter() - start
    if not result.found:
        return SearchResult(
            mapper="interstellar-like",
            mapping=None,
            cost=None,
            evaluations=result.stats.evaluations,
            wall_time_s=elapsed,
            invalid_reason="no mapping can use the preset unrolling",
            search_stats=result.stats.search,
        )
    return SearchResult(
        mapper="interstellar-like",
        mapping=result.mapping,
        cost=result.cost,
        evaluations=result.stats.evaluations,
        wall_time_s=elapsed,
        search_stats=result.stats.search,
    )
