"""Interstellar-like mapper: preset CK spatial unrolling (§V, "INTER").

Interstellar restricts spatial unrolling to the input- and output-channel
dimensions (C and K) as prescribed in the paper, falling back to other
dimensions only when CK cannot fully utilise the PE grid.  Tiling considers
all dimensions, pruned by a high-throughput requirement.  The restriction
shrinks the search space dramatically but sometimes excludes better
mappings (e.g. it may reuse the output both temporally and spatially,
against the Unrolling Principle) — reproduced here by construction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator

from ..arch.spec import Architecture
from ..core.scheduler import SchedulerOptions, SchedulerStats, SunstoneScheduler, _State
from ..mapspace.spaces import DependentSpace, ListSpace, Space
from ..mapspace.tile import TileSpace
from ..mapspace.unroll import UnrollSpace
from ..sparse.spec import SparsitySpec
from ..workloads.expression import Workload
from .common import SearchResult, certificate_from_bound


@dataclass(frozen=True)
class InterstellarConfig:
    """Interstellar's (fixed) strategy knobs."""

    preferred_spatial_dims: tuple[str, ...] = ("C", "K")
    full_utilization: float = 1.0  # CK must fully utilise the grid, else relax
    beam_width: int = 32
    objective: str = "edp"


class _InterstellarSearch(SunstoneScheduler):
    """Level sweep with CK-preset unrolling and all-dims tiling growth."""

    def __init__(self, workload: Workload, arch: Architecture,
                 config: InterstellarConfig, options: SchedulerOptions,
                 engine=None) -> None:
        super().__init__(workload, arch, options, engine=engine)
        self.config = config

    def _children_bottom_up(self, state: _State, level: int, orderings,
                            stats: SchedulerStats) -> Iterator[_State]:
        base = self._base_sizes(state, level)
        remaining = dict(state.frontier)
        fanout = self.arch.levels[level].fanout

        preferred = tuple(
            d for d in self.config.preferred_spatial_dims
            if d in self.workload.dims
        )

        def unrolls_for(tiling: dict[str, int]) -> Space:
            rem_after = {
                d: remaining[d] // tiling.get(d, 1) for d in remaining
            }
            # Preset CK unrolling with the "replace" fallback: when CK
            # cannot fill the grid, allow the other dimensions.
            return UnrollSpace(
                self.workload, fanout, rem_after, preferred,
                utilization_threshold=1.0,
                fallback="replace",
                stats=stats.unrolling,
            )

        decisions = DependentSpace(
            ListSpace(list(orderings)),
            # Interstellar tiles over every dimension (no Tiling Principle).
            lambda order: DependentSpace(
                TileSpace(self.workload, self.arch, level, base, remaining,
                          self.workload.dim_names, stats=stats.tiling),
                unrolls_for,
            ),
            combine=lambda order, pair: (order, pair[0], pair[1]),
        )
        children = decisions.map(
            lambda triple: self._extend_bottom_up(
                state, level, triple[0].order, triple[1], triple[2]),
        ).filter(lambda child: child is not None, "capacity", stats.prune)
        return children.enumerate(shard=self.options.shard)


def interstellar_search(
    workload: Workload,
    arch: Architecture,
    config: InterstellarConfig = InterstellarConfig(),
    partial_reuse: bool = True,
    engine=None,
    workers: int = 1,
    cache: bool = True,
    sparsity: SparsitySpec | None = None,
    batch: bool = True,
    cache_size: int | None = None,
    shard: tuple[int, int] | None = None,
    batch_gen: bool = True,
    bound: bool = True,
) -> SearchResult:
    """Run the Interstellar-like search.

    ``bound`` enables the scheduler's analytic branch-and-bound pruning
    (behaviour-preserving: the winner is bit-identical either way).
    """
    start = time.perf_counter()
    options = SchedulerOptions(
        alpha_beta=False,
        beam_width=config.beam_width,
        objective=config.objective,
        partial_reuse=partial_reuse,
        workers=workers,
        cache=cache,
        sparsity=sparsity,
        batch=batch,
        batch_gen=batch_gen,
        cache_size=cache_size,
        shard=shard,
        bound=bound,
    )
    search = _InterstellarSearch(workload, arch, config, options,
                                 engine=engine)
    result = search.schedule()
    elapsed = time.perf_counter() - start
    if not result.found:
        return SearchResult(
            mapper="interstellar-like",
            mapping=None,
            cost=None,
            evaluations=result.stats.evaluations,
            wall_time_s=elapsed,
            invalid_reason="no mapping can use the preset unrolling",
            search_stats=result.stats.search,
        )
    return SearchResult(
        mapper="interstellar-like",
        mapping=result.mapping,
        cost=result.cost,
        evaluations=result.stats.evaluations,
        wall_time_s=elapsed,
        search_stats=result.stats.search,
        certificate=certificate_from_bound(result.stats.prune.bound),
    )
