"""GAMMA-like genetic-algorithm mapper (related work, §VI).

GAMMA [Kao & Krishna, ICCAD'20] evolves mappings with a genetic algorithm:
a population of candidate mappings undergoes crossover (exchanging per-level
decisions between parents) and mutation (re-splitting one dimension's
factors, permuting one level's order, re-rolling one boundary's unrolling),
ranked by the cost model.  The paper cites it as a black-box alternative
whose approximation of the problem can miss structure; it is included here
both as an additional baseline and as a stress test for the cost model.

Chromosome encoding: per dimension, a placement of its prime factors into
(level, temporal/spatial) slots; per level, a loop-order permutation.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from ..arch.spec import Architecture
from ..mapping.mapping import Mapping
from ..mapspace.factor import prime_factors
from ..mapspace.mapspace import assemble_mapping, assignment_slots
from ..model.cost import CostResult
from ..search import SearchEngine
from ..sparse.spec import SparsitySpec
from ..workloads.expression import Workload
from .common import SearchResult, engine_scope


@dataclass(frozen=True)
class GammaConfig:
    """Genetic-algorithm hyperparameters (GAMMA's defaults scaled down)."""

    population: int = 60
    generations: int = 25
    elite_fraction: float = 0.2
    mutation_rate: float = 0.25
    seed: int = 0
    objective: str = "edp"


@dataclass
class _Genome:
    # placements[dim] = list of (kind, level) per prime factor of the dim
    placements: dict[str, list[tuple[str, int]]]
    orders: list[tuple[str, ...]]


class _GammaSearch:
    def __init__(self, workload: Workload, arch: Architecture,
                 config: GammaConfig, partial_reuse: bool,
                 engine: SearchEngine) -> None:
        self.workload = workload
        self.arch = arch
        self.config = config
        self.partial_reuse = partial_reuse
        self.engine = engine
        self.rng = random.Random(config.seed)
        self.primes = {
            dim: prime_factors(size) for dim, size in workload.dims.items()
        }
        # Chromosome slots are the canonical mapspace assignment slots
        # (temporal per level, spatial at fanout boundaries).
        self.slots = assignment_slots(arch)
        self.evaluations = 0

    # -- genome operations -------------------------------------------------
    def random_genome(self) -> _Genome:
        placements = {
            dim: [self.rng.choice(self.slots) for _ in primes]
            for dim, primes in self.primes.items()
        }
        orders = []
        for _ in range(self.arch.num_levels):
            order = list(self.workload.dim_names)
            self.rng.shuffle(order)
            orders.append(tuple(order))
        return _Genome(placements, orders)

    def crossover(self, a: _Genome, b: _Genome) -> _Genome:
        placements = {}
        for dim in self.primes:
            donor = a if self.rng.random() < 0.5 else b
            placements[dim] = list(donor.placements[dim])
        orders = [
            (a if self.rng.random() < 0.5 else b).orders[i]
            for i in range(self.arch.num_levels)
        ]
        return _Genome(placements, orders)

    def mutate(self, genome: _Genome) -> None:
        roll = self.rng.random()
        if roll < 0.5 and self.primes:
            # Re-place one prime factor of one dimension.
            dim = self.rng.choice(list(self.primes))
            if genome.placements[dim]:
                index = self.rng.randrange(len(genome.placements[dim]))
                genome.placements[dim][index] = self.rng.choice(self.slots)
        else:
            # Re-shuffle one level's loop order.
            level = self.rng.randrange(self.arch.num_levels)
            order = list(genome.orders[level])
            self.rng.shuffle(order)
            genome.orders[level] = tuple(order)

    # -- decoding & fitness -------------------------------------------------
    def decode(self, genome: _Genome) -> Mapping:
        num = self.arch.num_levels
        temporal = [dict[str, int]() for _ in range(num)]
        spatial = [dict[str, int]() for _ in range(num)]
        for dim, placement in genome.placements.items():
            for prime, (kind, level) in zip(self.primes[dim], placement):
                store = temporal if kind == "t" else spatial
                store[level][dim] = store[level].get(dim, 1) * prime
        return assemble_mapping(self.workload, self.arch, temporal, spatial,
                                genome.orders)

    def _value(self, cost: CostResult) -> float:
        value = cost.edp if self.config.objective == "edp" \
            else cost.energy_pj
        if not cost.valid:
            value *= 1e6  # heavily penalise, GAMMA-style, but keep gradient
        return value

    def fitness(self, genome: _Genome) -> tuple[float, Mapping, CostResult]:
        mapping = self.decode(genome)
        cost = self.engine.evaluate(mapping)
        self.evaluations += 1
        return self._value(cost), mapping, cost

    # -- main loop ----------------------------------------------------------
    def run(self) -> tuple[Mapping, CostResult] | None:
        population = [self.random_genome()
                      for _ in range(self.config.population)]
        best: tuple[float, Mapping, CostResult] | None = None
        for _ in range(self.config.generations):
            # One whole generation is a natural evaluation batch.
            mappings = [self.decode(genome) for genome in population]
            costs = self.engine.evaluate_many(mappings)
            self.evaluations += len(population)
            ranked = []
            for genome, mapping, cost in zip(population, mappings, costs):
                value = self._value(cost)
                ranked.append((value, genome))
                if cost.valid and (best is None or value < best[0]):
                    best = (value, mapping, cost)
            ranked.sort(key=lambda item: item[0])
            elite_count = max(2, int(self.config.elite_fraction
                                     * self.config.population))
            elites = [genome for _, genome in ranked[:elite_count]]
            children = list(elites)
            while len(children) < self.config.population:
                mother, father = self.rng.sample(elites, 2)
                child = self.crossover(mother, father)
                if self.rng.random() < self.config.mutation_rate:
                    self.mutate(child)
                children.append(child)
            population = children
        if best is None:
            return None
        return best[1], best[2]


def gamma_search(
    workload: Workload,
    arch: Architecture,
    config: GammaConfig = GammaConfig(),
    partial_reuse: bool = True,
    engine: SearchEngine | None = None,
    workers: int = 1,
    cache: bool = True,
    sparsity: SparsitySpec | None = None,
    batch: bool = True,
    cache_size: int | None = None,
) -> SearchResult:
    """Run the GAMMA-like genetic search."""
    start = time.perf_counter()
    with engine_scope(engine, workers, cache, partial_reuse, sparsity,
                      batch, cache_size) as engine:
        search = _GammaSearch(workload, arch, config, partial_reuse, engine)
        outcome = search.run()
        elapsed = time.perf_counter() - start
    if outcome is None:
        return SearchResult(
            mapper="gamma-like",
            mapping=None,
            cost=None,
            evaluations=search.evaluations,
            wall_time_s=elapsed,
            invalid_reason="no valid individual evolved",
            search_stats=engine.stats,
        )
    mapping, cost = outcome
    return SearchResult(
        mapper="gamma-like",
        mapping=mapping,
        cost=cost,
        evaluations=search.evaluations,
        wall_time_s=elapsed,
        search_stats=engine.stats,
    )
